"""Ablation: compressing wide-area traffic in the VMI chain.

Paper §3 credits Cactus-G with "a thorn to compress message data that
were sent over the wide-area connection", and §2.2 notes VMI chains can
do the same at the messaging layer.  This bench builds that chain — a
CompressionDevice scoped to cross-cluster pairs in front of a
*bandwidth-starved* WAN — and measures the stencil with and without it.

On a thin pipe the bandwidth term dominates the per-ghost cost, so
compression must win; on the paper's latency-dominated TeraGrid path it
would barely matter, which the printed numbers make obvious.
"""

from __future__ import annotations

from repro.apps.stencil import StencilApp
from repro.grid.environment import GridEnvironment
from repro.network.chain import DeviceChain
from repro.network.delay import DelayDevice, cross_cluster_pairs
from repro.network.devices import LanDevice, LoopbackDevice, ShmemDevice, WanDevice
from repro.network.links import LinkModel, myrinet_like, shared_memory, wan_tcp
from repro.network.topology import GridTopology
from repro.network.transform import CompressionDevice
from repro.units import ms

PES = 8
OBJECTS = 64
#: Small blocks: little compute to hide behind, 0.5 KiB ghosts.
MESH = (512, 512)
STEPS = 10
#: A starved trans-continental pipe: 0.2 MB/s per flow, so one ghost
#: occupies the wire for ~3 ms — comparable to the injected latency and
#: to the per-step compute, i.e. squarely on the critical path.
WAN_BANDWIDTH = 0.2e6


def build_env(compress: bool) -> GridEnvironment:
    devices = [
        LoopbackDevice(LinkModel("loopback", latency=0.5e-6, bandwidth=0.0,
                                 per_message_overhead=0.5e-6)),
        ShmemDevice(shared_memory()),
        LanDevice(myrinet_like()),
    ]
    if compress:
        devices.append(CompressionDevice(
            ratio=0.25, throughput=200e6,
            applies_to=cross_cluster_pairs))
    devices.append(DelayDevice(ms(2)))
    devices.append(WanDevice(wan_tcp(latency=0.0, bandwidth=WAN_BANDWIDTH)))
    topo = GridTopology.two_cluster(PES)
    return GridEnvironment(topo, DeviceChain(devices))


def run(compress: bool) -> float:
    env = build_env(compress)
    app = StencilApp(env, mesh=MESH, objects=OBJECTS, payload="modeled")
    return app.run(STEPS).time_per_step


def test_wan_compression(benchmark):
    results = benchmark.pedantic(
        lambda: {"plain": run(False), "compressed": run(True)},
        rounds=1, iterations=1)
    print()
    print(f"Ablation: WAN compression on a {WAN_BANDWIDTH / 1e6:.0f} MB/s "
          "pipe (Cactus-G style thorn as a VMI chain device)")
    for name, tps in results.items():
        print(f"  {name:11s}: {tps * 1e3:8.3f} ms/step")

    # 4x smaller ghosts on a bandwidth-bound pipe must show up.
    assert results["compressed"] < results["plain"] * 0.9
