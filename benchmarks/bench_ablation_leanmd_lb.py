"""Ablation: measurement-based load balancing on LeanMD.

Paper §5.3: "The runs were conducted without any load balancing.  With
load balancing, the speedups are likely to be good at 64 processors."
This bench quantifies that counterfactual:

* run LeanMD with the *naive* pair placement (every pair object pinned
  to its first cell's PE — boundary pairs pile up at the cluster seam);
* feed the measured per-chare loads to GreedyLB;
* re-run with the balanced assignment (an imbalance comparison on the
  measured database, applied as a fresh placement).

The balanced run must recover most of the imbalance — the paper's
"likely to be good" made concrete.
"""

from __future__ import annotations

from repro.apps.leanmd import LeanMDApp
from repro.core.loadbalance import GreedyLB, imbalance, pe_loads
from repro.grid.presets import artificial_latency_env
from repro.units import ms

PES = 16
STEPS = 6


def run(pair_mapping: str):
    env = artificial_latency_env(PES, ms(1.725))
    app = LeanMDApp(env, payload="modeled", pair_mapping=pair_mapping)
    result = app.run(STEPS)
    return env, result


def test_leanmd_load_balancing(benchmark):
    def experiment():
        env_naive, naive = run("colocated")
        db = env_naive.runtime.lb_db
        mapping = env_naive.runtime.current_mapping()
        before = imbalance(pe_loads(db, env_naive.topology, mapping))
        plan = GreedyLB().plan(db, env_naive.topology, mapping)
        after_mapping = dict(mapping)
        after_mapping.update(plan)
        after = imbalance(pe_loads(db, env_naive.topology, after_mapping))
        _env2, balanced = run("balanced")
        return naive, balanced, before, after

    naive, balanced, imb_before, imb_after = benchmark.pedantic(
        experiment, rounds=1, iterations=1)

    print()
    print(f"Ablation: LeanMD load balancing ({PES} PEs)")
    print(f"  naive (pairs at cell_a) : {naive.time_per_step:7.3f} s/step "
          f"(measured imbalance {imb_before:.2f})")
    print(f"  GreedyLB plan imbalance : {imb_after:.2f}")
    print(f"  balanced placement      : {balanced.time_per_step:7.3f} s/step")

    # The naive placement is measurably imbalanced; the LB plan fixes
    # the measured loads, and the balanced placement runs faster.
    assert imb_before > 1.15
    assert imb_after < 1.05
    assert balanced.time_per_step < 0.92 * naive.time_per_step
