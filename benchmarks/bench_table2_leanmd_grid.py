"""Table 2 reproduction: LeanMD artificial-latency vs "real" grid runs.

Runs the paper's six PE counts in both environments, prints the table
against the published values, and asserts:

* artificial predicts real closely at <= 32 PEs (the paper: "match
  extremely well");
* the divergence, if any, is largest at 64 PEs (the paper attributes
  its 64-PE gap to WAN contention — our contended-pipe model is what
  makes the real column differ at all).
"""

from __future__ import annotations

from repro.bench.executor import default_jobs
from repro.bench.sweep import sweep_table2
from repro.bench.tables import PAPER_TABLE2, render_table2, trend_agreement


def test_table2(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_table2(jobs=default_jobs()), rounds=1, iterations=1)
    print()
    print(render_table2(points))

    art = {p.pes: p.time_per_step for p in points
           if p.environment == "artificial"}
    real = {p.pes: p.time_per_step for p in points
            if p.environment == "teragrid"}
    assert set(art) == set(real) == set(PAPER_TABLE2)

    gaps = {pes: abs(real[pes] - art[pes]) / art[pes] for pes in art}
    for pes in (2, 4, 8, 16, 32):
        assert gaps[pes] < 0.10, \
            f"{pes} PEs: artificial vs real gap {gaps[pes]:.1%}"
    # 64 PEs may diverge more (contention), but must stay sane.
    assert gaps[64] < 0.50
    assert gaps[64] >= max(gaps[p] for p in (2, 4)) - 1e-9

    score = trend_agreement(
        [p for p in points if p.environment == "artificial"],
        PAPER_TABLE2, lambda p: p.pes)
    print(f"trend agreement vs paper Table 2: {score:.0%}")
    assert score == 1.0  # strict monotone speedup, as in the paper
