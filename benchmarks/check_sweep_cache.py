#!/usr/bin/env python
"""CI gate for the parallel-sweep job: the second sweep must be cached.

Usage::

    python benchmarks/check_sweep_cache.py \
        stats-cold.json stats-warm.json sweep-cold.txt sweep-warm.txt

Asserts that the warm run was >= 90% cache-served and that its rendered
artefact (stdout) is byte-identical to the cold run's — the executor's
two contracts: re-runs are nearly free, and the cache never changes the
answer.
"""

import json
import sys

MIN_CACHE_FRACTION = 0.90


def main(argv):
    cold_stats, warm_stats, cold_out, warm_out = argv[1:5]
    with open(cold_stats) as fh:
        cold = json.load(fh)
    with open(warm_stats) as fh:
        warm = json.load(fh)
    print("cold:", cold)
    print("warm:", warm)
    if warm["cache_fraction"] < MIN_CACHE_FRACTION:
        raise SystemExit(
            f"second sweep only {warm['cache_fraction']:.0%} cache-served "
            f"(need >= {MIN_CACHE_FRACTION:.0%})")
    with open(cold_out) as fh:
        cold_text = fh.read()
    with open(warm_out) as fh:
        warm_text = fh.read()
    if cold_text != warm_text:
        raise SystemExit("cached sweep output differs from the fresh run")
    print(f"ok: {warm['cache_fraction']:.0%} cache-served, "
          "artefact byte-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
