#!/usr/bin/env python
"""CI gate: validate the structure of ``repro compare --json`` output.

Usage::

    python benchmarks/check_compare_schema.py compare.json [--require-neutral]

Checks the comparison document carries every documented key with the
right type and that its arithmetic invariants hold: the component table
covers every critical-path component exactly once, the per-component
deltas sum to the total delta up to the reported residual, and each
verdict is consistent with its delta and the threshold.  With
``--require-neutral`` the gate additionally fails unless the comparison
is an exact, all-neutral self-compare — the CI smoke runs the same
configuration twice, so anything non-neutral means the attribution
pipeline itself drifted.  No third-party schema library: the checks are
hand-rolled so the gate runs on a bare numpy-only CI image.
"""

import json
import sys

COMPONENTS = ("compute", "relay_overhead", "propagation",
              "bandwidth_serialization", "stripe_pacing", "device_queue",
              "queue_serial", "retransmit_stall")

SIDE_KEYS = ("name", "digest", "schema", "time_per_step_s", "steps")
COMPONENT_KEYS = ("component", "baseline_s", "candidate_s", "delta_s",
                  "verdict")
VERDICTS = ("regressed", "improved", "neutral")


def _fail(msg):
    raise SystemExit(f"compare schema: {msg}")


def _number(name, value):
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(f"{name} is {type(value).__name__}, want number")
    return float(value)


def check(doc, require_neutral=False):
    if doc.get("schema") != 1:
        _fail(f"schema is {doc.get('schema')!r}, want 1")
    for side in ("baseline", "candidate"):
        row = doc.get(side)
        if not isinstance(row, dict):
            _fail(f"missing {side!r} object")
        for key in SIDE_KEYS:
            if key not in row:
                _fail(f"{side} missing key {key!r}")
        if row["schema"] < 2:
            _fail(f"{side} record schema {row['schema']} < 2 — no "
                  f"critpath payload to have diffed")

    components = doc.get("components")
    if not isinstance(components, list):
        _fail("components must be a list")
    seen = []
    delta_sum = 0.0
    for i, row in enumerate(components):
        for key in COMPONENT_KEYS:
            if key not in row:
                _fail(f"components[{i}] missing key {key!r}")
        if row["verdict"] not in VERDICTS:
            _fail(f"components[{i}].verdict {row['verdict']!r} invalid")
        delta = _number(f"components[{i}].delta_s", row["delta_s"])
        b = _number(f"components[{i}].baseline_s", row["baseline_s"])
        c = _number(f"components[{i}].candidate_s", row["candidate_s"])
        if abs((c - b) - delta) > 1e-12:
            _fail(f"components[{i}].delta_s inconsistent with its sides")
        seen.append(row["component"])
        delta_sum += delta
    if tuple(seen) != COMPONENTS:
        _fail(f"component order {seen} != {list(COMPONENTS)}")

    total = doc.get("total")
    if not isinstance(total, dict) or total.get("verdict") not in VERDICTS:
        _fail("total must be an object with a valid verdict")
    total_delta = _number("total.delta_s", total["delta_s"])
    residual = _number("residual_s", doc.get("residual_s"))
    # The headline invariant: deltas + residual == total delta.
    if abs(total_delta - (delta_sum + residual)) > 1e-15:
        _fail(f"component deltas {delta_sum} + residual {residual} "
              f"!= total delta {total_delta}")
    if doc.get("exact") != (residual == 0.0):
        _fail("exact flag inconsistent with residual_s")
    for key in ("all_neutral", "config_changed"):
        if not isinstance(doc.get(key), bool):
            _fail(f"{key} must be a bool")
    if not isinstance(doc.get("phases"), dict):
        _fail("phases must be an object")
    if not isinstance(doc.get("net"), dict):
        _fail("net must be an object")

    if require_neutral:
        if not doc["all_neutral"]:
            bad = [r["component"] for r in components
                   if r["verdict"] != "neutral"]
            _fail(f"self-compare not all-neutral: total "
                  f"{total['verdict']}, components {bad}")
        if not doc["exact"]:
            _fail(f"self-compare residual not exact: {residual!r}")
        if doc["config_changed"]:
            _fail("self-compare config digests differ")
    return doc


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    require_neutral = "--require-neutral" in argv
    paths = [a for a in argv if a != "--require-neutral"]
    if len(paths) != 1:
        _fail("usage: check_compare_schema.py COMPARE_JSON "
              "[--require-neutral]")
    with open(paths[0]) as fh:
        doc = json.load(fh)
    check(doc, require_neutral=require_neutral)
    print(f"compare schema OK: total {doc['total']['verdict']}, "
          f"{len(doc['components'])} components, "
          f"residual {doc['residual_s']:+.3e} s"
          + (", all neutral" if doc["all_neutral"] else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
