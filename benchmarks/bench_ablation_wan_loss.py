"""Ablation: message loss on the WAN vs degree of virtualization.

The paper's thesis is that message-driven objects mask *latency*; this
bench asks whether the same mechanism also masks the latency-like cost
of an unreliable wide area.  A FaultyDevice drops (swept 0-10%),
duplicates (1%) and reorders (5%) cross-cluster traffic, and the
ReliableTransport's ack/retransmit protocol repairs it — at the price of
RTO-scale stalls whenever a ghost or its ack is lost.

With one object per PE a retransmit stalls the whole processor for the
RTO; with many objects per PE the scheduler keeps executing other
blocks' entry methods while the lost ghost is resent, so the *relative*
penalty of a lossy link shrinks as virtualization rises — the same
overlap argument as the paper's Fig. 3, applied to retransmission gaps
instead of raw latency.

Each configuration is averaged over a few seeds (fault locations move
between seeds; the per-seed runs themselves are deterministic, so the
printed numbers are exactly reproducible).
"""

from __future__ import annotations

from repro.apps.stencil import StencilApp
from repro.grid.presets import lossy_wan_env
from repro.units import ms

PES = 8
LATENCY = ms(2)
MESH = (512, 512)
STEPS = 16
LOSS_RATES = (0.0, 0.02, 0.05, 0.10)
OBJECT_COUNTS = (8, 64, 256)   # 1, 8 and 32 objects per PE
DUPLICATION = 0.01
REORDERING = 0.05
SEEDS = (0, 1, 2, 3, 4)


def run(objects: int, loss: float, seed: int) -> float:
    env = lossy_wan_env(PES, LATENCY, loss=loss,
                        duplication=DUPLICATION, reordering=REORDERING,
                        seed=seed)
    app = StencilApp(env, mesh=MESH, objects=objects, payload="modeled")
    return app.run(STEPS).time_per_step


def sweep() -> dict:
    results = {}
    for objects in OBJECT_COUNTS:
        results[objects] = {
            loss: sum(run(objects, loss, s) for s in SEEDS) / len(SEEDS)
            for loss in LOSS_RATES
        }
    return results


def test_wan_loss(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"Ablation: stencil {MESH} on {PES} PEs, {LATENCY * 1e3:.0f} ms "
          f"WAN, dup={DUPLICATION:.0%}, reorder={REORDERING:.0%}, "
          f"loss swept (mean over {len(SEEDS)} seeds)")
    header = "  objects/PE " + "".join(f"  loss={loss:4.0%}" for loss in
                                       LOSS_RATES) + "   penalty@10%"
    print(header)
    penalty = {}
    for objects in OBJECT_COUNTS:
        row = results[objects]
        penalty[objects] = row[LOSS_RATES[-1]] / row[0.0]
        cells = "".join(f"  {row[loss] * 1e3:7.3f}ms" for loss in LOSS_RATES)
        print(f"  {objects // PES:10d} {cells}       "
              f"{penalty[objects]:5.2f}x")

    for objects in OBJECT_COUNTS:
        row = results[objects]
        # Loss must cost something: the 10%-loss run is clearly slower
        # than the clean one at every virtualization level.
        assert row[LOSS_RATES[-1]] > row[0.0] * 1.10
        # Seed-averaged curve is monotone in loss up to noise.
        for lo, hi in zip(LOSS_RATES, LOSS_RATES[1:]):
            assert row[hi] > row[lo] * 0.95

    # The point of the ablation: heavy virtualization softens the
    # retransmit penalty (32 objects/PE pays a smaller *relative* price
    # for a 10%-loss WAN than 1 object/PE does).
    assert penalty[OBJECT_COUNTS[-1]] < penalty[OBJECT_COUNTS[0]] - 0.05
