"""Ablation: runtime-level masking vs algorithm-level ghost expansion.

Paper §3 contrasts its approach with Ding & He's ghost-cell expansion:
widening halos amortizes latency *if* your algorithm admits it, at the
price of redundant computation and application changes.  This bench
pits the two techniques against each other on the same workload:

* plain stencil, low virtualization (nothing helps);
* plain stencil, high virtualization (the paper's runtime-level fix);
* deep-ghost stencil, depth 2/4/8 at low virtualization (the
  algorithm-level fix).

Expected shape: at a latency the base case cannot hide, *both*
techniques recover most of it, and at zero latency the deep-ghost
variant pays its redundant-compute tax while virtualization is ~free —
which is the paper's argument for doing it in the runtime.
"""

from __future__ import annotations

from repro.apps.stencil import DeepGhostStencilApp, StencilApp
from repro.grid.presets import artificial_latency_env
from repro.units import ms

PES = 8
MESH = (1024, 1024)
STEPS = 24
LATENCY = 8.0   # ms: far beyond what 8 objects on 8 PEs can hide
VIRT_OBJECTS = 8 * PES   # 8 objects/PE: still coarse-grained blocks


def plain(objects: int, latency_ms: float) -> float:
    env = artificial_latency_env(PES, ms(latency_ms))
    app = StencilApp(env, mesh=MESH, objects=objects, payload="modeled")
    return app.run(STEPS).time_per_step


def deep(depth: int, latency_ms: float) -> float:
    env = artificial_latency_env(PES, ms(latency_ms))
    app = DeepGhostStencilApp(env, mesh=MESH, objects=PES, depth=depth,
                              payload="modeled")
    return app.run(STEPS).time_per_step


def test_ghost_depth_vs_virtualization(benchmark):
    def experiment():
        return {
            "base (1 obj/PE)": plain(PES, LATENCY),
            "virtualized (8 obj/PE)": plain(VIRT_OBJECTS, LATENCY),
            "ghost depth 2": deep(2, LATENCY),
            "ghost depth 4": deep(4, LATENCY),
            "ghost depth 8": deep(8, LATENCY),
            "base @ 0ms": plain(PES, 0.0),
            "virtualized @ 0ms": plain(VIRT_OBJECTS, 0.0),
            "ghost depth 8 @ 0ms": deep(8, 0.0),
        }

    t = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print(f"Ablation: latency {LATENCY} ms, {PES} PEs, {MESH} mesh")
    for name, tps in t.items():
        print(f"  {name:24s}: {tps * 1e3:8.3f} ms/step")

    # Both techniques beat the unhelped baseline substantially.
    assert t["virtualized (8 obj/PE)"] < 0.80 * t["base (1 obj/PE)"]
    assert t["ghost depth 4"] < 0.60 * t["base (1 obj/PE)"]
    # Deeper halos amortize more.
    assert t["ghost depth 8"] < t["ghost depth 4"] < t["ghost depth 2"]
    # The paper's point: at zero latency, ghost expansion still pays its
    # redundant-compute tax; virtualization stays cheap.
    assert t["ghost depth 8 @ 0ms"] > 1.02 * t["base @ 0ms"]
    assert t["virtualized @ 0ms"] < 1.35 * t["base @ 0ms"]
