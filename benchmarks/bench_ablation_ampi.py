"""Ablation: AMPI overhead and AMPI-side virtualization.

Paper §2.1/§6: AMPI gives MPI programs the same latency tolerance.
Two measurements on identical workloads:

1. **Layer tax** — the AMPI stencil (isend/irecv/waitall program) vs
   the native chare stencil at the same decomposition: the coroutine
   layer must cost only a small constant factor.
2. **Virtualization transfer** — AMPI with 1 rank/PE vs 16 ranks/PE at
   a latency the former cannot hide: over-decomposing the *unchanged*
   MPI program must recover most of the lost time, the headline claim
   applied to MPI code.
"""

from __future__ import annotations

from repro.apps.stencil import AmpiStencilApp, StencilApp
from repro.grid.presets import artificial_latency_env
from repro.units import ms

MESH = (1024, 1024)
STEPS = 10


def chare_tps(pes, objects, latency_ms):
    env = artificial_latency_env(pes, ms(latency_ms))
    app = StencilApp(env, mesh=MESH, objects=objects, payload="modeled")
    return app.run(STEPS).time_per_step


def ampi_tps(pes, ranks, latency_ms):
    env = artificial_latency_env(pes, ms(latency_ms))
    app = AmpiStencilApp(env, mesh=MESH, ranks=ranks, payload="modeled")
    return app.run(STEPS).time_per_step


def test_ampi_layer_tax(benchmark):
    results = benchmark.pedantic(
        lambda: {"chare": chare_tps(4, 64, 2.0),
                 "ampi": ampi_tps(4, 64, 2.0)},
        rounds=1, iterations=1)
    print()
    print("Ablation: AMPI layer tax (4 PEs, 64 objects/ranks, 2 ms)")
    for name, tps in results.items():
        print(f"  {name:5s}: {tps * 1e3:8.3f} ms/step")
    assert results["ampi"] <= results["chare"] * 1.30
    assert results["ampi"] >= results["chare"] * 0.95


def test_ampi_virtualization_masks_latency(benchmark):
    results = benchmark.pedantic(
        lambda: {"1/PE": ampi_tps(4, 4, 8.0),
                 "16/PE": ampi_tps(4, 64, 8.0),
                 "16/PE@0": ampi_tps(4, 64, 0.0)},
        rounds=1, iterations=1)
    print()
    print("Ablation: AMPI rank virtualization (4 PEs, 8 ms latency)")
    for name, tps in results.items():
        print(f"  {name:8s}: {tps * 1e3:8.3f} ms/step")

    # 1 rank/PE exposes the 8 ms latency fully.
    assert results["1/PE"] >= ms(8)
    # 16 ranks/PE hides most of it (per-PE work ~9 ms > latency).
    assert results["16/PE"] <= results["1/PE"] * 0.75
