#!/usr/bin/env python
"""CI gate: validate the structure of ``repro objview --json`` output.

Usage::

    python benchmarks/check_objview_schema.py objview.json

Checks that the ``objects`` section — the Projections-style object
view's machine-readable digest — carries every documented key with the
right type and that its internal invariants hold (top objects sorted by
descending compute, grain quantiles ordered p50 <= p95 <= max, blame
rows internally consistent, advisor suggestions ranked by predicted
savings).  No third-party schema library: the checks are hand-rolled so
the gate runs on a bare numpy-only CI image.
"""

import json
import sys

TOTALS_KEYS = {
    "objects": int, "executions": int, "compute_s": float,
    "queue_wait_s": float, "bytes_sent": int, "wan_bytes_sent": int,
    "matrix_edges": int, "makespan_s": float,
}
TOP_KEYS = {
    "obj": str, "executions": int, "compute_s": float,
    "p50_grain_s": float, "p95_grain_s": float, "max_grain_s": float,
    "queue_wait_s": float, "wan_bytes_sent": int, "wan_bytes_recv": int,
}
BLAME_KEYS = {
    "compute_s": float, "wan_wait_s": float, "queue_s": float,
    "total_s": float,
}
SUGGESTION_KEYS = {
    "obj": str, "action": str, "reason": str,
    "predicted_savings_s": float,
}
ACTIONS = {"split", "merge", "migrate"}
DIRECTIONS = {"finer", "coarser", "keep"}


def _fail(msg):
    raise SystemExit(f"objview schema: {msg}")


def _check_mapping(name, row, spec):
    for key, typ in spec.items():
        if key not in row:
            _fail(f"{name} missing key {key!r}")
        value = row[key]
        if typ is float:
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                _fail(f"{name}[{key!r}] is {type(value).__name__}, "
                      f"want number")
        elif not isinstance(value, typ) or \
                (typ is int and isinstance(value, bool)):
            _fail(f"{name}[{key!r}] is {type(value).__name__}, "
                  f"want {typ.__name__}")


def check(doc):
    objects = doc.get("objects")
    if not isinstance(objects, dict):
        _fail("document has no 'objects' object")
    for key in ("totals", "top_by_compute"):
        if key not in objects:
            _fail(f"objects missing key {key!r}")
    totals = objects["totals"]
    _check_mapping("totals", totals, TOTALS_KEYS)
    if totals["objects"] <= 0:
        _fail("totals.objects must be positive in a traced run")
    if totals["compute_s"] < 0:
        _fail("totals.compute_s negative")

    top = objects["top_by_compute"]
    if not isinstance(top, list) or not top:
        _fail("objects.top_by_compute must be a non-empty list")
    for i, row in enumerate(top):
        _check_mapping(f"top_by_compute[{i}]", row, TOP_KEYS)
        if not (0.0 <= row["p50_grain_s"] <= row["p95_grain_s"]
                <= row["max_grain_s"]):
            _fail(f"top_by_compute[{i}]: grain quantiles out of order")
        if row["compute_s"] > totals["compute_s"]:
            _fail(f"top_by_compute[{i}]: object compute exceeds total")
    for a, b in zip(top, top[1:]):
        if a["compute_s"] < b["compute_s"]:
            _fail("top_by_compute not sorted by descending compute")

    blame = objects.get("blame")
    if blame is not None:
        if not isinstance(blame, dict):
            _fail("objects.blame must be an object")
        for obj, row in blame.items():
            _check_mapping(f"blame[{obj!r}]", row, BLAME_KEYS)
            parts = row["compute_s"] + row["wan_wait_s"] + row["queue_s"]
            if abs(row["total_s"] - parts) > 1e-9 * max(1.0, parts):
                _fail(f"blame[{obj!r}]: total_s != sum of components")

    advice = objects.get("advice")
    if advice is not None:
        if advice.get("direction") not in DIRECTIONS:
            _fail(f"advice.direction {advice.get('direction')!r} not in "
                  f"{sorted(DIRECTIONS)}")
        rec = advice.get("recommended_objects")
        if rec is not None and (not isinstance(rec, int) or rec <= 0):
            _fail("advice.recommended_objects must be a positive int")
        suggestions = advice.get("suggestions")
        if not isinstance(suggestions, list):
            _fail("advice.suggestions must be a list")
        for i, s in enumerate(suggestions):
            _check_mapping(f"suggestions[{i}]", s, SUGGESTION_KEYS)
            if s["action"] not in ACTIONS:
                _fail(f"suggestions[{i}].action {s['action']!r} not in "
                      f"{sorted(ACTIONS)}")
            if s["action"] == "migrate" and "partner" not in s:
                _fail(f"suggestions[{i}]: migrate without a partner")
        for a, b in zip(suggestions, suggestions[1:]):
            if a["predicted_savings_s"] < b["predicted_savings_s"]:
                _fail("suggestions not ranked by predicted savings")
    return objects


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        _fail("usage: check_objview_schema.py OBJVIEW_JSON")
    with open(argv[0]) as fh:
        doc = json.load(fh)
    objects = check(doc)
    advice = objects.get("advice") or {}
    print(f"objview schema OK: {objects['totals']['objects']} objects, "
          f"{len(objects['top_by_compute'])} top rows, "
          f"{len(objects.get('blame') or {})} blame rows, "
          f"direction={advice.get('direction', 'n/a')}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
