"""Shared benchmark configuration.

Every benchmark runs a full simulation sweep exactly once
(``benchmark.pedantic(..., rounds=1)``): the measured quantity of
interest is *virtual* time inside the simulation — printed as
paper-style tables/figures — while pytest-benchmark records the
wall-clock cost of regenerating each artefact.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Execute *fn* exactly once under pytest-benchmark and return it."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""
    def _run(fn):
        return run_once(benchmark, fn)

    return _run
