"""Shared benchmark configuration.

Every benchmark runs a full simulation sweep exactly once
(``benchmark.pedantic(..., rounds=1)``): the measured quantity of
interest is *virtual* time inside the simulation — printed as
paper-style tables/figures — while pytest-benchmark records the
wall-clock cost of regenerating each artefact.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import BENCH_LOG_ENV


@pytest.fixture(autouse=True, scope="session")
def bench_trajectory_log():
    """Append perf-trajectory records for every benchmarked run.

    Points ``REPRO_BENCH_LOG`` at ``BENCH_critpath.json`` next to this
    file (the repo root's committed trajectory) so each harness run
    appends its config digest and headline numbers; ``repro bench-diff``
    then compares runs across commits.  An explicit environment setting
    wins, so CI can redirect the log.
    """
    if os.environ.get(BENCH_LOG_ENV):
        yield
        return
    path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_critpath.json")
    os.environ[BENCH_LOG_ENV] = path
    try:
        yield
    finally:
        os.environ.pop(BENCH_LOG_ENV, None)


def run_once(benchmark, fn):
    """Execute *fn* exactly once under pytest-benchmark and return it."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""
    def _run(fn):
        return run_once(benchmark, fn)

    return _run
