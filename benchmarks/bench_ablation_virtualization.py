"""Ablation: degree of virtualization at fixed PEs and latency.

Isolates the paper's central design choice — how many objects to cut
the problem into.  Sweeping 1..64 objects/PE at a latency that a single
object per PE cannot hide shows the characteristic U-shape: too few
objects expose the WAN latency (nothing to overlap) and suffer the
big-block cache penalty; too many pay per-object scheduling/messaging
overhead (the 1024-object rows of Table 1).
"""

from __future__ import annotations

from repro.bench.harness import stencil_point


def test_virtualization_sweep(benchmark):
    pes, latency = 16, 4.0
    objects = [16, 64, 256, 1024]

    def sweep():
        return {o: stencil_point("abl-virt", pes, o, latency)
                for o in objects}

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    times = {o: p.time_per_step_ms for o, p in points.items()}
    print()
    print(f"Ablation: virtualization at {pes} PEs, {latency} ms latency")
    for o in objects:
        print(f"  {o:5d} objects ({o // pes:3d}/PE): "
              f"{times[o]:8.3f} ms/step")

    # 1 object/PE cannot overlap the latency: clearly worst.
    assert times[16] > 1.3 * min(times.values())
    # The sweet spot is an intermediate degree, as in Table 1.
    best = min(times, key=times.get)
    assert best in (64, 256)
    # Max virtualization pays visible per-object overhead over the best.
    assert times[1024] > times[best]
