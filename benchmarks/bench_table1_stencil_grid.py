"""Table 1 reproduction: stencil under artificial latency vs "real" grid.

Runs the paper's 18 (PEs, objects) rows twice — once with the
deterministic 1.725 ms delay device, once on the TeraGrid WAN model
(jitter + contention) — prints the table next to the paper's published
numbers, and asserts:

* artificial predicts real (small relative gap per row, as in §5.2);
* the paper's row *orderings* are reproduced (trend agreement).
"""

from __future__ import annotations

from repro.bench.executor import default_jobs
from repro.bench.sweep import sweep_table1
from repro.bench.tables import PAPER_TABLE1, render_table1, trend_agreement


def test_table1(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_table1(jobs=default_jobs()), rounds=1, iterations=1)
    print()
    print(render_table1(points))

    art = {(p.pes, p.objects): p.time_per_step for p in points
           if p.environment == "artificial"}
    real = {(p.pes, p.objects): p.time_per_step for p in points
            if p.environment == "teragrid"}
    assert set(art) == set(real) == set(PAPER_TABLE1)

    # Artificial-latency results predict the real-grid results (the
    # paper's validation claim): within 25% per row.
    for key in art:
        gap = abs(real[key] - art[key]) / art[key]
        assert gap < 0.25, f"row {key}: artificial vs real gap {gap:.0%}"

    # Orderings match the paper's artificial column for most row pairs.
    score = trend_agreement(
        [p for p in points if p.environment == "artificial"],
        PAPER_TABLE1, lambda p: (p.pes, p.objects))
    print(f"trend agreement vs paper Table 1: {score:.0%}")
    assert score >= 0.75
