"""Ablation: prioritized delivery of wide-area messages (paper §6).

"One can envision a scheme in which messages that cross cluster
boundaries are tagged with a higher priority than local messages ...
allow[ing] these messages to be processed first, further reducing the
impact of wide-area latency."

Compares FIFO scheduling against priority queues with WAN expediting at
a configuration where PE queues are deep (many objects per PE) and the
latency sits right at the masking knee, where queueing order matters
most.
"""

from __future__ import annotations

from repro.apps.stencil import run_stencil
from repro.core.rts import RuntimeConfig
from repro.grid.presets import artificial_latency_env
from repro.units import ms

PES = 8
OBJECTS = 256           # 32 objects/PE: deep scheduler queues
MESH = (1024, 1024)
LATENCY = 2.0           # ms, near the knee for this configuration
STEPS = 10


def run(expedite: bool) -> float:
    config = (RuntimeConfig(prioritized_queues=True, expedite_wan=True)
              if expedite else RuntimeConfig())
    env = artificial_latency_env(PES, ms(LATENCY), config=config)
    return run_stencil(env, MESH, OBJECTS, steps=STEPS).time_per_step


def test_wan_priority(benchmark):
    results = benchmark.pedantic(
        lambda: {"fifo": run(False), "expedited": run(True)},
        rounds=1, iterations=1)
    print()
    print("Ablation: prioritized WAN messages "
          f"({PES} PEs, {OBJECTS} objects, {LATENCY} ms)")
    for name, tps in results.items():
        print(f"  {name:10s}: {tps * 1e3:8.3f} ms/step")
    delta = (results["fifo"] - results["expedited"]) / results["fifo"]
    print(f"  improvement: {delta:+.1%}")

    # The paper frames this as a refinement: expediting WAN traffic must
    # never hurt materially, and typically helps a little at the knee.
    assert results["expedited"] <= results["fifo"] * 1.05
