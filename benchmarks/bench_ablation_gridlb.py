"""Ablation: the paper's §6 Grid load balancer (GridCommLB).

Starts the stencil from a pathological placement — every seam block
(the WAN talkers) piled onto one PE per cluster — measures, asks
GridCommLB for a plan from the *measured* load database, re-runs with
the planned placement, and checks:

* per-step time improves substantially;
* the plan never moved a chare across the cluster boundary (the §6
  defining constraint).
"""

from __future__ import annotations

from repro.apps.stencil import StencilApp
from repro.core.ids import ChareID
from repro.core.loadbalance import GridCommLB
from repro.core.mapping import ExplicitMapping, grid2d_split_mapping
from repro.grid.presets import artificial_latency_env
from repro.units import ms

PES = 8
OBJECTS = 64
LATENCY = ms(2)
MESH = (1024, 1024)
STEPS = 10


def skewed_mapping(topology):
    """Paper-default split, then pile each cluster's seam column onto
    its first PE."""
    from repro.apps.stencil import BlockDecomposition
    decomp = BlockDecomposition.regular(MESH, OBJECTS)
    base = grid2d_split_mapping(decomp.brows, decomp.bcols,
                                topology).assign(decomp.indices(), topology)
    seam_left = decomp.bcols // 2 - 1
    seam_right = decomp.bcols // 2
    for (bi, bj), pe in list(base.items()):
        if bj == seam_left:
            base[(bi, bj)] = topology.cluster_pes(0)[0]
        elif bj == seam_right:
            base[(bi, bj)] = topology.cluster_pes(1)[0]
    return base


def run_with_mapping(mapping_table):
    env = artificial_latency_env(PES, LATENCY)
    app = StencilApp(env, mesh=MESH, objects=OBJECTS, payload="modeled",
                     mapping=ExplicitMapping(mapping_table))
    result = app.run(STEPS)
    return env, result


def test_gridlb_recovers_from_skew(benchmark):
    def experiment():
        env, skewed = run_with_mapping(skewed_mapping(
            artificial_latency_env(PES, LATENCY).topology))

        # Plan from the measured database of the skewed run.
        plan = GridCommLB().plan(env.runtime.lb_db, env.topology,
                                 env.runtime.current_mapping())
        # Express the plan as a block-index mapping for a fresh run.
        stencil_coll = max(cid.collection for cid in plan)
        balanced_table = {cid.index: pe for cid, pe in plan.items()
                          if cid.collection == stencil_coll}
        _env2, balanced = run_with_mapping(balanced_table)
        return env, skewed, balanced, plan, stencil_coll

    env, skewed, balanced, plan, coll = benchmark.pedantic(
        experiment, rounds=1, iterations=1)

    print()
    print("Ablation: GridCommLB vs pathological seam placement")
    print(f"  skewed   : {skewed.time_per_step_ms:8.3f} ms/step")
    print(f"  balanced : {balanced.time_per_step_ms:8.3f} ms/step")
    ratio = skewed.time_per_step / balanced.time_per_step
    print(f"  speedup  : {ratio:.2f}x")

    assert balanced.time_per_step < 0.75 * skewed.time_per_step

    # §6 invariant on the real measured plan: no cross-cluster moves.
    before = env.runtime.current_mapping()
    for cid, new_pe in plan.items():
        assert env.topology.cluster_of(new_pe) == \
            env.topology.cluster_of(before[cid])
