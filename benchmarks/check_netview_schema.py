#!/usr/bin/env python
"""CI gate: validate the structure of ``repro netview --json`` output.

Usage::

    python benchmarks/check_netview_schema.py netview.json

Checks that the ``net`` section — the network flight recorder's
machine-readable digest — carries every documented key with the right
type and that its internal invariants hold (busy fractions in [0, 1],
lane roll-ups consistent with the per-lane rows, top messages sorted by
descending wire time).  No third-party schema library: the checks are
hand-rolled so the gate runs on a bare numpy-only CI image.
"""

import json
import sys

LANE_KEYS = {
    "lane": str, "link": str, "crossings": int, "busy_s": float,
    "queue_s": float, "flight_s": float, "p95_queue_depth": int,
    "max_queue_depth": int, "wan": bool, "busy_fraction": float,
}
LINK_KEYS = {
    "lanes": int, "crossings": int, "busy_s": float, "queue_s": float,
    "wan": bool, "busy_fraction": float,
}
TOP_KEYS = {
    "seq": int, "src_pe": int, "dst_pe": int, "tag": str, "size": int,
    "wire_s": float, "sent_s": float, "arrival_s": float,
    "relay_hop": int, "arq_attempt": int, "wan": bool, "hops": int,
}


def _fail(msg):
    raise SystemExit(f"netview schema: {msg}")


def _check_mapping(name, row, spec):
    for key, typ in spec.items():
        if key not in row:
            _fail(f"{name} missing key {key!r}")
        value = row[key]
        if typ is float:
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                _fail(f"{name}[{key!r}] is {type(value).__name__}, "
                      f"want number")
        elif not isinstance(value, typ) or \
                (typ is int and isinstance(value, bool)):
            _fail(f"{name}[{key!r}] is {type(value).__name__}, "
                  f"want {typ.__name__}")


def check(doc):
    net = doc.get("net")
    if not isinstance(net, dict):
        _fail("document has no 'net' object")
    for key in ("makespan_s", "lanes", "links", "wan_crossings",
                "top_messages"):
        if key not in net:
            _fail(f"net missing key {key!r}")
    if not isinstance(net["lanes"], dict) or not net["lanes"]:
        _fail("net.lanes must be a non-empty object")
    for lane, row in net["lanes"].items():
        _check_mapping(f"lanes[{lane!r}]", row, LANE_KEYS)
        if not 0.0 <= row["busy_fraction"] <= 1.0:
            _fail(f"lanes[{lane!r}].busy_fraction out of [0, 1]: "
                  f"{row['busy_fraction']}")
        if row["p95_queue_depth"] > row["max_queue_depth"]:
            _fail(f"lanes[{lane!r}]: p95 queue depth exceeds max")
    for link, row in net["links"].items():
        _check_mapping(f"links[{link!r}]", row, LINK_KEYS)
    lane_crossings = {}
    for row in net["lanes"].values():
        lane_crossings[row["link"]] = \
            lane_crossings.get(row["link"], 0) + row["crossings"]
    for link, row in net["links"].items():
        if row["crossings"] != lane_crossings.get(link):
            _fail(f"links[{link!r}].crossings != sum of its lanes")
    wan_crossings = sum(row["crossings"] for row in net["lanes"].values()
                        if row["wan"])
    if net["wan_crossings"] != wan_crossings:
        _fail(f"net.wan_crossings {net['wan_crossings']} != "
              f"sum over WAN lanes {wan_crossings}")
    top = net["top_messages"]
    if not isinstance(top, list):
        _fail("net.top_messages must be a list")
    for i, row in enumerate(top):
        _check_mapping(f"top_messages[{i}]", row, TOP_KEYS)
        if row["wire_s"] < 0:
            _fail(f"top_messages[{i}].wire_s negative")
    for a, b in zip(top, top[1:]):
        if a["wire_s"] < b["wire_s"]:
            _fail("top_messages not sorted by descending wire time")
    return net


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        _fail("usage: check_netview_schema.py NETVIEW_JSON")
    with open(argv[0]) as fh:
        doc = json.load(fh)
    net = check(doc)
    print(f"netview schema OK: {len(net['lanes'])} lanes, "
          f"{len(net['links'])} links, {net['wan_crossings']} WAN "
          f"crossings, {len(net['top_messages'])} top messages")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
