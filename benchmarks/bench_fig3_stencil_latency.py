"""Figure 3 reproduction: five-point stencil vs artificial latency.

One benchmark per panel (2-64 PEs).  Each sweeps one-way latency
0-32 ms for the paper's per-panel virtualization degrees on the
2048x2048 mesh, prints the panel as an ASCII figure, and asserts the
paper's two qualitative claims:

1. the near-horizontal region is longer for higher virtualization;
2. past the knee, higher virtualization stays at-or-below lower
   virtualization (it masks more of the latency).
"""

from __future__ import annotations

import pytest

from repro.bench.executor import default_jobs
from repro.bench.figures import knee_latency_ms, render_fig3_panel
from repro.bench.records import group_series
from repro.bench.sweep import FIG3_PANEL_OBJECTS, sweep_fig3

PANELS = sorted(FIG3_PANEL_OBJECTS)

#: Worker-pool width (REPRO_BENCH_JOBS, default serial).  Results are
#: bit-identical for any value, so the assertions below are unaffected.
JOBS = default_jobs()


@pytest.mark.parametrize("pes", PANELS)
def test_fig3_panel(benchmark, pes):
    points = benchmark.pedantic(
        lambda: sweep_fig3(panels=[pes], jobs=JOBS), rounds=1, iterations=1)
    print()
    print(render_fig3_panel(points, pes))

    series = group_series([p for p in points if p.pes == pes])
    assert len(series) == 3

    # Claim 1: knees do not shrink as virtualization grows (2-PE panels
    # are flat everywhere, so knees tie at the sweep maximum there).
    knees = [knee_latency_ms(s, tolerance=1.5) for s in series]
    assert knees == sorted(knees), (
        f"{pes} PEs: flat regions {knees} not non-decreasing in "
        "virtualization")

    # Claim 2: at the largest swept latency, the highest virtualization
    # is no slower than the lowest (it masked at least as much).
    finals = [s.y[-1] for s in series]
    assert finals[-1] <= finals[0] * 1.05

    # Sanity: time/step grows (weakly) with latency for every series.
    for s in series:
        assert s.y[-1] >= s.y[0] * 0.95
