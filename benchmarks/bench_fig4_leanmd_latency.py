"""Figure 4 reproduction: LeanMD time/step vs latency, 2-64 PEs.

Sweeps one-way latency 1-256 ms for every PE count, prints the figure,
and asserts the paper's §5.3 observations:

* 2 PEs: latency makes "almost no impact" even at 256 ms;
* 32 PEs: no visible impact up to tens of ms (the >90 objects/PE give
  the scheduler ample subset-A work to overlap with);
* scaling: the leftmost points speed up with PE count.
"""

from __future__ import annotations

from repro.bench.executor import default_jobs
from repro.bench.figures import render_fig4
from repro.bench.records import group_series
from repro.bench.sweep import sweep_fig4


def test_fig4(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_fig4(jobs=default_jobs()), rounds=1, iterations=1)
    print()
    print(render_fig4(points))

    by_pes = {s.label: dict(zip(s.x, s.y))
              for s in group_series(points, by="pes", y="time_per_step")}

    two = by_pes["pes=2"]
    assert two[256.0] <= 1.20 * two[1.0], \
        "2 PEs: 256 ms latency should be nearly free next to a ~4 s step"

    thirty_two = by_pes["pes=32"]
    assert thirty_two[32.0] <= 1.25 * thirty_two[1.0], \
        "32 PEs: latency up to 32 ms should be largely masked"
    assert thirty_two[256.0] > 1.5 * thirty_two[1.0], \
        "32 PEs: 256 ms cannot be hidden behind a ~250 ms step"

    # Speedup at the low-latency end (paper: reasonable scaling to 32).
    base = [by_pes[f"pes={p}"][1.0] for p in (2, 4, 8, 16, 32)]
    assert all(b > a for a, b in zip(base[1:], base[:-1])), \
        f"no speedup in leftmost points: {base}"
