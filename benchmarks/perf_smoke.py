#!/usr/bin/env python
"""Perf smoke run: one small traced stencil, appended to the trajectory.

The CI perf-smoke job runs this script, then ``repro bench-diff``.  The
script executes the canonical small configuration (8 PEs, 64 objects,
512x512 mesh, 2 ms one-way WAN, 8 steps — virtual-time results are
bit-identical on any machine), appends a summary record (config digest,
median step time, masked fraction, critical-path compute share) to the
committed ``BENCH_critpath.json``, and optionally exports the Chrome
trace — causal flow events included — as a build artifact.  The diff
then compares the fresh record against the committed baseline and fails
the job on a >10 % step-time regression.

Seeding or refreshing the committed baseline is the same command:

    PYTHONPATH=src python benchmarks/perf_smoke.py
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps.stencil import StencilApp                  # noqa: E402
from repro.bench.harness import (                          # noqa: E402
    BENCH_LOG_ENV,
    maybe_log_trajectory,
)
from repro.bench.records import ExperimentPoint            # noqa: E402
from repro.bench.trajectory import DEFAULT_PATH            # noqa: E402
from repro.grid.presets import artificial_latency_env      # noqa: E402
from repro.obs.critpath import (                           # noqa: E402
    CausalGraph,
    per_step_attribution,
    summarize_attribution,
)
from repro.obs.export import (                             # noqa: E402
    chrome_trace,
    validate_chrome_trace,
)
from repro.units import ms                                 # noqa: E402

PES = 8
OBJECTS = 64
MESH = (512, 512)
LATENCY_MS = 2.0
STEPS = 8


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--log", default=DEFAULT_PATH,
                        help="trajectory file to append to")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also export the Chrome trace here")
    args = parser.parse_args(argv)

    env = artificial_latency_env(PES, ms(LATENCY_MS), trace=True)
    t0 = env.now
    app = StencilApp(env, mesh=MESH, objects=OBJECTS, payload="modeled")
    result = app.run(STEPS)

    graph = CausalGraph.from_tracer(env.tracer)
    boundaries = [t0] + [t0 + float(t) for t in result.step_times]
    steps = per_step_attribution(graph, boundaries, keep_segments=False)
    summary = summarize_attribution(steps, warmup=result.warmup)

    point = ExperimentPoint(
        experiment="perf-smoke", app="stencil", environment="artificial",
        pes=PES, objects=OBJECTS, latency_ms=LATENCY_MS,
        time_per_step=result.time_per_step, steps=STEPS,
        extra={"mesh": list(MESH)})
    os.environ[BENCH_LOG_ENV] = args.log
    maybe_log_trajectory(point, result, env,
                         compute_share=summary["compute_share"])

    print(f"perf-smoke: {result.time_per_step * 1e3:.3f} ms/step, "
          f"masked {env.aggregator.masked_latency_fraction:.3f}, "
          f"critpath compute share {summary['compute_share']:.3f} "
          f"-> appended to {args.log}")

    if args.out:
        doc = chrome_trace(env.tracer)
        validate_chrome_trace(doc)
        with open(args.out, "w") as fh:
            json.dump(doc, fh)
        flows = sum(1 for e in doc["traceEvents"] if e.get("ph") == "s")
        print(f"Chrome trace with {flows} causal flows -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
