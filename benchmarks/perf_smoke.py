#!/usr/bin/env python
"""Perf smoke run: one small traced stencil, appended to the trajectory.

The CI perf-smoke job runs this script, then ``repro bench-diff``.  The
script executes the canonical small configuration (8 PEs, 64 objects,
512x512 mesh, 2 ms one-way WAN, 8 steps — virtual-time results are
bit-identical on any machine), appends a summary record (config digest,
median step time, masked fraction, critical-path compute share) to the
committed ``BENCH_critpath.json``, and optionally exports the Chrome
trace — causal flow events included — as a build artifact.  The diff
then compares the fresh record against the committed baseline and fails
the job on a >10 % step-time regression.

The script also measures what observability itself costs: the same
configuration is wall-clock timed with observability off, with the
wall-clock self-profiler, with sampling-only telemetry, and with full
tracing (best-of over round-robined repetitions; virtual-time results
are identical in every mode, only wall time differs).  The measured
ratios land in the trajectory record's ``extra["obs_overhead"]`` and
feed the EXPERIMENTS.md overhead table; the sampler, the profiler and
the per-object fold each carry a hard < 5 % marginal-cost bar.  The appended record is a
schema-2 ledger record (critical-path decomposition + profiler phase
shares included), so two perf-smoke runs are ``repro compare``-able;
identical re-runs dedup unless ``--keep-dups``.
The FIFO fast path (``MessageQueue`` on a deque instead of a heap) is
part of what keeps the observability-off baseline honest: queue
push/pop is O(1) with no key-tuple allocation on every message.

Seeding or refreshing the committed baseline is the same command:

    PYTHONPATH=src python benchmarks/perf_smoke.py
"""

import argparse
import gc
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps.collectives import CollectiveBenchApp      # noqa: E402
from repro.apps.stencil import StencilApp                  # noqa: E402
from repro.core import Chare, entry                        # noqa: E402
from repro.bench.harness import (                          # noqa: E402
    BENCH_LOG_ENV,
    maybe_log_trajectory,
)
from repro.bench.records import ExperimentPoint            # noqa: E402
from repro.bench.trajectory import DEFAULT_PATH            # noqa: E402
from repro.grid.presets import (                           # noqa: E402
    artificial_latency_env,
    single_cluster_env,
)
from repro.obs.critpath import (                           # noqa: E402
    CausalGraph,
    per_step_attribution,
    summarize_attribution,
)
from repro.obs.export import (                             # noqa: E402
    chrome_trace,
    validate_chrome_trace,
)
from repro.units import ms                                 # noqa: E402

PES = 8
OBJECTS = 64
MESH = (512, 512)
LATENCY_MS = 2.0
STEPS = 8
#: Wall-clock repetitions per observability mode (best-of, to shave
#: scheduler noise off the comparison).  The canonical config runs
#: ~40-70 ms, so single runs are noise-dominated on busy machines; the
#: per-mode minimum needs enough draws to converge on the true floor
#: before few-percent ratios mean anything.
OBS_REPS = 13

#: Ping-pong messages for the engine-only events/sec mode.
PINGPONG_ROUNDS = 2000

#: Broadcast-heavy mode: hierarchical routing over paced WAN streams,
#: exercising the relay re-fan path (RelayMsg dispatch + StripedDevice)
#: that ordinary stencil smoke never touches.
BCAST_STEPS = 8
BCAST_PAYLOAD = 256 * 1024
BCAST_WAN_STREAMS = 4


def _timed_run(**env_kwargs):
    """One wall-clock-timed run of the canonical config.

    Garbage collection is deferred during the timed region: a cycle-GC
    pause landing inside one mode but not another would dominate the
    few-percent differences this comparison is after.
    """
    env = artificial_latency_env(PES, ms(LATENCY_MS), **env_kwargs)
    app = StencilApp(env, mesh=MESH, objects=OBJECTS, payload="modeled")
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        app.run(STEPS)
        dt = time.perf_counter() - t0
    finally:
        gc.enable()
    return dt, env


def measure_obs_overhead():
    """Wall-clock cost of each observability level on the same run.

    Four modes, cheapest first:

    * ``off`` — counters only (``stats=False``): no per-event sinks;
    * ``stats_noobj`` — streaming aggregation with the per-object fold
      switched off (``object_stats=False``): the stats baseline the
      object view's marginal cost is measured against;
    * ``stats`` — the library default: streaming aggregation of every
      trace event *including* the object fold, so
      ``objects_vs_stats`` is the object view's *marginal* cost (its
      own < 5 % acceptance bar);
    * ``profile`` — ``stats`` plus the wall-clock self-profiler, so
      ``profile_vs_stats`` is the profiler's *marginal* cost (its own
      < 5 % acceptance bar);
    * ``sampling`` — ``stats`` plus the telemetry sampler, so
      ``sampling_vs_stats`` is the sampler's *marginal* cost (the < 5 %
      acceptance bar);
    * ``full`` — everything, including the batch event tracer.
    """
    modes = {
        "off": dict(stats=False),
        "stats_noobj": dict(stats=True, object_stats=False),
        "stats": dict(stats=True),
        "profile": dict(stats=True, profile=True),
        "sampling": dict(stats=True, sampling=True),
        "full": dict(stats=True, sampling=True, trace=True),
    }
    # One untimed warmup pass first (allocator pools, code caches), then
    # round-robin the repetitions so slow machine drift (thermal, noisy
    # neighbours) hits every mode alike instead of biasing the ratios.
    for kwargs in modes.values():
        _timed_run(**kwargs)
    best = {name: None for name in modes}
    sampling_env = None

    def _round():
        nonlocal sampling_env
        for name, kwargs in modes.items():
            dt, env = _timed_run(**kwargs)
            if best[name] is None or dt < best[name]:
                best[name] = dt
            if name == "sampling":
                sampling_env = env

    for _ in range(OBS_REPS):
        _round()
    # The per-mode minimum is a floor estimator: extra draws can only
    # lower it, never raise it, so when a gated ratio sits above its
    # bar we buy more rounds to separate heavy-tailed scheduler noise
    # (one mode unlucky for a whole batch) from a true regression — a
    # real cost increase keeps failing no matter how many draws land.
    for _ in range(4 * OBS_REPS):
        if (best["profile"] / best["stats"] - 1.0 < 0.05
                and best["sampling"] / best["stats"] - 1.0 < 0.05
                and best["stats"] / best["stats_noobj"] - 1.0 < 0.05):
            break
        _round()
    off_s, stats_s = best["off"], best["stats"]
    noobj_s = best["stats_noobj"]
    sampling_s, full_s = best["sampling"], best["full"]
    profile_s = best["profile"]
    snap = sampling_env.metrics.snapshot()
    # Event count is a virtual-time invariant: identical in every mode
    # and on every machine for this config, so events/wall is a clean
    # cross-commit throughput metric.
    events = sampling_env.engine.events_processed
    return {
        "wall_off_s": off_s,
        "wall_stats_noobj_s": noobj_s,
        "wall_stats_s": stats_s,
        "wall_profile_s": profile_s,
        "wall_sampling_s": sampling_s,
        "wall_full_s": full_s,
        "stats_vs_off": stats_s / off_s - 1.0,
        "objects_vs_stats": stats_s / noobj_s - 1.0,
        "profile_vs_stats": profile_s / stats_s - 1.0,
        "sampling_vs_stats": sampling_s / stats_s - 1.0,
        "full_vs_off": full_s / off_s - 1.0,
        "overhead_fraction_sampling": snap["obs.overhead_fraction"],
        "events": events,
        "events_per_sec_off": events / off_s,
        "events_per_sec_stats": events / stats_s,
    }


class _Pinger(Chare):
    """Half of the engine-only ping-pong pair (events/sec mode)."""

    def __init__(self):
        super().__init__()
        self.peer = None
        self.count = 0

    @entry
    def hit(self, remaining):
        self.count += 1
        if remaining:
            self.peer.hit(remaining - 1)


def measure_events_per_second(rounds=PINGPONG_ROUNDS, reps=3):
    """Engine + scheduler throughput with no application logic.

    Two chares on one PE bat a message back and forth *rounds* times:
    every event is pure runtime overhead (queue, dispatch, entry call,
    finish), so this isolates scheduler/engine hot-path cost from the
    stencil's cost-model arithmetic.
    """
    best = None
    events = 0
    count = 0
    for _ in range(reps):
        env = single_cluster_env(1, stats=False)
        rts = env.runtime
        a = rts.create_chare(_Pinger, pe=0)
        b = rts.create_chare(_Pinger, pe=0)
        rts.chare_object(a.chare_id).peer = b
        rts.chare_object(b.chare_id).peer = a
        a.hit(rounds)
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            env.run()
            dt = time.perf_counter() - t0
        finally:
            gc.enable()
        events = env.engine.events_processed
        count = (rts.chare_object(a.chare_id).count
                 + rts.chare_object(b.chare_id).count)
        if best is None or dt < best:
            best = dt
    assert count == rounds + 1, f"ping-pong dropped messages: {count}"
    return {"rounds": rounds, "events": events, "wall_s": best,
            "events_per_sec": events / best}


def measure_allocations(n=4096):
    """Per-object heap blocks for the two hottest allocation sites.

    ``sys.getallocatedblocks`` deltas while keeping *n* objects alive:
    how many heap blocks one constructed ``Message`` / one posted engine
    event costs.  Machine-independent (it counts blocks, not bytes or
    nanoseconds), so the trajectory can compare across commits.
    """
    from repro.network.message import Message
    from repro.sim.engine import Engine

    def noop():
        return None

    gc.collect()
    gc.disable()
    try:
        keep = [None] * n
        base = sys.getallocatedblocks()
        for i in range(n):
            keep[i] = Message(src_pe=0, dst_pe=1, size_bytes=64)
        per_message = (sys.getallocatedblocks() - base) / n
        del keep
        engine = Engine()
        gc.collect()
        base = sys.getallocatedblocks()
        for i in range(n):
            engine.post(float(i), noop)
        per_event = (sys.getallocatedblocks() - base) / n
    finally:
        gc.enable()
    return {"blocks_per_message": per_message,
            "blocks_per_posted_event": per_event}


def run_broadcast_heavy(log_path, dedup=True):
    """Broadcast-heavy smoke: hierarchical multicast over striped WAN.

    The canonical collective-bench config (8 PEs, 64 workers, 2 ms
    one-way WAN, 256 KB broadcasts) with hierarchical routing and four
    paced WAN streams — the Figure-3c fast path.  Appends its own
    trajectory record (experiment ``perf-smoke-bcast``) so the bench
    diff tracks the relay/striping hot path separately from the stencil
    baseline.
    """
    env = artificial_latency_env(PES, ms(LATENCY_MS),
                                 routing="hierarchical",
                                 wan_streams=BCAST_WAN_STREAMS)
    app = CollectiveBenchApp(env, objects=OBJECTS,
                             payload_bytes=BCAST_PAYLOAD)
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        result = app.run(BCAST_STEPS)
        wall = time.perf_counter() - t0
    finally:
        gc.enable()
    wan_msgs = sum(d.messages_carried for d in env.chain.transports()
                   if "wan" in d.name)
    point = ExperimentPoint(
        experiment="perf-smoke-bcast", app="collectives",
        environment="artificial", pes=PES, objects=OBJECTS,
        latency_ms=LATENCY_MS, time_per_step=result.time_per_step,
        steps=BCAST_STEPS,
        extra={"payload_bytes": BCAST_PAYLOAD})
    os.environ[BENCH_LOG_ENV] = log_path
    maybe_log_trajectory(point, result, env, dedup=dedup,
                         extra={"wall_s": wall,
                                "wan_messages": wan_msgs,
                                "checksum": result.checksum,
                                "routing": "hierarchical",
                                "wan_streams": BCAST_WAN_STREAMS})
    print(f"perf-smoke-bcast: {result.time_per_step * 1e3:.3f} ms/step "
          f"(hier routing, {BCAST_WAN_STREAMS} WAN streams, "
          f"{wan_msgs} WAN messages, checksum {result.checksum:g}) "
          f"in {wall * 1e3:.1f} ms wall -> appended to {log_path}")
    return 0


#: Sharded-PDES smoke configuration: the ISSUE's scaling target shape —
#: 8 clusters x 8 PEs (64 PEs), 1024 objects, 2 ms one-way WAN.
PDES_CLUSTERS = (8,) * 8
PDES_OBJECTS = 1024
PDES_MESH = (2048, 2048)
PDES_STEPS = 8
PDES_SHARDS = 8


def _kernel_speedup():
    """Wall-clock ratio of the per-cell reference loop to the numpy
    block kernel on one real-payload run (virtual results bit-equal)."""
    from repro.grid.presets import single_cluster_env

    def timed(kernel):
        env = single_cluster_env(4, stats=False)
        app = StencilApp(env, mesh=(512, 512), objects=16, payload="real",
                         kernel=kernel)
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = app.run(2)
            return time.perf_counter() - t0, result.checksum
        finally:
            gc.enable()

    numpy_s, numpy_sum = timed("numpy")
    percell_s, percell_sum = timed("percell")
    assert numpy_sum == percell_sum, "kernel flavours diverged"
    return {"wall_numpy_s": numpy_s, "wall_percell_s": percell_s,
            "speedup": percell_s / numpy_s}


def run_pdes(log_path, dedup=True):
    """Sharded-PDES smoke: serial vs 8-shard events/s on the big config.

    Runs the 64-PE x 1024-object stencil serially (certification
    ordering + shard log, wall-timed), then under 8 multiprocessing
    shards, asserts the trajectories are bit-identical, and appends a
    trajectory record (experiment ``perf-smoke-pdes``).  The bench diff
    gates the *virtual* step time — bit-reproducible on any machine —
    while the honest wall-clock numbers (core count, events/s both
    modes, speedup) ride in ``extra`` for the scaling table.
    """
    from repro.grid.pdes import (
        StencilPdesJob,
        attach_shard_log,
        run_sharded,
    )
    from repro.sim.shardlog import log_digest, merge_logs
    from repro.units import ms as _ms

    job = StencilPdesJob(cluster_sizes=PDES_CLUSTERS, latency=_ms(LATENCY_MS),
                         mesh=PDES_MESH, objects=PDES_OBJECTS,
                         steps=PDES_STEPS, payload="modeled")
    env = job.environment()
    env.engine.enable_ordered_ties()
    log = attach_shard_log(env)
    job.launch(env)
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        env.run()
        serial_wall = time.perf_counter() - t0
    finally:
        gc.enable()
    result = job.collect(env)
    serial_events = env.engine.events_processed
    serial_digest = log_digest(merge_logs([log]))

    sharded = run_sharded(job, PDES_SHARDS, parallel=True)
    if sharded.digest != serial_digest:
        raise SystemExit("sharded trajectory diverged from serial "
                         f"({sharded.digest[:16]} != {serial_digest[:16]})")

    cores = os.cpu_count() or 1
    eps_serial = serial_events / serial_wall
    eps_sharded = sharded.events / sharded.wall_s
    speedup = eps_sharded / eps_serial
    kern = _kernel_speedup()

    point = ExperimentPoint(
        experiment="perf-smoke-pdes", app="stencil",
        environment="artificial", pes=sum(PDES_CLUSTERS),
        objects=PDES_OBJECTS, latency_ms=LATENCY_MS,
        time_per_step=result.time_per_step, steps=PDES_STEPS,
        extra={"mesh": list(PDES_MESH)})
    os.environ[BENCH_LOG_ENV] = log_path
    maybe_log_trajectory(point, result, env, dedup=dedup,
                         extra={"pdes": {
                             "cores": cores,
                             "shards": sharded.shards,
                             "rounds": sharded.rounds,
                             "events": serial_events,
                             "trajectory_digest": serial_digest,
                             "wall_serial_s": serial_wall,
                             "wall_sharded_s": sharded.wall_s,
                             "events_per_sec_serial": eps_serial,
                             "events_per_sec_sharded": eps_sharded,
                             "speedup": speedup,
                             "kernel": kern,
                         }})
    print(f"perf-smoke-pdes: {result.time_per_step * 1e3:.3f} ms/step "
          f"(virtual), {serial_events} events; serial "
          f"{eps_serial:.0f} ev/s, {sharded.shards} shards "
          f"{eps_sharded:.0f} ev/s ({speedup:.2f}x on {cores} cores, "
          f"{sharded.rounds} sync rounds); kernels numpy vs percell "
          f"{kern['speedup']:.1f}x -> appended to {log_path}")
    print(f"trajectory digest {serial_digest[:16]} identical "
          f"serial/sharded")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--log", default=DEFAULT_PATH,
                        help="trajectory file to append to")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also export the Chrome trace here")
    parser.add_argument("--events-per-second", action="store_true",
                        help="run only the engine-only ping-pong "
                             "throughput mode and print events/sec")
    parser.add_argument("--broadcast-heavy", action="store_true",
                        help="run only the broadcast-heavy collective "
                             "smoke (hierarchical routing + striped WAN)")
    parser.add_argument("--pdes", action="store_true",
                        help="run only the sharded-PDES smoke: serial vs "
                             "8-shard events/s on the 64-PE x 1024-object "
                             "stencil, with bit-identity certification")
    parser.add_argument("--keep-dups", action="store_true",
                        help="append the trajectory record even when it "
                             "is identical to the file's last one "
                             "(default: identical re-runs dedup)")
    args = parser.parse_args(argv)

    if args.broadcast_heavy:
        return run_broadcast_heavy(args.log, dedup=not args.keep_dups)

    if args.pdes:
        return run_pdes(args.log, dedup=not args.keep_dups)

    if args.events_per_second:
        eps = measure_events_per_second()
        allocs = measure_allocations()
        print(f"ping-pong: {eps['events']} events in "
              f"{eps['wall_s'] * 1e3:.1f} ms -> "
              f"{eps['events_per_sec']:.0f} events/sec "
              f"(best of 3, {eps['rounds']} rounds, 2 chares on 1 PE)")
        print(f"allocations: {allocs['blocks_per_message']:.2f} "
              f"blocks/Message, {allocs['blocks_per_posted_event']:.2f} "
              f"blocks/posted event")
        return 0

    # The canonical run carries the self-profiler: its phase shares land
    # in the trajectory record's ``profile`` (virtual time is
    # bit-identical with it on; only wall time differs, and the marginal
    # cost is measured and gated below).
    env = artificial_latency_env(PES, ms(LATENCY_MS), trace=True,
                                 profile=True)
    t0 = env.now
    app = StencilApp(env, mesh=MESH, objects=OBJECTS, payload="modeled")
    result = app.run(STEPS)

    graph = CausalGraph.from_tracer(env.tracer)
    boundaries = [t0] + [t0 + float(t) for t in result.step_times]
    steps = per_step_attribution(graph, boundaries, keep_segments=False)
    summary = summarize_attribution(steps, warmup=result.warmup)

    obs = measure_obs_overhead()
    eps = measure_events_per_second()
    allocs = measure_allocations()

    point = ExperimentPoint(
        experiment="perf-smoke", app="stencil", environment="artificial",
        pes=PES, objects=OBJECTS, latency_ms=LATENCY_MS,
        time_per_step=result.time_per_step, steps=STEPS,
        extra={"mesh": list(MESH)})
    os.environ[BENCH_LOG_ENV] = args.log
    maybe_log_trajectory(point, result, env,
                         compute_share=summary["compute_share"],
                         steps_attribution=steps,
                         dedup=not args.keep_dups,
                         extra={"obs_overhead": obs,
                                "events_per_sec": eps,
                                "allocations": allocs})

    print(f"perf-smoke: {result.time_per_step * 1e3:.3f} ms/step, "
          f"masked {env.aggregator.masked_latency_fraction:.3f}, "
          f"critpath compute share {summary['compute_share']:.3f} "
          f"-> appended to {args.log}")
    print(f"obs overhead (wall, best of {OBS_REPS}): "
          f"off {obs['wall_off_s'] * 1e3:.1f} ms, "
          f"stats {obs['wall_stats_s'] * 1e3:.1f} ms "
          f"({obs['stats_vs_off']:+.1%} vs off, object fold "
          f"{obs['objects_vs_stats']:+.1%} of that), "
          f"profiler {obs['wall_profile_s'] * 1e3:.1f} ms "
          f"({obs['profile_vs_stats']:+.1%} vs stats), "
          f"sampling {obs['wall_sampling_s'] * 1e3:.1f} ms "
          f"({obs['sampling_vs_stats']:+.1%} vs stats), "
          f"full tracing {obs['wall_full_s'] * 1e3:.1f} ms "
          f"({obs['full_vs_off']:+.1%} vs off); "
          f"self-reported obs.overhead_fraction "
          f"{obs['overhead_fraction_sampling']:.4f}")
    # Acceptance bars: the flight recorder + telemetry sampler at
    # ``sampling`` detail must stay under 5 % marginal wall-clock cost
    # on top of the streaming-stats baseline — and so must the wall-clock
    # self-profiler and the always-on per-object fold.
    if obs["sampling_vs_stats"] >= 0.05:
        raise SystemExit(
            f"observability overhead regression: sampling costs "
            f"{obs['sampling_vs_stats']:+.1%} over stats (bar: < +5.0%)")
    if obs["profile_vs_stats"] >= 0.05:
        raise SystemExit(
            f"observability overhead regression: the self-profiler costs "
            f"{obs['profile_vs_stats']:+.1%} over stats (bar: < +5.0%)")
    if obs["objects_vs_stats"] >= 0.05:
        raise SystemExit(
            f"observability overhead regression: the per-object fold "
            f"costs {obs['objects_vs_stats']:+.1%} over stats-only "
            f"aggregation (bar: < +5.0%)")
    print(f"throughput: {obs['events']} events -> "
          f"{obs['events_per_sec_off']:.0f} ev/s (obs off), "
          f"{obs['events_per_sec_stats']:.0f} ev/s (stats); "
          f"ping-pong {eps['events_per_sec']:.0f} ev/s; "
          f"{allocs['blocks_per_message']:.2f} blocks/Message, "
          f"{allocs['blocks_per_posted_event']:.2f} blocks/event")

    if args.out:
        doc = chrome_trace(env.tracer)
        validate_chrome_trace(doc)
        with open(args.out, "w") as fh:
            json.dump(doc, fh)
        flows = sum(1 for e in doc["traceEvents"] if e.get("ph") == "s")
        print(f"Chrome trace with {flows} causal flows -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
