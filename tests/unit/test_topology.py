"""Unit tests for the grid/cluster/node/PE topology model."""

import pytest

from repro.errors import TopologyError
from repro.network.topology import GridTopology


def test_single_cluster_counts():
    topo = GridTopology.single_cluster(8)
    assert topo.num_pes == 8
    assert topo.num_clusters == 1
    assert list(topo.pes()) == list(range(8))


def test_two_cluster_even_split():
    topo = GridTopology.two_cluster(16)
    assert topo.num_clusters == 2
    assert topo.cluster_pes(0) == tuple(range(8))
    assert topo.cluster_pes(1) == tuple(range(8, 16))


def test_two_cluster_rejects_odd_total():
    with pytest.raises(TopologyError):
        GridTopology.two_cluster(7)


def test_two_cluster_rejects_zero():
    with pytest.raises(TopologyError):
        GridTopology.two_cluster(0)


def test_cluster_pes_precomputed():
    topo = GridTopology([5, 3], pes_per_node=2)
    for cluster in topo.clusters:
        flattened = tuple(pe for node in cluster.nodes for pe in node.pes)
        assert cluster.pes == flattened
        assert topo.cluster_pes(cluster.index) == flattened
    assert topo.cluster_pes(0) == (0, 1, 2, 3, 4)
    assert topo.cluster_pes(1) == (5, 6, 7)


def test_cluster_of():
    topo = GridTopology.two_cluster(8)
    assert topo.cluster_of(0) == 0
    assert topo.cluster_of(3) == 0
    assert topo.cluster_of(4) == 1
    assert topo.cluster_of(7) == 1


def test_cluster_of_unknown_pe():
    topo = GridTopology.two_cluster(4)
    with pytest.raises(TopologyError):
        topo.cluster_of(99)


def test_dual_cpu_nodes():
    topo = GridTopology.two_cluster(8, pes_per_node=2)
    assert topo.same_node(0, 1)
    assert not topo.same_node(1, 2)
    assert topo.node_of(0) == topo.node_of(1)
    assert topo.node_of(2) != topo.node_of(1)


def test_uneven_last_node():
    topo = GridTopology([3], pes_per_node=2)
    # Nodes: (0,1) and (2,)
    assert topo.same_node(0, 1)
    assert not topo.same_node(1, 2)


def test_same_cluster_and_crosses_wan():
    topo = GridTopology.two_cluster(4)
    assert topo.same_cluster(0, 1)
    assert not topo.same_cluster(1, 2)
    assert topo.crosses_wan(0, 3)
    assert not topo.crosses_wan(2, 3)


def test_single_pe_per_node():
    topo = GridTopology.two_cluster(4, pes_per_node=1)
    assert not topo.same_node(0, 1)


def test_cluster_names():
    topo = GridTopology([2, 2], cluster_names=["ncsa", "anl"])
    assert topo.clusters[0].name == "ncsa"
    assert topo.clusters[1].name == "anl"
    assert "ncsa:2" in topo.describe()


def test_cluster_names_length_mismatch():
    with pytest.raises(TopologyError):
        GridTopology([2, 2], cluster_names=["only-one"])


def test_empty_topology_rejected():
    with pytest.raises(TopologyError):
        GridTopology([])


def test_negative_cluster_size_rejected():
    with pytest.raises(TopologyError):
        GridTopology([4, -1])


def test_bad_pes_per_node_rejected():
    with pytest.raises(TopologyError):
        GridTopology([4], pes_per_node=0)


def test_asymmetric_clusters():
    topo = GridTopology([2, 6])
    assert topo.cluster_pes(0) == (0, 1)
    assert topo.cluster_pes(1) == (2, 3, 4, 5, 6, 7)


def test_three_clusters():
    topo = GridTopology([2, 2, 2])
    assert topo.num_clusters == 3
    assert topo.cluster_of(5) == 2
    assert topo.crosses_wan(0, 5)


def test_unknown_cluster_index():
    with pytest.raises(TopologyError):
        GridTopology([4]).cluster_pes(3)


def test_nodes_have_global_dense_ids():
    topo = GridTopology.two_cluster(8, pes_per_node=2)
    node_ids = {topo.node_of(pe) for pe in topo.pes()}
    assert node_ids == {0, 1, 2, 3}
