"""Unit tests for ids, entry metadata, payload sizing, queues, PEs."""

import numpy as np
import pytest

from repro.core.chare import Chare
from repro.core.ids import ChareID, EntryRef, normalize_index
from repro.core.method import (
    ENVELOPE_BYTES,
    entry,
    entry_info,
    invocation_bytes,
    is_entry,
    payload_bytes,
)
from repro.core.pe import PeState
from repro.core.queue import MessageQueue
from repro.network.message import Message


# -- ids -------------------------------------------------------------------

def test_normalize_index_scalar():
    assert normalize_index(3) == (3,)


def test_normalize_index_tuple():
    assert normalize_index((1, 2)) == (1, 2)


def test_normalize_index_numpy_ints():
    assert normalize_index((np.int64(1), np.int64(2))) == (1, 2)
    assert all(isinstance(i, int) for i in normalize_index((np.int64(1),)))


def test_chare_id_ordering_and_str():
    a = ChareID(0, (1, 2))
    b = ChareID(0, (1, 3))
    assert a < b
    assert str(a) == "c0[1,2]"
    assert str(ChareID(5, ())) == "c5"


def test_entry_ref_str():
    assert str(EntryRef(ChareID(1, (0,)), "go")) == "c1[0].go"


# -- entry metadata -------------------------------------------------------------

def test_entry_bare_decorator():
    class C(Chare):
        @entry
        def handler(self):
            pass

    info = entry_info(C.handler)
    assert info is not None and info.name == "handler"
    assert is_entry(C.handler)


def test_entry_with_options():
    class C(Chare):
        @entry(cost=lambda self, n: n * 1e-6, priority=-5)
        def handler(self, n):
            pass

    info = entry_info(C.handler)
    assert info.priority == -5
    assert info.cost(None, 3) == pytest.approx(3e-6)


def test_non_entry_method_has_no_info():
    class C(Chare):
        def plain(self):
            pass

    assert entry_info(C.plain) is None
    assert not is_entry(C.plain)


# -- payload sizing ------------------------------------------------------------------

def test_payload_bytes_numpy():
    arr = np.zeros(100, dtype=np.float64)
    assert payload_bytes(arr) == 800


def test_payload_bytes_scalars():
    assert payload_bytes(1.5) == 8
    assert payload_bytes(7) == 8
    assert payload_bytes(True) == 1
    assert payload_bytes(None) == 0


def test_payload_bytes_containers():
    assert payload_bytes([1.0, 2.0]) == 8 + 16
    assert payload_bytes((np.zeros(2),)) == 8 + 16
    assert payload_bytes({"k": 1.0}) == 8 + 1 + 8


def test_payload_bytes_strings():
    assert payload_bytes("abc") == 3
    assert payload_bytes(b"abcd") == 4


def test_payload_bytes_unknown_object():
    class Blob:
        pass

    assert payload_bytes(Blob()) == 64


def test_payload_bytes_object_with_nbytes():
    class Blob:
        nbytes = 12345

    assert payload_bytes(Blob()) == 12345


def test_invocation_bytes_includes_envelope():
    assert invocation_bytes((), {}) == ENVELOPE_BYTES
    assert invocation_bytes((np.zeros(10),), {}) == ENVELOPE_BYTES + 80


# -- message queue --------------------------------------------------------------------

def _msg(priority=0, tag=""):
    return Message(src_pe=0, dst_pe=0, size_bytes=0, priority=priority,
                   tag=tag)


def test_fifo_queue_ignores_priority():
    q = MessageQueue(prioritized=False)
    q.push(_msg(priority=5, tag="first"))
    q.push(_msg(priority=-5, tag="second"))
    assert q.pop().tag == "first"
    assert q.pop().tag == "second"


def test_priority_queue_orders_by_priority():
    q = MessageQueue(prioritized=True)
    q.push(_msg(priority=5, tag="low"))
    q.push(_msg(priority=-5, tag="high"))
    q.push(_msg(priority=0, tag="mid"))
    assert [q.pop().tag for _ in range(3)] == ["high", "mid", "low"]


def test_priority_queue_fifo_within_equal_priority():
    q = MessageQueue(prioritized=True)
    for i in range(5):
        q.push(_msg(priority=1, tag=str(i)))
    assert [q.pop().tag for _ in range(5)] == list("01234")


def test_queue_len_bool_peek():
    q = MessageQueue()
    assert not q and len(q) == 0
    assert q.peek() is None
    q.push(_msg(tag="x"))
    assert q and len(q) == 1
    assert q.peek().tag == "x"
    assert len(q) == 1  # peek does not consume


def test_queue_pop_empty_raises():
    with pytest.raises(IndexError):
        MessageQueue().pop()


def test_queue_drain():
    q = MessageQueue()
    for i in range(3):
        q.push(_msg(tag=str(i)))
    assert [m.tag for m in q.drain()] == ["0", "1", "2"]
    assert len(q) == 0


# -- PE state --------------------------------------------------------------------------

def test_pe_state_starts_idle():
    ps = PeState(3)
    assert ps.idle and not ps.busy
    assert ps.pe == 3


def test_pe_stats_utilization():
    ps = PeState(0)
    ps.stats.busy_time = 2.0
    assert ps.stats.utilization(4.0) == pytest.approx(0.5)
    assert ps.stats.utilization(0.0) == 0.0


# -- message envelope -------------------------------------------------------------------

def test_fabric_rejects_negative_message_size():
    # Size validation moved from the per-message constructor to the
    # fabric boundary: construction is hot-path, sending is the choke
    # point every message passes exactly once.
    from repro.grid.presets import single_cluster_env

    env = single_cluster_env(2)
    with pytest.raises(ValueError):
        env.fabric.send(Message(src_pe=0, dst_pe=1, size_bytes=-1),
                        lambda m: None)


def test_message_seq_counter_resets_per_runtime():
    from repro.grid.presets import single_cluster_env

    for _ in range(2):
        single_cluster_env(2)  # Runtime construction resets the counter
        assert Message(src_pe=0, dst_pe=0, size_bytes=0).seq == 0


def test_message_with_size_preserves_identity():
    m = Message(src_pe=0, dst_pe=1, size_bytes=100, tag="t", priority=2)
    m.crossed_wan = True
    clone = m.with_size(50)
    assert clone.size_bytes == 50
    assert (clone.src_pe, clone.dst_pe, clone.tag, clone.priority) == \
        (0, 1, "t", 2)
    assert clone.seq == m.seq
    assert clone.crossed_wan


def test_message_seq_monotonic():
    a = Message(src_pe=0, dst_pe=0, size_bytes=0)
    b = Message(src_pe=0, dst_pe=0, size_bytes=0)
    assert b.seq > a.seq


def test_fifo_queue_uses_deque_fast_path():
    q = MessageQueue(prioritized=False)
    q.push(Message(src_pe=0, dst_pe=0, size_bytes=0, priority=5))
    assert len(q._fifo) == 1 and not q._heap
    hq = MessageQueue(prioritized=True)
    hq.push(Message(src_pe=0, dst_pe=0, size_bytes=0, priority=5))
    assert len(hq._heap) == 1 and not hq._fifo


def test_queue_high_water_tracks_peak_depth():
    q = MessageQueue()
    assert q.high_water == 0
    for _ in range(3):
        q.push(Message(src_pe=0, dst_pe=0, size_bytes=0))
    q.pop()
    q.pop()
    assert q.high_water == 3
    q.push(Message(src_pe=0, dst_pe=0, size_bytes=0))
    assert q.high_water == 3  # peak, not current depth
    for _ in range(4):
        q.push(Message(src_pe=0, dst_pe=0, size_bytes=0))
    assert q.high_water == 6


def test_pe_state_queue_metrics():
    ps = PeState(3)
    ps.queue.push(Message(src_pe=0, dst_pe=3, size_bytes=0))
    ps.queue.push(Message(src_pe=1, dst_pe=3, size_bytes=0))
    ps.queue.pop()
    metrics = ps.queue_metrics()
    assert metrics["pe.3.queue_depth"] == 1
    assert metrics["pe.3.queue_hwm"] == 2
