"""Unit tests for Chrome trace-event export and the JSONL event log."""

import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    export_chrome_trace,
    validate_chrome_trace,
    write_event_log,
)
from repro.sim.trace import Tracer


def sample_tracer():
    """A tiny but complete run: execs, a WAN flight, a drop, a retransmit."""
    tr = Tracer()
    tr.begin_execute(0, 0.001, "Block", "ghost")
    tr.end_execute(0, 0.003)
    tr.begin_execute(1, 0.002, "Block", "start")
    tr.end_execute(1, 0.004)
    tr.message_sent(0.001, 0, 1, 256, "ghost", True, seq=1)
    tr.message_delivered(0.009, 0, 1, 256, "ghost", True, seq=1)
    tr.message_sent(0.002, 1, 0, 64, "lost", True, seq=2)
    tr.message_dropped(0.002, 1, 0, 64, "lost", True, seq=2)
    tr.message_sent(0.005, 1, 0, 64, "lost", True, seq=2)   # retransmission
    tr.message_delivered(0.013, 1, 0, 64, "lost", True, seq=2)
    return tr


# -- Chrome trace ------------------------------------------------------------

def test_chrome_trace_top_level_shape():
    doc = chrome_trace(sample_tracer())
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    assert doc["displayTimeUnit"] == "ms"
    validate_chrome_trace(doc)           # our own validator accepts it
    json.dumps(doc)                      # and it is valid JSON


def test_chrome_trace_exec_slices():
    events = chrome_trace_events(sample_tracer())
    execs = [e for e in events if e.get("cat") == "exec"]
    assert len(execs) == 2
    slice0 = next(e for e in execs if e["tid"] == 0)
    assert slice0["ph"] == "X"
    assert slice0["name"] == "Block.ghost"
    assert slice0["ts"] == pytest.approx(1000.0)    # 0.001 s in us
    assert slice0["dur"] == pytest.approx(2000.0)


def test_chrome_trace_wan_async_pairs():
    events = chrome_trace_events(sample_tracer())
    wan = [e for e in events if e.get("cat") == "wan"]
    begins = [e for e in wan if e["ph"] == "b"]
    ends = [e for e in wan if e["ph"] == "e"]
    assert len(begins) == len(ends) == 2
    assert {e["id"] for e in begins} == {e["id"] for e in ends}
    # The retransmitted message's window runs first send -> delivery.
    retrans = next(e for e in begins if e["args"]["src_pe"] == 1)
    assert retrans["ts"] == pytest.approx(2000.0)


def test_chrome_trace_fault_instants():
    events = chrome_trace_events(sample_tracer())
    faults = [e for e in events if e.get("cat") == "fault"]
    names = sorted(e["name"] for e in faults)
    assert names == ["drop", "retransmit"]
    assert all(e["ph"] == "i" and e["s"] == "t" for e in faults)


def test_chrome_trace_metadata_names_every_pe():
    events = chrome_trace_events(sample_tracer())
    threads = [e for e in events
               if e["ph"] == "M" and e["name"] == "thread_name"]
    assert {e["tid"] for e in threads} == {0, 1}


def test_export_writes_file_and_filelike(tmp_path):
    tr = sample_tracer()
    path = tmp_path / "run.trace.json"
    doc = export_chrome_trace(tr, str(path))
    assert json.loads(path.read_text()) == doc
    buf = io.StringIO()
    export_chrome_trace(tr, buf)
    assert json.loads(buf.getvalue()) == doc


# -- validator ---------------------------------------------------------------

def _valid_event(**over):
    ev = {"ph": "X", "name": "n", "pid": 0, "tid": 0, "ts": 1.0, "dur": 1.0}
    ev.update(over)
    return ev


@pytest.mark.parametrize("doc", [
    [],                                             # not an object
    {"events": []},                                 # wrong key
    {"traceEvents": {}},                            # not a list
])
def test_validator_rejects_bad_top_level(doc):
    with pytest.raises(ConfigurationError):
        validate_chrome_trace(doc)


@pytest.mark.parametrize("ev", [
    _valid_event(ph="Q"),                           # unknown phase
    {"ph": "X", "pid": 0, "tid": 0, "ts": 1.0},     # missing name
    _valid_event(name=7),                           # name not a string
    _valid_event(tid="0"),                          # tid not an int
    _valid_event(ts=None),                          # non-numeric ts
    _valid_event(ts=-1.0),                          # negative ts
    {"ph": "X", "name": "n", "pid": 0, "tid": 0, "ts": 1.0},  # X w/o dur
    _valid_event(dur=-2.0),                         # negative dur
    {"ph": "b", "name": "n", "pid": 0, "tid": 0, "ts": 1.0},  # async w/o id
    {"ph": "e", "name": "n", "pid": 0, "tid": 0, "ts": 1.0,
     "id": "w"},                                    # end without begin
    {"ph": "i", "name": "n", "pid": 0, "tid": 0, "ts": 1.0,
     "s": "x"},                                     # bad instant scope
])
def test_validator_rejects_bad_events(ev):
    with pytest.raises(ConfigurationError):
        validate_chrome_trace({"traceEvents": [ev]})


def test_validator_rejects_dangling_async_begin():
    begin = {"ph": "b", "cat": "wan", "name": "n", "pid": 0, "tid": 0,
             "ts": 1.0, "id": "w-0"}
    with pytest.raises(ConfigurationError):
        validate_chrome_trace({"traceEvents": [begin]})


def test_validator_accepts_empty_trace():
    validate_chrome_trace({"traceEvents": []})


# -- JSONL event log ---------------------------------------------------------

def test_event_log_round_trip(tmp_path):
    tr = sample_tracer()
    path = tmp_path / "run.events.jsonl"
    count = write_event_log(tr, str(path))
    lines = path.read_text().splitlines()
    assert len(lines) == count == len(tr.intervals) + len(tr.messages)
    records = [json.loads(line) for line in lines]
    execs = [r for r in records if r["type"] == "exec"]
    msgs = [r for r in records if r["type"] == "message"]
    assert len(execs) == 2
    assert execs[0] == {"type": "exec", "pe": 0, "start_s": 0.001,
                        "end_s": 0.003, "chare": "Block", "entry": "ghost",
                        "sid": None, "parent": None, "trigger": None,
                        "obj": None}
    kinds = sorted(r["kind"] for r in msgs)
    assert kinds == ["deliver", "deliver", "drop", "send", "send", "send"]


def test_event_log_empty_tracer(tmp_path):
    path = tmp_path / "empty.jsonl"
    assert write_event_log(Tracer(), str(path)) == 0
    assert path.read_text() == ""
