"""Unit tests for reducers and the grid-aware reduction tree."""

import numpy as np
import pytest

from repro.core.ids import ChareID
from repro.core.reduction import (
    build_tree,
    combine,
    finalize,
    wrap_contribution,
)
from repro.errors import ReductionError
from repro.network.topology import GridTopology


# -- reducers -------------------------------------------------------------

def test_combine_sum_scalars():
    assert combine("sum", None, 3) == 3
    assert combine("sum", 3, 4) == 7


def test_combine_sum_arrays():
    acc = combine("sum", None, np.array([1.0, 2.0]))
    acc = combine("sum", acc, np.array([10.0, 20.0]))
    assert np.array_equal(acc, [11.0, 22.0])


def test_combine_max_min():
    assert combine("max", 3, 7) == 7
    assert combine("min", 3, 7) == 3
    assert np.array_equal(combine("max", np.array([1, 9]), np.array([5, 2])),
                          [5, 9])


def test_combine_concat():
    acc = combine("concat", None, [((0,), "a")])
    acc = combine("concat", acc, [((1,), "b")])
    assert acc == [((0,), "a"), ((1,), "b")]


def test_combine_nop():
    assert combine("nop", None, 42) is None


def test_combine_unknown_reducer():
    with pytest.raises(ReductionError):
        combine("median", None, 1)


def test_wrap_contribution_concat_tags_index():
    wrapped = wrap_contribution("concat", ChareID(0, (2, 1)), "v")
    assert wrapped == [((2, 1), "v")]


def test_wrap_contribution_other_ops_passthrough():
    assert wrap_contribution("sum", ChareID(0, (0,)), 5) == 5


def test_finalize_concat_sorts_by_index():
    out = finalize("concat", [((3,), "c"), ((1,), "a"), ((2,), "b")])
    assert out == [((1,), "a"), ((2,), "b"), ((3,), "c")]


def test_finalize_sum_passthrough():
    assert finalize("sum", 10) == 10


# -- tree construction ---------------------------------------------------------

def check_tree_wellformed(tree, hosting):
    # Every hosting PE appears; exactly one root; parent links acyclic.
    assert tree.parent[tree.root] is None
    seen = set()
    for pe in hosting:
        cur = pe
        hops = 0
        while tree.parent.get(cur) is not None:
            cur = tree.parent[cur]
            hops += 1
            assert hops <= len(hosting), "cycle in reduction tree"
        assert cur == tree.root
        seen.add(pe)
    # children lists match parent links
    for pe, kids in tree.children.items():
        for k in kids:
            assert tree.parent[k] == pe


def test_tree_single_pe():
    topo = GridTopology.single_cluster(4)
    tree = build_tree([2], topo)
    assert tree.root == 2
    assert tree.expected_children(2) == 0


def test_tree_single_cluster():
    topo = GridTopology.single_cluster(8)
    hosting = list(range(8))
    tree = build_tree(hosting, topo)
    check_tree_wellformed(tree, hosting)
    assert tree.root == 0


def test_tree_crosses_wan_once_per_remote_cluster():
    topo = GridTopology.two_cluster(8)
    hosting = list(range(8))
    tree = build_tree(hosting, topo)
    check_tree_wellformed(tree, hosting)
    wan_edges = [(pe, par) for pe, par in tree.parent.items()
                 if par is not None and not topo.same_cluster(pe, par)]
    assert len(wan_edges) == 1      # exactly one WAN hop for two clusters
    assert wan_edges[0] == (4, 0)   # cluster-1 root -> global root


def test_tree_three_clusters_two_wan_edges():
    topo = GridTopology([2, 2, 2])
    tree = build_tree(list(range(6)), topo)
    wan_edges = [(pe, par) for pe, par in tree.parent.items()
                 if par is not None and not topo.same_cluster(pe, par)]
    assert len(wan_edges) == 2


def test_tree_sparse_hosting():
    topo = GridTopology.two_cluster(8)
    hosting = [1, 3, 6]
    tree = build_tree(hosting, topo)
    check_tree_wellformed(tree, hosting)
    assert tree.root == 1
    assert tree.parent[6] == 1  # cluster-1's only PE parents to global root


def test_tree_arity_respected():
    topo = GridTopology.single_cluster(16)
    tree = build_tree(list(range(16)), topo, arity=2)
    for pe, kids in tree.children.items():
        assert len(kids) <= 3  # arity 2 + possibly one cluster-root link


def test_tree_empty_rejected():
    with pytest.raises(ReductionError):
        build_tree([], GridTopology.single_cluster(2))


def wan_edges_of(tree, topo):
    return [(pe, par) for pe, par in tree.parent.items()
            if par is not None and not topo.same_cluster(pe, par)]


def test_node_aware_tree_prefers_shmem_edges():
    topo = GridTopology.two_cluster(8, pes_per_node=2)
    hosting = list(range(8))
    tree = build_tree(hosting, topo, node_aware=True)
    check_tree_wellformed(tree, hosting)
    # Every node's non-root PE parents to its node sibling (shmem edge).
    for pe in (1, 3, 5, 7):
        assert tree.parent[pe] == pe - 1
        assert topo.same_node(pe, tree.parent[pe])
    # Node roots form the LAN tree under the cluster root.
    assert tree.parent[2] == 0
    assert tree.parent[6] == 4


def test_node_aware_tree_same_wan_edge_count():
    topo = GridTopology([4, 4, 4], pes_per_node=2)
    hosting = list(range(12))
    flat = build_tree(hosting, topo)
    aware = build_tree(hosting, topo, node_aware=True)
    check_tree_wellformed(aware, hosting)
    assert len(wan_edges_of(flat, topo)) == 2
    assert len(wan_edges_of(aware, topo)) == 2


def test_node_aware_tree_sparse_hosting():
    topo = GridTopology.two_cluster(8, pes_per_node=2)
    hosting = [1, 2, 3, 6]
    tree = build_tree(hosting, topo, node_aware=True)
    check_tree_wellformed(tree, hosting)
    assert tree.root == 1
    assert tree.parent[3] == 2      # node sibling (shmem)
    assert tree.parent[2] == 1      # node root -> cluster root (LAN)
    assert tree.parent[6] == 1      # remote cluster root -> global (WAN)


def test_tree_duplicate_pes_deduped():
    topo = GridTopology.single_cluster(4)
    tree = build_tree([1, 1, 2], topo)
    check_tree_wellformed(tree, [1, 2])
