"""Unit tests for links, devices, chains, delay injection, contention."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.network.chain import DeviceChain
from repro.network.contention import PipePair, SharedPipe
from repro.network.delay import DelayDevice, PairwiseDelayDevice
from repro.network.devices import (
    LanDevice,
    LoopbackDevice,
    ShmemDevice,
    WanDevice,
)
from repro.network.links import (
    LinkModel,
    LognormalJitter,
    NoJitter,
    myrinet_like,
    shared_memory,
    wan_tcp,
)
from repro.network.message import Message
from repro.network.topology import GridTopology
from repro.network.transform import CompressionDevice, EncryptionDevice


@pytest.fixture
def topo():
    return GridTopology.two_cluster(4, pes_per_node=2)


# -- links -------------------------------------------------------------------

def test_link_transit_alpha_beta():
    link = LinkModel("l", latency=1e-3, bandwidth=1e6,
                     per_message_overhead=1e-4)
    # 1000 bytes at 1 MB/s = 1 ms transfer, + 1 ms latency + 0.1 ms ovh
    assert link.transit_time(1000) == pytest.approx(2.1e-3)


def test_link_infinite_bandwidth():
    link = LinkModel("l", latency=1e-3, bandwidth=0.0)
    assert link.transit_time(10**9) == pytest.approx(1e-3)


def test_link_serialization_time_excludes_latency():
    link = LinkModel("l", latency=5.0, bandwidth=1e6)
    assert link.serialization_time(1000) == pytest.approx(1e-3)


def test_link_negative_latency_rejected():
    with pytest.raises(ConfigurationError):
        LinkModel("l", latency=-1.0)


def test_jitter_requires_rng():
    link = LinkModel("l", latency=0.0, bandwidth=0.0,
                     jitter=LognormalJitter(median=1e-3, sigma=0.5))
    assert link.transit_time(0) == 0.0  # no rng -> deterministic
    rng = np.random.default_rng(0)
    samples = [link.transit_time(0, rng) for _ in range(200)]
    assert all(s >= 0.0 for s in samples)
    assert any(s > 0.0 for s in samples)


def test_no_jitter_model():
    assert NoJitter().sample(np.random.default_rng(0)) == 0.0


def test_bad_jitter_params():
    with pytest.raises(ConfigurationError):
        LognormalJitter(median=-1.0)


def test_link_presets():
    assert myrinet_like().latency < wan_tcp(1e-3).latency
    assert shared_memory().latency < myrinet_like().latency


# -- transport devices --------------------------------------------------------

def test_device_reachability(topo):
    shmem = ShmemDevice(shared_memory())
    lan = LanDevice(myrinet_like())
    wan = WanDevice(wan_tcp(1e-3))
    loop = LoopbackDevice(shared_memory())
    assert loop.reaches(0, 0, topo)
    assert not loop.reaches(0, 1, topo)
    assert shmem.reaches(0, 1, topo)          # same node
    assert not shmem.reaches(1, 2, topo)      # off-node? 4 PEs: (0,1)(2,3)
    assert lan.reaches(0, 1, topo)
    assert not lan.reaches(1, 2, topo)        # cross-cluster
    assert wan.reaches(1, 2, topo)
    assert not wan.reaches(0, 1, topo)


def test_device_stats(topo):
    lan = LanDevice(myrinet_like())
    msg = Message(src_pe=0, dst_pe=1, size_bytes=100)
    lan.transit(msg, topo, 0.0, None)
    assert lan.messages_carried == 1
    assert lan.bytes_carried == 100
    lan.reset_stats()
    assert lan.messages_carried == 0


# -- chain dispatch ---------------------------------------------------------------

def make_chain(latency=0.0):
    devices = [LoopbackDevice(shared_memory(name="loopback")),
               ShmemDevice(shared_memory()),
               LanDevice(myrinet_like())]
    if latency >= 0:
        devices.append(DelayDevice(latency))
        devices.append(WanDevice(myrinet_like(name="wan")))
    return DeviceChain(devices)


def test_chain_first_claim_wins(topo):
    chain = make_chain()
    msg = Message(src_pe=0, dst_pe=1, size_bytes=10)
    route = chain.resolve(msg, topo)
    assert route.transport.name == "shmem"  # claims before lan


def test_chain_routes_wan(topo):
    chain = make_chain(latency=5e-3)
    msg = Message(src_pe=0, dst_pe=2, size_bytes=10)
    route = chain.resolve(msg, topo)
    assert route.transport.name == "wan"
    assert route.pre_transport_delay == pytest.approx(5e-3)


def test_delay_device_ignores_local_pairs(topo):
    chain = make_chain(latency=5e-3)
    msg = Message(src_pe=0, dst_pe=1, size_bytes=10)
    route = chain.resolve(msg, topo)
    assert route.pre_transport_delay == 0.0


def test_delay_device_counts(topo):
    dev = DelayDevice(1e-3)
    dev.process(Message(src_pe=0, dst_pe=2, size_bytes=1), topo, None)
    dev.process(Message(src_pe=0, dst_pe=1, size_bytes=1), topo, None)
    assert dev.messages_delayed == 1
    dev.reset_stats()
    assert dev.messages_delayed == 0


def test_zero_delay_device_does_not_count(topo):
    dev = DelayDevice(0.0)
    result = dev.process(Message(src_pe=0, dst_pe=2, size_bytes=1),
                         topo, None)
    assert result.added_delay == 0.0
    assert dev.messages_delayed == 0


def test_negative_delay_rejected():
    with pytest.raises(ConfigurationError):
        DelayDevice(-1.0)


def test_pairwise_delay_device(topo):
    dev = PairwiseDelayDevice({(0, 2): 7e-3})
    fwd = dev.process(Message(src_pe=0, dst_pe=2, size_bytes=1), topo, None)
    rev = dev.process(Message(src_pe=2, dst_pe=0, size_bytes=1), topo, None)
    assert fwd.added_delay == pytest.approx(7e-3)
    assert rev.added_delay == 0.0  # directional


def test_pairwise_delay_validation():
    with pytest.raises(ConfigurationError):
        PairwiseDelayDevice({(0, 1): -1.0})
    with pytest.raises(ConfigurationError):
        PairwiseDelayDevice({(0, 1, 2): 1.0})


def test_no_route_raises():
    chain = DeviceChain([ShmemDevice(shared_memory())])
    topo = GridTopology.two_cluster(4)
    msg = Message(src_pe=0, dst_pe=3, size_bytes=1)
    with pytest.raises(RoutingError):
        chain.resolve(msg, topo)


def test_empty_chain_rejected():
    with pytest.raises(RoutingError):
        DeviceChain([])


def test_insert_before_transport(topo):
    chain = make_chain()
    delay = DelayDevice(1e-3, name="late-delay")
    chain.insert_before_transport(delay)
    assert chain.devices[0] is delay  # before the loopback transport


def test_insert_before_transport_requires_transport():
    chain = DeviceChain([DelayDevice(1e-3, name="only-delay")])
    with pytest.raises(RoutingError) as exc:
        chain.insert_before_transport(DelayDevice(2e-3, name="late"))
    assert "only-delay" in str(exc.value)  # names the chain's devices
    assert [d.name for d in chain.devices] == ["only-delay"]  # unchanged


def test_chain_transports_listing():
    chain = make_chain(latency=1e-3)
    names = [d.name for d in chain.transports()]
    assert names == ["loopback", "shmem", "lan", "wan"]


# -- transform devices --------------------------------------------------------------

def test_compression_shrinks_and_charges(topo):
    dev = CompressionDevice(ratio=0.5, throughput=1e6)
    msg = Message(src_pe=0, dst_pe=2, size_bytes=1000)
    res = dev.process(msg, topo, None)
    assert res.message.size_bytes == 500
    assert res.added_delay == pytest.approx(1e-3)
    assert dev.bytes_saved == 500
    assert res.message.payload is msg.payload  # logical content untouched


def test_compression_predicate(topo):
    from repro.network.delay import cross_cluster_pairs
    dev = CompressionDevice(ratio=0.5, applies_to=cross_cluster_pairs)
    local = dev.process(Message(src_pe=0, dst_pe=1, size_bytes=1000),
                        topo, None)
    assert local.message.size_bytes == 1000


def test_compression_bad_ratio():
    with pytest.raises(ConfigurationError):
        CompressionDevice(ratio=0.0)
    with pytest.raises(ConfigurationError):
        CompressionDevice(ratio=1.5)


def test_encryption_adds_header_and_cost(topo):
    dev = EncryptionDevice(throughput=1e6, header_bytes=32)
    res = dev.process(Message(src_pe=0, dst_pe=2, size_bytes=1000),
                      topo, None)
    assert res.message.size_bytes == 1032
    assert res.added_delay == pytest.approx(1e-3)
    assert dev.messages_encrypted == 1


def test_encryption_requires_positive_throughput():
    with pytest.raises(ConfigurationError):
        EncryptionDevice(throughput=0.0)


# -- contention ----------------------------------------------------------------------

def test_shared_pipe_serializes():
    pipe = SharedPipe()
    assert pipe.reserve(0.0, 1.0) == 0.0
    assert pipe.reserve(0.0, 1.0) == 1.0   # queued behind the first
    assert pipe.reserve(5.0, 1.0) == 5.0   # idle gap: starts immediately
    assert pipe.queue_delay_total == pytest.approx(1.0)
    assert pipe.reservations == 3


def test_shared_pipe_negative_duration():
    with pytest.raises(ValueError):
        SharedPipe().reserve(0.0, -1.0)


def test_shared_pipe_reset():
    pipe = SharedPipe()
    pipe.reserve(0.0, 1.0)
    pipe.reset()
    assert pipe.next_free == 0.0
    assert pipe.reservations == 0


def test_pipe_pair_directions_independent():
    pair = PipePair()
    fwd = pair.direction(0, 1)
    rev = pair.direction(1, 0)
    assert fwd is not rev
    fwd.reserve(0.0, 1.0)
    assert rev.reserve(0.0, 1.0) == 0.0  # reverse direction unaffected
    assert pair.total_queue_delay() == 0.0


def test_wan_device_with_pipe_queues(topo):
    link = LinkModel("wan", latency=1e-3, bandwidth=1e6)
    wan = WanDevice(link, pipe=PipePair())
    m1 = Message(src_pe=0, dst_pe=2, size_bytes=1000)  # 1 ms serialization
    m2 = Message(src_pe=1, dst_pe=3, size_bytes=1000)
    t1 = wan.transit(m1, topo, 0.0, None)
    t2 = wan.transit(m2, topo, 0.0, None)
    assert t1 == pytest.approx(2e-3)        # 1 ms ser + 1 ms latency
    assert t2 == pytest.approx(3e-3)        # queued 1 ms behind m1
