"""Unit tests for load-balance metrics and strategies."""

import pytest

from repro.core.ids import ChareID
from repro.core.loadbalance import (
    GreedyLB,
    GridCommLB,
    LBDatabase,
    RefineLB,
    RotateLB,
    imbalance,
    pe_loads,
)
from repro.errors import LoadBalanceError
from repro.network.topology import GridTopology


def cid(i):
    return ChareID(0, (i,))


def make_db(loads, comm=()):
    """Build a database: loads = {i: seconds}, comm = [(i, j, wan)]."""
    db = LBDatabase()
    for i, load in loads.items():
        db.record_execution(cid(i), load)
    for i, j, wan in comm:
        db.record_send(cid(i), cid(j), 100, wan)
    return db


# -- metrics ------------------------------------------------------------------

def test_db_accumulates_load():
    db = make_db({0: 1.0})
    db.record_execution(cid(0), 2.0)
    assert db.load_of(cid(0)) == pytest.approx(3.0)
    assert db.load_of(cid(9)) == 0.0


def test_db_comm_records():
    db = make_db({}, [(0, 1, False), (0, 1, True)])
    rec = db.comm[(cid(0), cid(1))]
    assert rec.messages == 2
    assert rec.bytes == 200
    assert rec.wan_messages == 1


def test_db_driver_sends_ignored():
    db = LBDatabase()
    db.record_send(None, cid(1), 100, True)
    assert db.comm == {}


def test_db_wan_talkers_includes_both_ends():
    db = make_db({}, [(0, 1, True), (2, 3, False)])
    assert db.wan_talkers() == [cid(0), cid(1)]


def test_db_partners_aggregates_both_directions():
    db = make_db({}, [(0, 1, False), (1, 0, True)])
    partners = dict(db.partners_of(cid(0)))
    assert partners[cid(1)].messages == 2
    assert partners[cid(1)].wan_messages == 1


def test_db_reset():
    db = make_db({0: 1.0}, [(0, 1, True)])
    db.reset()
    assert db.total_load() == 0.0
    assert db.known_chares() == []


def test_pe_loads_and_imbalance():
    topo = GridTopology.single_cluster(2)
    db = make_db({0: 3.0, 1: 1.0})
    mapping = {cid(0): 0, cid(1): 1}
    loads = pe_loads(db, topo, mapping)
    assert loads == [3.0, 1.0]
    assert imbalance(loads) == pytest.approx(1.5)
    assert imbalance([0.0, 0.0]) == 0.0


def test_pe_loads_invalid_pe():
    topo = GridTopology.single_cluster(2)
    with pytest.raises(LoadBalanceError):
        pe_loads(make_db({0: 1.0}), topo, {cid(0): 5})


# -- GreedyLB ---------------------------------------------------------------------

def test_greedy_balances_perfectly_divisible():
    topo = GridTopology.single_cluster(2)
    db = make_db({0: 4.0, 1: 3.0, 2: 2.0, 3: 1.0})
    mapping = {cid(i): 0 for i in range(4)}  # all piled on PE 0
    plan = GreedyLB().plan(db, topo, mapping)
    loads = [0.0, 0.0]
    for chare, pe in plan.items():
        loads[pe] += db.load_of(chare)
    assert loads == [5.0, 5.0]


def test_greedy_deterministic():
    topo = GridTopology.single_cluster(4)
    db = make_db({i: float(i % 3 + 1) for i in range(12)})
    mapping = {cid(i): i % 4 for i in range(12)}
    assert GreedyLB().plan(db, topo, mapping) == \
        GreedyLB().plan(db, topo, mapping)


# -- RefineLB ---------------------------------------------------------------------

def test_refine_moves_only_from_overloaded():
    topo = GridTopology.single_cluster(2)
    db = make_db({0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0})
    mapping = {cid(0): 0, cid(1): 0, cid(2): 0, cid(3): 1}
    plan = RefineLB().plan(db, topo, mapping)
    # one chare moves 0 -> 1
    assert len(plan) == 1
    assert list(plan.values()) == [1]


def test_refine_noop_when_balanced():
    topo = GridTopology.single_cluster(2)
    db = make_db({0: 1.0, 1: 1.0})
    mapping = {cid(0): 0, cid(1): 1}
    assert RefineLB().plan(db, topo, mapping) == {}


def test_refine_noop_when_no_load():
    topo = GridTopology.single_cluster(2)
    assert RefineLB().plan(LBDatabase(), topo, {cid(0): 0}) == {}


def test_refine_tolerance_validation():
    with pytest.raises(LoadBalanceError):
        RefineLB(tolerance=0.9)


# -- GridCommLB ----------------------------------------------------------------------

def grid_db_and_mapping(topo):
    """Four WAN talkers piled on PE 0, four local chares on PE 2."""
    db = LBDatabase()
    mapping = {}
    for i in range(4):
        db.record_execution(cid(i), 1.0)
        db.record_send(cid(i), cid(10 + i), 100, True)  # WAN traffic
        db.record_execution(cid(10 + i), 1.0)
        mapping[cid(i)] = 0           # cluster 0
        mapping[cid(10 + i)] = 2      # cluster 1
    return db, mapping


def test_gridlb_never_crosses_clusters():
    topo = GridTopology.two_cluster(4)
    db, mapping = grid_db_and_mapping(topo)
    plan = GridCommLB().plan(db, topo, mapping)
    for chare, new_pe in plan.items():
        assert topo.cluster_of(new_pe) == topo.cluster_of(mapping[chare])


def test_gridlb_spreads_wan_talkers_evenly():
    topo = GridTopology.two_cluster(4)
    db, mapping = grid_db_and_mapping(topo)
    plan = GridCommLB().plan(db, topo, mapping)
    cluster0_counts = {0: 0, 1: 0}
    for i in range(4):  # the cluster-0 WAN talkers
        cluster0_counts[plan[cid(i)]] += 1
    assert cluster0_counts == {0: 2, 1: 2}


def test_gridlb_balances_non_wan_load_within_cluster():
    topo = GridTopology.two_cluster(4)
    db = LBDatabase()
    mapping = {}
    for i in range(6):
        db.record_execution(cid(i), 1.0)
        mapping[cid(i)] = 0  # all on PE 0, no WAN traffic at all
    plan = GridCommLB().plan(db, topo, mapping)
    counts = {0: 0, 1: 0}
    for chare in mapping:
        counts[plan[chare]] += 1
    assert counts == {0: 3, 1: 3}


def test_gridlb_empty_db():
    topo = GridTopology.two_cluster(4)
    assert GridCommLB().plan(LBDatabase(), topo, {}) == {}


# -- RotateLB --------------------------------------------------------------------------

def test_rotate_shifts_by_one():
    topo = GridTopology.single_cluster(3)
    mapping = {cid(0): 0, cid(1): 2}
    plan = RotateLB().plan(LBDatabase(), topo, mapping)
    assert plan == {cid(0): 1, cid(1): 0}
