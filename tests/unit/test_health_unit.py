"""Unit tests for the watchdog rules, governor and timed sink."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.health import (
    OBS_LEVELS,
    HealthConfig,
    HealthEvent,
    HealthMonitor,
    HealthSample,
    ObsGovernor,
    TimedSink,
)


def sample(t, executions=0, utils=None, idle=0.0, wan_sends=0,
           retransmits=0, queue_depth=0, wan_in_flight=0):
    return HealthSample(
        t=t, executions=executions,
        utilization=utils if utils is not None else {0: 1.0 - idle},
        idle_fraction=idle, queue_depth=queue_depth,
        wan_in_flight=wan_in_flight, wan_sends=wan_sends,
        retransmits=retransmits)


# -- HealthEvent -----------------------------------------------------------


def test_health_event_round_trip_and_render():
    ev = HealthEvent(t=0.25, severity="warning", rule="unmasking",
                     metric="idle.fraction_ema", value=0.5, threshold=0.33,
                     message="idle too high")
    d = ev.to_dict()
    assert d["rule"] == "unmasking" and d["t"] == 0.25
    assert "WARNING" in ev.render() and "unmasking" in ev.render()


def test_health_config_validation():
    with pytest.raises(ConfigurationError):
        HealthConfig(stall_factor=1.0)
    with pytest.raises(ConfigurationError):
        HealthConfig(storm_rate=0.0)
    with pytest.raises(ConfigurationError):
        HealthConfig(imbalance_ratio=0.5)
    with pytest.raises(ConfigurationError):
        HealthConfig(unmasked_idle_threshold=1.0)


def test_default_unmasking_threshold_matches_knee_tolerance():
    # 1.5x step-time tolerance <=> one third of the step is stall.
    assert HealthConfig().unmasked_idle_threshold == \
        pytest.approx(1.0 - 1.0 / 1.5)


# -- stall rule ------------------------------------------------------------


def test_stall_fires_after_factor_times_median_gap():
    mon = HealthMonitor(HealthConfig(stall_factor=4.0, stall_min_history=3))
    # Regular progress: one execution per 1 s sample.
    events = []
    for i in range(5):
        events += mon.observe(sample(float(i), executions=i))
    assert events == []
    # Now freeze progress; gap median is 1 s, so the rule arms at > 4 s.
    for i in range(5, 9):
        events += mon.observe(sample(float(i), executions=4))
    assert events == []
    events += mon.observe(sample(9.0, executions=4))  # stalled 5 s > 4 s
    assert [e.rule for e in events] == ["stall"]
    assert events[0].severity == "critical"


def test_stall_is_one_event_per_episode():
    mon = HealthMonitor(HealthConfig(stall_factor=4.0, stall_min_history=3))
    for i in range(5):
        mon.observe(sample(float(i), executions=i))
    fired = []
    for i in range(5, 20):
        fired += mon.observe(sample(float(i), executions=4))
    assert len(fired) == 1  # persists, but only the transition fires
    # Recovery, then a second stall -> a second event.
    for i in range(20, 26):
        mon.observe(sample(float(i), executions=i))
    fired2 = []
    for i in range(26, 40):
        fired2 += mon.observe(sample(float(i), executions=25))
    assert len(fired2) == 1


# -- retransmit-storm rule -------------------------------------------------


def test_storm_fires_on_windowed_rate():
    mon = HealthMonitor(HealthConfig(storm_rate=0.5,
                                     storm_min_retransmits=3))
    mon.observe(sample(0.0, wan_sends=10, retransmits=0))
    events = mon.observe(sample(1.0, wan_sends=15, retransmits=4))
    assert [e.rule for e in events] == ["retransmit-storm"]
    assert mon.last_retransmit_rate == pytest.approx(4 / 5)


def test_storm_needs_minimum_retransmits():
    mon = HealthMonitor(HealthConfig(storm_rate=0.5,
                                     storm_min_retransmits=3))
    mon.observe(sample(0.0, wan_sends=10, retransmits=0))
    # Rate 1.0 but only 2 retransmits in the window: noise, no alert.
    events = mon.observe(sample(1.0, wan_sends=12, retransmits=2))
    assert events == []


# -- load-imbalance rule ---------------------------------------------------


def test_imbalance_fires_past_warmup():
    cfg = HealthConfig(imbalance_ratio=2.0, warmup_samples=2)
    mon = HealthMonitor(cfg)
    skew = {0: 0.9, 1: 0.1, 2: 0.1, 3: 0.1}
    events = []
    for i in range(5):
        events += mon.observe(sample(float(i), executions=i, utils=skew))
    assert [e.rule for e in events] == ["load-imbalance"]


def test_imbalance_ignores_idle_system():
    cfg = HealthConfig(imbalance_ratio=2.0, warmup_samples=0,
                       imbalance_min_util=0.05)
    mon = HealthMonitor(cfg)
    near_zero = {0: 0.004, 1: 0.0001}  # huge ratio, tiny mean
    for i in range(5):
        assert mon.observe(sample(float(i), executions=i,
                                  utils=near_zero)) == []


# -- unmasking rule --------------------------------------------------------


def test_unmasking_fires_only_with_wan_traffic():
    cfg = HealthConfig(warmup_samples=1)
    mon = HealthMonitor(cfg)
    for i in range(4):
        assert mon.observe(
            sample(float(i), executions=i, idle=0.9, wan_sends=0)) == []
    events = mon.observe(sample(5.0, executions=5, idle=0.9, wan_sends=1))
    assert [e.rule for e in events] == ["unmasking"]


def test_unmasking_respects_warmup():
    cfg = HealthConfig(warmup_samples=5)
    mon = HealthMonitor(cfg)
    events = []
    for i in range(5):
        events += mon.observe(
            sample(float(i), executions=i, idle=0.9, wan_sends=10))
    assert events == []


# -- governor --------------------------------------------------------------


def fake_clock(start=0.0):
    state = {"t": start}

    def advance(dt):
        state["t"] += dt

    return (lambda: state["t"]), advance


def test_governor_overhead_fraction_with_mocked_clock():
    clock, advance = fake_clock()
    gov = ObsGovernor(budget=None, clock=clock)
    cost = {"s": 0.0}
    gov.add_cost_source("x", lambda: cost["s"])
    advance(10.0)
    cost["s"] = 1.0
    assert gov.overhead_fraction() == pytest.approx(0.1)
    assert gov.overhead_seconds() == 1.0


def test_governor_downgrades_one_level_per_check():
    clock, advance = fake_clock()
    gov = ObsGovernor(budget=0.05, clock=clock)
    cost = {"s": 0.0}
    gov.add_cost_source("x", lambda: cost["s"])
    seen = []
    gov.on_downgrade("sampling", lambda: seen.append("sampling"))
    gov.on_downgrade("counters", lambda: seen.append("counters"))

    advance(10.0)
    assert gov.check(1.0) is None  # under budget
    assert gov.level == "full"

    cost["s"] = 5.0  # 50% overhead
    ev1 = gov.check(2.0)
    assert gov.level == "sampling" and ev1.rule == "obs-governor"
    ev2 = gov.check(3.0)
    assert gov.level == "counters" and ev2 is not None
    assert gov.check(4.0) is None  # already at the floor
    assert seen == ["sampling", "counters"]
    assert [e.t for e in gov.events] == [2.0, 3.0]


def test_governor_no_budget_never_downgrades():
    clock, advance = fake_clock()
    gov = ObsGovernor(budget=None, clock=clock)
    gov.add_cost_source("x", lambda: 100.0)
    advance(1.0)
    assert gov.check(0.0) is None
    assert gov.level == OBS_LEVELS[0]


def test_governor_as_metrics_shape():
    gov = ObsGovernor()
    m = gov.as_metrics()
    assert set(m) == {"obs.overhead_fraction", "obs.overhead_s",
                      "obs.level"}
    assert m["obs.level"] == 0


def test_governor_budget_validation():
    with pytest.raises(ConfigurationError):
        ObsGovernor(budget=0.0)
    with pytest.raises(ConfigurationError):
        ObsGovernor().on_downgrade("turbo", lambda: None)


# -- TimedSink -------------------------------------------------------------


class _NullSink:
    enabled = True

    def __init__(self):
        self.calls = 0

    def begin_execute(self, *a, **kw):
        self.calls += 1

    def end_execute(self, *a, **kw):
        self.calls += 1

    def message_sent(self, *a, **kw):
        self.calls += 1

    def message_delivered(self, *a, **kw):
        self.calls += 1

    def message_dropped(self, *a, **kw):
        self.calls += 1

    def note_retransmit(self):
        self.calls += 1

    def note_dup_suppressed(self):
        self.calls += 1


def test_timed_sink_delegates_and_estimates_cost():
    clock, advance = fake_clock()
    inner = _NullSink()
    # Wrap the clock so each timed window appears to take 1 ms.
    ticks = {"n": 0}

    def stepping_clock():
        ticks["n"] += 1
        advance(0.5e-3)
        return clock()

    sink = TimedSink(inner, stride=4, clock=stepping_clock)
    for _ in range(8):
        sink.note_retransmit()
    assert inner.calls == 8
    # Two timed windows (calls 4 and 8), each measured 0.5 ms and scaled
    # by the stride of 4.
    assert sink.cost_s == pytest.approx(2 * 0.5e-3 * 4)


def test_timed_sink_enabled_tracks_inner():
    inner = _NullSink()
    sink = TimedSink(inner)
    assert sink.enabled
    inner.enabled = False
    assert not sink.enabled


def test_timed_sink_stride_validation():
    with pytest.raises(ConfigurationError):
        TimedSink(_NullSink(), stride=0)
