"""Unit tests for the causal graph, backward walk, and knee analyzer.

Hand-built two/three-span traces where the critical path is knowable by
inspection: these pin the *labels* (which component each second lands
in), where the property suite (tests/property/test_critpath_properties)
pins only the sum invariant.
"""

import pytest

from repro.errors import ConfigurationError
from repro.obs.critpath import (
    CausalGraph,
    KneePrediction,
    per_step_attribution,
    predict_knee,
    render_attribution,
    replay_with_latency,
    summarize_attribution,
)
from repro.sim.trace import Tracer


def chain_trace(wan=True, flight=2.0, retx=False):
    """PE0 computes [0,1], sends at 1; PE1 runs the triggered span.

    With ``retx`` the first copy is dropped and retransmitted at t=2,
    delivery at ``2 + flight``; otherwise delivery at ``1 + flight``.
    """
    tr = Tracer()
    tr.begin_execute(0, 0.0, "C", "produce", sid=0)
    tr.end_execute(0, 1.0)
    tr.message_sent(1.0, 0, 1, 8, "ghost", wan, seq=0, cause=0)
    if retx:
        tr.message_dropped(1.0, 0, 1, 8, "ghost", wan, seq=0, cause=0)
        tr.message_sent(2.0, 0, 1, 8, "ghost", wan, seq=0, cause=0)
        delivered = 2.0 + flight
    else:
        delivered = 1.0 + flight
    tr.message_delivered(delivered, 0, 1, 8, "ghost", wan, seq=0, cause=0)
    tr.begin_execute(1, delivered, "C", "consume", sid=1, parent=0, trigger=0)
    tr.end_execute(1, delivered + 1.0)
    return tr, delivered


class TestGraphConstruction:
    def test_disabled_tracer_rejected(self):
        with pytest.raises(ConfigurationError):
            CausalGraph.from_tracer(Tracer(enabled=False))

    def test_spans_messages_and_edges(self):
        tr, delivered = chain_trace()
        g = CausalGraph.from_tracer(tr)
        assert set(g.spans) == {0, 1}
        assert g.spans[1].parent == 0
        assert g.messages[0].delivered == delivered
        assert g.pe_pred(1) is None
        assert g.terminal_span(delivered).sid == 1
        assert g.ack_edges() == []

    def test_legacy_intervals_skipped(self):
        tr, _ = chain_trace()
        tr.begin_execute(2, 0.0, "L", "legacy")   # no sid
        tr.end_execute(2, 9.0)
        g = CausalGraph.from_tracer(tr)
        assert set(g.spans) == {0, 1}

    def test_ack_edges_surface(self):
        tr, _ = chain_trace()
        tr.message_sent(4.5, 1, 0, 0, "ack:0", True, seq=7, ack_for=0)
        g = CausalGraph.from_tracer(tr)
        assert [m.seq for m in g.ack_edges()] == [7]


class TestWalkLabels:
    def test_wan_wire_time_attributed_to_wan_flight(self):
        tr, delivered = chain_trace(wan=True, flight=2.0)
        g = CausalGraph.from_tracer(tr)
        [att] = per_step_attribution(g, [0.0, delivered + 1.0])
        assert att.residual == 0.0
        assert att.compute == 2.0        # produce [0,1] + consume [3,4]
        assert att.wan_flight == 2.0     # the wire
        assert att.queue_serial == 0.0
        assert att.retransmit_stall == 0.0

    def test_local_wire_time_is_queue_serial(self):
        tr, delivered = chain_trace(wan=False, flight=2.0)
        g = CausalGraph.from_tracer(tr)
        [att] = per_step_attribution(g, [0.0, delivered + 1.0])
        assert att.wan_flight == 0.0
        assert att.queue_serial == 2.0

    def test_retransmit_stall_separated_from_wire(self):
        tr, delivered = chain_trace(wan=True, flight=2.0, retx=True)
        g = CausalGraph.from_tracer(tr)
        [att] = per_step_attribution(g, [0.0, delivered + 1.0])
        assert att.residual == 0.0
        assert att.retransmit_stall == 1.0    # first send 1.0 -> resend 2.0
        assert att.wan_flight == 2.0          # resend 2.0 -> delivery 4.0
        assert att.compute == 2.0

    def test_same_pe_chain_is_compute(self):
        tr = Tracer()
        tr.begin_execute(0, 0.0, "C", "a", sid=0)
        tr.end_execute(0, 1.0)
        tr.begin_execute(0, 1.0, "C", "b", sid=1)
        tr.end_execute(0, 3.0)
        g = CausalGraph.from_tracer(tr)
        [att] = per_step_attribution(g, [0.0, 3.0])
        assert att.compute == 3.0
        assert att.residual == 0.0

    def test_window_before_any_span_is_startup(self):
        tr, delivered = chain_trace()
        g = CausalGraph.from_tracer(tr)
        [att] = per_step_attribution(g, [-2.0, delivered + 1.0])
        assert att.residual == 0.0
        assert att.queue_serial == 2.0   # the [-2, 0] startup hole

    def test_empty_window_has_zero_everything(self):
        tr, _ = chain_trace()
        g = CausalGraph.from_tracer(tr)
        [att] = per_step_attribution(g, [1.0, 1.0])
        assert att.wall == 0.0
        assert att.total == 0.0
        assert att.segments == []


class TestSummaryAndRender:
    def test_summary_shares(self):
        tr, delivered = chain_trace()
        g = CausalGraph.from_tracer(tr)
        steps = per_step_attribution(g, [0.0, delivered + 1.0])
        s = summarize_attribution(steps)
        assert s["wall_s"] == delivered + 1.0
        assert s["compute_share"] + s["wan_flight_share"] == \
            pytest.approx(1.0)

    def test_render_contains_component_columns(self):
        tr, delivered = chain_trace()
        g = CausalGraph.from_tracer(tr)
        steps = per_step_attribution(g, [0.0, delivered + 1.0])
        text = render_attribution(steps)
        assert "wall(ms)" in text and "steady state" in text


class TestKneeAnalyzer:
    def test_replay_shifts_only_wan_edges(self):
        tr, delivered = chain_trace(wan=True, flight=2.0)
        g = CausalGraph.from_tracer(tr)
        shifted = replay_with_latency(g, 3.0)
        assert shifted[0] == 0.0
        assert shifted[1] == delivered + 3.0

    def test_replay_local_edges_unmoved(self):
        tr, delivered = chain_trace(wan=False, flight=2.0)
        g = CausalGraph.from_tracer(tr)
        shifted = replay_with_latency(g, 3.0)
        assert shifted[1] == delivered

    def test_negative_shift_clamps_wire_at_zero(self):
        tr, _ = chain_trace(wan=True, flight=2.0)
        g = CausalGraph.from_tracer(tr)
        shifted = replay_with_latency(g, -100.0)
        assert shifted[1] == 1.0   # parent end; wire cannot go negative

    def test_knee_definition(self):
        pred = KneePrediction(
            observed_latency_s=0.0,
            grid_s=[0.0, 0.001, 0.002, 0.004],
            predicted_step_s=[0.010, 0.011, 0.014, 0.020],
            tolerance=1.5)
        assert pred.baseline_s == 0.010
        assert pred.knee_s == 0.002   # 0.014 <= 1.5x, 0.020 > 1.5x
        d = pred.to_dict()
        assert d["predicted_knee_ms"] == pytest.approx(2.0)

    def test_predict_knee_monotone_grid(self):
        tr, delivered = chain_trace(wan=True, flight=2.0)
        g = CausalGraph.from_tracer(tr)
        knee = predict_knee(g, [0.0, delivered + 1.0], 2.0,
                            [1.0, 2.0, 4.0], warmup=0)
        assert knee.grid_s == [1.0, 2.0, 4.0]
        assert knee.predicted_step_s[0] <= knee.predicted_step_s[-1]
