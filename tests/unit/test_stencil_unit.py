"""Unit tests for stencil decomposition, kernel, and reference."""

import numpy as np
import pytest

from repro.apps.stencil.decomposition import (
    OPPOSITE,
    BlockDecomposition,
    factor_grid,
)
from repro.apps.stencil.kernel import (
    jacobi_step,
    make_initial_mesh,
    residual,
)
from repro.apps.stencil.reference import checksum, run_reference
from repro.errors import ConfigurationError


# -- factor_grid ----------------------------------------------------------

def test_factor_grid_perfect_squares():
    for n in (4, 16, 64, 256, 1024):
        r, c = factor_grid(n)
        assert r == c == int(np.sqrt(n))


def test_factor_grid_non_square():
    assert factor_grid(32) == (4, 8)
    assert factor_grid(2) == (1, 2)
    assert factor_grid(1) == (1, 1)


def test_factor_grid_rejects_nonpositive():
    with pytest.raises(ConfigurationError):
        factor_grid(0)


# -- decomposition ------------------------------------------------------------

def test_paper_decomposition_numbers():
    """Paper: 2048x2048 into 64 objects -> 8x8 blocks of 256x256,
    ghost vectors of 256 cells."""
    d = BlockDecomposition.regular((2048, 2048), 64)
    assert (d.brows, d.bcols) == (8, 8)
    assert (d.block_rows, d.block_cols) == (256, 256)
    assert d.cells_per_block == 65536
    assert d.ghost_bytes("north") == 256 * 8


def test_decomposition_divisibility_enforced():
    with pytest.raises(ConfigurationError):
        BlockDecomposition(100, 100, 3, 3)


def test_interior_slices_cover_mesh():
    d = BlockDecomposition.regular((64, 64), 16)
    covered = np.zeros((64, 64), dtype=int)
    for bi, bj in d.indices():
        rs, cs = d.interior_slices(bi, bj)
        covered[rs, cs] += 1
    assert np.all(covered == 1)


def test_neighbors_interior_block():
    d = BlockDecomposition.regular((64, 64), 16)
    nbrs = d.neighbors(1, 1)
    assert nbrs == {"north": (0, 1), "south": (2, 1),
                    "west": (1, 0), "east": (1, 2)}


def test_neighbors_corner_block():
    d = BlockDecomposition.regular((64, 64), 16)
    assert set(d.neighbors(0, 0)) == {"south", "east"}
    assert set(d.neighbors(3, 3)) == {"north", "west"}


def test_neighbors_symmetric():
    d = BlockDecomposition.regular((64, 64), 16)
    for bi, bj in d.indices():
        for side, nbr in d.neighbors(bi, bj).items():
            back = d.neighbors(*nbr)
            assert back[OPPOSITE[side]] == (bi, bj)


def test_single_block_has_no_neighbors():
    d = BlockDecomposition.regular((8, 8), 1)
    assert d.neighbors(0, 0) == {}


def test_out_of_range_block():
    d = BlockDecomposition.regular((64, 64), 16)
    with pytest.raises(ConfigurationError):
        d.neighbors(4, 0)


def test_ghost_bytes_rectangular():
    d = BlockDecomposition(64, 128, 2, 2)  # blocks 32x64
    assert d.ghost_bytes("north") == 64 * 8
    assert d.ghost_bytes("west") == 32 * 8
    with pytest.raises(ConfigurationError):
        d.ghost_bytes("up")


def test_working_set_bytes():
    d = BlockDecomposition.regular((64, 64), 16)  # 16x16 blocks
    assert d.working_set_bytes() == 2 * 18 * 18 * 8


# -- kernel ----------------------------------------------------------------------

def test_jacobi_step_known_values():
    padded = np.zeros((3, 3))
    padded[0, 1] = 4.0  # north neighbor of the single interior cell
    out = jacobi_step(padded)
    assert out.shape == (1, 1)
    assert out[0, 0] == pytest.approx(1.0)


def test_jacobi_step_preserves_input():
    padded = np.arange(25, dtype=float).reshape(5, 5)
    before = padded.copy()
    jacobi_step(padded)
    assert np.array_equal(padded, before)


def test_jacobi_step_too_small():
    with pytest.raises(ValueError):
        jacobi_step(np.zeros((2, 2)))


def test_residual():
    a = np.zeros((3, 3))
    b = np.full((3, 3), 0.5)
    assert residual(a, b) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        residual(a, np.zeros((2, 2)))


def test_initial_mesh_boundaries():
    mesh = make_initial_mesh(16, 16, seed=1)
    assert np.all(mesh[:, 0] == 1.0)        # hot west wall (set last)
    assert np.all(mesh[0, 1:] == 0.0)
    assert np.all(mesh[-1, 1:] == 0.0)
    assert np.all(mesh[:, -1] == 0.0)


def test_initial_mesh_seeded():
    assert np.array_equal(make_initial_mesh(8, 8, 3),
                          make_initial_mesh(8, 8, 3))
    assert not np.array_equal(make_initial_mesh(8, 8, 3),
                              make_initial_mesh(8, 8, 4))


# -- reference ----------------------------------------------------------------------

def test_reference_fixed_boundary():
    mesh = make_initial_mesh(8, 8, 0)
    out = run_reference(mesh, 5)
    assert np.array_equal(out[:, 0], mesh[:, 0])
    assert np.array_equal(out[0, :], mesh[0, :])


def test_reference_zero_steps_is_copy():
    mesh = make_initial_mesh(8, 8, 0)
    out = run_reference(mesh, 0)
    assert np.array_equal(out, mesh)
    assert out is not mesh


def test_reference_converges_toward_laplace():
    mesh = make_initial_mesh(16, 16, 0)
    r1 = residual(run_reference(mesh, 10), run_reference(mesh, 11))
    r2 = residual(run_reference(mesh, 100), run_reference(mesh, 101))
    assert r2 < r1


def test_reference_negative_steps():
    with pytest.raises(ValueError):
        run_reference(np.zeros((4, 4)), -1)


def test_checksum_sensitive_to_values():
    a = make_initial_mesh(8, 8, 0)
    b = a.copy()
    b[4, 4] += 1e-6
    assert checksum(a) != checksum(b)
