"""Unit tests for RNG streams, the tracer, and unit helpers."""

import sys

import numpy as np
import pytest

from repro.sim.rand import RandomStreams, stable_name_key
from repro.sim.trace import ExecInterval, TraceAggregator, TraceFanout, Tracer
from repro.units import (
    kib,
    mib,
    ms,
    ns,
    seconds,
    to_ms,
    to_us,
    transfer_time,
    us,
)


# -- RandomStreams ----------------------------------------------------------

def test_same_seed_same_stream():
    a = RandomStreams(7).get("wan").random(5)
    b = RandomStreams(7).get("wan").random(5)
    assert np.array_equal(a, b)


def test_different_seed_different_stream():
    a = RandomStreams(7).get("wan").random(5)
    b = RandomStreams(8).get("wan").random(5)
    assert not np.array_equal(a, b)


def test_different_names_independent():
    streams = RandomStreams(7)
    a = streams.get("a").random(5)
    b = streams.get("b").random(5)
    assert not np.array_equal(a, b)


def test_stream_isolation_from_request_order():
    s1 = RandomStreams(7)
    s1.get("other").random(100)  # consuming another stream...
    a = s1.get("wan").random(5)
    b = RandomStreams(7).get("wan").random(5)  # ...does not perturb this one
    assert np.array_equal(a, b)


def test_get_returns_same_generator():
    streams = RandomStreams(0)
    assert streams.get("x") is streams.get("x")


def test_fork_is_deterministic_and_distinct():
    a = RandomStreams(7).fork("trial-1").get("x").random(3)
    b = RandomStreams(7).fork("trial-1").get("x").random(3)
    c = RandomStreams(7).fork("trial-2").get("x").random(3)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_seed_must_be_int():
    with pytest.raises(TypeError):
        RandomStreams("seven")


def test_stable_name_key_is_stable():
    assert stable_name_key("wan-jitter") == stable_name_key("wan-jitter")
    assert stable_name_key("a") != stable_name_key("b")


# -- Tracer ----------------------------------------------------------------

def test_tracer_records_interval():
    tr = Tracer()
    tr.begin_execute(0, 1.0, "C", "e")
    tr.end_execute(0, 2.5)
    assert len(tr.intervals) == 1
    iv = tr.intervals[0]
    assert (iv.pe, iv.start, iv.end, iv.duration) == (0, 1.0, 2.5, 1.5)


def test_tracer_nested_begin_rejected():
    tr = Tracer()
    tr.begin_execute(0, 1.0, "C", "e")
    with pytest.raises(ValueError):
        tr.begin_execute(0, 1.5, "C", "f")


def test_tracer_end_without_begin_rejected():
    with pytest.raises(ValueError):
        Tracer().end_execute(0, 1.0)


def test_tracer_disabled_is_noop():
    tr = Tracer(enabled=False)
    tr.begin_execute(0, 1.0, "C", "e")
    tr.end_execute(0, 2.0)
    assert tr.intervals == []
    with pytest.raises(ValueError):
        tr.makespan()


def test_tracer_pe_usage_and_makespan():
    tr = Tracer()
    tr.begin_execute(0, 0.0, "C", "a")
    tr.end_execute(0, 1.0)
    tr.begin_execute(1, 1.0, "C", "b")
    tr.end_execute(1, 4.0)
    usage = tr.pe_usage()
    assert usage[0].busy == 1.0
    assert usage[1].busy == 3.0
    assert tr.makespan() == 4.0
    assert usage[1].utilization(tr.makespan()) == pytest.approx(0.75)


def test_tracer_busy_during_window():
    tr = Tracer()
    tr.begin_execute(0, 0.0, "C", "a")
    tr.end_execute(0, 2.0)
    tr.begin_execute(0, 3.0, "C", "b")
    tr.end_execute(0, 5.0)
    assert tr.busy_during(0, 1.0, 4.0) == pytest.approx(2.0)
    assert tr.busy_during(1, 0.0, 5.0) == 0.0


def test_tracer_wan_flight_windows_pair_fifo():
    tr = Tracer()
    tr.message_sent(0.0, 0, 1, 100, "m", True)
    tr.message_sent(0.5, 0, 1, 100, "m", True)
    tr.message_delivered(2.0, 0, 1, 100, "m", True)
    tr.message_delivered(2.5, 0, 1, 100, "m", True)
    tr.message_sent(0.1, 0, 1, 10, "lan", False)  # non-WAN ignored
    windows = tr.wan_flight_windows()
    assert windows == [(0.0, 2.0, 0, 1), (0.5, 2.5, 0, 1)]


def test_tracer_wan_flight_windows_pair_by_seq_under_reordering():
    """Regression: jitter/retransmission delivers out of send order; FIFO
    pairing would cross the windows. Ids keep them straight."""
    tr = Tracer()
    tr.message_sent(0.0, 0, 1, 100, "a", True, seq=1)
    tr.message_sent(0.5, 0, 1, 100, "b", True, seq=2)
    tr.message_delivered(2.0, 0, 1, 100, "b", True, seq=2)  # b overtook a
    tr.message_delivered(9.0, 0, 1, 100, "a", True, seq=1)
    windows = tr.wan_flight_windows()
    assert sorted(windows) == [(0.0, 9.0, 0, 1), (0.5, 2.0, 0, 1)]


def test_tracer_wan_flight_windows_retransmit_and_dup():
    """A retransmitted id yields one window, first send -> first deliver;
    duplicate deliveries and drop events add nothing."""
    tr = Tracer()
    tr.message_sent(0.0, 0, 1, 100, "m", True, seq=5)
    tr.message_dropped(0.0, 0, 1, 100, "m", True, seq=5)
    tr.message_sent(1.0, 0, 1, 100, "m", True, seq=5)   # retransmission
    tr.message_delivered(3.0, 0, 1, 100, "m", True, seq=5)
    tr.message_delivered(3.5, 0, 1, 100, "m", True, seq=5)  # wire dup
    assert tr.wan_flight_windows() == [(0.0, 3.0, 0, 1)]


def test_tracer_wan_flight_windows_mixed_seq_and_legacy():
    tr = Tracer()
    tr.message_sent(0.0, 0, 1, 100, "old", True)            # legacy, no id
    tr.message_sent(0.2, 0, 1, 100, "new", True, seq=9)
    tr.message_delivered(1.0, 0, 1, 100, "new", True, seq=9)
    tr.message_delivered(2.0, 0, 1, 100, "old", True)
    assert sorted(tr.wan_flight_windows()) == [(0.0, 2.0, 0, 1),
                                               (0.2, 1.0, 0, 1)]


def test_tracer_reliability_counters():
    tr = Tracer()
    tr.note_retransmit()
    tr.note_retransmit()
    tr.note_dup_suppressed()
    assert (tr.retransmits, tr.dups_suppressed) == (2, 1)
    off = Tracer(enabled=False)
    off.note_retransmit()
    assert off.retransmits == 0


def test_tracer_render_timeline_smoke():
    tr = Tracer()
    tr.begin_execute(0, 0.0, "C", "a")
    tr.end_execute(0, 1.0)
    art = tr.render_timeline(width=20)
    assert "PE  0" in art and "#" in art


def test_tracer_empty_timeline():
    assert Tracer().render_timeline() == "(empty trace)"


# -- busy_during: bisect path ------------------------------------------------

def test_busy_during_boundary_clipping():
    tr = Tracer()
    for s, e in ((0.0, 2.0), (3.0, 5.0), (6.0, 7.0)):
        tr.begin_execute(0, s, "C", "a")
        tr.end_execute(0, e)
    # Window clips both boundary intervals.
    assert tr.busy_during(0, 1.0, 6.5) == pytest.approx(1.0 + 2.0 + 0.5)
    # Window entirely inside one interval.
    assert tr.busy_during(0, 3.2, 3.7) == pytest.approx(0.5)
    # Window entirely in a gap, and touching interval edges exactly.
    assert tr.busy_during(0, 2.0, 3.0) == 0.0
    assert tr.busy_during(0, 5.0, 6.0) == 0.0
    # Degenerate / inverted windows.
    assert tr.busy_during(0, 4.0, 4.0) == 0.0
    assert tr.busy_during(0, 4.0, 3.0) == 0.0


def test_busy_during_matches_naive_scan():
    intervals = [(0.0, 1.0), (1.5, 2.0), (4.0, 8.0), (9.0, 9.5)]
    tr = Tracer()
    for s, e in intervals:
        tr.begin_execute(2, s, "C", "a")
        tr.end_execute(2, e)

    def naive(start, end):
        return sum(max(0.0, min(e, end) - max(s, start))
                   for s, e in intervals)

    for start, end in ((0.0, 10.0), (0.5, 1.75), (2.0, 4.0), (7.0, 9.2),
                       (8.5, 8.9), (-1.0, 0.5), (9.4, 12.0)):
        assert tr.busy_during(2, start, end) == pytest.approx(
            naive(start, end)), (start, end)


def test_busy_during_index_rebuilt_after_append():
    """Regression: the sorted per-PE index must notice new intervals."""
    tr = Tracer()
    tr.begin_execute(0, 0.0, "C", "a")
    tr.end_execute(0, 1.0)
    assert tr.busy_during(0, 0.0, 10.0) == pytest.approx(1.0)  # builds index
    tr.begin_execute(0, 5.0, "C", "b")
    tr.end_execute(0, 6.0)
    assert tr.busy_during(0, 0.0, 10.0) == pytest.approx(2.0)


def test_exec_interval_uses_slots_on_modern_python():
    iv = ExecInterval(pe=0, start=0.0, end=1.0, chare="C", entry="e")
    if sys.version_info >= (3, 10):
        assert not hasattr(iv, "__dict__")


# -- TraceAggregator ---------------------------------------------------------

def test_aggregator_masked_fraction_hand_computed():
    """One 10 s WAN window; destination busy for 4 s of it -> 40% masked."""
    agg = TraceAggregator()
    agg.message_sent(0.0, 0, 1, 100, "m", True, seq=1)
    agg.begin_execute(1, 2.0, "C", "work")
    agg.end_execute(1, 5.0)               # 3 s inside the window
    agg.begin_execute(1, 9.0, "C", "work")
    agg.message_delivered(10.0, 0, 1, 100, "m", True, seq=1)  # 1 s partial
    agg.end_execute(1, 12.0)
    assert agg.wan.windows == 1
    assert agg.wan.flight_time == pytest.approx(10.0)
    assert agg.wan.masked_time == pytest.approx(4.0)
    assert agg.masked_latency_fraction == pytest.approx(0.4)


def test_aggregator_usage_profiles_and_makespan():
    agg = TraceAggregator()
    agg.begin_execute(0, 1.0, "C", "a")
    agg.end_execute(0, 2.0)
    agg.begin_execute(1, 2.0, "C", "a")
    agg.end_execute(1, 5.0)
    assert agg.makespan() == pytest.approx(4.0)
    usage = agg.pe_usage()
    assert usage[0].busy == pytest.approx(1.0)
    assert usage[1].executions == 1
    prof = agg.profile_by_entry()[("C", "a")]
    assert prof.calls == 2
    assert prof.total_time == pytest.approx(4.0)
    assert agg.utilization()[1] == pytest.approx(0.75)


def test_aggregator_nested_begin_rejected():
    agg = TraceAggregator()
    agg.begin_execute(0, 1.0, "C", "a")
    with pytest.raises(ValueError):
        agg.begin_execute(0, 1.5, "C", "b")
    with pytest.raises(ValueError):
        TraceAggregator().end_execute(3, 1.0)


def test_aggregator_dropped_window_stays_open():
    agg = TraceAggregator()
    agg.message_sent(0.0, 0, 1, 100, "m", True, seq=1)
    agg.message_dropped(0.0, 0, 1, 100, "m", True, seq=1)
    assert agg.wan.open_windows == 1
    assert agg.wan.windows == 0
    assert agg.masked_latency_fraction == 0.0  # no closed flight time
    assert (agg.drops, agg.wan_drops) == (1, 1)


def test_aggregator_summary_shape():
    agg = TraceAggregator()
    agg.begin_execute(0, 0.0, "C", "a")
    agg.end_execute(0, 1.0)
    agg.message_sent(0.0, 0, 1, 64, "m", False)
    s = agg.summary()
    assert s["executions"] == 1
    assert s["messages"]["sent"] == 1
    assert s["messages"]["wan_sent"] == 0
    assert 0.0 <= s["wan"]["masked_fraction"] <= 1.0


def test_fanout_feeds_all_enabled_sinks():
    tr = Tracer()
    agg = TraceAggregator()
    fan = TraceFanout([tr, agg])
    assert fan.enabled
    fan.begin_execute(0, 0.0, "C", "a")
    fan.end_execute(0, 2.0)
    fan.message_sent(0.0, 0, 1, 10, "m", True, seq=1)
    fan.message_delivered(1.0, 0, 1, 10, "m", True, seq=1)
    assert len(tr.intervals) == 1
    assert agg.pe_usage()[0].busy == pytest.approx(2.0)
    assert agg.wan.windows == 1


def test_fanout_skips_disabled_sinks():
    off = Tracer(enabled=False)
    agg = TraceAggregator()
    fan = TraceFanout([off, agg])
    fan.begin_execute(0, 0.0, "C", "a")
    fan.end_execute(0, 1.0)
    assert off.intervals == []
    assert agg.pe_usage()[0].executions == 1
    assert not TraceFanout([Tracer(enabled=False)]).enabled


# -- units --------------------------------------------------------------------

def test_time_conversions():
    assert ms(5) == pytest.approx(5e-3)
    assert us(3) == pytest.approx(3e-6)
    assert ns(7) == pytest.approx(7e-9)
    assert seconds(2) == 2.0
    assert to_ms(0.25) == pytest.approx(250.0)
    assert to_us(1e-3) == pytest.approx(1000.0)


def test_size_conversions():
    assert kib(2) == 2048
    assert mib(1) == 1024 * 1024


def test_transfer_time():
    assert transfer_time(1000, 1e6) == pytest.approx(1e-3)
    assert transfer_time(1000, 0.0) == 0.0
