"""Unit tests for RNG streams, the tracer, and unit helpers."""

import numpy as np
import pytest

from repro.sim.rand import RandomStreams, stable_name_key
from repro.sim.trace import Tracer
from repro.units import (
    kib,
    mib,
    ms,
    ns,
    seconds,
    to_ms,
    to_us,
    transfer_time,
    us,
)


# -- RandomStreams ----------------------------------------------------------

def test_same_seed_same_stream():
    a = RandomStreams(7).get("wan").random(5)
    b = RandomStreams(7).get("wan").random(5)
    assert np.array_equal(a, b)


def test_different_seed_different_stream():
    a = RandomStreams(7).get("wan").random(5)
    b = RandomStreams(8).get("wan").random(5)
    assert not np.array_equal(a, b)


def test_different_names_independent():
    streams = RandomStreams(7)
    a = streams.get("a").random(5)
    b = streams.get("b").random(5)
    assert not np.array_equal(a, b)


def test_stream_isolation_from_request_order():
    s1 = RandomStreams(7)
    s1.get("other").random(100)  # consuming another stream...
    a = s1.get("wan").random(5)
    b = RandomStreams(7).get("wan").random(5)  # ...does not perturb this one
    assert np.array_equal(a, b)


def test_get_returns_same_generator():
    streams = RandomStreams(0)
    assert streams.get("x") is streams.get("x")


def test_fork_is_deterministic_and_distinct():
    a = RandomStreams(7).fork("trial-1").get("x").random(3)
    b = RandomStreams(7).fork("trial-1").get("x").random(3)
    c = RandomStreams(7).fork("trial-2").get("x").random(3)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_seed_must_be_int():
    with pytest.raises(TypeError):
        RandomStreams("seven")


def test_stable_name_key_is_stable():
    assert stable_name_key("wan-jitter") == stable_name_key("wan-jitter")
    assert stable_name_key("a") != stable_name_key("b")


# -- Tracer ----------------------------------------------------------------

def test_tracer_records_interval():
    tr = Tracer()
    tr.begin_execute(0, 1.0, "C", "e")
    tr.end_execute(0, 2.5)
    assert len(tr.intervals) == 1
    iv = tr.intervals[0]
    assert (iv.pe, iv.start, iv.end, iv.duration) == (0, 1.0, 2.5, 1.5)


def test_tracer_nested_begin_rejected():
    tr = Tracer()
    tr.begin_execute(0, 1.0, "C", "e")
    with pytest.raises(ValueError):
        tr.begin_execute(0, 1.5, "C", "f")


def test_tracer_end_without_begin_rejected():
    with pytest.raises(ValueError):
        Tracer().end_execute(0, 1.0)


def test_tracer_disabled_is_noop():
    tr = Tracer(enabled=False)
    tr.begin_execute(0, 1.0, "C", "e")
    tr.end_execute(0, 2.0)
    assert tr.intervals == []
    with pytest.raises(ValueError):
        tr.makespan()


def test_tracer_pe_usage_and_makespan():
    tr = Tracer()
    tr.begin_execute(0, 0.0, "C", "a")
    tr.end_execute(0, 1.0)
    tr.begin_execute(1, 1.0, "C", "b")
    tr.end_execute(1, 4.0)
    usage = tr.pe_usage()
    assert usage[0].busy == 1.0
    assert usage[1].busy == 3.0
    assert tr.makespan() == 4.0
    assert usage[1].utilization(tr.makespan()) == pytest.approx(0.75)


def test_tracer_busy_during_window():
    tr = Tracer()
    tr.begin_execute(0, 0.0, "C", "a")
    tr.end_execute(0, 2.0)
    tr.begin_execute(0, 3.0, "C", "b")
    tr.end_execute(0, 5.0)
    assert tr.busy_during(0, 1.0, 4.0) == pytest.approx(2.0)
    assert tr.busy_during(1, 0.0, 5.0) == 0.0


def test_tracer_wan_flight_windows_pair_fifo():
    tr = Tracer()
    tr.message_sent(0.0, 0, 1, 100, "m", True)
    tr.message_sent(0.5, 0, 1, 100, "m", True)
    tr.message_delivered(2.0, 0, 1, 100, "m", True)
    tr.message_delivered(2.5, 0, 1, 100, "m", True)
    tr.message_sent(0.1, 0, 1, 10, "lan", False)  # non-WAN ignored
    windows = tr.wan_flight_windows()
    assert windows == [(0.0, 2.0, 0, 1), (0.5, 2.5, 0, 1)]


def test_tracer_wan_flight_windows_pair_by_seq_under_reordering():
    """Regression: jitter/retransmission delivers out of send order; FIFO
    pairing would cross the windows. Ids keep them straight."""
    tr = Tracer()
    tr.message_sent(0.0, 0, 1, 100, "a", True, seq=1)
    tr.message_sent(0.5, 0, 1, 100, "b", True, seq=2)
    tr.message_delivered(2.0, 0, 1, 100, "b", True, seq=2)  # b overtook a
    tr.message_delivered(9.0, 0, 1, 100, "a", True, seq=1)
    windows = tr.wan_flight_windows()
    assert sorted(windows) == [(0.0, 9.0, 0, 1), (0.5, 2.0, 0, 1)]


def test_tracer_wan_flight_windows_retransmit_and_dup():
    """A retransmitted id yields one window, first send -> first deliver;
    duplicate deliveries and drop events add nothing."""
    tr = Tracer()
    tr.message_sent(0.0, 0, 1, 100, "m", True, seq=5)
    tr.message_dropped(0.0, 0, 1, 100, "m", True, seq=5)
    tr.message_sent(1.0, 0, 1, 100, "m", True, seq=5)   # retransmission
    tr.message_delivered(3.0, 0, 1, 100, "m", True, seq=5)
    tr.message_delivered(3.5, 0, 1, 100, "m", True, seq=5)  # wire dup
    assert tr.wan_flight_windows() == [(0.0, 3.0, 0, 1)]


def test_tracer_wan_flight_windows_mixed_seq_and_legacy():
    tr = Tracer()
    tr.message_sent(0.0, 0, 1, 100, "old", True)            # legacy, no id
    tr.message_sent(0.2, 0, 1, 100, "new", True, seq=9)
    tr.message_delivered(1.0, 0, 1, 100, "new", True, seq=9)
    tr.message_delivered(2.0, 0, 1, 100, "old", True)
    assert sorted(tr.wan_flight_windows()) == [(0.0, 2.0, 0, 1),
                                               (0.2, 1.0, 0, 1)]


def test_tracer_reliability_counters():
    tr = Tracer()
    tr.note_retransmit()
    tr.note_retransmit()
    tr.note_dup_suppressed()
    assert (tr.retransmits, tr.dups_suppressed) == (2, 1)
    off = Tracer(enabled=False)
    off.note_retransmit()
    assert off.retransmits == 0


def test_tracer_render_timeline_smoke():
    tr = Tracer()
    tr.begin_execute(0, 0.0, "C", "a")
    tr.end_execute(0, 1.0)
    art = tr.render_timeline(width=20)
    assert "PE  0" in art and "#" in art


def test_tracer_empty_timeline():
    assert Tracer().render_timeline() == "(empty trace)"


# -- units --------------------------------------------------------------------

def test_time_conversions():
    assert ms(5) == pytest.approx(5e-3)
    assert us(3) == pytest.approx(3e-6)
    assert ns(7) == pytest.approx(7e-9)
    assert seconds(2) == 2.0
    assert to_ms(0.25) == pytest.approx(250.0)
    assert to_us(1e-3) == pytest.approx(1000.0)


def test_size_conversions():
    assert kib(2) == 2048
    assert mib(1) == 1024 * 1024


def test_transfer_time():
    assert transfer_time(1000, 1e6) == pytest.approx(1e-3)
    assert transfer_time(1000, 0.0) == 0.0
