"""Unit tests for benchmark records, rendering and trend metrics."""

import pytest

from repro.bench.figures import knee_latency_ms, render_series
from repro.bench.records import ExperimentPoint, Series, group_series
from repro.bench.sweep import FIG3_PANEL_OBJECTS, TABLE1_ROWS
from repro.bench.tables import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    render_table1,
    render_table2,
    trend_agreement,
)


def point(pes=2, objects=16, latency=1.0, tps=0.01, env="artificial",
          experiment="fig3"):
    return ExperimentPoint(
        experiment=experiment, app="stencil", environment=env, pes=pes,
        objects=objects, latency_ms=latency, time_per_step=tps, steps=10)


# -- records --------------------------------------------------------------

def test_point_ms_property_and_dict():
    p = point(tps=0.025)
    assert p.time_per_step_ms == pytest.approx(25.0)
    d = p.to_dict()
    assert d["pes"] == 2 and d["time_per_step_ms"] == pytest.approx(25.0)


def test_group_series_by_objects():
    points = [point(objects=o, latency=l, tps=o * l * 1e-3)
              for o in (4, 16) for l in (1.0, 2.0)]
    series = group_series(points)
    assert [s.label for s in series] == ["objects=4", "objects=16"]
    assert series[0].x == [1.0, 2.0]
    assert series[0].y == pytest.approx([4.0, 8.0])


def test_series_append():
    s = Series("x")
    s.append(1.0, 2.0)
    assert s.x == [1.0] and s.y == [2.0]


# -- figure rendering ------------------------------------------------------------

def test_render_series_contains_data_marks():
    s = Series("objects=4", x=[0.0, 1.0, 2.0], y=[1.0, 2.0, 3.0])
    art = render_series([s], "title", width=30, height=8)
    assert "title" in art
    assert "o" in art
    assert "objects=4" in art


def test_render_series_empty():
    assert "(no data)" in render_series([], "t")


def test_render_series_flat_line():
    s = Series("flat", x=[0.0, 1.0], y=[5.0, 5.0])
    art = render_series([s], "t")
    assert "o" in art  # constant y must not crash on zero range


def test_knee_latency():
    s = Series("k", x=[0, 1, 2, 4, 8, 16], y=[10, 10, 10, 11, 20, 40])
    assert knee_latency_ms(s, tolerance=1.3) == 4
    assert knee_latency_ms(Series("e")) == 0.0


def test_knee_latency_all_flat():
    s = Series("k", x=[0, 16], y=[10, 10.1])
    assert knee_latency_ms(s) == 16


# -- table rendering ----------------------------------------------------------------

def test_render_table1_rows_align_with_paper():
    points = []
    for pes, objs in TABLE1_ROWS:
        points.append(point(pes=pes, objects=objs, tps=0.01,
                            experiment="table1"))
        points.append(point(pes=pes, objects=objs, tps=0.011,
                            env="teragrid", experiment="table1"))
    text = render_table1(points)
    assert "Table 1" in text
    assert text.count("\n") >= len(PAPER_TABLE1) + 2
    assert "85.774" in text  # paper value present for comparison


def test_render_table2():
    points = []
    for pes in PAPER_TABLE2:
        points.append(ExperimentPoint(
            experiment="table2", app="leanmd", environment="artificial",
            pes=pes, objects=216, latency_ms=1.725, time_per_step=8.0 / pes,
            steps=8))
    text = render_table2(points)
    assert "Table 2" in text
    assert "3.924" in text


def test_render_tables_tolerate_missing_rows():
    assert "Table 1" in render_table1([])
    assert "Table 2" in render_table2([])


# -- trend agreement -----------------------------------------------------------------

def test_trend_agreement_perfect():
    paper = {(2, 4): (10.0, 0), (2, 16): (5.0, 0), (4, 4): (2.0, 0)}
    points = [point(pes=p, objects=o, tps=paper[(p, o)][0] / 1000)
              for (p, o) in paper]
    score = trend_agreement(points, paper, lambda p: (p.pes, p.objects))
    assert score == 1.0


def test_trend_agreement_inverted():
    paper = {(2, 4): (10.0, 0), (2, 16): (5.0, 0)}
    points = [point(pes=2, objects=4, tps=0.001),
              point(pes=2, objects=16, tps=0.002)]
    score = trend_agreement(points, paper, lambda p: (p.pes, p.objects))
    assert score == 0.0


def test_trend_agreement_no_overlap():
    assert trend_agreement([], {}, lambda p: p.pes) == 1.0


def test_fig3_panel_objects_match_paper_layout():
    assert FIG3_PANEL_OBJECTS[2] == (4, 16, 64)
    assert FIG3_PANEL_OBJECTS[64] == (64, 256, 1024)
    assert set(FIG3_PANEL_OBJECTS) == {2, 4, 8, 16, 32, 64}
