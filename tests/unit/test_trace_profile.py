"""Tests for the Projections-style entry-method profile."""

import pytest

from repro.sim.trace import EntryProfile, Tracer


def traced():
    tr = Tracer()
    for start, end, entry in [(0.0, 1.0, "ghost"), (1.0, 3.0, "compute"),
                              (3.0, 3.5, "ghost")]:
        tr.begin_execute(0, start, "Block", entry)
        tr.end_execute(0, end)
    return tr


def test_profile_aggregates_by_entry():
    profs = traced().profile_by_entry()
    ghost = profs[("Block", "ghost")]
    assert ghost.calls == 2
    assert ghost.total_time == pytest.approx(1.5)
    assert ghost.mean_time == pytest.approx(0.75)
    assert profs[("Block", "compute")].total_time == pytest.approx(2.0)


def test_profile_mean_of_empty():
    assert EntryProfile("C", "e").mean_time == 0.0


def test_render_profile_sorted_by_time():
    art = traced().render_profile(top=5)
    lines = art.splitlines()
    assert "Block.compute" in lines[1]   # heaviest first
    assert "Block.ghost" in lines[2]
    assert "57.1%" in lines[1]           # 2.0 / 3.5


def test_render_profile_top_limit():
    art = traced().render_profile(top=1)
    assert "Block.ghost" not in art


def test_render_profile_aggregates_once(monkeypatch):
    """Regression: render_profile used to call profile_by_entry twice,
    re-walking every interval of a (potentially huge) trace."""
    tr = traced()
    calls = {"n": 0}
    original = Tracer.profile_by_entry

    def counting(self):
        calls["n"] += 1
        return original(self)

    monkeypatch.setattr(Tracer, "profile_by_entry", counting)
    tr.render_profile(top=5)
    assert calls["n"] == 1


def test_profile_requires_data():
    with pytest.raises(ValueError):
        Tracer(enabled=False).profile_by_entry()


def test_profile_from_live_run():
    from repro.apps.stencil import StencilApp
    from repro.grid.presets import artificial_latency_env
    from repro.units import ms

    env = artificial_latency_env(4, ms(2), trace=True)
    StencilApp(env, mesh=(64, 64), objects=16, payload="modeled").run(5)
    profs = env.tracer.profile_by_entry()
    assert ("StencilBlock", "ghost") in profs
    assert ("StencilBlock", "start") in profs
    assert profs[("StencilBlock", "start")].calls == 16
