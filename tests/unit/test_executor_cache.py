"""Unit tests for the sweep executor and the content-addressed run cache.

All specs here use a tiny mesh (64x64) and few steps so each run takes
milliseconds; the executor semantics under test — ordering, cache
round-trips, failure isolation — are size-independent.
"""

import json
import os

from repro.bench.cache import RunCache, spec_key
from repro.bench.executor import (
    JOBS_ENV,
    SweepStats,
    default_jobs,
    run_sweep,
)
from repro.bench.specs import RunSpec

import pytest


def tiny_spec(**overrides):
    base = dict(kind="stencil", experiment="test", pes=2, objects=4,
                latency_ms=0.0, steps=2, mesh=(64, 64))
    base.update(overrides)
    return RunSpec(**base)


def tiny_specs():
    return [tiny_spec(latency_ms=lat) for lat in (0.0, 2.0, 4.0)]


# -- spec keys ---------------------------------------------------------------


def test_spec_key_is_stable():
    assert spec_key(tiny_spec()) == spec_key(tiny_spec())


def test_spec_key_changes_with_config():
    keys = {spec_key(tiny_spec()),
            spec_key(tiny_spec(latency_ms=1.0)),
            spec_key(tiny_spec(steps=3)),
            spec_key(tiny_spec(seed=1, environment="teragrid")),
            spec_key(tiny_spec(objects=16))}
    assert len(keys) == 5


def test_spec_key_changes_with_version():
    assert spec_key(tiny_spec(), version="0.0.1") != \
        spec_key(tiny_spec(), version="0.0.2")


def test_spec_key_ignores_irrelevant_fields():
    # A stencil spec's key must not depend on the LeanMD-only fields.
    assert spec_key(tiny_spec()) == spec_key(tiny_spec(cells=(9, 9, 9)))


def test_spec_rejects_unknown_kind():
    with pytest.raises(ValueError):
        tiny_spec(kind="fluid")


def test_classic_kind_keys_unchanged_by_routing_defaults():
    # Pre-existing stencil/leanmd cache keys (and the committed
    # trajectory digests) must survive the routing knobs: default
    # routing/wan_streams stay out of a classic kind's config dict.
    config = tiny_spec().config()
    assert "routing" not in config
    assert "wan_streams" not in config
    assert "payload_bytes" not in config


def test_classic_kind_keys_change_with_non_default_routing():
    keys = {spec_key(tiny_spec()),
            spec_key(tiny_spec(routing="hierarchical")),
            spec_key(tiny_spec(routing="hierarchical", wan_streams=4))}
    assert len(keys) == 3


def test_collectives_spec_key_varies_by_variant():
    def coll(**overrides):
        base = dict(kind="collectives", experiment="fig3c", pes=8,
                    objects=64, latency_ms=8.0, steps=4)
        base.update(overrides)
        return RunSpec(**base)

    keys = {spec_key(coll()),
            spec_key(coll(routing="hierarchical")),
            spec_key(coll(routing="hierarchical", wan_streams=4)),
            spec_key(coll(payload_bytes=1024))}
    assert len(keys) == 4
    config = coll().config()
    assert config["routing"] == "flat"
    assert config["wan_streams"] == 0


def test_classic_kind_keys_unchanged_by_pdes_defaults():
    # Same stability contract for the ISSUE-10 knobs: the serial engine
    # and numpy kernels are the defaults, so they stay out of every
    # pre-existing spec's key material.
    config = tiny_spec().config()
    assert "engine_shards" not in config
    assert "kernel" not in config
    assert spec_key(tiny_spec()) == \
        spec_key(tiny_spec(engine_shards=0, kernel="numpy"))


def test_spec_key_changes_with_non_default_pdes_knobs():
    keys = {spec_key(tiny_spec()),
            spec_key(tiny_spec(engine_shards=4)),
            spec_key(tiny_spec(kernel="percell")),
            spec_key(tiny_spec(engine_shards=4, kernel="percell"))}
    assert len(keys) == 4
    config = tiny_spec(engine_shards=4, kernel="percell").config()
    assert config["engine_shards"] == 4
    assert config["kernel"] == "percell"


def test_pdes_knobs_are_stencil_only():
    with pytest.raises(ValueError):
        tiny_spec(kind="leanmd", engine_shards=2)
    with pytest.raises(ValueError):
        tiny_spec(kind="collectives", kernel="percell")


# -- cache -------------------------------------------------------------------


def test_cache_round_trip(tmp_path):
    cache = RunCache(str(tmp_path / "cache"))
    spec = tiny_spec()
    assert cache.get(spec) is None
    point = spec.run()
    cache.put(spec, point)
    assert cache.get(spec) == point
    assert cache.stats() == {"hits": 1, "misses": 1, "puts": 1,
                             "root": str(tmp_path / "cache")}


def test_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = RunCache(str(tmp_path / "cache"))
    spec = tiny_spec()
    cache.put(spec, spec.run())
    path = cache._path(spec_key(spec, cache.version))
    with open(path, "w") as fh:
        fh.write("{not json")
    assert cache.get(spec) is None


def test_cache_version_bump_invalidates(tmp_path):
    root = str(tmp_path / "cache")
    old = RunCache(root, version="0.1.0")
    spec = tiny_spec()
    old.put(spec, spec.run())
    assert old.get(spec) is not None
    new = RunCache(root, version="0.2.0")
    assert new.get(spec) is None   # same config, new code version


def test_cache_entry_is_readable_json(tmp_path):
    cache = RunCache(str(tmp_path / "cache"))
    spec = tiny_spec()
    cache.put(spec, spec.run())
    path = cache._path(spec_key(spec, cache.version))
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["config"] == spec.config()
    assert doc["point"]["time_per_step"] > 0


# -- executor ----------------------------------------------------------------


def test_run_sweep_preserves_spec_order():
    specs = tiny_specs()
    points = run_sweep(specs)
    assert [p.latency_ms for p in points] == [s.latency_ms for s in specs]


def test_run_sweep_parallel_matches_serial():
    specs = tiny_specs()
    assert run_sweep(specs, jobs=1) == run_sweep(specs, jobs=2)


def test_run_sweep_stats_counts(tmp_path):
    cache = RunCache(str(tmp_path / "cache"))
    specs = tiny_specs()
    first = SweepStats()
    run_sweep(specs, cache=cache, stats=first)
    assert (first.total, first.cache_hits, first.executed) == (3, 0, 3)
    assert first.errors == 0

    second = SweepStats()
    cached = run_sweep(specs, cache=cache, stats=second)
    assert (second.total, second.cache_hits, second.executed) == (3, 3, 0)
    assert second.cache_fraction == 1.0
    assert cached == run_sweep(specs)   # cache serves identical rows

    d = second.to_dict()
    assert d["cache_fraction"] == 1.0 and d["total"] == 3


def test_failed_spec_yields_error_row_and_siblings_complete():
    specs = [tiny_spec(latency_ms=0.0),
             tiny_spec(latency_ms=2.0, environment="bogus"),
             tiny_spec(latency_ms=4.0)]
    stats = SweepStats()
    points = run_sweep(specs, stats=stats)
    assert len(points) == 3
    assert points[0].time_per_step > 0 and points[2].time_per_step > 0
    assert points[1].time_per_step == float("inf")
    assert "bogus" in points[1].extra["error"]
    assert stats.errors == 1 and stats.error_labels


def test_failed_spec_in_worker_process_is_isolated():
    # Same failure through the ProcessPoolExecutor path: the bad config
    # produces an error row, its siblings complete on the pool.
    specs = [tiny_spec(latency_ms=0.0),
             tiny_spec(latency_ms=2.0, environment="bogus"),
             tiny_spec(latency_ms=4.0)]
    stats = SweepStats()
    points = run_sweep(specs, jobs=2, stats=stats)
    assert [p.time_per_step == float("inf") for p in points] == \
        [False, True, False]
    assert stats.errors == 1


def test_error_rows_are_never_cached(tmp_path):
    cache = RunCache(str(tmp_path / "cache"))
    bad = tiny_spec(environment="bogus")
    run_sweep([bad], cache=cache)
    assert cache.puts == 0
    assert cache.get(bad) is None   # a later fixed run re-executes


def test_progress_lines_cover_every_spec(tmp_path):
    cache = RunCache(str(tmp_path / "cache"))
    lines = []
    run_sweep(tiny_specs(), cache=cache, progress=lines.append)
    assert len(lines) == 3 and all("ms/step" in ln for ln in lines)
    lines.clear()
    run_sweep(tiny_specs(), cache=cache, progress=lines.append)
    assert len(lines) == 3 and all("cached" in ln for ln in lines)


def test_default_jobs_env_override(monkeypatch):
    monkeypatch.delenv(JOBS_ENV, raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv(JOBS_ENV, "4")
    assert default_jobs() == 4
    monkeypatch.setenv(JOBS_ENV, "0")
    assert default_jobs() == 1
    monkeypatch.setenv(JOBS_ENV, "nope")
    assert default_jobs() == 1


# -- concurrent trajectory appends ------------------------------------------


def test_trajectory_appends_survive_concurrent_writers(tmp_path):
    """Parallel sweep workers all append to the same trajectory file;
    the advisory lock + atomic rename must not lose or tear records."""
    import threading

    from repro.bench.trajectory import RunRecord, append_record, load_records

    path = str(tmp_path / "traj.json")
    n_threads, per_thread = 4, 5

    def writer(tid):
        for k in range(per_thread):
            rec = RunRecord(name=f"t{tid}-{k}", config={"tid": tid, "k": k},
                            time_per_step_s=0.001)
            append_record(rec, path=path)

    threads = [threading.Thread(target=writer, args=(t,))
               for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    records = load_records(path)
    assert len(records) == n_threads * per_thread
    names = {r.name for r in records}
    assert names == {f"t{t}-{k}" for t in range(n_threads)
                     for k in range(per_thread)}


def test_trajectory_append_is_atomic_on_disk(tmp_path):
    from repro.bench.trajectory import RunRecord, append_record, load_records

    path = str(tmp_path / "traj.json")
    append_record(RunRecord(name="a", config={}, time_per_step_s=1.0),
                  path=path)
    append_record(RunRecord(name="b", config={}, time_per_step_s=2.0),
                  path=path)
    # No stray tempfiles left behind; file parses whole.
    leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
    assert leftovers == []
    assert [r.name for r in load_records(path)] == ["a", "b"]
