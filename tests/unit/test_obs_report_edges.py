"""LatencyMaskingReport edge cases: degenerate runs must not blow up.

The report's ratios all have denominators that legitimately reach zero
(no WAN traffic, zero makespan, a single PE): each case must render,
serialize, and carry the matching degenerate label instead of raising.
"""

import pytest

from repro.obs.report import LatencyMaskingReport, build_report
from repro.sim.trace import TraceAggregator, Tracer


def _report(**overrides) -> LatencyMaskingReport:
    base = dict(makespan_s=1.0, pes=2, executions=4, busy_time_s=1.0,
                utilization={0: 0.5, 1: 0.5},
                top_entries=[("C", "a", 4, 1.0)],
                wan_windows=3, wan_flight_time_s=0.3,
                wan_masked_time_s=0.15, masked_fraction=0.5)
    base.update(overrides)
    return LatencyMaskingReport(**base)


class TestDegenerateLabels:
    def test_ordinary_run_has_no_label(self):
        assert _report().degenerate_label is None

    def test_no_wan_traffic(self):
        rep = _report(wan_windows=0, wan_flight_time_s=0.0,
                      wan_masked_time_s=0.0, masked_fraction=0.0)
        assert rep.degenerate_label == "no-wan-traffic"
        assert "no WAN traffic" in rep.render()
        assert rep.to_dict()["wan"]["degenerate"] == "no-wan-traffic"

    def test_windows_with_zero_flight_time_is_no_traffic(self):
        rep = _report(wan_windows=2, wan_flight_time_s=0.0,
                      wan_masked_time_s=0.0, masked_fraction=0.0)
        assert rep.degenerate_label == "no-wan-traffic"

    def test_fully_masked(self):
        rep = _report(wan_masked_time_s=0.3, masked_fraction=1.0)
        assert rep.degenerate_label == "fully-masked"
        assert "fully masked" in rep.render()

    def test_nothing_masked(self):
        rep = _report(wan_masked_time_s=0.0, masked_fraction=0.0)
        assert rep.degenerate_label == "nothing-masked"
        assert "nothing masked" in rep.render()


class TestNoDivideByZero:
    def test_zero_makespan(self):
        rep = _report(makespan_s=0.0, busy_time_s=0.0)
        assert rep.compute_fraction == 0.0
        rep.render()
        rep.to_dict()

    def test_zero_pes(self):
        rep = _report(pes=0, utilization={}, executions=0,
                      busy_time_s=0.0, top_entries=[])
        assert rep.mean_utilization == 0.0
        assert rep.compute_fraction == 0.0
        rep.render()

    def test_empty_aggregator_builds_and_renders(self):
        rep = build_report(TraceAggregator())
        assert rep.makespan_s == 0.0
        assert rep.masked_fraction == 0.0
        assert rep.degenerate_label == "no-wan-traffic"
        rep.render()
        rep.to_dict()

    def test_single_pe_no_wan(self):
        agg = TraceAggregator()
        agg.begin_execute(0, 0.0, "C", "a")
        agg.end_execute(0, 1.0)
        rep = build_report(agg)
        assert rep.pes == 1
        assert rep.degenerate_label == "no-wan-traffic"
        assert rep.utilization[0] == pytest.approx(1.0)
        rep.render()

    def test_batch_tracer_single_pe(self):
        tr = Tracer()
        tr.begin_execute(0, 0.0, "C", "a")
        tr.end_execute(0, 0.5)
        rep = build_report(tr)
        assert rep.degenerate_label == "no-wan-traffic"
        rep.render()


class TestCritpathSection:
    def test_absent_by_default(self):
        rep = _report()
        assert "critpath" not in rep.to_dict()
        assert "Critical path" not in rep.render()

    def test_present_when_attached(self):
        rep = _report()
        rep.critpath = {
            "compute_s": 0.9, "compute_share": 0.9,
            "wan_flight_s": 0.1, "wan_flight_share": 0.1,
            "queue_serial_s": 0.0, "queue_serial_share": 0.0,
            "retransmit_stall_s": 0.0, "retransmit_stall_share": 0.0,
            "knee": {"predicted_knee_ms": 8.0, "tolerance": 1.5},
        }
        text = rep.render()
        assert "Critical path (steady state)" in text
        assert "predicted knee" in text
        assert rep.to_dict()["critpath"]["knee"]["predicted_knee_ms"] == 8.0
