"""Unit tests for cost models and the calibration anchors."""

import pytest

from repro.apps.leanmd.costs import DEFAULT_LEANMD_COSTS, LeanMDCostModel
from repro.apps.stencil.costs import DEFAULT_STENCIL_COSTS, StencilCostModel
from repro.bench.calibration import DEFAULT_CALIBRATION
from repro.core.costs import CacheHierarchy, CachedLinearCost, LinearCost
from repro.errors import CalibrationError


# -- generic models ----------------------------------------------------------

def test_linear_cost():
    model = LinearCost(per_unit=2e-9, fixed=1e-6)
    assert model.cost(1000) == pytest.approx(3e-6)


def test_linear_cost_validation():
    with pytest.raises(CalibrationError):
        LinearCost(per_unit=-1.0)


def test_cache_factor_monotone():
    cache = CacheHierarchy()
    sizes = [2**k for k in range(10, 26)]
    factors = [cache.factor(s) for s in sizes]
    assert factors == sorted(factors)
    assert factors[0] == 1.0
    assert factors[-1] == pytest.approx(cache.dram_penalty)


def test_cache_factor_levels():
    cache = CacheHierarchy()
    assert cache.factor(cache.l2_bytes) == 1.0
    assert cache.factor(cache.l3_bytes) == pytest.approx(cache.l3_penalty)
    assert cache.factor(10 * cache.l3_bytes) == pytest.approx(
        cache.dram_penalty)


def test_cache_validation():
    with pytest.raises(CalibrationError):
        CacheHierarchy(l2_bytes=0)
    with pytest.raises(CalibrationError):
        CacheHierarchy(l3_bytes=1)  # l3 <= l2
    with pytest.raises(CalibrationError):
        CacheHierarchy(l3_penalty=0.9)
    with pytest.raises(CalibrationError):
        CacheHierarchy(l3_penalty=2.0, dram_penalty=1.5)


def test_cached_linear_cost_scales_with_working_set():
    model = CachedLinearCost(per_unit=1e-9, cache=CacheHierarchy(),
                             bytes_per_unit=16.0)
    small = model.cost_for(1000, 1000)
    big = model.cost_for(1000, 10**7)
    assert big > small


# -- stencil model ---------------------------------------------------------------

def test_stencil_block_cost_scales_with_cells():
    m = DEFAULT_STENCIL_COSTS
    assert m.compute_cost(256, 256) < m.compute_cost(512, 512)


def test_stencil_cache_anomaly_direction():
    """A 1024^2 block must cost more per cell than a 512^2 block."""
    m = DEFAULT_STENCIL_COSTS
    per_cell_512 = m.compute_cost(512, 512) / 512**2
    per_cell_1024 = m.compute_cost(1024, 1024) / 1024**2
    assert per_cell_1024 > per_cell_512 * 1.1


def test_stencil_ghost_and_send_costs():
    m = DEFAULT_STENCIL_COSTS
    assert m.ghost_cost(2048) == pytest.approx(
        m.ghost_fixed + 2048 * m.ghost_per_byte)
    assert m.send_cost(4) == pytest.approx(4 * m.send_fixed)


def test_stencil_cost_validation():
    with pytest.raises(CalibrationError):
        StencilCostModel(per_cell=0.0)
    with pytest.raises(CalibrationError):
        StencilCostModel(ghost_fixed=-1.0)


# -- leanmd model -----------------------------------------------------------------

def test_leanmd_pair_cost_scales():
    m = DEFAULT_LEANMD_COSTS
    assert m.pair_compute_cost(4096) > m.pair_compute_cost(2048)
    assert m.pair_compute_cost(0) == pytest.approx(m.pair_fixed)


def test_leanmd_other_costs():
    m = DEFAULT_LEANMD_COSTS
    assert m.integrate_cost(64) > m.integrate_cost(1)
    assert m.force_recv_cost(64) > m.msg_fixed
    assert m.multicast_cost(0) == pytest.approx(m.multicast_per_target)


def test_leanmd_cost_validation():
    with pytest.raises(CalibrationError):
        LeanMDCostModel(per_interaction=-1.0)


# -- calibration anchors ----------------------------------------------------------------

def test_anchor_stencil_sequential_step():
    """1-PE 2048^2 stencil step should land near 2x Table-1's 2-PE rows
    (~150 ms): the calibration's primary anchor."""
    t = DEFAULT_CALIBRATION.sequential_stencil_step()
    assert 0.120 < t < 0.190


def test_anchor_leanmd_sequential_step():
    """Paper: 'Each computation step is about 8 second[s] on a single
    processor.'"""
    t = DEFAULT_CALIBRATION.sequential_leanmd_step()
    assert 7.0 < t < 9.0


def test_anchor_teragrid_pingpong():
    """Paper: ping 1.725 ms, Charm++ ping-pong ~1.920 ms one-way."""
    link = DEFAULT_CALIBRATION.teragrid.link()
    assert link.latency == pytest.approx(1.725e-3)
    total = link.latency + link.per_message_overhead
    assert total == pytest.approx(1.920e-3, rel=0.01)
