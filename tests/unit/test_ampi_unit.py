"""Unit tests for AMPI datatypes, requests, and collective semantics."""

import numpy as np
import pytest

from repro.ampi.collectives import (
    check_uniform,
    compute_results,
    waiting_ranks,
)
from repro.ampi.datatypes import ANY_SOURCE, ANY_TAG, get_op, reduce_values
from repro.ampi.request import (
    CollectiveWait,
    NoWait,
    RecvWait,
    Request,
    RequestWait,
)
from repro.errors import AmpiError, CollectiveError


# -- datatypes / ops ---------------------------------------------------------

def test_ops_table():
    assert get_op("sum")(2, 3) == 5
    assert get_op("prod")(2, 3) == 6
    assert get_op("max")(2, 3) == 3
    assert get_op("min")(2, 3) == 2
    assert get_op("land")(True, False) is False
    assert get_op("lor")(True, False) is True


def test_ops_numpy_maxmin():
    assert np.array_equal(get_op("max")(np.array([1, 5]), np.array([3, 2])),
                          [3, 5])


def test_unknown_op():
    with pytest.raises(CollectiveError):
        get_op("median")


def test_reduce_values_rank_order():
    # String concat is order-sensitive: proves left-fold in rank order.
    assert reduce_values("sum", ["a", "b", "c"]) == "abc"


def test_reduce_values_empty():
    with pytest.raises(CollectiveError):
        reduce_values("sum", [])


# -- requests -----------------------------------------------------------------

def test_request_lifecycle():
    req = Request("recv", source=1, tag=2)
    assert not req.test()
    req.fulfill((1, 2, "data"))
    assert req.test()
    assert req.value == (1, 2, "data")


def test_request_double_fulfill_rejected():
    req = Request("recv")
    req.fulfill("x")
    with pytest.raises(AmpiError):
        req.fulfill("y")


def test_wait_descriptors_frozen():
    w = RecvWait(source=ANY_SOURCE, tag=ANY_TAG)
    assert w.source == ANY_SOURCE and w.tag == ANY_TAG
    assert NoWait(5).value == 5
    assert CollectiveWait(3).seq == 3
    assert RequestWait(requests=(Request("send"),)).wait_all


# -- collective result computation ------------------------------------------------

def test_barrier_results():
    assert compute_results("barrier", None, 0, [None, None]) == \
        {0: None, 1: None}


def test_bcast_results():
    assert compute_results("bcast", None, 1, ["ignored", "root-val"]) == \
        {0: "root-val", 1: "root-val"}


def test_reduce_results_root_only():
    out = compute_results("reduce", "sum", 1, [1, 2, 3])
    assert out == {1: 6}


def test_allreduce_results():
    out = compute_results("allreduce", "max", 0, [4, 9, 2])
    assert out == {0: 9, 1: 9, 2: 9}


def test_gather_results():
    out = compute_results("gather", None, 0, ["a", "b"])
    assert out == {0: ["a", "b"]}


def test_allgather_results():
    out = compute_results("allgather", None, 0, ["a", "b"])
    assert out == {0: ["a", "b"], 1: ["a", "b"]}


def test_scatter_results():
    out = compute_results("scatter", None, 0, [["x", "y"], None])
    assert out == {0: "x", 1: "y"}


def test_scatter_wrong_length_rejected():
    with pytest.raises(CollectiveError):
        compute_results("scatter", None, 0, [["only-one"], None])


def test_alltoall_results():
    values = [[f"{s}->{d}" for d in range(3)] for s in range(3)]
    out = compute_results("alltoall", None, 0, values)
    assert out[1] == ["0->1", "1->1", "2->1"]


def test_alltoall_validation():
    with pytest.raises(CollectiveError):
        compute_results("alltoall", None, 0, [["a"], ["b", "c"]])


def test_scan_results():
    out = compute_results("scan", "sum", 0, [1, 2, 3])
    assert out == {0: 1, 1: 3, 2: 6}


def test_unknown_kind():
    with pytest.raises(CollectiveError):
        compute_results("shuffle", None, 0, [1])
    with pytest.raises(CollectiveError):
        waiting_ranks("shuffle", 0, 2)


def test_waiting_ranks():
    assert waiting_ranks("barrier", 0, 3) == [0, 1, 2]
    assert waiting_ranks("allreduce", 0, 3) == [0, 1, 2]
    assert waiting_ranks("reduce", 1, 3) == [1]
    assert waiting_ranks("gather", 2, 3) == [2]
    assert waiting_ranks("scatter", 0, 3) == [0, 1, 2]


def test_check_uniform_accepts_matching():
    check_uniform("bcast", None, 0, [("bcast", None, 0)] * 3)


def test_check_uniform_rejects_mismatch():
    with pytest.raises(CollectiveError):
        check_uniform("bcast", None, 0,
                      [("bcast", None, 0), ("barrier", None, 0)])
