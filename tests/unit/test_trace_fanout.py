"""Sink-failure isolation in :class:`TraceFanout`.

A broken sink must neither corrupt nor silence its siblings, and its
error must surface to the caller exactly once.
"""

import pytest

from repro.sim.trace import TraceFanout


class _RecordingSink:
    enabled = True

    def __init__(self):
        self.events = []

    def begin_execute(self, pe, now, chare, entry, sid=None, parent=None,
                      trigger=None, obj=None):
        self.events.append(("begin", pe, now))

    def end_execute(self, pe, now):
        self.events.append(("end", pe, now))

    def message_sent(self, now, src_pe, dst_pe, size, tag, crossed_wan,
                     seq=None, cause=None, ack_for=None,
                     src_obj=None, dst_obj=None):
        self.events.append(("sent", src_pe, dst_pe))

    def message_delivered(self, now, src_pe, dst_pe, size, tag,
                          crossed_wan, seq=None, cause=None, ack_for=None,
                          src_obj=None, dst_obj=None):
        self.events.append(("delivered", src_pe, dst_pe))

    def message_dropped(self, now, src_pe, dst_pe, size, tag, crossed_wan,
                        seq=None, cause=None, ack_for=None,
                        src_obj=None, dst_obj=None):
        self.events.append(("dropped", src_pe, dst_pe))

    def note_retransmit(self):
        self.events.append(("retransmit",))

    def note_dup_suppressed(self):
        self.events.append(("dup",))


class _BrokenSink(_RecordingSink):
    def note_retransmit(self):
        raise RuntimeError("sink exploded")

    def end_execute(self, pe, now):
        raise RuntimeError("sink exploded again")


def test_broken_sink_does_not_silence_the_others():
    broken, healthy = _BrokenSink(), _RecordingSink()
    fan = TraceFanout([broken, healthy])
    with pytest.raises(RuntimeError, match="sink exploded"):
        fan.note_retransmit()
    # The healthy sink received the event despite the earlier sink dying.
    assert healthy.events == [("retransmit",)]


def test_error_surfaces_exactly_once_then_quarantine():
    broken, healthy = _BrokenSink(), _RecordingSink()
    fan = TraceFanout([broken, healthy])
    with pytest.raises(RuntimeError):
        fan.note_retransmit()
    # Subsequent calls skip the quarantined sink and stay silent.
    fan.note_retransmit()
    fan.note_dup_suppressed()
    assert healthy.events == [("retransmit",)] * 2 + [("dup",)]
    # The broken sink was never called again (its other raising method
    # would have thrown if it had been).
    fan.end_execute(0, 1.0)
    assert healthy.events[-1] == ("end", 0, 1.0)


def test_sibling_order_independent_isolation():
    # Broken sink listed last: earlier sinks already got the event, and
    # the error still propagates.
    healthy, broken = _RecordingSink(), _BrokenSink()
    fan = TraceFanout([healthy, broken])
    with pytest.raises(RuntimeError):
        fan.note_retransmit()
    assert healthy.events == [("retransmit",)]


def test_first_error_wins_when_multiple_sinks_raise():
    class _BrokenA(_BrokenSink):
        def note_retransmit(self):
            raise RuntimeError("A")

    class _BrokenB(_BrokenSink):
        def note_retransmit(self):
            raise RuntimeError("B")

    healthy = _RecordingSink()
    fan = TraceFanout([_BrokenA(), healthy, _BrokenB()])
    with pytest.raises(RuntimeError, match="^A$"):
        fan.note_retransmit()
    assert healthy.events == [("retransmit",)]
    # Both offenders quarantined; a later event reaches only the healthy
    # sink and raises nothing.
    fan.note_retransmit()
    assert healthy.events == [("retransmit",)] * 2


def test_enabled_reflects_quarantine():
    broken = _BrokenSink()
    fan = TraceFanout([broken])
    assert fan.enabled
    with pytest.raises(RuntimeError):
        fan.note_retransmit()
    assert not fan.enabled


def test_disabled_sinks_are_skipped_without_quarantine():
    healthy = _RecordingSink()
    healthy.enabled = False
    fan = TraceFanout([healthy])
    fan.note_retransmit()
    assert healthy.events == []
    healthy.enabled = True
    fan.note_retransmit()
    assert healthy.events == [("retransmit",)]


def test_all_event_kinds_fan_out():
    a, b = _RecordingSink(), _RecordingSink()
    fan = TraceFanout([a, b])
    fan.begin_execute(1, 0.5, "Chare", "entry")
    fan.end_execute(1, 0.6)
    fan.message_sent(0.7, 0, 1, 64, "t", True)
    fan.message_delivered(0.8, 0, 1, 64, "t", True)
    fan.message_dropped(0.9, 0, 1, 64, "t", True)
    fan.note_retransmit()
    fan.note_dup_suppressed()
    assert a.events == b.events
    assert len(a.events) == 7


# -- hop-ledger fan-out -------------------------------------------------------

class _HopAwareSink(_RecordingSink):
    def message_hops(self, now, src_pe, dst_pe, size, tag, crossed_wan,
                     seq, arrival, hops, relay_hop=0, arq_attempt=0):
        self.events.append(("hops", seq, len(hops)))


def test_message_hops_skips_sinks_without_the_method():
    plain, aware = _RecordingSink(), _HopAwareSink()
    fan = TraceFanout([plain, aware])
    fan.message_hops(0.1, 0, 4, 64, "t", True, 7, 0.2, ())
    assert aware.events == [("hops", 7, 0)]
    assert plain.events == []            # no AttributeError, just skipped


# -- close() ------------------------------------------------------------------

class _ClosableSink(_RecordingSink):
    def close(self):
        self.events.append(("close",))


class _BrokenCloseSink(_RecordingSink):
    def close(self):
        raise RuntimeError("close exploded")


def test_close_reaches_every_closable_sink():
    a, b, plain = _ClosableSink(), _ClosableSink(), _RecordingSink()
    fan = TraceFanout([a, plain, b])     # plain has no close(): skipped
    fan.close()
    assert a.events == [("close",)]
    assert b.events == [("close",)]
    assert plain.events == []


def test_close_skips_quarantined_sinks():
    broken, closable = _BrokenSink(), _ClosableSink()
    broken.close = lambda: (_ for _ in ()).throw(
        RuntimeError("must not be closed"))
    fan = TraceFanout([broken, closable])
    with pytest.raises(RuntimeError, match="sink exploded"):
        fan.note_retransmit()            # quarantines `broken`
    fan.close()                          # must not call broken.close
    assert closable.events == [("retransmit",), ("close",)]


def test_close_error_quarantines_but_closes_the_rest():
    broken, closable = _BrokenCloseSink(), _ClosableSink()
    fan = TraceFanout([broken, closable])
    with pytest.raises(RuntimeError, match="close exploded"):
        fan.close()
    # The sibling was still closed despite the earlier failure.
    assert closable.events == [("close",)]
    # The offender is quarantined for any further traffic.
    fan.note_retransmit()
    assert closable.events == [("close",), ("retransmit",)]
    assert broken.events == []
