"""Unit tests for the observability metrics registry."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)


# -- Counter / Gauge ---------------------------------------------------------

def test_counter_increments():
    c = Counter("x")
    c.inc()
    c.inc(5)
    assert c.value == 6


def test_counter_rejects_decrease():
    with pytest.raises(ConfigurationError):
        Counter("x").inc(-1)


def test_gauge_sets():
    g = Gauge("depth")
    g.set(3)
    g.set(1.5)
    assert g.value == 1.5


# -- Histogram ---------------------------------------------------------------

def test_histogram_bucket_boundaries():
    h = Histogram("d", least=1.0, growth=2.0)
    assert h.bucket_index(0.5) == -1      # underflow
    assert h.bucket_index(1.0) == 0
    assert h.bucket_index(1.999) == 0
    assert h.bucket_index(2.0) == 1
    assert h.bucket_index(4.0) == 2
    assert h.bucket_bounds(-1) == (0.0, 1.0)
    assert h.bucket_bounds(1) == (2.0, 4.0)


def test_histogram_stats():
    h = Histogram("d", least=1.0)
    for v in (0.0, 1.0, 3.0, 8.0):
        h.record(v)
    assert h.count == 4
    assert h.total == pytest.approx(12.0)
    assert h.mean == pytest.approx(3.0)
    assert h.min == 0.0
    assert h.max == 8.0
    d = h.to_dict()
    assert d["count"] == 4 and d["max"] == 8.0


def test_histogram_quantile_brackets_samples():
    h = Histogram("d", least=1.0, growth=2.0)
    for v in (1.0, 1.5, 3.0, 100.0):
        h.record(v)
    assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)
    assert h.quantile(1.0) == 100.0       # clipped to the observed max
    assert h.quantile(0.5) <= 4.0         # within the bucket covering 1.5
    assert Histogram("e").quantile(0.5) == 0.0


def test_histogram_rejects_bad_config_and_samples():
    with pytest.raises(ConfigurationError):
        Histogram("d", least=0.0)
    with pytest.raises(ConfigurationError):
        Histogram("d", growth=1.0)
    with pytest.raises(ConfigurationError):
        Histogram("d").record(-1.0)
    with pytest.raises(ConfigurationError):
        Histogram("d").quantile(1.5)


# -- MetricsRegistry ---------------------------------------------------------

def test_registry_get_or_create():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.gauge("b") is reg.gauge("b")
    assert reg.histogram("c") is reg.histogram("c")


def test_registry_rejects_cross_kind_collision():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ConfigurationError):
        reg.gauge("x")
    with pytest.raises(ConfigurationError):
        reg.histogram("x")


def test_registry_snapshot_merges_and_sorts():
    reg = MetricsRegistry()
    reg.counter("z.count").inc(2)
    reg.gauge("a.depth").set(7)
    reg.histogram("h", least=1.0).record(2.0)
    reg.register_collector("src", lambda: {"m.pulled": 42})
    snap = reg.snapshot()
    assert snap["z.count"] == 2
    assert snap["a.depth"] == 7
    assert snap["h.count"] == 1 and snap["h.mean"] == pytest.approx(2.0)
    assert snap["m.pulled"] == 42
    assert list(snap) == sorted(snap)


def test_registry_collector_replacement():
    reg = MetricsRegistry()
    reg.register_collector("src", lambda: {"v": 1})
    reg.register_collector("src", lambda: {"v": 2})
    assert reg.snapshot() == {"v": 2}


def test_registry_collector_name_clash_raises():
    reg = MetricsRegistry()
    reg.counter("v").inc()
    reg.register_collector("src", lambda: {"v": 9})
    with pytest.raises(ConfigurationError):
        reg.snapshot()


def test_registry_get_and_render():
    reg = MetricsRegistry()
    reg.counter("runs").inc(3)
    assert reg.get("runs") == 3
    assert reg.get("missing", default=0) == 0
    assert "runs" in reg.render()
    assert MetricsRegistry().render() == "(no metrics)"


def test_default_registry_is_singleton():
    assert default_registry() is default_registry()
