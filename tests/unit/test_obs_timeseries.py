"""Unit tests for the fixed-memory time series and the telemetry sampler."""

import pytest

from repro.apps.stencil import StencilApp
from repro.errors import ConfigurationError
from repro.grid.presets import artificial_latency_env
from repro.obs.timeseries import (
    SamplingPolicy,
    TimeSeries,
    render_sparkline,
)
from repro.units import ms


# -- TimeSeries ------------------------------------------------------------


def test_timeseries_records_points():
    ts = TimeSeries("x", capacity=8)
    for i in range(5):
        ts.add(float(i), float(i) * 2)
    assert len(ts) == 5
    assert ts.times() == [0.0, 1.0, 2.0, 3.0, 4.0]
    assert ts.values() == [0.0, 2.0, 4.0, 6.0, 8.0]
    assert ts.last == 8.0
    assert ts.bucket_count == 1


def test_timeseries_downsamples_at_capacity():
    ts = TimeSeries("x", capacity=4)
    for i in range(4):
        ts.add(float(i), float(i))
    # Hit capacity: merged into 2 points, bucket_count doubled.
    assert len(ts) == 2
    assert ts.bucket_count == 2
    assert ts.points == [(0.5, 0.5), (2.5, 2.5)]


def test_timeseries_memory_is_bounded():
    ts = TimeSeries("x", capacity=16)
    for i in range(10_000):
        ts.add(float(i), 1.0)
    assert len(ts) < 16
    assert ts.samples == 10_000
    # bucket_count is a power of two covering samples/capacity.
    assert ts.bucket_count >= 10_000 // 16
    assert ts.bucket_count & (ts.bucket_count - 1) == 0


def test_timeseries_downsampling_preserves_mean():
    ts = TimeSeries("x", capacity=8)
    values = [float(i % 7) for i in range(64)]
    for i, v in enumerate(values):
        ts.add(float(i), v)
    # Every point averages bucket_count raw samples, so the overall mean
    # of retained points equals the mean of fully-covered raw samples.
    covered = len(ts) * ts.bucket_count
    expect = sum(values[:covered]) / covered
    got = sum(ts.values()) / len(ts)
    assert got == pytest.approx(expect)


def test_timeseries_partial_bucket_shows_in_last():
    ts = TimeSeries("x", capacity=4)
    for i in range(4):
        ts.add(float(i), 0.0)  # forces bucket_count -> 2
    ts.add(10.0, 8.0)  # partial bucket, not yet a point
    assert ts.last == 8.0


def test_timeseries_capacity_validation():
    with pytest.raises(ConfigurationError):
        TimeSeries("x", capacity=3)  # odd
    with pytest.raises(ConfigurationError):
        TimeSeries("x", capacity=0)


def test_sparkline_shape_and_flat_input():
    assert render_sparkline([]) == ""
    assert render_sparkline([1.0, 1.0, 1.0]) == "▁▁▁"
    line = render_sparkline([float(i) for i in range(100)], width=20)
    assert len(line) == 20
    assert line[0] == "▁" and line[-1] == "█"


# -- SamplingPolicy --------------------------------------------------------


def test_sampling_policy_validation():
    with pytest.raises(ConfigurationError):
        SamplingPolicy(interval=0.0)
    with pytest.raises(ConfigurationError):
        SamplingPolicy(ema_alpha=0.0)
    with pytest.raises(ConfigurationError):
        SamplingPolicy(overhead_budget=-0.1)


# -- TelemetrySampler on a real run ---------------------------------------


def test_sampler_records_core_series():
    env = artificial_latency_env(4, ms(2.0), sampling=True)
    app = StencilApp(env, mesh=(256, 256), objects=16, payload="modeled")
    app.run(4)
    names = set(env.sampler.series)
    for expected in ("util.mean_ema", "util.max_ema", "idle.fraction_ema",
                     "queue.depth", "wan.in_flight", "wan.retransmit_rate",
                     "wan.masked_fraction"):
        assert expected in names
    assert {f"pe.{i}.util_ema" for i in range(4)} <= names
    assert env.sampler.ticks > 0
    for s in env.sampler.series.values():
        assert len(s) <= s.capacity


def test_sampler_does_not_change_virtual_results():
    def run(**kwargs):
        env = artificial_latency_env(4, ms(2.0), **kwargs)
        app = StencilApp(env, mesh=(256, 256), objects=16,
                         payload="modeled")
        return app.run(4)

    bare = run()
    sampled = run(sampling=SamplingPolicy(interval=0.5e-3))
    assert sampled.time_per_step == bare.time_per_step
    assert list(sampled.step_times) == list(bare.step_times)


def test_sampler_masked_fraction_matches_aggregator():
    env = artificial_latency_env(4, ms(2.0), sampling=True)
    app = StencilApp(env, mesh=(256, 256), objects=16, payload="modeled")
    app.run(4)
    series = env.sampler.series["wan.masked_fraction"]
    assert series.values()[-1] == pytest.approx(
        env.aggregator.masked_latency_fraction, abs=0.05)


def test_sampler_summary_is_json_friendly():
    import json

    env = artificial_latency_env(4, ms(2.0), health=True)
    app = StencilApp(env, mesh=(256, 256), objects=16, payload="modeled")
    app.run(4)
    summary = env.sampler.summary()
    json.dumps(summary)  # must not raise
    assert summary["ticks"] == env.sampler.ticks
    assert "util.mean_ema" in summary["series"]


def test_sampler_stop_halts_sampling():
    env = artificial_latency_env(4, ms(2.0), sampling=True)
    app = StencilApp(env, mesh=(256, 256), objects=16, payload="modeled")
    env.sampler.stop()
    app.run(4)
    assert env.sampler.ticks == 0


def test_sampler_pause_keeps_heartbeat_but_records_nothing():
    env = artificial_latency_env(4, ms(2.0), sampling=True)
    app = StencilApp(env, mesh=(256, 256), objects=16, payload="modeled")
    env.sampler.pause()
    app.run(4)
    # Paused: no recorded ticks, no series — but the tick heartbeat kept
    # firing (cost accrues from the two clock reads per tick), which is
    # what lets the governor observe calm and recover.
    assert env.sampler.ticks == 0
    assert not env.sampler.series
    assert env.sampler.recording is False
    assert env.sampler.enabled is True


def test_sampler_resume_restarts_recording():
    env = artificial_latency_env(4, ms(2.0), sampling=True)
    app = StencilApp(env, mesh=(256, 256), objects=16, payload="modeled")
    env.sampler.pause()
    app.run(2)
    assert env.sampler.ticks == 0
    env.sampler.resume()
    env.sampler.resume()  # idempotent
    app.run(2)
    assert env.sampler.ticks > 0
    assert "util.mean_ema" in env.sampler.series
