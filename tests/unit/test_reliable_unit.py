"""Unit tests for the ack/retransmit ReliableTransport."""

import pytest

from repro.errors import ConfigurationError, NetworkError, RetransmitError
from repro.network.chain import DeviceChain
from repro.network.devices import (
    ChainDevice,
    LanDevice,
    LoopbackDevice,
    ProcessResult,
    ShmemDevice,
    WanDevice,
)
from repro.network.fabric import NetworkFabric
from repro.network.links import myrinet_like, shared_memory
from repro.network.message import Message
from repro.network.reliable import ReliableTransport, RetransmitPolicy
from repro.network.topology import GridTopology
from repro.sim.engine import Engine


class ScriptedLossDevice(ChainDevice):
    """Deterministically drop/duplicate chosen wire copies.

    ``drop_first`` drops that many matching messages; ``dup_first``
    duplicates that many of the survivors.  ``match`` selects which
    traffic is subject (default: cross-cluster data, leaving acks alone).
    """

    name = "scripted-loss"

    def __init__(self, drop_first=0, dup_first=0, match=None):
        self.drop_left = drop_first
        self.dup_left = dup_first
        self.match = match or (
            lambda m, topo: not topo.same_cluster(m.src_pe, m.dst_pe)
            and not m.tag.startswith("ack:"))

    def process(self, msg, topo, rng, *, record=True):
        if not record or not self.match(msg, topo):
            return ProcessResult(message=msg)
        if self.drop_left > 0:
            self.drop_left -= 1
            return ProcessResult(message=msg, dropped=True)
        if self.dup_left > 0:
            self.dup_left -= 1
            return ProcessResult(message=msg, duplicates=1)
        return ProcessResult(message=msg)


def make_transport(device=None, policy=None):
    devices = [LoopbackDevice(shared_memory(name="loopback")),
               ShmemDevice(shared_memory()),
               LanDevice(myrinet_like())]
    if device is not None:
        devices.append(device)
    devices.append(WanDevice(myrinet_like(name="wan")))
    topo = GridTopology.two_cluster(4)
    engine = Engine()
    fabric = NetworkFabric(engine, topo, DeviceChain(devices))
    return engine, ReliableTransport(fabric, policy)


def wan_msg(tag="data"):
    return Message(src_pe=0, dst_pe=2, size_bytes=1000, tag=tag)


# -- policy validation --------------------------------------------------------

@pytest.mark.parametrize("kwargs", [dict(ack_bytes=-1),
                                    dict(rto_min=0.0),
                                    dict(rto_min=2.0, rto_max=1.0),
                                    dict(backoff=0.5),
                                    dict(initial_rto_factor=0.0),
                                    dict(max_retries=-1)])
def test_policy_validation(kwargs):
    with pytest.raises(ConfigurationError):
        RetransmitPolicy(**kwargs)


# -- bypass and the clean path -------------------------------------------------

def test_local_traffic_bypasses_protocol():
    engine, rel = make_transport()
    got = []
    rel.send(Message(src_pe=0, dst_pe=1, size_bytes=10), got.append)
    engine.run()
    assert len(got) == 1
    assert rel.rstats.transfers == 0
    assert rel.rstats.acks_sent == 0


def test_clean_wan_transfer_acks_and_samples_rtt():
    engine, rel = make_transport()
    got = []
    rel.send(wan_msg(), got.append)
    engine.run()
    assert len(got) == 1
    r = rel.rstats
    assert (r.transfers, r.acked, r.retransmits) == (1, 1, 0)
    assert r.acks_sent == 1
    assert r.rtt_samples == 1
    assert rel.in_flight == 0


def test_no_timer_garbage_after_clean_transfer():
    """The cancelled retransmit timer must not count as pending work
    (quiescence detection requires engine.pending == 0)."""
    engine, rel = make_transport()
    rel.send(wan_msg(), lambda m: None)
    engine.run()
    assert engine.pending == 0


# -- loss recovery -------------------------------------------------------------

def test_lost_data_is_retransmitted_and_delivered_once():
    engine, rel = make_transport(ScriptedLossDevice(drop_first=2))
    got = []
    rel.send(wan_msg(), got.append)
    engine.run()
    assert len(got) == 1
    assert rel.rstats.retransmits == 2
    assert rel.rstats.acked == 1
    assert rel.in_flight == 0


def test_lost_ack_triggers_retransmit_but_single_delivery():
    drops_acks = ScriptedLossDevice(
        drop_first=1,
        match=lambda m, topo: m.tag.startswith("ack:"))
    engine, rel = make_transport(drops_acks)
    got = []
    rel.send(wan_msg(), got.append)
    engine.run()
    assert len(got) == 1                      # dedup swallowed the resend
    assert rel.rstats.retransmits == 1
    assert rel.rstats.dups_suppressed == 1
    assert rel.rstats.acks_sent == 2          # receiver re-acked the dup


def test_wire_duplicate_suppressed():
    engine, rel = make_transport(ScriptedLossDevice(dup_first=1))
    got = []
    rel.send(wan_msg(), got.append)
    engine.run()
    assert len(got) == 1
    assert rel.rstats.dups_suppressed == 1
    assert rel.rstats.retransmits == 0


def test_karns_rule_skips_retransmitted_samples():
    engine, rel = make_transport(ScriptedLossDevice(drop_first=1))
    rel.send(wan_msg(), lambda m: None)
    engine.run()
    assert rel.rstats.acked == 1
    assert rel.rstats.rtt_samples == 0        # ambiguous RTT, no sample


def test_rto_adapts_from_samples():
    engine, rel = make_transport()
    first = rel._first_rto(wan_msg())
    rel.send(wan_msg(), lambda m: None)
    engine.run()
    assert rel.rstats.rtt_samples == 1
    adapted = rel._first_rto(wan_msg())
    assert adapted != first                   # now driven by SRTT/RTTVAR
    assert adapted >= rel.policy.rto_min


# -- giving up ----------------------------------------------------------------

def test_black_hole_raises_network_error():
    dead = ScriptedLossDevice(drop_first=10**9)
    policy = RetransmitPolicy(max_retries=3)
    engine, rel = make_transport(dead, policy)
    rel.send(wan_msg(), lambda m: None)
    with pytest.raises(RetransmitError) as exc_info:
        engine.run()
    assert isinstance(exc_info.value, NetworkError)
    assert "undelivered" in str(exc_info.value)
    assert rel.rstats.failures == 1
    assert rel.rstats.retransmits == 3
    assert rel.in_flight == 0


def test_backoff_grows_and_caps():
    policy = RetransmitPolicy(max_retries=6, rto_max=1.0)
    dead = ScriptedLossDevice(drop_first=10**9)
    engine, rel = make_transport(dead, policy)
    msg = wan_msg()
    rel.send(msg, lambda m: None)
    rtos = []
    try:
        while True:
            pend = rel._pending.get(msg.seq)
            if pend is None:
                break
            rtos.append(pend.rto)
            engine.step()
    except RetransmitError:
        pass
    deltas = [b / a for a, b in zip(rtos, rtos[1:])]
    assert any(d == pytest.approx(policy.backoff) for d in deltas)
    assert all(r <= policy.rto_max + 1e-12 for r in rtos)


# -- misc ----------------------------------------------------------------------

def test_reset_stats_clears_both_layers():
    engine, rel = make_transport()
    rel.send(wan_msg(), lambda m: None)
    engine.run()
    assert rel.rstats.transfers == 1
    rel.reset_stats()
    assert rel.rstats.transfers == 0
    assert rel.stats.total_messages == 0


def test_send_returns_inf_when_first_copy_dropped():
    import math
    engine, rel = make_transport(ScriptedLossDevice(drop_first=1))
    got = []
    arrival = rel.send(wan_msg(), got.append)
    assert math.isinf(arrival)
    engine.run()
    assert len(got) == 1                      # retransmit still delivered
