"""Unit tests for the numpy block kernels vs their per-cell references."""

import numpy as np
import pytest

from repro.apps.leanmd.forces import pair_forces, self_forces
from repro.apps.leanmd.reference import (
    pair_forces_percell,
    self_forces_percell,
)
from repro.apps.leanmd.system import MdParams
from repro.apps.stencil.chares import KERNEL_MODES, StencilRunConfig
from repro.apps.stencil.kernel import (
    jacobi_step,
    jacobi_step_into,
    make_initial_mesh,
)
from repro.apps.stencil.reference import (
    jacobi_step_percell,
    run_reference,
    run_reference_percell,
)
from repro.errors import ConfigurationError


def _padded(rows, cols, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((rows, cols))


# -- stencil: in-place block kernel ----------------------------------------


@pytest.mark.parametrize("shape", [(3, 3), (4, 7), (5, 5), (9, 4), (33, 17)])
def test_jacobi_step_into_bitwise_equals_expression_form(shape):
    padded = _padded(*shape)
    out = np.empty((shape[0] - 2, shape[1] - 2))
    result = jacobi_step_into(padded, out)
    assert result is out
    expected = jacobi_step(padded)
    assert np.array_equal(out, expected)  # bit-equal, not just close


def test_jacobi_step_into_rejects_bad_shapes():
    with pytest.raises(ValueError):
        jacobi_step_into(np.zeros((2, 5)), np.zeros((0, 3)))
    with pytest.raises(ValueError):
        jacobi_step_into(np.zeros((5, 5)), np.zeros((4, 4)))


def test_jacobi_step_into_does_not_modify_input():
    padded = _padded(6, 6)
    before = padded.copy()
    jacobi_step_into(padded, np.empty((4, 4)))
    assert np.array_equal(padded, before)


# -- stencil: per-cell reference -------------------------------------------


@pytest.mark.parametrize("shape", [(3, 3), (5, 8), (7, 7), (12, 5)])
def test_jacobi_percell_bitwise_equals_numpy(shape):
    padded = _padded(*shape, seed=3)
    assert np.array_equal(jacobi_step_percell(padded), jacobi_step(padded))


def test_run_reference_percell_bitwise_equals_vectorized():
    mesh = make_initial_mesh(12, 9, seed=5)
    assert np.array_equal(run_reference_percell(mesh, 4),
                          run_reference(mesh, 4))


def test_kernel_modes_validated():
    assert set(KERNEL_MODES) == {"numpy", "percell"}
    with pytest.raises(ConfigurationError):
        StencilRunConfig(steps=1, payload="modeled", kernel="fortran")


# -- leanmd: pairwise kernels ----------------------------------------------


def _atoms(n, seed):
    rng = np.random.default_rng(seed)
    box = np.array([6.0, 6.0, 6.0])
    pos = rng.random((n, 3)) * box
    q = rng.uniform(-1.0, 1.0, size=n)
    return pos, q, box


def test_pair_forces_percell_matches_vectorized():
    params = MdParams()
    pos_a, q_a, box = _atoms(9, seed=1)
    pos_b, q_b, _ = _atoms(7, seed=2)
    f_a, f_b, pot = pair_forces(pos_a, pos_b, q_a, q_b, box, params)
    r_a, r_b, r_pot = pair_forces_percell(pos_a, pos_b, q_a, q_b, box,
                                          params)
    np.testing.assert_allclose(r_a, f_a, rtol=1e-12, atol=1e-9)
    np.testing.assert_allclose(r_b, f_b, rtol=1e-12, atol=1e-9)
    assert pot == pytest.approx(r_pot, rel=1e-12, abs=1e-12)


def test_self_forces_percell_matches_vectorized():
    params = MdParams()
    pos, q, box = _atoms(11, seed=4)
    f, pot = self_forces(pos, q, box, params)
    r_f, r_pot = self_forces_percell(pos, q, box, params)
    np.testing.assert_allclose(r_f, f, rtol=1e-12, atol=1e-9)
    assert pot == pytest.approx(r_pot, rel=1e-12, abs=1e-12)


def test_pair_forces_percell_newtons_third_law():
    params = MdParams()
    pos_a, q_a, box = _atoms(6, seed=7)
    pos_b, q_b, _ = _atoms(8, seed=8)
    f_a, f_b, _ = pair_forces_percell(pos_a, pos_b, q_a, q_b, box, params)
    np.testing.assert_allclose(f_a.sum(axis=0), -f_b.sum(axis=0),
                               atol=1e-9)
