"""Unit tests for the wall-clock self-profiler.

The two contracts that matter: aggregation is exact under an injected
clock, and the profiler is *invisible* to the simulation — virtual-time
results are bit-identical with it on or off.
"""

import pytest

from repro.apps.stencil import StencilApp
from repro.grid.presets import artificial_latency_env
from repro.obs.export import validate_chrome_trace
from repro.obs.profiler import (
    WallProfiler,
    classify_action,
    install_profiler,
)
from repro.sim.engine import Engine
from repro.units import ms


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


# -- classification --------------------------------------------------------


def test_classify_action_by_defining_module():
    from repro.core.scheduler import Scheduler
    from repro.network.fabric import NetworkFabric
    from repro.obs.timeseries import TelemetrySampler

    assert classify_action(Scheduler.deliver) == "scheduler"
    assert classify_action(NetworkFabric.send) == "network"
    assert classify_action(TelemetrySampler._tick) == "obs.telemetry"

    def local():
        return None

    assert classify_action(local) == "other"


def test_dispatch_buckets_key_on_the_underlying_function():
    prof = WallProfiler(clock=FakeClock())

    class Thing:
        def act(self):
            return None

    a, b = Thing(), Thing()
    prof.record_action(a.act, 1.0)
    prof.record_action(b.act, 2.0)
    # Two bound methods, one underlying function: one bucket, and both
    # events fold into the same phase at reporting time.
    assert len(prof._buckets) == 1
    (phase,) = prof.phase_table()
    assert prof.phase_table()[phase] == [2, 3.0]


# -- aggregation under an injected clock -----------------------------------


def test_summary_exact_with_fake_clock():
    clock = FakeClock()
    prof = WallProfiler(clock=clock)

    def act():
        return None

    prof.record_action(act, 2.0)
    prof.record_action(act, 1.0)
    with prof.section("analysis"):
        clock.t += 3.0
    clock.t = 10.0
    doc = prof.summary()
    assert doc["total_wall_s"] == 10.0
    assert doc["phases"]["other"] == {"calls": 2, "wall_s": 3.0,
                                      "share": 0.3}
    assert doc["phases"]["analysis"]["wall_s"] == 3.0
    assert doc["unaccounted_s"] == pytest.approx(4.0)
    assert doc["unaccounted_share"] == pytest.approx(0.4)


def test_nested_sources_excluded_from_unaccounted():
    clock = FakeClock()
    prof = WallProfiler(clock=clock)

    def act():
        return None

    prof.record_action(act, 8.0)
    prof.add_nested_source("trace.sinks", lambda: 5.0)
    clock.t = 10.0
    doc = prof.summary()
    # The nested 5 s refines the 8 s of dispatch, it does not add to it:
    # unaccounted is 10 - 8, not 10 - 13.
    assert doc["unaccounted_s"] == pytest.approx(2.0)
    assert doc["phases"]["trace.sinks"] == {"wall_s": 5.0, "share": 0.5,
                                            "nested": True}


def test_render_lists_phases_largest_first():
    clock = FakeClock()
    prof = WallProfiler(clock=clock)
    with prof.section("small"):
        clock.t += 1.0
    with prof.section("big"):
        clock.t += 5.0
    clock.t = 10.0
    text = prof.render()
    assert text.index("big") < text.index("small")
    assert "(unaccounted)" in text


# -- Chrome-trace export ---------------------------------------------------


def test_chrome_trace_events_validate_and_tile():
    clock = FakeClock()
    prof = WallProfiler(clock=clock)
    with prof.section("alpha"):
        clock.t += 4.0
    with prof.section("beta"):
        clock.t += 2.0
    prof.add_nested_source("trace.sinks", lambda: 1.0)
    clock.t = 10.0
    events = prof.chrome_trace_events(pid=7)
    validate_chrome_trace({"traceEvents": events})
    slices = [e for e in events if e["ph"] == "X" and e["tid"] == 0]
    root, phases = slices[0], slices[1:]
    assert root["name"] == "run" and root["dur"] == 10.0 * 1e6
    # Phase slices tile left-to-right, largest first, inside the root.
    assert [p["name"] for p in phases] == ["alpha", "beta"]
    cursor = 0.0
    for p in phases:
        assert p["ts"] == pytest.approx(cursor)
        cursor += p["dur"]
    assert cursor <= root["dur"]
    nested = [e for e in events if e.get("args", {}).get("nested")]
    assert [n["name"] for n in nested] == ["trace.sinks"]
    assert all(n["tid"] == 1 for n in nested)


# -- engine integration ----------------------------------------------------


def test_install_profiler_attaches_and_detaches():
    engine = Engine()
    prof = WallProfiler()
    install_profiler(engine, prof)
    assert engine.profiler is prof
    install_profiler(engine, None)
    assert engine.profiler is None


def test_profiled_engine_counts_every_event():
    engine = Engine()
    prof = WallProfiler()
    engine.profiler = prof
    fired = []
    for i in range(5):
        engine.post(float(i), fired.append, args=(i,))
    engine.run()
    assert fired == [0, 1, 2, 3, 4]
    calls = sum(int(b[0]) for b in prof.phase_table().values())
    assert calls == engine.events_processed == 5


def test_profiler_does_not_change_virtual_results():
    """The acceptance invariant: profiler off => bit-identical virtual
    time, and on => still bit-identical (it only reads the wall clock).
    """
    results = {}
    for profile in (False, True):
        env = artificial_latency_env(4, ms(2.0), profile=profile)
        app = StencilApp(env, mesh=(256, 256), objects=16,
                         payload="modeled")
        res = app.run(4)
        results[profile] = (list(res.step_times), env.now,
                            env.engine.events_processed)
    assert results[False] == results[True]
    # And the profiled run actually profiled something.
    env = artificial_latency_env(4, ms(2.0), profile=True)
    app = StencilApp(env, mesh=(256, 256), objects=16, payload="modeled")
    app.run(2)
    assert env.profiler is not None
    table = env.profiler.phase_table()
    assert sum(int(b[0]) for b in table.values()) > 0
    assert "scheduler" in table


def test_profiler_off_engine_has_no_hook_cost_path():
    env = artificial_latency_env(4, ms(2.0))
    assert env.profiler is None
    assert env.engine.profiler is None
