"""Unit tests for placement strategies."""

import pytest

from repro.core.mapping import (
    BlockMapping,
    ClusterSplitMapping,
    ExplicitMapping,
    RoundRobinMapping,
    grid2d_split_mapping,
    grid3d_split_mapping,
)
from repro.errors import ConfigurationError
from repro.network.topology import GridTopology


@pytest.fixture
def topo():
    return GridTopology.two_cluster(4)


def idx1d(n):
    return [(i,) for i in range(n)]


def test_block_mapping_contiguous(topo):
    table = BlockMapping().assign(idx1d(8), topo)
    assert [table[(i,)] for i in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]


def test_block_mapping_uneven(topo):
    table = BlockMapping().assign(idx1d(6), topo)
    counts = [list(table.values()).count(pe) for pe in range(4)]
    assert sum(counts) == 6
    assert max(counts) - min(counts) <= 1


def test_block_mapping_fewer_elements_than_pes(topo):
    table = BlockMapping().assign(idx1d(2), topo)
    assert set(table.values()) <= set(range(4))
    assert len(set(table.values())) == 2


def test_round_robin(topo):
    table = RoundRobinMapping().assign(idx1d(8), topo)
    assert [table[(i,)] for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]


def test_explicit_mapping_passthrough(topo):
    table = ExplicitMapping({(0,): 3, (1,): 1}).assign(idx1d(2), topo)
    assert table == {(0,): 3, (1,): 1}


def test_explicit_mapping_missing_index(topo):
    with pytest.raises(ConfigurationError):
        ExplicitMapping({(0,): 0}).assign(idx1d(2), topo)


def test_explicit_mapping_bad_pe(topo):
    with pytest.raises(ConfigurationError):
        ExplicitMapping({(0,): 99}).assign(idx1d(1), topo)


def test_cluster_split_respects_clusters(topo):
    mapping = ClusterSplitMapping(lambda idx: 0 if idx[0] < 4 else 1)
    table = mapping.assign(idx1d(8), topo)
    for i in range(4):
        assert topo.cluster_of(table[(i,)]) == 0
    for i in range(4, 8):
        assert topo.cluster_of(table[(i,)]) == 1


def test_cluster_split_roundrobin_within(topo):
    mapping = ClusterSplitMapping(lambda idx: 0, within="roundrobin")
    table = mapping.assign(idx1d(4), topo)
    assert [table[(i,)] for i in range(4)] == [0, 1, 0, 1]


def test_cluster_split_bad_within():
    with pytest.raises(ConfigurationError):
        ClusterSplitMapping(lambda idx: 0, within="zigzag")


def test_cluster_split_bad_cluster(topo):
    mapping = ClusterSplitMapping(lambda idx: 7)
    with pytest.raises(ConfigurationError):
        mapping.assign(idx1d(2), topo)


def test_grid2d_split_columns(topo):
    # 4x4 object grid: columns 0-1 -> cluster 0, columns 2-3 -> cluster 1.
    indices = [(i, j) for i in range(4) for j in range(4)]
    table = grid2d_split_mapping(4, 4, topo).assign(indices, topo)
    for (i, j), pe in table.items():
        assert topo.cluster_of(pe) == (0 if j < 2 else 1)


def test_grid2d_split_single_cluster():
    topo = GridTopology.single_cluster(4)
    indices = [(i, j) for i in range(4) for j in range(4)]
    table = grid2d_split_mapping(4, 4, topo).assign(indices, topo)
    counts = [list(table.values()).count(pe) for pe in range(4)]
    assert counts == [4, 4, 4, 4]


def test_grid2d_balanced_within_clusters(topo):
    indices = [(i, j) for i in range(8) for j in range(8)]
    table = grid2d_split_mapping(8, 8, topo).assign(indices, topo)
    counts = [list(table.values()).count(pe) for pe in range(4)]
    assert counts == [16, 16, 16, 16]


def test_grid3d_split_axis(topo):
    indices = [(x, y, z) for x in range(4) for y in range(2)
               for z in range(2)]
    table = grid3d_split_mapping(4, topo, axis=0).assign(indices, topo)
    for (x, y, z), pe in table.items():
        assert topo.cluster_of(pe) == (0 if x < 2 else 1)


def test_grid3d_split_pairs_by_first_cell(topo):
    pairs = [(0, 0, 0, 3, 1, 1), (3, 0, 0, 3, 1, 1)]
    table = grid3d_split_mapping(4, topo, axis=0).assign(pairs, topo)
    assert topo.cluster_of(table[pairs[0]]) == 0
    assert topo.cluster_of(table[pairs[1]]) == 1


def test_all_mappings_total(topo):
    indices = idx1d(13)
    for mapping in (BlockMapping(), RoundRobinMapping(),
                    ClusterSplitMapping(lambda idx: idx[0] % 2)):
        table = mapping.assign(indices, topo)
        assert sorted(table) == sorted(indices)
        assert all(0 <= pe < 4 for pe in table.values())
