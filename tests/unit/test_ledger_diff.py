"""Unit tests for the run ledger and differential comparison.

The load-bearing invariant: ``repro compare``'s per-component deltas
sum to the total step-time delta with residual exactly 0.0 whenever the
underlying arithmetic is exact — identical records always, dyadic grids
by construction (the property suite covers those).
"""

import json
from types import SimpleNamespace

import pytest

from repro.bench.trajectory import RunRecord, append_record, load_records
from repro.obs.critpath import COMPONENTS
from repro.obs.diff import (
    compare_records,
    write_compare_trace,
)
from repro.obs.export import validate_chrome_trace
from repro.obs.ledger import (
    append_ledger,
    attribution_totals,
    health_rollup,
    ledger_key,
    load_stored,
    records_from_file,
    store_record,
)


def fake_step(wall, **components):
    vals = {k: 0.0 for k in COMPONENTS}
    vals.update(components)
    return SimpleNamespace(wall=wall, **vals)


def mk_record(name="r", *, steps=4, critpath=None, profile=None,
              tps=1.0, config=None, extra=None):
    cp = None
    if critpath is not None:
        cp = {"steps": steps, "wall_s": sum(critpath.values())}
        for k in COMPONENTS:
            cp[f"{k}_s"] = critpath.get(k, 0.0)
        cp["residual_s"] = 0.0
    return RunRecord(name=name, config=config or {"name": name},
                     time_per_step_s=tps, schema=2, critpath=cp,
                     profile=profile, extra=extra or {})


# -- attribution totals ----------------------------------------------------


def test_attribution_totals_preserve_partition():
    steps = [fake_step(3.0, compute=1.0, propagation=2.0),
             fake_step(1.5, compute=0.5, device_queue=1.0)]
    out = attribution_totals(steps)
    assert out["steps"] == 2
    assert out["wall_s"] == 4.5
    assert out["compute_s"] == 1.5
    assert out["propagation_s"] == 2.0
    assert out["device_queue_s"] == 1.0
    assert out["residual_s"] == 0.0
    # WIRE components only: propagation and device_queue, not compute.
    assert out["wan_flight_s"] == pytest.approx(3.0)


def test_health_rollup_counts_by_rule_and_severity():
    ev = [SimpleNamespace(rule="stall", severity="critical"),
          SimpleNamespace(rule="stall", severity="critical"),
          SimpleNamespace(rule="unmasking", severity="warning")]
    out = health_rollup(ev)
    assert out == {"events": 3,
                   "by_rule": {"stall": 2, "unmasking": 1},
                   "by_severity": {"critical": 2, "warning": 1}}
    assert health_rollup([]) is None


# -- content-addressed storage ---------------------------------------------


def test_ledger_key_ignores_wall_clock_fields():
    a = mk_record(critpath={"compute": 1.0}, profile={"phases": {}})
    b = mk_record(critpath={"compute": 1.0},
                  profile={"phases": {"scheduler": {"wall_s": 9.0}}},
                  extra={"obs_overhead": {"x": 1}})
    b.created = 12345.0
    assert ledger_key(a) == ledger_key(b)
    c = mk_record(critpath={"compute": 2.0})
    assert ledger_key(a) != ledger_key(c)


def test_store_record_idempotent_and_loadable(tmp_path):
    rec = mk_record(critpath={"compute": 1.0})
    root = str(tmp_path / "cache")
    p1 = store_record(rec, root=root)
    p2 = store_record(rec, root=root)
    assert p1 == p2
    loaded = load_stored(p1)
    assert loaded.same_run(rec)
    assert loaded.critpath == rec.critpath


def test_append_ledger_appends_and_stores(tmp_path):
    path = str(tmp_path / "ledger.json")
    rec = mk_record(critpath={"compute": 1.0})
    n1 = append_ledger(rec, path, cache_root=str(tmp_path / "c"))
    n2 = append_ledger(rec, path)
    assert (n1, n2) == (1, 2)   # dedup off by default: A/B files
    assert len(records_from_file(path)) == 2
    entry = load_stored(ledger_entry_path(tmp_path / "c", rec))
    assert entry.same_run(rec)


def ledger_entry_path(root, rec):
    key = ledger_key(rec)
    return str(root / "ledger" / key[:2] / (key + ".json"))


def test_records_from_file_accepts_all_shapes(tmp_path):
    rec = mk_record(critpath={"compute": 1.0})
    # single record dict
    single = tmp_path / "one.json"
    single.write_text(json.dumps(rec.to_dict()))
    assert records_from_file(str(single))[0].same_run(rec)
    # content-addressed entry
    path = store_record(rec, root=str(tmp_path / "c"))
    assert records_from_file(path)[0].same_run(rec)
    # trajectory array
    arr = tmp_path / "arr.json"
    append_record(rec, path=str(arr))
    assert records_from_file(str(arr))[0].same_run(rec)


# -- trajectory dedup ------------------------------------------------------


def test_append_record_dedups_identical_consecutive(tmp_path):
    path = str(tmp_path / "traj.json")
    rec = mk_record(critpath={"compute": 1.0})
    assert append_record(rec, path=path, dedup=True) == 1
    twin = mk_record(critpath={"compute": 1.0})
    twin.extra = {"obs_overhead": {"noise": 0.123}}   # wall-clock noise
    assert append_record(twin, path=path, dedup=True) == 1
    changed = mk_record(critpath={"compute": 1.0}, tps=2.0)
    assert append_record(changed, path=path, dedup=True) == 2
    # Escape hatch: dedup off appends even a byte-identical twin.
    assert append_record(twin, path=path, dedup=False) == 3


def test_dedup_only_collapses_the_last_record(tmp_path):
    path = str(tmp_path / "traj.json")
    a = mk_record("a", critpath={"compute": 1.0})
    b = mk_record("b", critpath={"compute": 2.0})
    append_record(a, path=path, dedup=True)
    append_record(b, path=path, dedup=True)
    # `a` again: the last record is `b`, so this appends (the dedup is
    # consecutive-only by design — A/B/A sequences are real data).
    assert append_record(mk_record("a", critpath={"compute": 1.0}),
                         path=path, dedup=True) == 3
    assert [r.name for r in load_records(path)] == ["a", "b", "a"]


# -- compare_records -------------------------------------------------------


def test_self_compare_is_exact_and_all_neutral():
    rec = mk_record(critpath={"compute": 1.0, "propagation": 0.375},
                    profile={"phases": {"scheduler": {"wall_s": 0.5}}},
                    extra={"net": {"wan_crossings": 8}})
    cmp = compare_records(rec, rec)
    assert cmp.residual_s == 0.0
    assert cmp.exact
    assert cmp.all_neutral
    assert cmp.delta_step_s == 0.0
    assert cmp.phases["scheduler"]["delta_s"] == 0.0
    assert cmp.net["wan_crossings"]["delta"] == 0


def test_component_deltas_sum_to_total_delta():
    base = mk_record("base", critpath={"compute": 4.0, "propagation": 2.0})
    cand = mk_record("cand", critpath={"compute": 4.0, "propagation": 3.0,
                                       "retransmit_stall": 1.0})
    cmp = compare_records(base, cand)
    assert cmp.residual_s == 0.0
    deltas = {c.component: c.delta_s for c in cmp.components}
    assert deltas["propagation"] == pytest.approx(0.25)      # /4 steps
    assert deltas["retransmit_stall"] == pytest.approx(0.25)
    assert cmp.delta_step_s == pytest.approx(0.5)
    assert cmp.verdict == "regressed"
    verdicts = {c.component: c.verdict for c in cmp.components}
    assert verdicts["propagation"] == "regressed"
    assert verdicts["retransmit_stall"] == "regressed"
    assert verdicts["compute"] == "neutral"


def test_improvement_verdict_and_threshold_scale():
    base = mk_record("base", critpath={"compute": 8.0, "propagation": 2.0})
    cand = mk_record("cand", critpath={"compute": 8.0, "propagation": 1.0})
    cmp = compare_records(base, cand)
    assert cmp.verdict == "improved"
    # A delta under threshold x baseline-total is neutral.
    tiny = mk_record("t", critpath={"compute": 8.0, "propagation": 1.99})
    assert compare_records(base, tiny).all_neutral


def test_compare_requires_critpath_payload():
    v1 = RunRecord(name="old", config={}, time_per_step_s=1.0)
    v2 = mk_record(critpath={"compute": 1.0})
    with pytest.raises(ValueError, match="no critpath payload"):
        compare_records(v1, v2)
    with pytest.raises(ValueError, match="candidate"):
        compare_records(v2, v1)


def test_compare_handles_different_step_counts():
    base = mk_record("base", steps=4, critpath={"compute": 4.0})
    cand = mk_record("cand", steps=8, critpath={"compute": 8.0})
    cmp = compare_records(base, cand)   # same 1.0 s/step on both sides
    assert cmp.delta_step_s == 0.0
    assert cmp.all_neutral


def test_compare_render_and_dict_shapes():
    base = mk_record("base", critpath={"compute": 4.0})
    cand = mk_record("cand", critpath={"compute": 6.0},
                     config={"name": "other"})
    cmp = compare_records(base, cand)
    text = cmp.render()
    assert "config digests differ" in text
    assert "total/step" in text and "residual" in text
    doc = cmp.to_dict()
    json.dumps(doc)
    assert doc["exact"] and not doc["all_neutral"]
    assert doc["total"]["verdict"] == "regressed"
    assert len(doc["components"]) == len(COMPONENTS)
    assert doc["residual_s"] == 0.0


def test_compare_chrome_trace_valid_and_two_sided(tmp_path):
    base = mk_record("base", critpath={"compute": 4.0, "propagation": 2.0})
    cand = mk_record("cand", critpath={"compute": 4.0, "propagation": 4.0})
    cmp = compare_records(base, cand)
    out = tmp_path / "cmp.trace.json"
    write_compare_trace(cmp, str(out))
    doc = json.loads(out.read_text())
    validate_chrome_trace(doc)
    pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert pids == {1, 2}
    # Each side's slices tile to its own step total.
    for pid, total in ((1, cmp.baseline_step_s), (2, cmp.candidate_step_s)):
        slices = [e for e in doc["traceEvents"]
                  if e["ph"] == "X" and e["pid"] == pid
                  and e["name"] != "step"]
        assert sum(e["dur"] for e in slices) == pytest.approx(total * 1e6)
