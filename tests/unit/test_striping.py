"""Unit tests for the striped WAN transport (MPWide-style streams)."""

import pytest

from repro.errors import ConfigurationError
from repro.network.devices import WanDevice
from repro.network.links import LinkModel
from repro.network.message import Message
from repro.network.striping import StripedDevice
from repro.network.topology import GridTopology


@pytest.fixture
def topo():
    return GridTopology.two_cluster(8, pes_per_node=2)


def make_link(latency=10e-3, bandwidth=1e6, overhead=0.0):
    return LinkModel("wan", latency=latency, bandwidth=bandwidth,
                     per_message_overhead=overhead)


def wan_msg(size, src=0, dst=4):
    return Message(src_pe=src, dst_pe=dst, size_bytes=size)


# -- construction -------------------------------------------------------------

def test_validation():
    with pytest.raises(ConfigurationError):
        StripedDevice(make_link(), streams=0)
    with pytest.raises(ConfigurationError):
        StripedDevice(make_link(), min_chunk_bytes=0)


def test_name_encodes_stream_count():
    assert StripedDevice(make_link(), streams=4).name == "wanx4"


def test_reaches_cross_cluster_only(topo):
    dev = StripedDevice(make_link())
    assert dev.reaches(0, 4, topo)
    assert not dev.reaches(0, 3, topo)     # same cluster
    assert not dev.reaches(0, 0, topo)


# -- chunking -----------------------------------------------------------------

def test_large_message_striped_over_all_streams(topo):
    dev = StripedDevice(make_link(), streams=4, min_chunk_bytes=4096)
    dev.transit(wan_msg(256 * 1024), topo, 0.0, None)
    assert dev.messages_carried == 1
    assert dev.chunks_sent == 4
    assert dev.bytes_carried == 256 * 1024


def test_small_message_rides_single_stream(topo):
    dev = StripedDevice(make_link(), streams=4, min_chunk_bytes=4096)
    dev.transit(wan_msg(100), topo, 0.0, None)
    assert dev.chunks_sent == 1


def test_chunk_count_respects_min_chunk_bytes(topo):
    dev = StripedDevice(make_link(), streams=8, min_chunk_bytes=4096)
    dev.transit(wan_msg(3 * 4096), topo, 0.0, None)
    assert dev.chunks_sent == 3     # 12 KB never splits into 8 tiny chunks


def test_striping_cuts_serialization_time(topo):
    # 1 MB at 1 MB/s = 1 s serialization on one stream; four streams
    # carry 256 KB each, so the last chunk lands ~0.75 s earlier.
    link = make_link(latency=10e-3, bandwidth=1e6)
    one = StripedDevice(make_link(latency=10e-3, bandwidth=1e6), streams=1)
    four = StripedDevice(link, streams=4)
    size = 1_000_000
    t1 = one.transit(wan_msg(size), topo, 0.0, None)
    t4 = four.transit(wan_msg(size), topo, 0.0, None)
    assert t1 == pytest.approx(10e-3 + 1.0)
    assert t4 == pytest.approx(10e-3 + 0.25)


def test_uncontended_small_message_matches_plain_wan(topo):
    # Below min_chunk_bytes the striped device must cost exactly what
    # the plain WAN does: striping never taxes latency-bound traffic.
    link = make_link(latency=5e-3, bandwidth=1e6, overhead=1e-4)
    plain = WanDevice(make_link(latency=5e-3, bandwidth=1e6, overhead=1e-4))
    striped = StripedDevice(link, streams=4, min_chunk_bytes=4096)
    msg = wan_msg(1000)
    assert striped.transit(msg, topo, 0.0, None) == pytest.approx(
        plain.transit(msg, topo, 0.0, None))


# -- pacing (FIFO per stream) -------------------------------------------------

def test_single_stream_messages_queue_fifo(topo):
    dev = StripedDevice(make_link(latency=10e-3, bandwidth=1e6), streams=1)
    size = 100_000                  # 0.1 s serialization each
    t1 = dev.transit(wan_msg(size), topo, 0.0, None)
    t2 = dev.transit(wan_msg(size), topo, 0.0, None)
    assert t1 == pytest.approx(10e-3 + 0.1)
    assert t2 == pytest.approx(10e-3 + 0.2)   # queued behind the first
    assert dev.queue_delay_total() == pytest.approx(0.1)


def test_directions_do_not_share_streams(topo):
    dev = StripedDevice(make_link(latency=10e-3, bandwidth=1e6), streams=1)
    size = 100_000
    fwd = dev.transit(wan_msg(size, src=0, dst=4), topo, 0.0, None)
    rev = dev.transit(wan_msg(size, src=4, dst=0), topo, 0.0, None)
    assert fwd == pytest.approx(rev)          # reverse path unaffected
    assert dev.queue_delay_total() == 0.0


def test_round_robin_advances_across_messages(topo):
    # Two 2-chunk messages on 4 streams: the second message lands on the
    # two still-idle streams, so neither queues.
    dev = StripedDevice(make_link(latency=10e-3, bandwidth=1e6),
                        streams=4, min_chunk_bytes=4096)
    size = 2 * 4096
    t1 = dev.transit(wan_msg(size), topo, 0.0, None)
    t2 = dev.transit(wan_msg(size), topo, 0.0, None)
    assert t1 == pytest.approx(t2)
    assert dev.queue_delay_total() == 0.0
    assert dev.chunks_sent == 4


def test_transit_is_deterministic(topo):
    def run():
        dev = StripedDevice(make_link(latency=3e-3, bandwidth=2e6),
                            streams=3, min_chunk_bytes=1024)
        sizes = [100, 5000, 70_000, 4096, 1_000_000]
        return [dev.transit(wan_msg(s), topo, float(i) * 1e-3, None)
                for i, s in enumerate(sizes)]

    assert run() == run()


# -- occupancy gauges ---------------------------------------------------------

def test_in_flight_counts_active_and_queued_chunks(topo):
    dev = StripedDevice(make_link(latency=10e-3, bandwidth=1e6), streams=1)
    size = 100_000                  # 0.1 s serialization each
    dev.transit(wan_msg(size), topo, 0.0, None)
    dev.transit(wan_msg(size), topo, 0.0, None)
    # At t=0.05 the first chunk is being serialized, the second queued.
    assert dev.in_flight(0.05) == 2
    # At t=0.15 only the queued chunk still holds the stream.
    assert dev.in_flight(0.15) == 1
    # After both serialization windows (0.2 s) nothing is in flight.
    assert dev.in_flight(0.25) == 0


def test_in_flight_sums_across_streams(topo):
    dev = StripedDevice(make_link(latency=10e-3, bandwidth=1e6),
                        streams=4, min_chunk_bytes=4096)
    dev.transit(wan_msg(4 * 100_000), topo, 0.0, None)
    assert dev.in_flight(0.05) == 4     # one 0.1 s chunk on each stream
    assert dev.in_flight(0.15) == 0


def test_stream_gauges_report_high_water_and_queueing(topo):
    dev = StripedDevice(make_link(latency=10e-3, bandwidth=1e6), streams=1)
    size = 100_000
    dev.transit(wan_msg(size), topo, 0.0, None)
    dev.transit(wan_msg(size), topo, 0.0, None)
    gauges = dev.stream_gauges()
    assert list(gauges) == ["wanx1[0->1]/s0"]
    g = gauges["wanx1[0->1]/s0"]
    assert g["reservations"] == 2
    assert g["high_water"] == 2          # second chunk queued behind first
    assert g["queue_delay_total"] == pytest.approx(0.1)


def test_stream_gauges_idle_streams_have_no_high_water(topo):
    dev = StripedDevice(make_link(latency=10e-3, bandwidth=1e6),
                        streams=4, min_chunk_bytes=4096)
    dev.transit(wan_msg(4 * 4096), topo, 0.0, None)
    gauges = dev.stream_gauges()
    assert len(gauges) == 4
    for g in gauges.values():
        assert g["reservations"] == 1
        assert g["high_water"] == 1      # never more than one chunk deep
        assert g["queue_delay_total"] == 0.0


def test_last_queue_depth_tracks_enqueue_instant(topo):
    dev = StripedDevice(make_link(latency=10e-3, bandwidth=1e6), streams=1)
    size = 100_000
    dev.transit(wan_msg(size), topo, 0.0, None)
    state = dev._direction(0, 1)
    assert state.streams[0].last_queue_depth == 0   # pipe was empty
    dev.transit(wan_msg(size), topo, 0.0, None)
    assert state.streams[0].last_queue_depth == 1   # behind the first


def test_reset_stats_clears_streams(topo):
    dev = StripedDevice(make_link(latency=10e-3, bandwidth=1e6), streams=1)
    dev.transit(wan_msg(100_000), topo, 0.0, None)
    dev.transit(wan_msg(100_000), topo, 0.0, None)
    assert dev.queue_delay_total() > 0.0
    dev.reset_stats()
    assert dev.messages_carried == 0
    assert dev.chunks_sent == 0
    assert dev.queue_delay_total() == 0.0
    # Stream occupancy is gone too: a fresh send does not queue.
    t = dev.transit(wan_msg(100_000), topo, 0.0, None)
    assert t == pytest.approx(10e-3 + 0.1)
