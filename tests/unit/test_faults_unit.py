"""Unit tests for WAN fault injection (FaultyDevice, LinkFlap)."""

import pytest

from repro.errors import ConfigurationError
from repro.grid.presets import artificial_latency_env
from repro.network.chain import DeviceChain
from repro.network.devices import LanDevice, LoopbackDevice, ShmemDevice, WanDevice
from repro.network.faults import FaultyDevice, LinkFlap
from repro.network.links import myrinet_like, shared_memory
from repro.network.message import Message
from repro.network.topology import GridTopology


@pytest.fixture
def topo():
    return GridTopology.two_cluster(4, pes_per_node=2)


def wan_msg(size=100):
    return Message(src_pe=0, dst_pe=2, size_bytes=size)


def lan_msg(size=100):
    return Message(src_pe=0, dst_pe=1, size_bytes=size)


# -- LinkFlap ----------------------------------------------------------------

def test_flap_down_at_windows():
    flap = LinkFlap([(2.0, 3.0), (0.0, 1.0)])   # unsorted on purpose
    assert flap.down_at(0.0)
    assert flap.down_at(0.5)
    assert not flap.down_at(1.0)    # end is exclusive
    assert not flap.down_at(1.5)
    assert flap.down_at(2.5)
    assert not flap.down_at(99.0)


def test_flap_periodic():
    flap = LinkFlap.periodic(10.0, 1.0, start=5.0, count=3)
    assert flap.windows == [(5.0, 6.0), (15.0, 16.0), (25.0, 26.0)]
    assert flap.down_at(15.5)
    assert not flap.down_at(26.5)


@pytest.mark.parametrize("windows", [[(1.0, 1.0)], [(2.0, 1.0)],
                                     [(-1.0, 1.0)]])
def test_flap_rejects_malformed_windows(windows):
    with pytest.raises(ConfigurationError):
        LinkFlap(windows)


def test_flap_periodic_rejects_bad_params():
    with pytest.raises(ConfigurationError):
        LinkFlap.periodic(1.0, 1.0)     # downtime must be < period
    with pytest.raises(ConfigurationError):
        LinkFlap.periodic(0.0, 0.5)


# -- FaultyDevice validation --------------------------------------------------

@pytest.mark.parametrize("kwargs", [dict(drop=-0.1), dict(drop=1.1),
                                    dict(dup=2.0), dict(reorder=-1.0)])
def test_faulty_rejects_bad_rates(kwargs):
    with pytest.raises(ConfigurationError):
        FaultyDevice(**kwargs)


def test_faulty_reorder_requires_delay():
    with pytest.raises(ConfigurationError):
        FaultyDevice(reorder=0.5)
    FaultyDevice(reorder=0.5, reorder_delay=1e-3)   # fine


# -- fault behaviour ----------------------------------------------------------

def test_certain_drop_counts_and_flags(topo):
    dev = FaultyDevice(drop=1.0, seed=1)
    res = dev.process(wan_msg(), topo, None)
    assert res.dropped
    assert dev.messages_dropped == 1


def test_certain_dup_and_reorder(topo):
    dev = FaultyDevice(dup=1.0, reorder=1.0, reorder_delay=1e-3, seed=1)
    res = dev.process(wan_msg(), topo, None)
    assert not res.dropped
    assert res.duplicates == 1
    assert res.added_delay > 0.0
    assert dev.messages_duplicated == 1
    assert dev.messages_reordered == 1


def test_local_traffic_untouched_and_consumes_no_draws(topo):
    dev = FaultyDevice(drop=1.0, dup=1.0, reorder=1.0, reorder_delay=1e-3,
                       seed=3)
    twin = FaultyDevice(drop=1.0, dup=1.0, reorder=1.0, reorder_delay=1e-3,
                        seed=3)
    res = dev.process(lan_msg(), topo, None)
    assert not res.dropped and res.duplicates == 0 and res.added_delay == 0.0
    assert dev.messages_dropped == 0
    # The local message consumed no RNG draws: the next WAN message gets
    # the same fate on both devices.
    assert (dev.process(wan_msg(), topo, None).added_delay
            == twin.process(wan_msg(), topo, None).added_delay)


def test_probe_passthrough_consumes_no_draws(topo):
    dev = FaultyDevice(drop=0.5, dup=0.5, reorder=0.5, reorder_delay=1e-3,
                       seed=5)
    twin = FaultyDevice(drop=0.5, dup=0.5, reorder=0.5, reorder_delay=1e-3,
                        seed=5)
    for _ in range(4):
        res = dev.process(wan_msg(), topo, None, record=False)
        assert not res.dropped and res.duplicates == 0
        assert res.added_delay == 0.0
    assert dev.messages_dropped == dev.messages_duplicated == 0
    # Probes advanced nothing: both streams still aligned.
    for _ in range(8):
        a = dev.process(wan_msg(), topo, None)
        b = twin.process(wan_msg(), topo, None)
        assert (a.dropped, a.duplicates, a.added_delay) == \
               (b.dropped, b.duplicates, b.added_delay)


def test_flap_drop_keys_on_sent_at(topo):
    dev = FaultyDevice(flap=LinkFlap([(1.0, 2.0)]), seed=0)
    inside = wan_msg()
    inside.sent_at = 1.5
    outside = wan_msg()
    outside.sent_at = 2.5
    assert dev.process(inside, topo, None).dropped
    assert not dev.process(outside, topo, None).dropped
    assert dev.messages_flap_dropped == 1
    assert dev.messages_dropped == 0    # counted apart from random drops


def test_same_seed_faults_identically(topo):
    def fates(seed):
        dev = FaultyDevice(drop=0.3, dup=0.2, reorder=0.3,
                           reorder_delay=1e-3, seed=seed)
        out = []
        for _ in range(40):
            r = dev.process(wan_msg(), topo, None)
            out.append((r.dropped, r.duplicates, r.added_delay))
        return out

    assert fates(11) == fates(11)
    assert fates(11) != fates(12)


def test_reset_stats(topo):
    dev = FaultyDevice(drop=1.0)
    dev.process(wan_msg(), topo, None)
    dev.reset_stats()
    assert dev.messages_dropped == 0


# -- chain-level aggregation --------------------------------------------------

def faulty_chain(**kwargs):
    return DeviceChain([
        LoopbackDevice(shared_memory(name="loopback")),
        ShmemDevice(shared_memory()),
        LanDevice(myrinet_like()),
        FaultyDevice(**kwargs),
        WanDevice(myrinet_like(name="wan")),
    ])


def test_route_carries_drop_flag(topo):
    chain = faulty_chain(drop=1.0, seed=0)
    route = chain.resolve(wan_msg(), topo, None)
    assert route.dropped


def test_route_carries_duplicates(topo):
    chain = faulty_chain(dup=1.0, seed=0)
    route = chain.resolve(wan_msg(), topo, None)
    assert not route.dropped
    assert route.duplicates == 1


def test_resolve_record_false_skips_faults_and_stats(topo):
    chain = faulty_chain(drop=1.0, seed=0)
    route = chain.resolve(wan_msg(), topo, None, record=False)
    assert not route.dropped
    faulty = chain.devices[3]
    assert faulty.messages_dropped == 0


# -- the probe-path regression (satellite bugfix) -----------------------------

def test_one_way_time_leaves_all_stats_untouched():
    """Model-only probes must not pollute any device's counters."""
    env = artificial_latency_env(4, 2e-3)
    devices = env.chain.devices
    for src, dst in [(0, 0), (0, 1), (0, 2), (2, 3)]:
        env.fabric.one_way_time(src, dst, 4096)
    for dev in devices:
        for attr in ("messages_carried", "bytes_carried",
                     "messages_delayed"):
            assert getattr(dev, attr, 0) == 0, (dev.name, attr)
    assert env.fabric.stats.total_messages == 0


def test_one_way_time_probe_matches_recorded_send():
    """The stats-free path must still compute the same transit time."""
    env = artificial_latency_env(4, 2e-3)
    probe = env.fabric.one_way_time(0, 2, 1000)
    arrivals = []
    msg = Message(src_pe=0, dst_pe=2, size_bytes=1000)
    env.fabric.send(msg, lambda m: arrivals.append(env.engine.now))
    env.engine.run()
    assert arrivals and arrivals[0] == pytest.approx(probe)
