"""Unit tests for LeanMD geometry, system, forces, integrator."""

import numpy as np
import pytest

from repro.apps.leanmd.forces import (
    interaction_count,
    pair_forces,
    self_forces,
)
from repro.apps.leanmd.geometry import (
    CellGrid,
    pair_index,
    split_pair,
)
from repro.apps.leanmd.integrator import integrate, kinetic_energy
from repro.apps.leanmd.reference import total_forces
from repro.apps.leanmd.system import MdParams, build_system
from repro.errors import ConfigurationError


# -- geometry: the paper's object counts ------------------------------------

def test_paper_benchmark_counts():
    """Paper §4: 216 cells and 3,024 cell pairs."""
    counts = CellGrid((6, 6, 6)).pair_counts()
    assert counts["cells"] == 216
    assert counts["pairs"] == 3024
    assert counts["neighbor_pairs"] == 2808
    assert counts["self_pairs"] == 216


def test_each_cell_has_26_neighbors_on_big_grid():
    grid = CellGrid((6, 6, 6))
    for cell in [(0, 0, 0), (3, 3, 3), (5, 5, 5)]:
        assert len(grid.neighbors(cell)) == 26


def test_pairs_of_cell_is_27_on_big_grid():
    """26 neighbour pairs + the self pair = the paper's multicast fanout."""
    grid = CellGrid((6, 6, 6))
    assert len(grid.pairs_of_cell((2, 3, 4))) == 27


def test_small_grid_dedups_wrapped_neighbors():
    grid = CellGrid((2, 2, 2))
    # All 7 other cells are neighbours; wraps collapse duplicates.
    assert len(grid.neighbors((0, 0, 0))) == 7
    counts = grid.pair_counts()
    assert counts["pairs"] == 8 * 7 // 2 + 8  # complete graph + self pairs


def test_degenerate_single_cell_grid():
    grid = CellGrid((1, 1, 1))
    assert grid.neighbors((0, 0, 0)) == []
    assert grid.pairs() == [(0, 0, 0, 0, 0, 0)]


def test_pair_index_canonical_order():
    assert pair_index((1, 0, 0), (0, 0, 0)) == (0, 0, 0, 1, 0, 0)
    assert pair_index((0, 0, 0), (1, 0, 0)) == (0, 0, 0, 1, 0, 0)
    assert split_pair((0, 0, 0, 1, 2, 3)) == ((0, 0, 0), (1, 2, 3))


def test_every_pair_contains_its_cells():
    grid = CellGrid((3, 3, 3))
    for cell in grid.cells():
        for p in grid.pairs_of_cell(cell):
            a, b = split_pair(p)
            assert cell in (a, b)


def test_wrap():
    grid = CellGrid((3, 3, 3))
    assert grid.wrap((-1, 3, 4)) == (2, 0, 1)


def test_bad_grid_shape():
    with pytest.raises(ConfigurationError):
        CellGrid((0, 2, 2))


def test_cell_out_of_range():
    with pytest.raises(ConfigurationError):
        CellGrid((2, 2, 2)).neighbors((5, 0, 0))


# -- system -----------------------------------------------------------------------

def test_build_system_deterministic():
    grid = CellGrid((2, 2, 2))
    a = build_system(grid, 4, seed=1)
    b = build_system(grid, 4, seed=1)
    assert np.array_equal(a.all_positions(), b.all_positions())
    assert not np.array_equal(
        a.all_positions(), build_system(grid, 4, seed=2).all_positions())


def test_atoms_confined_to_their_cells():
    grid = CellGrid((2, 3, 2))
    system = build_system(grid, 5, seed=0)
    cut = system.params.cutoff
    for cell, state in system.cells.items():
        origin = np.array(cell) * cut
        assert np.all(state.positions >= origin)
        assert np.all(state.positions <= origin + cut)


def test_system_totals():
    grid = CellGrid((2, 2, 2))
    system = build_system(grid, 4, seed=0)
    assert system.total_atoms == 32
    assert system.all_positions().shape == (32, 3)
    assert np.array_equal(system.box, [2.0, 2.0, 2.0])
    assert system.all_charges().sum() == 0.0  # alternating +-1


def test_build_system_validation():
    with pytest.raises(ConfigurationError):
        build_system(CellGrid((2, 2, 2)), 0)


def test_md_params_validation():
    with pytest.raises(ConfigurationError):
        MdParams(cutoff=-1.0)
    with pytest.raises(ConfigurationError):
        MdParams(dt=0.0)


# -- forces ---------------------------------------------------------------------------

@pytest.fixture
def two_cells():
    rng = np.random.default_rng(3)
    box = np.array([4.0, 4.0, 4.0])
    pos_a = rng.random((6, 3))
    pos_b = rng.random((5, 3)) + np.array([1.0, 0.0, 0.0])
    q_a = np.where(np.arange(6) % 2 == 0, 1.0, -1.0)
    q_b = np.where(np.arange(5) % 2 == 0, 1.0, -1.0)
    return pos_a, pos_b, q_a, q_b, box, MdParams()


def test_newtons_third_law(two_cells):
    pos_a, pos_b, q_a, q_b, box, params = two_cells
    f_a, f_b, _pot = pair_forces(pos_a, pos_b, q_a, q_b, box, params)
    assert np.allclose(f_a.sum(axis=0), -f_b.sum(axis=0), atol=1e-12)


def test_self_forces_momentum_conserving(two_cells):
    pos_a, _b, q_a, _qb, box, params = two_cells
    forces, _pot = self_forces(pos_a, q_a, box, params)
    assert np.allclose(forces.sum(axis=0), 0.0, atol=1e-9)


def test_forces_translation_invariant(two_cells):
    pos_a, pos_b, q_a, q_b, box, params = two_cells
    f1, g1, p1 = pair_forces(pos_a, pos_b, q_a, q_b, box, params)
    shift = np.array([0.37, -0.11, 0.05])
    f2, g2, p2 = pair_forces(pos_a + shift, pos_b + shift, q_a, q_b, box,
                             params)
    assert np.allclose(f1, f2, atol=1e-9)
    assert p1 == pytest.approx(p2, abs=1e-9)


def test_cutoff_respected():
    box = np.array([10.0, 10.0, 10.0])
    params = MdParams(cutoff=1.0)
    pos_a = np.array([[0.0, 0.0, 0.0]])
    pos_b = np.array([[3.0, 0.0, 0.0]])  # beyond cutoff, no wrap nearby
    f_a, f_b, pot = pair_forces(pos_a, pos_b, np.ones(1), np.ones(1), box,
                                params)
    assert np.all(f_a == 0.0) and np.all(f_b == 0.0) and pot == 0.0


def test_minimum_image_wraps():
    box = np.array([4.0, 4.0, 4.0])
    params = MdParams(cutoff=1.0)
    pos_a = np.array([[0.1, 0.0, 0.0]])
    pos_b = np.array([[3.9, 0.0, 0.0]])  # distance 0.2 across the wrap
    f_a, _f_b, pot = pair_forces(pos_a, pos_b, np.ones(1), np.ones(1), box,
                                 params)
    assert np.any(f_a != 0.0)
    assert pot != 0.0


def test_pair_matches_reference_direct_sum(two_cells):
    pos_a, pos_b, q_a, q_b, box, params = two_cells
    f_a, f_b, pot = pair_forces(pos_a, pos_b, q_a, q_b, box, params)
    fa_self, pot_a = self_forces(pos_a, q_a, box, params)
    fb_self, pot_b = self_forces(pos_b, q_b, box, params)
    all_pos = np.concatenate([pos_a, pos_b])
    all_q = np.concatenate([q_a, q_b])
    ref_f, ref_pot = total_forces(all_pos, all_q, box, params)
    assert np.allclose(np.concatenate([f_a + fa_self, f_b + fb_self]),
                       ref_f, atol=1e-9)
    assert pot + pot_a + pot_b == pytest.approx(ref_pot, abs=1e-9)


def test_interaction_count():
    assert interaction_count(4, 5, is_self=False) == 20
    assert interaction_count(4, 4, is_self=True) == 6


# -- integrator ------------------------------------------------------------------------------

def test_integrate_kick_drift():
    params = MdParams(dt=0.1, mass=2.0)
    box = np.array([10.0, 10.0, 10.0])
    pos = np.array([[1.0, 1.0, 1.0]])
    vel = np.array([[1.0, 0.0, 0.0]])
    forces = np.array([[2.0, 0.0, 0.0]])
    new_pos, new_vel = integrate(pos, vel, forces, box, params)
    assert np.allclose(new_vel, [[1.1, 0.0, 0.0]])
    assert np.allclose(new_pos, [[1.11, 1.0, 1.0]])
    assert np.array_equal(pos, [[1.0, 1.0, 1.0]])  # input untouched


def test_integrate_wraps_positions():
    params = MdParams(dt=1.0)
    box = np.array([2.0, 2.0, 2.0])
    pos = np.array([[1.9, 0.0, 0.0]])
    vel = np.array([[0.5, 0.0, 0.0]])
    new_pos, _ = integrate(pos, vel, np.zeros((1, 3)), box, params)
    assert new_pos[0, 0] == pytest.approx(0.4)


def test_integrate_shape_mismatch():
    params = MdParams()
    with pytest.raises(ValueError):
        integrate(np.zeros((2, 3)), np.zeros((2, 3)), np.zeros((3, 3)),
                  np.ones(3), params)


def test_kinetic_energy():
    params = MdParams(mass=2.0)
    vel = np.array([[1.0, 0.0, 0.0], [0.0, 2.0, 0.0]])
    assert kinetic_energy(vel, params) == pytest.approx(0.5 * 2 * (1 + 4))
