"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.engine import Engine


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_clock_custom_start():
    assert Engine(start_time=5.0).now == 5.0


def test_events_fire_in_time_order():
    eng = Engine()
    order = []
    eng.post(3.0, lambda: order.append("c"))
    eng.post(1.0, lambda: order.append("a"))
    eng.post(2.0, lambda: order.append("b"))
    eng.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_post_order():
    eng = Engine()
    order = []
    for i in range(10):
        eng.post(1.0, lambda i=i: order.append(i))
    eng.run()
    assert order == list(range(10))


def test_clock_advances_to_event_time():
    eng = Engine()
    seen = []
    eng.post(2.5, lambda: seen.append(eng.now))
    eng.run()
    assert seen == [2.5]
    assert eng.now == 2.5


def test_post_in_past_rejected():
    eng = Engine()
    eng.post(1.0, lambda: None)
    eng.run()
    with pytest.raises(SchedulingError):
        eng.post(0.5, lambda: None)


def test_post_in_negative_delay_rejected():
    with pytest.raises(SchedulingError):
        Engine().post_in(-1.0, lambda: None)


def test_post_in_relative():
    eng = Engine()
    seen = []
    eng.post(1.0, lambda: eng.post_in(0.5, lambda: seen.append(eng.now)))
    eng.run()
    assert seen == [1.5]


def test_events_scheduled_during_run_fire():
    eng = Engine()
    order = []

    def first():
        order.append("first")
        eng.post(eng.now, lambda: order.append("nested"))

    eng.post(1.0, first)
    eng.post(2.0, lambda: order.append("second"))
    eng.run()
    assert order == ["first", "nested", "second"]


def test_cancel_prevents_firing():
    eng = Engine()
    fired = []
    handle = eng.post(1.0, lambda: fired.append(1))
    eng.cancel(handle)
    eng.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_is_idempotent():
    eng = Engine()
    handle = eng.post(1.0, lambda: None)
    eng.cancel(handle)
    eng.cancel(handle)
    eng.run()


def test_run_until_stops_and_advances_clock():
    eng = Engine()
    fired = []
    eng.post(1.0, lambda: fired.append(1))
    eng.post(5.0, lambda: fired.append(5))
    eng.run(until=3.0)
    assert fired == [1]
    assert eng.now == 3.0
    eng.run()
    assert fired == [1, 5]


def test_run_until_inclusive_of_boundary():
    eng = Engine()
    fired = []
    eng.post(3.0, lambda: fired.append(3))
    eng.run(until=3.0)
    assert fired == [3]


def test_step_returns_false_when_empty():
    assert Engine().step() is False


def test_step_fires_single_event():
    eng = Engine()
    fired = []
    eng.post(1.0, lambda: fired.append(1))
    eng.post(2.0, lambda: fired.append(2))
    assert eng.step() is True
    assert fired == [1]


def test_max_events_guards_livelock():
    eng = Engine(max_events=10)

    def ping():
        eng.post_in(1.0, ping)

    eng.post(0.0, ping)
    with pytest.raises(SimulationError):
        eng.run()


def test_events_processed_counter():
    eng = Engine()
    for i in range(5):
        eng.post(float(i), lambda: None)
    eng.run()
    assert eng.events_processed == 5


def test_pending_counts_queue():
    eng = Engine()
    eng.post(1.0, lambda: None)
    eng.post(2.0, lambda: None)
    assert eng.pending == 2


def test_run_not_reentrant():
    eng = Engine()
    errors = []

    def reenter():
        try:
            eng.run()
        except SimulationError as exc:
            errors.append(exc)

    eng.post(1.0, reenter)
    eng.run()
    assert len(errors) == 1


def test_snapshot():
    eng = Engine()
    eng.post(1.0, lambda: None)
    now, pending, processed = eng.snapshot()
    assert (now, pending, processed) == (0.0, 1, 0)


def test_zero_delay_event_runs_after_earlier_same_time_posts():
    eng = Engine()
    order = []
    eng.post(1.0, lambda: order.append("a"))

    def at_one():
        order.append("b")
        eng.post_in(0.0, lambda: order.append("c"))

    eng.post(1.0, at_one)
    eng.run()
    assert order == ["a", "b", "c"]


# -- daemon events ---------------------------------------------------------


def test_daemon_event_fires_in_time_order():
    eng = Engine()
    order = []
    eng.post(1.0, lambda: order.append("daemon"), daemon=True)
    eng.post(2.0, lambda: order.append("work"))
    eng.run()
    assert order == ["daemon", "work"]


def test_daemon_events_excluded_from_pending():
    eng = Engine()
    eng.post(1.0, lambda: None, daemon=True)
    assert eng.pending == 0
    eng.post(2.0, lambda: None)
    assert eng.pending == 1


def test_run_terminates_when_only_daemons_remain():
    eng = Engine()
    ticks = []

    def tick():
        ticks.append(eng.now)
        eng.post_in(1.0, tick, daemon=True)

    eng.post_in(1.0, tick, daemon=True)
    eng.post(3.5, lambda: None)
    eng.run()
    # Ticks at 1, 2, 3 fired alongside the real event at 3.5; the tick
    # rescheduled past the last non-daemon event never runs.
    assert ticks == [1.0, 2.0, 3.0]
    assert eng.now == 3.5


def test_self_rescheduling_daemon_does_not_livelock_empty_run():
    eng = Engine()

    def tick():
        eng.post_in(1.0, tick, daemon=True)

    eng.post_in(1.0, tick, daemon=True)
    eng.run()  # returns immediately: pending == 0
    assert eng.now == 0.0


def test_cancel_daemon_event_keeps_pending_consistent():
    eng = Engine()
    h = eng.post(1.0, lambda: None, daemon=True)
    eng.post(2.0, lambda: None)
    eng.cancel(h)
    assert eng.pending == 1
    eng.run()
    assert eng.now == 2.0


def test_daemon_leftovers_resume_on_next_run():
    eng = Engine()
    ticks = []
    eng.post(5.0, lambda: ticks.append("late-daemon"), daemon=True)
    eng.post(1.0, lambda: None)
    eng.run()
    assert eng.now == 1.0 and ticks == []
    eng.post(6.0, lambda: ticks.append("work"))
    eng.run()
    assert ticks == ["late-daemon", "work"]


# -- args-tuple dispatch (the allocation-free fast path) ---------------------


def test_post_with_args_tuple():
    eng = Engine()
    seen = []
    eng.post(1.0, seen.append, args=("x",))
    eng.post(2.0, lambda a, b: seen.append(a + b), args=(1, 2))
    eng.run()
    assert seen == ["x", 3]


def test_post_in_with_args_tuple():
    eng = Engine()
    seen = []
    eng.post_in(0.5, seen.append, args=(42,))
    eng.run()
    assert seen == [42] and eng.now == 0.5


def test_args_dispatch_interleaves_with_plain_actions():
    eng = Engine()
    order = []
    eng.post(1.0, order.append, args=("args",))
    eng.post(1.0, lambda: order.append("plain"))
    eng.post(2.0, order.append, args=("last",))
    eng.run()
    assert order == ["args", "plain", "last"]


def test_cancel_args_event():
    eng = Engine()
    seen = []
    h = eng.post(1.0, seen.append, args=("no",))
    eng.post(2.0, seen.append, args=("yes",))
    eng.cancel(h)
    eng.run()
    assert seen == ["yes"]


def test_daemon_event_with_args():
    eng = Engine()
    seen = []
    eng.post(1.0, seen.append, args=("daemon",), daemon=True)
    eng.post(2.0, seen.append, args=("work",))
    eng.run()
    assert seen == ["daemon", "work"]


# -- bounded windows (the sharded-PDES dispatch surface) ---------------------


def test_run_window_is_exclusive_and_never_forces_clock():
    eng = Engine()
    fired = []
    eng.post(1.0, lambda: fired.append(1.0))
    eng.post(2.0, lambda: fired.append(2.0))
    eng.post(3.0, lambda: fired.append(3.0))
    stopped = eng.run_window(2.0)
    # Strictly-inside events only; the clock stays at the last event,
    # leaving [1.0, 2.0) open for imports from other shards.
    assert fired == [1.0]
    assert stopped == eng.now == 1.0
    eng.post(1.5, lambda: fired.append(1.5))  # an "import"
    eng.run_window(10.0)
    assert fired == [1.0, 1.5, 2.0, 3.0]


def test_run_until_is_inclusive_and_forces_clock():
    eng = Engine()
    fired = []
    eng.post(2.0, lambda: fired.append(2.0))
    eng.run(until=2.0)
    assert fired == [2.0]
    eng2 = Engine()
    eng2.post(5.0, lambda: None)
    assert eng2.run(until=3.0) == 3.0 and eng2.now == 3.0


def test_run_window_empty_queue_leaves_clock():
    eng = Engine(start_time=4.0)
    assert eng.run_window(9.0) == 4.0


def test_run_window_not_reentrant():
    eng = Engine()
    errors = []

    def reenter():
        try:
            eng.run_window(5.0)
        except SimulationError as exc:
            errors.append(exc)

    eng.post(1.0, reenter)
    eng.run_window(2.0)
    assert len(errors) == 1


def test_next_event_time_skips_daemons_and_cancelled():
    eng = Engine()
    assert eng.next_event_time() is None
    eng.post(7.0, lambda: None, daemon=True)
    assert eng.next_event_time() is None  # daemon-only: quiescent shard
    h = eng.post(2.0, lambda: None)
    eng.post(3.0, lambda: None)
    assert eng.next_event_time() == 2.0
    eng.cancel(h)
    assert eng.next_event_time() == 3.0


def test_next_event_time_fast_path_without_daemons():
    eng = Engine()
    h = eng.post(1.0, lambda: None)
    eng.post(4.0, lambda: None)
    eng.cancel(h)
    # No daemons live: the peek path must still skip the cancelled head.
    assert eng.next_event_time() == 4.0
    assert eng.pending == 1


def test_cancel_heavy_bounded_run_accounting():
    eng = Engine()
    fired = []
    handles = [eng.post(float(t), fired.append, args=(float(t),))
               for t in range(1, 21)]
    for h in handles[::2]:          # cancel every odd time (1, 3, ...)
        eng.cancel(h)
    eng.run(until=10.0)
    assert fired == [2.0, 4.0, 6.0, 8.0, 10.0]
    eng.run_window(15.0)            # exclusive: 15.0 itself stays queued
    assert fired[-1] == 14.0
    eng.run()
    assert fired == [float(t) for t in range(2, 21, 2)]
    assert eng.pending == 0


def test_cancel_after_window_still_honoured():
    eng = Engine()
    fired = []
    eng.post(1.0, fired.append, args=("a",))
    late = eng.post(3.0, fired.append, args=("late",))
    eng.run_window(2.0)
    eng.cancel(late)
    eng.run()
    assert fired == ["a"] and eng.pending == 0


# -- ordered same-instant ties (sharded certification mode) ------------------


def test_ordered_ties_sort_order_tuples_ahead_of_plain_posts():
    eng = Engine()
    eng.enable_ordered_ties()
    order = []
    eng.post(1.0, order.append, args=("plain-first",))
    eng.post(1.0, order.append, args=("keyed-b",), order=(0, 0.5, 2))
    eng.post(1.0, order.append, args=("keyed-a",), order=(0, 0.5, 1))
    eng.post(1.0, order.append, args=("plain-second",))
    eng.run()
    # Keyed events rank ahead of every ordinary post at the same instant
    # and sort by their caller key, not post order.
    assert order == ["keyed-a", "keyed-b", "plain-first", "plain-second"]


def test_ordered_ties_preserve_post_order_among_plain_posts():
    eng = Engine()
    eng.enable_ordered_ties()
    order = []
    for name in ("a", "b", "c"):
        eng.post(2.0, order.append, args=(name,))
    eng.run()
    assert order == ["a", "b", "c"]


def test_enable_ordered_ties_rekeys_queued_entries():
    eng = Engine()
    order = []
    eng.post(1.0, order.append, args=("early-1",))
    eng.post(1.0, order.append, args=("early-2",))
    eng.enable_ordered_ties()
    eng.enable_ordered_ties()  # idempotent
    eng.post(1.0, order.append, args=("keyed",), order=(0,))
    eng.post(1.0, order.append, args=("late",))
    eng.run()
    assert order == ["keyed", "early-1", "early-2", "late"]


def test_default_mode_ignores_order_keys():
    eng = Engine()
    order = []
    eng.post(1.0, order.append, args=("first",), order=(9, 9, 9))
    eng.post(1.0, order.append, args=("second",), order=(0,))
    eng.run()
    assert order == ["first", "second"]  # pure post order


def test_ordered_ties_cancel_keyed_event():
    eng = Engine()
    eng.enable_ordered_ties()
    order = []
    h = eng.post(1.0, order.append, args=("dead",), order=(0, 1))
    eng.post(1.0, order.append, args=("alive",), order=(0, 2))
    eng.cancel(h)
    eng.run()
    assert order == ["alive"] and eng.pending == 0
