"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.chare import Chare
from repro.core.method import entry
from repro.grid.presets import artificial_latency_env, single_cluster_env
from repro.units import ms


@pytest.fixture
def env4():
    """A 4-PE two-cluster environment with 2 ms artificial latency."""
    return artificial_latency_env(4, ms(2))


@pytest.fixture
def env1():
    """A single-PE, single-cluster environment."""
    return single_cluster_env(1)


class Recorder(Chare):
    """A chare that records every invocation (used across tests)."""

    def __init__(self):
        super().__init__()
        self.calls = []

    @entry
    def note(self, *args):
        self.calls.append((self.now, args))

    @entry
    def note_and_charge(self, cost, *args):
        self.calls.append((self.now, args))
        self.charge(cost)

    @entry
    def boom(self):
        raise RuntimeError("entry method exploded")


def make_recorder(env, pe=0):
    """Create a Recorder on *pe*; returns (proxy, instance)."""
    rts = env.runtime
    proxy = rts.create_chare(Recorder, pe=pe)
    return proxy, rts.chare_object(proxy.chare_id)
