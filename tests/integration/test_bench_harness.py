"""Tests for the benchmark harness entry points."""

import pytest

from repro.bench.harness import (
    TERAGRID_ONE_WAY_MS,
    collectives_point,
    leanmd_point,
    routing_variant_label,
    stencil_ampi_point,
    stencil_point,
)
from repro.bench.sweep import specs_fig3_collectives, sweep_fig3, sweep_table2


def test_stencil_point_fields():
    p = stencil_point("t", pes=4, objects=16, latency_ms_value=2.0,
                      mesh=(128, 128), steps=5)
    assert p.app == "stencil"
    assert p.environment == "artificial"
    assert (p.pes, p.objects, p.latency_ms) == (4, 16, 2.0)
    assert p.time_per_step > 0
    assert p.extra["mesh"] == [128, 128]
    assert p.extra["payload"] == "modeled"


def test_stencil_point_teragrid_env():
    p = stencil_point("t", pes=4, objects=16,
                      latency_ms_value=TERAGRID_ONE_WAY_MS,
                      mesh=(128, 128), steps=5, environment="teragrid")
    assert p.environment == "teragrid"
    assert p.time_per_step > 0


def test_stencil_point_rejects_unknown_env():
    with pytest.raises(ValueError):
        stencil_point("t", 2, 4, 0.0, environment="cloud")


def test_leanmd_point_fields():
    p = leanmd_point("t", pes=4, latency_ms_value=2.0, cells=(2, 2, 2),
                     atoms_per_cell=4, steps=4)
    assert p.app == "leanmd"
    assert p.objects == 8          # cells in the grid
    assert p.extra["atoms_per_cell"] == 4
    assert p.time_per_step > 0


def test_leanmd_point_rejects_unknown_env():
    with pytest.raises(ValueError):
        leanmd_point("t", 2, 0.0, environment="cloud")


def test_stencil_ampi_point():
    p = stencil_ampi_point("t", pes=2, ranks=4, latency_ms_value=1.0,
                           mesh=(64, 64), steps=4)
    assert p.app == "stencil-ampi"
    assert p.objects == 4
    assert p.time_per_step > 0


def test_routing_variant_labels():
    assert routing_variant_label("flat", 1) == "flat"
    assert routing_variant_label("hierarchical", 1) == "hier"
    assert routing_variant_label("hierarchical", 4) == "hier+striped"


def test_collectives_point_fields():
    p = collectives_point("t", pes=4, objects=8, latency_ms_value=2.0,
                          routing="hierarchical", wan_streams=2,
                          payload_bytes=32 * 1024, steps=4)
    assert p.app == "collectives"
    assert (p.pes, p.objects, p.latency_ms) == (4, 8, 2.0)
    assert p.time_per_step > 0
    assert p.extra["variant"] == "hier+striped"
    assert p.extra["wan_messages"] > 0
    assert p.extra["checksum"] == pytest.approx(4 * 8)


def test_collectives_point_ampi():
    p = collectives_point("t", pes=4, objects=8, latency_ms_value=2.0,
                          ampi=True, payload_bytes=16 * 1024, steps=3)
    assert p.app == "collectives-ampi"
    assert p.extra["variant"] == "flat"
    assert p.time_per_step > 0


def test_hier_striped_dominates_flat_at_high_latency():
    # The Figure-3c acceptance bar, at one 8 ms point: hierarchical
    # routing over striped WAN strictly beats flat fan-out.
    kwargs = dict(latency_ms_value=8.0, payload_bytes=256 * 1024, steps=4)
    flat = collectives_point("t", 8, 64, routing="flat", wan_streams=1,
                             **kwargs)
    best = collectives_point("t", 8, 64, routing="hierarchical",
                             wan_streams=4, **kwargs)
    assert best.time_per_step < flat.time_per_step
    assert best.extra["wan_messages"] < flat.extra["wan_messages"]
    assert best.extra["checksum"] == flat.extra["checksum"]


def test_specs_fig3_collectives_cover_all_variants():
    specs = specs_fig3_collectives(latencies_ms=(0.0, 8.0), steps=2)
    assert len(specs) == 2 * 3 * 2       # kinds x variants x latencies
    assert {s.kind for s in specs} == {"collectives", "collectives-ampi"}
    assert {(s.routing, s.wan_streams) for s in specs} == {
        ("flat", 1), ("hierarchical", 1), ("hierarchical", 4)}


def test_sweep_fig3_single_panel_structure():
    points = sweep_fig3(panels=[2], latencies_ms=[0.0, 4.0], steps=4)
    assert len(points) == 3 * 2            # 3 virtualizations x 2 latencies
    assert {p.pes for p in points} == {2}
    assert {p.experiment for p in points} == {"fig3"}


def test_sweep_table2_structure():
    points = sweep_table2(pe_counts=[2], steps=4)
    envs = sorted(p.environment for p in points)
    assert envs == ["artificial", "teragrid"]


def test_points_carry_observability_digest():
    p = stencil_point("t", pes=4, objects=16, latency_ms_value=4.0,
                      mesh=(128, 128), steps=5)
    obs = p.extra["obs"]
    assert obs["executions"] > 0
    assert 0.0 < obs["mean_utilization"] <= 1.0
    assert obs["wan"]["windows"] > 0
    assert 0.0 <= obs["wan"]["masked_fraction"] <= 1.0
    assert obs["messages"]["wan_sent"] <= obs["messages"]["sent"]
    import json
    json.dumps(p.to_dict())  # rows stay JSON-serializable


def test_points_are_deterministic():
    a = stencil_point("t", 4, 16, 3.0, mesh=(128, 128), steps=5)
    b = stencil_point("t", 4, 16, 3.0, mesh=(128, 128), steps=5)
    assert a.time_per_step == b.time_per_step


def test_stencil_point_sharded_engine_matches_serial():
    # The engine_shards knob must not change the measurement: the
    # sharded conservative engine is trajectory-certified against
    # serial, so time_per_step is identical and the digest rides along.
    serial = stencil_point("t", pes=4, objects=16, latency_ms_value=8.0,
                           mesh=(48, 48), steps=5)
    sharded = stencil_point("t", pes=4, objects=16, latency_ms_value=8.0,
                            mesh=(48, 48), steps=5, engine_shards=2)
    assert sharded.time_per_step == serial.time_per_step
    assert sharded.extra["engine_shards"] == 2
    assert sharded.extra["sync_rounds"] > 0
    assert len(sharded.extra["trajectory_digest"]) == 64


def test_stencil_point_sharded_rejects_teragrid():
    with pytest.raises(ValueError):
        stencil_point("t", 4, 16, 2.0, environment="teragrid",
                      engine_shards=2)


def test_stencil_point_percell_kernel_same_measurement():
    numpy_p = stencil_point("t", pes=2, objects=4, latency_ms_value=4.0,
                            mesh=(24, 24), steps=3, payload="real")
    percell_p = stencil_point("t", pes=2, objects=4, latency_ms_value=4.0,
                              mesh=(24, 24), steps=3, payload="real",
                              kernel="percell")
    assert percell_p.time_per_step == numpy_p.time_per_step
