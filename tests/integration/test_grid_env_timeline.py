"""Tests for environment presets and the Figure-2 style timeline."""

import numpy as np
import pytest

from repro.core.chare import Chare
from repro.core.method import entry
from repro.errors import ConfigurationError
from repro.grid.presets import (
    artificial_latency_env,
    single_cluster_env,
    teragrid_env,
)
from repro.grid.teragrid import TeraGridWanModel
from repro.units import ms


# -- presets -------------------------------------------------------------------

def test_single_cluster_has_no_wan():
    env = single_cluster_env(4)
    names = [d.name for d in env.chain.transports()]
    assert "wan-artificial" not in names
    assert not env.topology.crosses_wan(0, 3)


def test_artificial_env_delay_applies_only_across():
    env = artificial_latency_env(4, ms(10))
    fast = env.fabric.one_way_time(0, 1, 0)
    slow = env.fabric.one_way_time(0, 2, 0)
    assert slow - fast == pytest.approx(ms(10), rel=0.01)


def test_artificial_env_zero_latency_valid():
    env = artificial_latency_env(2, 0.0)
    assert env.fabric.one_way_time(0, 1, 0) < ms(1)


def test_artificial_env_negative_latency_rejected():
    with pytest.raises(ConfigurationError):
        artificial_latency_env(2, -1.0)


def test_teragrid_latency_matches_paper():
    env = teragrid_env(4)
    t = env.fabric.one_way_time(0, 2, 0)
    # model query without jitter: latency + stack overhead = ping-pong
    assert t == pytest.approx(1.920e-3, rel=0.01)


def test_teragrid_custom_model():
    model = TeraGridWanModel(one_way_latency=ms(29.37))  # NCSA<->SDSC, §6
    env = teragrid_env(4, model=model)
    assert env.fabric.one_way_time(0, 2, 0) >= ms(29.37)


def test_env_describe():
    env = artificial_latency_env(4, ms(1))
    text = env.describe()
    assert "siteA:2" in text and "delay" in text


def test_env_seed_controls_streams():
    a = artificial_latency_env(2, 0.0, seed=5).streams.get("x").random(3)
    b = artificial_latency_env(2, 0.0, seed=5).streams.get("x").random(3)
    assert np.array_equal(a, b)


def test_max_events_passthrough():
    from repro.errors import SimulationError

    class Looper(Chare):
        @entry
        def spin(self):
            self.self_proxy.spin()

    env = single_cluster_env(1, max_events=500)
    proxy = env.runtime.create_chare(Looper, pe=0)
    proxy.spin()
    with pytest.raises(SimulationError):
        env.run()


# -- the Figure 2 timeline, reproduced ----------------------------------------------

class FigureTwoB(Chare):
    """Processor B's object: works with A while a request is out to C."""

    def __init__(self, a=None, c=None):
        super().__init__()
        self.a = a
        self.c = c
        self.c_reply_at = None

    @entry
    def begin(self):
        self.c.request()            # long-haul message to cluster 2
        self.a.ping(0)              # meanwhile, chat with local A
        self.charge(1e-3)

    @entry
    def pong(self, i):
        self.charge(1e-3)
        if i < 3:
            self.a.ping(i + 1)

    @entry
    def c_reply(self):
        self.c_reply_at = self.now
        self.charge(1e-3)


class FigureTwoA(Chare):
    def __init__(self, b_proxy_holder):
        super().__init__()
        self.holder = b_proxy_holder

    @entry
    def ping(self, i):
        self.charge(1e-3)
        self.holder["b"].pong(i)


class FigureTwoC(Chare):
    def __init__(self, b_proxy_holder):
        super().__init__()
        self.holder = b_proxy_holder

    @entry
    def request(self):
        self.charge(2e-3)
        self.holder["b"].c_reply()


def test_figure2_timeline_overlap():
    """While B's request crosses to C and back (>=16 ms), B completes
    several exchanges with A — the hypothetical timeline of Figure 2."""
    env = artificial_latency_env(4, ms(8), trace=True)
    rts = env.runtime
    holder = {}
    a = rts.create_chare(FigureTwoA, pe=1, args=(holder,))
    c = rts.create_chare(FigureTwoC, pe=2, args=(holder,))   # remote cluster
    b = rts.create_chare(FigureTwoB, pe=0, args=(a, c))
    holder["b"] = b
    b.begin()
    env.run()

    b_obj = rts.chare_object(b.chare_id)
    assert b_obj.c_reply_at >= ms(16)          # round trip crossed WAN twice
    # B executed its A-exchanges strictly inside the WAN window.
    busy = env.tracer.busy_during(0, ms(1), b_obj.c_reply_at - ms(1))
    assert busy >= 3e-3                         # several 1 ms executions
    art = env.tracer.render_timeline(width=40)
    assert art.count("#") > 5
