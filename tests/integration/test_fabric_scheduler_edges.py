"""Edge-path tests for the fabric, scheduler and proxies."""

import pytest

from repro.core.chare import Chare
from repro.core.ids import ChareID
from repro.core.mapping import RoundRobinMapping
from repro.core.method import entry
from repro.grid.presets import single_cluster_env
from repro.units import ms

from tests.conftest import Recorder


class Echo(Chare):
    def __init__(self):
        super().__init__()
        self.got = []

    @entry
    def take(self, x):
        self.got.append((self.now, x))
        self.charge(1e-3)


# -- fabric ---------------------------------------------------------------

def test_fabric_one_way_time_matches_actual_send(env4):
    rts = env4.runtime
    proxy = rts.create_chare(Echo, pe=3)
    predicted = env4.fabric.one_way_time(0, 3, 164)  # 100B payload + env.
    proxy.take(b"x" * 100)
    env4.run()
    obj = rts.chare_object(proxy.chare_id)
    assert obj.got[0][0] == pytest.approx(predicted, rel=0.01)


def test_fabric_stats_accumulate(env4):
    rts = env4.runtime
    local = rts.create_chare(Echo, pe=1)
    remote = rts.create_chare(Echo, pe=2)
    local.take(1)
    remote.take(2)
    env4.run()
    stats = env4.fabric.stats
    assert stats.total_messages == 2
    # PE 0 -> 1 share a dual-CPU node: shmem claims before the LAN.
    assert stats.messages.get("shmem") == 1
    assert stats.messages.get("wan-artificial") == 1
    assert stats.filter_delay_total == pytest.approx(ms(2))
    env4.fabric.reset_stats()
    assert env4.fabric.stats.total_messages == 0


def test_fabric_self_send_uses_loopback(env4):
    rts = env4.runtime

    class SelfTalker(Chare):
        def __init__(self):
            super().__init__()
            self.count = 0

        @entry
        def go(self, n):
            self.count += 1
            if n > 0:
                self.self_proxy.go(n - 1)

    proxy = rts.create_chare(SelfTalker, pe=2)
    proxy.go(4)   # driver message travels to PE 2 first
    env4.run()
    assert rts.chare_object(proxy.chare_id).count == 5
    assert env4.fabric.stats.messages.get("loopback") == 4


def test_message_sent_at_recorded(env4):
    rts = env4.runtime
    proxy = rts.create_chare(Echo, pe=0)
    captured = []
    original = env4.fabric.send

    def spy(msg, deliver):
        captured.append(msg)
        return original(msg, deliver)

    env4.fabric.send = spy
    proxy.take(5)
    env4.run()
    assert captured[0].sent_at == 0.0
    assert captured[0].crossed_wan is False


# -- scheduler ---------------------------------------------------------------

def test_pe_executes_one_message_at_a_time(env4):
    rts = env4.runtime
    proxy = rts.create_chare(Echo, pe=0)
    for i in range(3):
        proxy.take(i)
    env4.run()
    times = [t for t, _x in rts.chare_object(proxy.chare_id).got]
    # each execution charges 1 ms: arrivals serialize at >= 1 ms apart
    assert times[1] - times[0] >= 1e-3
    assert times[2] - times[1] >= 1e-3


def test_pe_stats_track_executions(env4):
    rts = env4.runtime
    proxy = rts.create_chare(Echo, pe=1)
    for i in range(4):
        proxy.take(i)
    env4.run()
    ps = rts.scheduler.pe_state(1)
    assert ps.stats.executions == 4
    assert ps.stats.busy_time >= 4e-3
    assert ps.stats.messages_received == 4
    assert ps.idle


def test_forwarding_after_migration_counts_hop(env4):
    """A message racing a migration is forwarded with an extra hop."""
    rts = env4.runtime
    arr = rts.create_array(Echo, range(2), RoundRobinMapping())
    cid = ChareID(arr.collection, (0,))

    class Sender(Chare):
        @entry
        def fire(self):
            arr[0].take("racer")

    sender = rts.create_chare(Sender, pe=3)
    sender.fire()              # in flight toward PE 0...
    rts.migrate(cid, 2)        # ...while the chare moves to PE 2
    env4.run()
    obj = rts.chare_object(cid)
    assert [x for _t, x in obj.got] == ["racer"]


def test_broadcast_respects_explicit_size(env4):
    rts = env4.runtime
    arr = rts.create_array(Echo, range(4), RoundRobinMapping())
    arr.take(0, _size=10_000_000)   # 10 MB broadcast: bandwidth matters
    env4.run()
    # 10 MB to the remote cluster crosses the 250 MB/s "WAN" link:
    # >= 40 ms of transfer for the elements on PEs 2 and 3; the PE-0
    # element rides the pure-latency loopback and arrives immediately.
    t = {i: rts.chare_object(ChareID(arr.collection, (i,))).got[0][0]
         for i in range(4)}
    assert t[2] >= 0.040 and t[3] >= 0.040
    assert t[0] < 0.001


def test_entry_default_priority_used():
    from repro.core.rts import RuntimeConfig

    env = single_cluster_env(1, config=RuntimeConfig(
        prioritized_queues=True))
    rts = env.runtime
    order = []

    class Prio(Chare):
        @entry
        def slow(self):
            self.charge(1e-3)   # keeps the PE busy while others queue

        @entry(priority=5)
        def low(self):
            order.append("low")

        @entry(priority=-5)
        def high(self):
            order.append("high")

    proxy = rts.create_chare(Prio, pe=0)
    proxy.slow()
    proxy.low()
    proxy.high()   # queued behind `low` but must run first
    env.run()
    assert order == ["high", "low"]


def test_exceptions_inside_entry_propagate(env4):
    rts = env4.runtime
    proxy = rts.create_chare(Recorder, pe=0)
    proxy.boom()
    with pytest.raises(RuntimeError, match="exploded"):
        env4.run()


def test_grid_environment_run_until(env4):
    rts = env4.runtime
    proxy = rts.create_chare(Echo, pe=3)
    proxy.take(1)                   # arrives after ~2 ms
    t = env4.run(until=ms(1))
    assert t == pytest.approx(ms(1))
    assert rts.chare_object(proxy.chare_id).got == []
    env4.run()
    assert len(rts.chare_object(proxy.chare_id).got) == 1
