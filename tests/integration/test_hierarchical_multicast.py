"""Integration tests: topology-aware (hierarchical) collective routing.

The tentpole invariant: with ``collective_routing = "hierarchical"`` a
broadcast/multicast crosses the wide area exactly **once per remote
cluster** (one relay each), instead of once per remote destination PE —
while delivering bit-identical per-element semantics.  With flat routing
(the default) behaviour and virtual timings are unchanged from the seed.
"""

import pytest

from repro.ampi import ampi_run
from repro.core.chare import Chare
from repro.core.mapping import RoundRobinMapping
from repro.core.method import entry
from repro.core.rts import RuntimeConfig
from repro.errors import ConfigurationError
from repro.grid.environment import GridEnvironment
from repro.grid.presets import artificial_latency_env
from repro.network.chain import DeviceChain
from repro.network.devices import (
    LanDevice,
    LoopbackDevice,
    ShmemDevice,
    WanDevice,
)
from repro.network.links import myrinet_like, shared_memory
from repro.network.topology import GridTopology
from repro.units import ms


class Catcher(Chare):
    def __init__(self):
        super().__init__()
        self.got = []

    @entry
    def take(self, *args):
        self.got.append((self.now, args))


def wan_messages(env):
    return sum(d.messages_carried for d in env.chain.transports()
               if "wan" in d.name)


def build_array(env, n=None):
    rts = env.runtime
    n = n if n is not None else env.topology.num_pes
    arr = rts.create_array(Catcher, range(n), RoundRobinMapping())
    return rts, arr


def received(rts, arr):
    """{index: [(time, args), ...]} for every element of *arr*."""
    objs = rts._collections[arr.collection].objects
    return {idx: list(objs[idx].got) for idx in objs}


# -- WAN crossing counts ------------------------------------------------------

def test_flat_broadcast_crosses_wan_once_per_remote_pe():
    env = artificial_latency_env(8, ms(2))
    rts, arr = build_array(env)
    arr.take("hello")
    env.run()
    assert wan_messages(env) == 4      # PEs 4..7, one bundle each


def test_hierarchical_broadcast_crosses_wan_once_per_remote_cluster():
    env = artificial_latency_env(8, ms(2), routing="hierarchical")
    rts, arr = build_array(env)
    arr.take("hello")
    env.run()
    assert wan_messages(env) == 1      # one relay to the cluster root
    got = received(rts, arr)
    assert all(len(v) == 1 and v[0][1] == ("hello",)
               for v in got.values())
    assert len(got) == 8


def test_hierarchical_section_multicast_remote_subset():
    env = artificial_latency_env(8, ms(2), routing="hierarchical")
    rts, arr = build_array(env)
    # 4, 5, 7: all in the remote cluster, spanning two nodes -> one WAN
    # relay to PE 4, which re-fans (5 via shmem, 7 via a nested relay...
    # no: node (6,7) holds a single destination, so 7 gets a direct LAN
    # bundle from the relay root).
    arr.section([4, 5, 7]).take(42)
    env.run()
    assert wan_messages(env) == 1
    got = received(rts, arr)
    for idx in ((4,), (5,), (7,)):
        assert got[idx] == [(got[idx][0][0], (42,))]
    for idx in ((0,), (1,), (2,), (3,), (6,)):
        assert got[idx] == []


def test_hierarchical_single_remote_pe_needs_no_relay():
    env = artificial_latency_env(8, ms(2), routing="hierarchical")
    rts, arr = build_array(env)
    arr.section([0, 6]).take("x")
    env.run()
    assert wan_messages(env) == 1      # the direct bundle already crossed once
    got = received(rts, arr)
    assert got[(6,)][0][1] == ("x",)


def test_hierarchical_three_clusters_one_relay_each():
    topo = GridTopology([4, 4, 4], pes_per_node=2)
    chain = DeviceChain([
        LoopbackDevice(shared_memory(name="loopback")),
        ShmemDevice(shared_memory()),
        LanDevice(myrinet_like()),
        WanDevice(myrinet_like(name="wan")),
    ])
    env = GridEnvironment(
        topo, chain,
        config=RuntimeConfig(collective_routing="hierarchical"))
    rts, arr = build_array(env, n=12)
    arr.take("tri")
    env.run()
    assert wan_messages(env) == 2      # clusters 1 and 2, one relay each
    got = received(rts, arr)
    assert len(got) == 12
    assert all(v[0][1] == ("tri",) for v in got.values())


# -- semantics preserved ------------------------------------------------------

def test_hierarchical_delivers_same_payloads_as_flat():
    def run(routing):
        env = artificial_latency_env(8, ms(2), routing=routing)
        rts, arr = build_array(env, n=16)
        arr.take({"k": [1, 2]}, 7)
        env.run()
        return received(rts, arr)

    flat, hier = run("flat"), run("hierarchical")
    assert set(flat) == set(hier)
    for idx in flat:
        assert flat[idx][0][1] == hier[idx][0][1]


def test_flat_routing_is_bit_identical_to_default():
    def run(**kwargs):
        env = artificial_latency_env(8, ms(4), **kwargs)
        rts, arr = build_array(env, n=16)
        arr.take("a")
        arr.section([3, 9, 12]).take("b")
        env.run()
        return received(rts, arr)

    assert run() == run(routing="flat")


def test_invalid_routing_rejected():
    with pytest.raises(ConfigurationError):
        RuntimeConfig(collective_routing="diagonal")


def test_negative_relay_overhead_rejected():
    with pytest.raises(ConfigurationError):
        RuntimeConfig(relay_overhead=-1.0)


# -- AMPI collective results --------------------------------------------------

def bcast_mutation_program(mpi):
    data = yield mpi.bcast({"xs": [1, 2, 3]} if mpi.rank == 0 else None,
                           root=0)
    if mpi.rank == 1:
        data["xs"].append(99)       # must not leak into other ranks
    return data["xs"]


@pytest.mark.parametrize("routing", ["flat", "hierarchical"])
def test_bcast_result_mutation_stays_local(routing):
    env = artificial_latency_env(4, ms(2), routing=routing)
    world = ampi_run(env, bcast_mutation_program, num_ranks=4)
    results = world.results_in_rank_order()
    assert results[1] == [1, 2, 3, 99]
    assert results[0] == results[2] == results[3] == [1, 2, 3]


@pytest.mark.parametrize("routing", ["flat", "hierarchical"])
def test_allgather_result_mutation_stays_local(routing):
    def program(mpi):
        out = yield mpi.allgather([mpi.rank])
        if mpi.rank == 0:
            out[0].append("dirty")
        return out

    env = artificial_latency_env(4, ms(2), routing=routing)
    world = ampi_run(env, program, num_ranks=4)
    results = world.results_in_rank_order()
    assert results[0][0] == [0, "dirty"]
    for r in (1, 2, 3):
        assert results[r] == [[0], [1], [2], [3]]


def test_ampi_hierarchical_matches_flat_values_with_fewer_wan_messages():
    def program(mpi):
        data = yield mpi.bcast(b"\0" * 65536 if mpi.rank == 0 else None,
                               root=0)
        total = yield mpi.allreduce(mpi.rank, op="sum")
        return (len(data), total)

    def run(routing):
        env = artificial_latency_env(8, ms(2), routing=routing)
        world = ampi_run(env, program, num_ranks=16,
                         mapping=RoundRobinMapping())
        return world.results_in_rank_order(), wan_messages(env)

    flat_results, flat_wan = run("flat")
    hier_results, hier_wan = run("hierarchical")
    assert flat_results == hier_results == [(65536, 120)] * 16
    assert hier_wan < flat_wan
