"""Integration tests: reductions, migration, load balancing, quiescence."""

import numpy as np
import pytest

from repro.core.chare import Chare
from repro.core.ids import ChareID, EntryRef
from repro.core.loadbalance import GridCommLB, GreedyLB, RotateLB
from repro.core.mapping import BlockMapping, RoundRobinMapping
from repro.core.method import entry
from repro.errors import MigrationError, ReductionError, RuntimeSystemError
from repro.grid.presets import artificial_latency_env, single_cluster_env
from repro.units import ms


class Worker(Chare):
    def __init__(self, value=0.0):
        super().__init__()
        self.value = value
        self.result = None
        self.migrated_log = []

    @entry
    def contribute_value(self, op, target):
        self.contribute(self.value, op, target)

    @entry
    def contribute_array(self, target):
        self.contribute(np.array([self.value, -self.value]), "sum", target)

    @entry
    def take_result(self, value):
        self.result = value

    @entry
    def work(self, cost):
        self.charge(cost)

    @entry
    def hop(self, pe):
        self.migrate(pe)

    def on_migrated(self, old_pe, new_pe):
        self.migrated_log.append((old_pe, new_pe))


def build(env, n=8, mapping=None, values=None):
    rts = env.runtime
    values = values or [float(i) for i in range(n)]
    arr = rts.create_array(
        Worker, range(n), mapping or RoundRobinMapping(),
        args_of=lambda idx: ((values[idx[0]],), {}))
    return rts, arr


# -- reductions ----------------------------------------------------------------

def test_sum_reduction_to_callback(env4):
    rts, arr = build(env4)
    got = []
    arr.contribute_value("sum", got.append)
    env4.run()
    assert got == [sum(range(8))]


def test_max_min_reductions(env4):
    rts, arr = build(env4)
    got = {}
    arr.contribute_value("max", lambda v: got.setdefault("max", v))
    arr.contribute_value("min", lambda v: got.setdefault("min", v))
    env4.run()
    assert got == {"max": 7.0, "min": 0.0}


def test_array_valued_reduction(env4):
    rts, arr = build(env4)
    got = []
    arr.contribute_array(got.append)
    env4.run()
    assert np.array_equal(got[0], [28.0, -28.0])


def test_concat_reduction_sorted_by_index(env4):
    rts, arr = build(env4)
    got = []
    arr.contribute_value("concat", got.append)
    env4.run()
    assert got[0] == [((i,), float(i)) for i in range(8)]


def test_reduction_to_entry_ref(env4):
    rts, arr = build(env4)
    sink = rts.create_chare(Worker, pe=1)
    arr.contribute_value("sum", EntryRef(sink.chare_id, "take_result"))
    env4.run()
    assert rts.chare_object(sink.chare_id).result == 28.0


def test_reduction_to_proxy_entry_tuple(env4):
    rts, arr = build(env4)
    sink = rts.create_chare(Worker, pe=3)
    arr.contribute_value("sum", (sink, "take_result"))
    env4.run()
    assert rts.chare_object(sink.chare_id).result == 28.0


def test_reduction_result_independent_of_mapping():
    results = []
    for mapping in (RoundRobinMapping(), BlockMapping()):
        env = artificial_latency_env(4, ms(5))
        rts, arr = build(env, mapping=mapping,
                         values=[1, 2, 4, 8, 16, 32, 64, 128])
        got = []
        arr.contribute_value("sum", got.append)
        env.run()
        results.append(got[0])
    assert results[0] == results[1] == 255


def test_pipelined_reductions_stay_separate(env4):
    rts, arr = build(env4, n=4)
    got = []
    arr.contribute_value("sum", got.append)
    arr.contribute_value("max", got.append)
    env4.run()
    assert got == [6.0, 3.0]


def test_mixed_reducers_in_one_reduction_rejected(env4):
    rts, arr = build(env4, n=2)
    arr[0].contribute_value("sum", lambda v: None)
    arr[1].contribute_value("max", lambda v: None)
    with pytest.raises(ReductionError):
        env4.run()


def test_bad_reduction_target_rejected(env4):
    rts, arr = build(env4, n=2)
    arr.contribute_value("sum", "not-a-target")
    with pytest.raises(RuntimeSystemError):
        env4.run()


def test_reduction_crosses_wan_once():
    """The grid-aware tree sends exactly one WAN message per reduction."""
    env = artificial_latency_env(4, ms(2), trace=True)
    rts, arr = build(env)
    got = []
    arr.contribute_value("sum", got.append)
    env.run()
    wan_red_sends = [m for m in env.tracer.messages
                     if m.kind == "send" and m.crossed_wan
                     and m.tag.startswith("red:")]
    assert got and len(wan_red_sends) == 1


# -- migration ------------------------------------------------------------------

def test_driver_migration_moves_state(env4):
    rts, arr = build(env4, n=2)
    cid = ChareID(arr.collection, (0,))
    assert rts.pe_of(cid) == 0
    rts.migrate(cid, 3)
    env4.run()
    assert rts.pe_of(cid) == 3
    obj = rts.chare_object(cid)
    assert obj.value == 0.0
    assert obj.migrated_log == [(0, 3)]
    assert rts.migrations_done == 1


def test_self_migration_from_entry(env4):
    rts, arr = build(env4, n=2)
    arr[1].hop(2)
    env4.run()
    assert rts.pe_of(ChareID(arr.collection, (1,))) == 2


def test_migrate_to_same_pe_is_noop(env4):
    rts, arr = build(env4, n=2)
    rts.migrate(ChareID(arr.collection, (0,)), 0)
    env4.run()
    assert rts.migrations_done == 0


def test_messages_after_migration_reach_new_home(env4):
    rts, arr = build(env4, n=2)
    cid = ChareID(arr.collection, (0,))
    rts.migrate(cid, 3)
    arr[0].take_result("hello")   # sent while migration is in flight
    env4.run()
    assert rts.chare_object(cid).result == "hello"


def test_double_migration_rejected_while_in_flight(env4):
    rts, arr = build(env4, n=2)
    cid = ChareID(arr.collection, (0,))
    rts.migrate(cid, 3)
    with pytest.raises(MigrationError):
        rts.migrate(cid, 2)


def test_migration_during_open_reduction_rejected(env4):
    rts, arr = build(env4, n=4)
    arr[0].contribute_value("sum", lambda v: None)  # opens reduction
    env4.engine.run()   # drains: but only 1 of 4 contributed -> still open
    with pytest.raises(ReductionError):
        rts.migrate(ChareID(arr.collection, (1,)), 3)


# -- load balancing live -------------------------------------------------------------

def test_rotate_lb_preserves_behaviour(env4):
    rts, arr = build(env4)
    arr.work(0.001)
    env4.run()
    before = {idx: rts.pe_of(ChareID(arr.collection, idx))
              for idx in arr.indices()}
    applied = rts.load_balance(RotateLB())
    env4.run()
    assert len(applied) == 8
    for idx in arr.indices():
        assert rts.pe_of(ChareID(arr.collection, idx)) == \
            (before[idx] + 1) % 4
    # still functional after migration
    got = []
    arr.contribute_value("sum", got.append)
    env4.run()
    assert got == [28.0]


def test_greedy_lb_balances_measured_load():
    env = single_cluster_env(4)
    rts, arr = build(env, n=8, mapping={(i,): 0 for i in range(8)})
    arr.work(0.01)   # all work lands on PE 0
    env.run()
    rts.load_balance(GreedyLB())
    env.run()
    pes = {rts.pe_of(ChareID(arr.collection, idx)) for idx in arr.indices()}
    assert pes == {0, 1, 2, 3}


def test_gridlb_live_never_crosses_clusters(env4):
    rts, arr = build(env4)
    # Generate WAN traffic: each worker messages its +4 neighbor.
    for i in range(4):
        arr[i].take_result("x")
    arr.work(0.002)
    env4.run()
    before = {idx: env4.topology.cluster_of(
        rts.pe_of(ChareID(arr.collection, idx))) for idx in arr.indices()}
    rts.load_balance(GridCommLB())
    env4.run()
    for idx in arr.indices():
        after = env4.topology.cluster_of(
            rts.pe_of(ChareID(arr.collection, idx)))
        assert after == before[idx]


def test_lb_database_resets_after_balance(env4):
    rts, arr = build(env4)
    arr.work(0.001)
    env4.run()
    assert rts.lb_db.total_load() > 0
    rts.load_balance(GreedyLB())
    assert rts.lb_db.total_load() == 0.0
