"""Advisor validation against the cached Figure-3 ground truth.

The decomposition advisor derives its recommended virtualization degree
from the paper's masking condition ``C·(1 − 1/v) ≥ L`` using only one
traced run's object statistics.  Ground truth is the measured Fig-3
8-PE panel: for each swept latency, the degree (of 16/64/256) with the
lowest measured time per step.  Applied at an over-coarse degree, the
advisor must point to the measured-best degree **within one grid
point** at every latency — the acceptance bar for the observability
substrate the autotuner will consume.
"""

import math

import pytest

from repro.apps.stencil import StencilApp
from repro.bench.sweep import (
    FIG3_LATENCIES_MS,
    FIG3_PANEL_OBJECTS,
    sweep_fig3,
)
from repro.grid.presets import artificial_latency_env
from repro.obs.objview import recommend_decomposition
from repro.units import ms

PES = 8
STEPS = 10
MESH = (2048, 2048)
GRID = FIG3_PANEL_OBJECTS[PES]          # (16, 64, 256)


def nearest_grid_index(n_objects):
    """Index of the panel degree closest to *n_objects* (log distance)."""
    return min(range(len(GRID)),
               key=lambda i: abs(math.log(n_objects) - math.log(GRID[i])))


@pytest.fixture(scope="module")
def measured_best():
    """latency_ms -> grid index of the measured-best degree."""
    points = sweep_fig3(panels=[PES], steps=STEPS)
    best = {}
    for p in points:
        cur = best.get(p.latency_ms)
        if cur is None or p.time_per_step < cur[1]:
            best[p.latency_ms] = (p.objects, p.time_per_step)
    return {lat: GRID.index(deg) for lat, (deg, _t) in best.items()}


def advise(latency_ms, degree):
    """Run one traced stencil at *degree* and ask the advisor."""
    env = artificial_latency_env(PES, ms(latency_ms))
    app = StencilApp(env, mesh=MESH, objects=degree)
    app.run(STEPS)
    return recommend_decomposition(
        env.aggregator, ms(latency_ms),
        overhead_s=env.runtime.config.scheduler_overhead,
        num_pes=PES, steps=STEPS)


def test_advisor_within_one_grid_point_at_every_latency(measured_best):
    """From the coarsest degree, the advisor lands next to the truth."""
    for lat in FIG3_LATENCIES_MS:
        advice = advise(lat, GRID[0])
        assert advice.recommended_objects is not None
        got = nearest_grid_index(advice.recommended_objects)
        want = measured_best[lat]
        assert abs(got - want) <= 1, (
            f"latency {lat} ms: advisor recommended "
            f"{advice.recommended_objects} objects (grid point "
            f"{GRID[got]}), measured best {GRID[want]}")


def test_advisor_from_every_over_coarse_degree(measured_best):
    """Every strictly over-coarse start point converges the same way."""
    for lat in FIG3_LATENCIES_MS:
        want = measured_best[lat]
        for idx in range(want):          # degrees coarser than best
            advice = advise(lat, GRID[idx])
            got = nearest_grid_index(advice.recommended_objects)
            assert abs(got - want) <= 1, (
                f"latency {lat} ms from degree {GRID[idx]}: advisor "
                f"recommended {advice.recommended_objects} (grid point "
                f"{GRID[got]}), measured best {GRID[want]}")
            # An over-coarse start never gets pushed *coarser* when the
            # panel says finer decomposition wins.
            if got < want:
                assert advice.direction in ("finer", "keep")


def test_advisor_direction_monotone_in_latency():
    """Higher latency never asks for a coarser decomposition."""
    previous = None
    for lat in FIG3_LATENCIES_MS:
        advice = advise(lat, GRID[0])
        if previous is not None:
            assert advice.recommended_objects >= previous * 0.5
            previous = max(previous, advice.recommended_objects)
        else:
            previous = advice.recommended_objects
