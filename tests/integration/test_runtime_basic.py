"""Integration tests: chare creation, sends, broadcasts, sections."""

import pytest

from repro.core.chare import Chare
from repro.core.ids import ChareID
from repro.core.mapping import RoundRobinMapping
from repro.core.method import entry
from repro.core.rts import RuntimeConfig
from repro.errors import (
    ConfigurationError,
    EntryMethodError,
    RuntimeSystemError,
    UnknownChareError,
)
from repro.grid.presets import artificial_latency_env, single_cluster_env
from repro.units import ms

from tests.conftest import make_recorder


class Counter(Chare):
    def __init__(self, start=0):
        super().__init__()
        self.value = start
        self.seen_times = []

    @entry
    def add(self, n):
        self.value += n
        self.seen_times.append(self.now)

    @entry
    def add_with_cost(self, n, cost):
        self.value += n
        self.charge(cost)

    @entry(cost=lambda self, n: n * 1e-3)
    def add_static_cost(self, n):
        self.value += n


def all_objects(rts, proxy):
    return [rts.chare_object(ChareID(proxy.collection, idx))
            for idx in proxy.indices()]


def test_create_singleton_and_send(env4):
    rts = env4.runtime
    proxy = rts.create_chare(Counter, pe=2, args=(10,))
    proxy.add(5)
    env4.run()
    assert rts.chare_object(proxy.chare_id).value == 15


def test_send_charges_network_time(env4):
    rts = env4.runtime
    # PE 0 and PE 3 are in different clusters: 2 ms delay device applies.
    proxy = rts.create_chare(Counter, pe=3)
    proxy.add(1)
    env4.run()
    obj = rts.chare_object(proxy.chare_id)
    assert obj.seen_times[0] >= ms(2)


def test_local_send_is_fast(env4):
    rts = env4.runtime
    proxy = rts.create_chare(Counter, pe=0)
    proxy.add(1)
    env4.run()
    assert rts.chare_object(proxy.chare_id).seen_times[0] < ms(0.1)


def test_create_array_with_args_of(env4):
    rts = env4.runtime
    arr = rts.create_array(Counter, range(6), RoundRobinMapping(),
                           args_of=lambda idx: ((idx[0] * 100,), {}))
    env4.run()
    values = [o.value for o in all_objects(rts, arr)]
    assert values == [0, 100, 200, 300, 400, 500]


def test_array_element_send(env4):
    rts = env4.runtime
    arr = rts.create_array(Counter, range(4), RoundRobinMapping())
    arr[2].add(7)
    arr[(3,)].add(9)
    env4.run()
    values = [o.value for o in all_objects(rts, arr)]
    assert values == [0, 0, 7, 9]


def test_broadcast_reaches_all(env4):
    rts = env4.runtime
    arr = rts.create_array(Counter, range(8), RoundRobinMapping())
    arr.add(3)
    env4.run()
    assert all(o.value == 3 for o in all_objects(rts, arr))


def test_section_multicast_reaches_subset(env4):
    rts = env4.runtime
    arr = rts.create_array(Counter, range(8), RoundRobinMapping())
    arr.section([1, 3, 5]).add(2)
    env4.run()
    values = [o.value for o in all_objects(rts, arr)]
    assert values == [0, 2, 0, 2, 0, 2, 0, 0]


def test_charge_extends_busy_time(env4):
    rts = env4.runtime
    proxy = rts.create_chare(Counter, pe=0)
    proxy.add_with_cost(1, 0.5)
    proxy.add(1)  # same PE: must wait for the 0.5 s execution
    env4.run()
    obj = rts.chare_object(proxy.chare_id)
    assert obj.seen_times[0] >= 0.5


def test_static_entry_cost(env4):
    rts = env4.runtime
    proxy = rts.create_chare(Counter, pe=0)
    proxy.add_static_cost(4)       # 4 ms static cost
    proxy.add(1)
    env4.run()
    obj = rts.chare_object(proxy.chare_id)
    assert obj.seen_times[-1] >= ms(4)


def test_sends_depart_at_execution_end(env4):
    """Run-to-completion: messages sent mid-entry leave when it ends."""
    rts = env4.runtime

    class Chain(Chare):
        def __init__(self, out=None):
            super().__init__()
            self.out = out
            self.hit_at = None

        @entry
        def fire(self):
            if self.out is not None:
                self.out.ping()
            self.charge(0.25)

        @entry
        def ping(self):
            self.hit_at = self.now

    sink = rts.create_chare(Chain, pe=0)
    src = rts.create_chare(Chain, pe=0, args=(sink,))
    src.fire()
    env4.run()
    assert rts.chare_object(sink.chare_id).hit_at >= 0.25


def test_unknown_entry_method_raises(env4):
    rts = env4.runtime
    proxy = rts.create_chare(Counter, pe=0)
    proxy.no_such_entry()
    with pytest.raises(EntryMethodError):
        env4.run()


def test_undecorated_method_rejected(env4):
    class Sneaky(Chare):
        def plain(self):
            pass

    rts = env4.runtime
    proxy = rts.create_chare(Sneaky, pe=0)
    proxy.plain()
    with pytest.raises(EntryMethodError):
        env4.run()


def test_unknown_chare_rejected(env4):
    rts = env4.runtime
    with pytest.raises(UnknownChareError):
        rts.pe_of(ChareID(99, (0,)))


def test_duplicate_indices_rejected(env4):
    with pytest.raises(ConfigurationError):
        env4.runtime.create_array(Counter, [0, 0], RoundRobinMapping())


def test_empty_array_rejected(env4):
    with pytest.raises(ConfigurationError):
        env4.runtime.create_array(Counter, [], RoundRobinMapping())


def test_bad_pe_rejected(env4):
    with pytest.raises(ConfigurationError):
        env4.runtime.create_chare(Counter, pe=99)


def test_charge_outside_entry_rejected(env4):
    rts = env4.runtime
    proxy = rts.create_chare(Counter, pe=0)
    obj = rts.chare_object(proxy.chare_id)
    with pytest.raises(RuntimeSystemError):
        obj.charge(1.0)


def test_unbound_chare_helpers_rejected():
    class Orphan(Chare):
        pass

    orphan = Orphan()
    with pytest.raises(RuntimeSystemError):
        _ = orphan.chare_id


def test_quiescence_callback_fires_once(env4):
    rts = env4.runtime
    proxy = rts.create_chare(Counter, pe=1)
    fired = []
    rts.on_quiescence(lambda: fired.append(rts.now))
    proxy.add(1)
    proxy.add(2)
    env4.run()
    assert len(fired) == 1
    assert rts.chare_object(proxy.chare_id).value == 3


def test_expedite_wan_priority_config():
    env = artificial_latency_env(
        4, ms(2), config=RuntimeConfig(prioritized_queues=True,
                                       expedite_wan=True))
    proxy, obj = make_recorder(env, pe=3)
    proxy.note("x")
    env.run()
    assert len(obj.calls) == 1


def test_expedite_wan_requires_priorities():
    with pytest.raises(ConfigurationError):
        RuntimeConfig(expedite_wan=True, prioritized_queues=False)


def test_runtime_rejects_foreign_engine():
    from repro.core.rts import Runtime
    from repro.sim.engine import Engine

    env = single_cluster_env(2)
    with pytest.raises(ConfigurationError):
        Runtime(Engine(), env.fabric)


def test_this_proxy_and_index(env4):
    rts = env4.runtime

    class Introspect(Chare):
        def __init__(self):
            super().__init__()
            self.seen = None

        @entry
        def look(self):
            self.seen = (self.thisIndex, self.my_pe)

    arr = rts.create_array(Introspect, [(0, 1)], {(0, 1): 2})
    arr[(0, 1)].look()
    env4.run()
    obj = rts.chare_object(ChareID(arr.collection, (0, 1)))
    assert obj.seen == ((0, 1), 2)
