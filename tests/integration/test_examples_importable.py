"""Sanity: every example script parses, imports, and defines main().

The examples are exercised end-to-end manually / in docs; here we pin
that they at least stay importable against the current API (import-time
breakage is the most common doc rot).
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parents[2].joinpath("examples")
    .glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)   # __main__ guard: nothing runs
    assert callable(getattr(module, "main", None))
