"""Tests for the ghost-zone-expansion stencil (paper §3 related work)."""

import numpy as np
import pytest

from repro.apps.stencil import (
    DeepGhostConfig,
    DeepGhostStencilApp,
    StencilApp,
    make_initial_mesh,
    redundant_cells,
    run_reference,
)
from repro.apps.stencil.deep_ghost import deep_jacobi_phase
from repro.errors import ConfigurationError
from repro.grid.presets import artificial_latency_env, teragrid_env
from repro.units import ms

MESH = (48, 48)
STEPS = 12


def reference_mesh(steps=STEPS, seed=0):
    return run_reference(make_initial_mesh(*MESH, seed), steps)


def run_deep(depth, steps=STEPS, env=None, **kwargs):
    env = env or artificial_latency_env(4, ms(3))
    app = DeepGhostStencilApp(env, mesh=MESH, objects=16, depth=depth,
                              payload=kwargs.pop("payload", "real"),
                              gather_mesh=kwargs.pop("gather_mesh", True),
                              **kwargs)
    return app.run(steps)


# -- numerics --------------------------------------------------------------

@pytest.mark.parametrize("depth", [1, 2, 3, 4, 6])
def test_matches_reference_at_any_depth(depth):
    res = run_deep(depth)
    assert np.array_equal(res.final_mesh, reference_mesh())


def test_matches_reference_under_jitter():
    res = run_deep(3, env=teragrid_env(4, seed=9))
    assert np.array_equal(res.final_mesh, reference_mesh())


def test_depth_one_equals_plain_stencil_numerics():
    deep = run_deep(1)
    env = artificial_latency_env(4, ms(3))
    plain = StencilApp(env, mesh=MESH, objects=16, payload="real",
                       gather_mesh=True).run(STEPS)
    assert np.array_equal(deep.final_mesh, plain.final_mesh)


def test_checksum_matches_reference():
    res = run_deep(4)
    assert res.checksum == pytest.approx(float(reference_mesh().sum()))


# -- the phase kernel ------------------------------------------------------------

def test_deep_jacobi_phase_equals_iterated_plain():
    rng = np.random.default_rng(0)
    d = 3
    padded = rng.random((10 + 2 * d, 10 + 2 * d))
    expect = padded.copy()
    for _ in range(d):
        inner = 0.25 * (expect[:-2, 1:-1] + expect[2:, 1:-1]
                        + expect[1:-1, :-2] + expect[1:-1, 2:])
        expect[1:-1, 1:-1] = inner
    deep_jacobi_phase(padded, d, lambda: None)
    # centre interior must match the globally iterated result
    assert np.array_equal(padded[d:-d, d:-d], expect[d:-d, d:-d])


def test_redundant_cells_counts():
    assert redundant_cells(10, 10, 1) == 0
    # depth 2: sub-step 0 updates a 12x12 window -> 44 extra cells
    assert redundant_cells(10, 10, 2) == 12 * 12 - 10 * 10
    assert redundant_cells(10, 10, 3) > redundant_cells(10, 10, 2)


# -- behaviour ------------------------------------------------------------------------

def test_deeper_ghosts_amortize_latency():
    """The technique's raison d'etre: at high latency and small grain,
    per-step time falls roughly like latency/depth."""
    times = {}
    for depth in (1, 2, 4):
        env = artificial_latency_env(8, ms(16))
        app = DeepGhostStencilApp(env, mesh=(256, 256), objects=64,
                                  depth=depth, payload="modeled")
        times[depth] = app.run(16).time_per_step
    assert times[2] < 0.65 * times[1]
    assert times[4] < 0.65 * times[2]


def test_depth_costs_redundant_compute_at_zero_latency():
    """No free lunch: with nothing to amortize, deep halos add redundant
    work.  Measured with near-free messaging so the redundant compute is
    not hidden by the (era-calibrated, ~20 us/message) overhead that
    deep halos also save — on cheap interconnects the tax is visible.
    """
    from repro.apps.stencil import StencilCostModel

    cheap_msgs = StencilCostModel(ghost_fixed=0.0, ghost_per_byte=0.0,
                                  send_fixed=0.0)
    times = {}
    for depth in (1, 4):
        env = artificial_latency_env(4, 0.0)
        app = DeepGhostStencilApp(env, mesh=(256, 256), objects=16,
                                  depth=depth, payload="modeled",
                                  costs=cheap_msgs)
        times[depth] = app.run(16).time_per_step
    assert times[4] > 1.03 * times[1]


def test_modeled_matches_real_timing():
    times = []
    for payload in ("real", "modeled"):
        env = artificial_latency_env(4, ms(4))
        app = DeepGhostStencilApp(env, mesh=MESH, objects=16, depth=3,
                                  payload=payload)
        times.append(app.run(STEPS).step_times)
    assert np.allclose(times[0], times[1], atol=1e-12)


def test_step_times_length_matches_steps():
    res = run_deep(4, steps=12, payload="modeled", gather_mesh=False)
    assert len(res.step_times) == 12


# -- validation ----------------------------------------------------------------------------

def test_config_validation():
    with pytest.raises(ConfigurationError):
        DeepGhostConfig(steps=10, depth=0)
    with pytest.raises(ConfigurationError):
        DeepGhostConfig(steps=10, depth=3)   # not a multiple
    with pytest.raises(ConfigurationError):
        DeepGhostConfig(steps=8, depth=2, payload="imaginary")


def test_depth_exceeding_block_rejected():
    env = artificial_latency_env(2, 0.0)
    app = DeepGhostStencilApp(env, mesh=(16, 16), objects=16, depth=5)
    with pytest.raises(ConfigurationError):
        app.run(5)
