"""Integration tests for the stencil application (chare + AMPI)."""

import numpy as np
import pytest

from repro.apps.stencil import (
    AmpiStencilApp,
    StencilApp,
    make_initial_mesh,
    run_reference,
    run_stencil,
)
from repro.core.mapping import RoundRobinMapping
from repro.grid.presets import artificial_latency_env, single_cluster_env, teragrid_env
from repro.units import ms

MESH = (48, 48)
STEPS = 9


def reference_mesh(steps=STEPS, seed=0):
    return run_reference(make_initial_mesh(*MESH, seed), steps)


def test_matches_reference_single_cluster():
    env = single_cluster_env(2)
    app = StencilApp(env, mesh=MESH, objects=16, payload="real",
                     gather_mesh=True)
    res = app.run(STEPS)
    assert np.array_equal(res.final_mesh, reference_mesh())


@pytest.mark.parametrize("objects", [1, 4, 9, 16, 144])
def test_matches_reference_any_decomposition(objects):
    env = artificial_latency_env(4, ms(3))
    app = StencilApp(env, mesh=MESH, objects=objects, payload="real",
                     gather_mesh=True)
    res = app.run(STEPS)
    assert np.array_equal(res.final_mesh, reference_mesh())


@pytest.mark.parametrize("latency_ms", [0.0, 1.0, 50.0])
def test_latency_never_changes_numerics(latency_ms):
    env = artificial_latency_env(4, ms(latency_ms))
    app = StencilApp(env, mesh=MESH, objects=16, payload="real",
                     gather_mesh=True)
    res = app.run(STEPS)
    assert np.array_equal(res.final_mesh, reference_mesh())


def test_mapping_never_changes_numerics():
    env = artificial_latency_env(8, ms(2))
    app = StencilApp(env, mesh=MESH, objects=16, payload="real",
                     gather_mesh=True, mapping=RoundRobinMapping())
    res = app.run(STEPS)
    assert np.array_equal(res.final_mesh, reference_mesh())


def test_teragrid_env_never_changes_numerics():
    env = teragrid_env(4, seed=3)
    app = StencilApp(env, mesh=MESH, objects=16, payload="real",
                     gather_mesh=True)
    res = app.run(STEPS)
    assert np.array_equal(res.final_mesh, reference_mesh())


def test_checksum_matches_reference_sum():
    env = artificial_latency_env(2, ms(1))
    app = StencilApp(env, mesh=MESH, objects=4, payload="real")
    res = app.run(STEPS)
    ref = reference_mesh()
    assert res.checksum == pytest.approx(float(ref.sum()))


def test_modeled_payload_same_timing_as_real():
    """The modeled event flow must be time-identical to the real one."""
    times = []
    for payload in ("real", "modeled"):
        env = artificial_latency_env(4, ms(4))
        app = StencilApp(env, mesh=MESH, objects=16, payload=payload)
        res = app.run(STEPS)
        times.append(res.step_times)
    assert np.allclose(times[0], times[1], rtol=0, atol=1e-12)


def test_deterministic_across_runs():
    def once():
        env = artificial_latency_env(8, ms(8))
        return run_stencil(env, MESH, 16, steps=STEPS, payload="modeled")

    a, b = once(), once()
    assert np.array_equal(a.step_times, b.step_times)


def test_step_times_monotone():
    env = artificial_latency_env(4, ms(4))
    res = run_stencil(env, MESH, 16, steps=STEPS)
    assert np.all(np.diff(res.step_times) > 0)
    assert res.makespan >= res.step_times[-1]


def test_result_properties():
    env = artificial_latency_env(2, ms(1))
    res = run_stencil(env, MESH, 4, steps=STEPS)
    assert res.steps == STEPS
    assert res.time_per_step > 0
    assert res.time_per_step_ms == pytest.approx(res.time_per_step * 1e3)


def test_bad_run_parameters():
    from repro.errors import ConfigurationError
    env = artificial_latency_env(2, ms(1))
    app = StencilApp(env, mesh=MESH, objects=4)
    with pytest.raises(ConfigurationError):
        app.run(0)
    with pytest.raises(ConfigurationError):
        app.run(3, warmup=3)


# -- AMPI variant ------------------------------------------------------------------

def test_ampi_stencil_matches_reference():
    env = artificial_latency_env(4, ms(3))
    app = AmpiStencilApp(env, mesh=MESH, ranks=16, payload="real")
    res = app.run(STEPS)
    ref = reference_mesh()
    assert res.checksum == pytest.approx(float(ref.sum()))


def test_ampi_stencil_virtualization_works():
    """16 ranks on 2 PEs: pure-MPI code, masked by virtualization."""
    env = artificial_latency_env(2, ms(2))
    app = AmpiStencilApp(env, mesh=MESH, ranks=16, payload="modeled")
    res = app.run(STEPS)
    assert res.time_per_step > 0
    assert len(res.step_times) == STEPS


def test_ampi_and_chare_stencils_agree_numerically():
    env1 = artificial_latency_env(4, ms(1))
    chare_res = StencilApp(env1, mesh=MESH, objects=16,
                           payload="real").run(STEPS)
    env2 = artificial_latency_env(4, ms(1))
    ampi_res = AmpiStencilApp(env2, mesh=MESH, ranks=16,
                              payload="real").run(STEPS)
    assert chare_res.checksum == pytest.approx(ampi_res.checksum)
