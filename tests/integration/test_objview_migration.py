"""Object identity in the object view must survive migration.

The fold keys profiles by ``str(ChareID)`` — a location-independent
label — so when the load balancer moves a chare mid-run, new samples
must keep accumulating in the *same* profile (follow the object, not
the PE it happened to be on), and the streaming fold must stay
bit-identical to the batch fold of the same recording.
"""

import pytest

from repro.core.chare import Chare
from repro.core.ids import ChareID
from repro.core.loadbalance import GreedyLB, RotateLB
from repro.core.mapping import RoundRobinMapping
from repro.core.method import entry
from repro.grid.presets import artificial_latency_env, single_cluster_env
from repro.obs.objview import ObjectView, fold_from_tracer
from repro.units import ms

N = 8
WORK_S = 0.001


class Worker(Chare):
    def __init__(self):
        super().__init__()
        self.inbox = []

    @entry
    def work(self, cost):
        self.charge(cost)

    @entry
    def take(self, value):
        self.inbox.append(value)


def build(env, n=N, mapping=None):
    rts = env.runtime
    arr = rts.create_array(Worker, range(n),
                           mapping or RoundRobinMapping())
    return rts, arr


def snapshot(env):
    """Per-object (executions, compute_s) from the streaming fold."""
    fold = env.aggregator.objview
    return {obj: (p.executions, p.compute_s)
            for obj, p in fold.profiles.items()}


def round_of_work(env, rts, arr):
    arr.work(WORK_S)
    for i in range(N // 2):
        arr[i].take("ping")        # labelled cross-object traffic
    env.run()


def object_pes(rts, arr):
    return {str(ChareID(arr.collection, idx)):
            rts.pe_of(ChareID(arr.collection, idx))
            for idx in arr.indices()}


def test_profiles_follow_object_across_rotate_lb():
    env = artificial_latency_env(4, ms(2), trace=True)
    rts, arr = build(env)
    round_of_work(env, rts, arr)
    before = snapshot(env)
    pes_before = object_pes(rts, arr)
    labels = set(object_pes(rts, arr))
    # Every worker label is tracked and keyed location-independently.
    assert labels <= set(before)

    applied = rts.load_balance(RotateLB())
    env.run()
    assert len(applied) == N
    round_of_work(env, rts, arr)

    pes_after = object_pes(rts, arr)
    for obj in labels:
        assert pes_after[obj] == (pes_before[obj] + 1) % 4  # it moved
    after = snapshot(env)
    # No profile was re-keyed by the move: the label set only ever
    # grows by labels, never forks a per-PE alias.
    assert set(after) == set(before)
    for obj in labels:
        execs0, compute0 = before[obj]
        execs1, compute1 = after[obj]
        # The second round's samples landed in the SAME profile, even
        # though the chare now lives on a different PE.
        assert execs1 > execs0
        assert compute1 > compute0

    # Streaming fold stays bit-identical to the batch fold under real
    # migration traffic (migration messages carry no object labels).
    assert env.aggregator.objview.to_dict() == \
        fold_from_tracer(env.tracer).to_dict()


def test_exactly_one_more_execution_per_object_after_rotate():
    """The post-migration round adds its executions to the old keys."""
    env = artificial_latency_env(4, ms(2), trace=True)
    rts, arr = build(env)
    arr.work(WORK_S)
    env.run()
    before = snapshot(env)

    rts.load_balance(RotateLB())
    env.run()
    mid = snapshot(env)
    # Migration itself executes no labelled entry methods.
    assert {o: v[0] for o, v in mid.items()} == \
        {o: v[0] for o, v in before.items()}

    arr.work(WORK_S)
    env.run()
    after = snapshot(env)
    assert set(after) == set(before)
    grain = WORK_S + env.runtime.config.scheduler_overhead
    for obj, (execs0, compute0) in before.items():
        execs1, compute1 = after[obj]
        assert execs1 == execs0 + 1
        assert compute1 - compute0 == pytest.approx(grain, rel=1e-9)


def test_profiles_follow_object_across_greedy_lb():
    env = single_cluster_env(4, trace=True)
    # Everything starts on PE 0; GreedyLB must spread the measured load.
    rts, arr = build(env, mapping={(i,): 0 for i in range(N)})
    arr.work(WORK_S)
    env.run()
    before = snapshot(env)

    rts.load_balance(GreedyLB())
    env.run()
    pes = set(object_pes(rts, arr).values())
    assert pes == {0, 1, 2, 3}

    arr.work(WORK_S)
    env.run()
    after = snapshot(env)
    assert set(after) == set(before)
    for obj, (execs0, _c0) in before.items():
        assert after[obj][0] == execs0 + 1
    assert env.aggregator.objview.to_dict() == \
        fold_from_tracer(env.tracer).to_dict()


def test_object_view_render_after_migration():
    """The rendered view keeps one row per object after the shakeout."""
    env = artificial_latency_env(4, ms(2), trace=True)
    rts, arr = build(env)
    round_of_work(env, rts, arr)
    rts.load_balance(RotateLB())
    env.run()
    round_of_work(env, rts, arr)
    view = ObjectView.from_source(env.aggregator)
    text = view.render(top=2 * N)
    labels = set(object_pes(rts, arr))
    for obj in labels:
        assert text.count(f"{obj} ") >= 1
    assert view.totals()["objects"] >= N
