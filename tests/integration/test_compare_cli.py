"""End-to-end differential observability: --ledger-out and `compare`.

The CI smoke in miniature: run the same configuration twice with
``--ledger-out``, compare the two schema-2 ledger records, and require
an all-neutral, exact (residual == 0.0) verdict — virtual time is
bit-reproducible, so any non-neutral component on a self-compare is a
bug in the attribution pipeline, not noise.
"""

import io
import json

import pytest

from repro.cli import main
from repro.obs.export import validate_chrome_trace
from repro.obs.ledger import records_from_file, store_record


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


CRITPATH_ARGS = ["critpath", "--pes", "4", "--objects", "16",
                 "--mesh", "256", "--steps", "4", "--latency", "2"]


@pytest.fixture
def ledger(tmp_path, monkeypatch):
    """Two identical critpath runs appended to one ledger file."""
    monkeypatch.chdir(tmp_path)   # .repro-cache lands here, not the repo
    path = tmp_path / "ledger.json"
    for _ in range(2):
        code, _ = run_cli(CRITPATH_ARGS + ["--ledger-out", str(path)])
        assert code == 0
    return path


def test_critpath_ledger_out_writes_schema2_records(ledger, tmp_path):
    records = records_from_file(str(ledger))
    # Dedup is off for ledger files: both records are present even
    # though the runs are bit-identical (that is the point of A/B).
    assert len(records) == 2
    for rec in records:
        assert rec.schema == 2
        assert rec.critpath is not None
        assert rec.critpath["steps"] == 4
        # Real runs are off the dyadic grid: the attribution residual
        # is reported float noise, never silently absorbed.
        assert abs(rec.critpath["residual_s"]) < 1e-12
        assert rec.profile is not None        # --ledger-out => profiled
        assert rec.profile["phases"]
        assert rec.config["experiment"] == "critpath"
    assert records[0].same_run(records[1])
    # Each record is also content-addressed under .repro-cache.
    stored = list((tmp_path / ".repro-cache" / "ledger").rglob("*.json"))
    assert len(stored) == 1   # identical runs share one entry


def test_netview_ledger_out_carries_net_rollup(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    path = tmp_path / "nv.json"
    code, _ = run_cli(["netview", "--pes", "4", "--objects", "16",
                       "--mesh", "256", "--steps", "4", "--latency", "2",
                       "--ledger-out", str(path)])
    assert code == 0
    (rec,) = records_from_file(str(path))
    assert rec.schema == 2
    assert rec.critpath is not None
    assert rec.config["experiment"] == "netview"
    assert rec.extra["net"]["wan_crossings"] > 0


def test_compare_self_is_all_neutral_and_exact(ledger):
    code, text = run_cli(["compare", "0", "1", "--path", str(ledger)])
    assert code == 0
    assert "residual +0.000e+00 s  (exact)" in text
    assert "regressed" not in text

    code, text = run_cli(["compare", "0", "1", "--path", str(ledger),
                          "--json"])
    assert code == 0
    doc = json.loads(text)
    assert doc["schema"] == 1
    assert doc["all_neutral"] is True
    assert doc["exact"] is True
    assert doc["residual_s"] == 0.0
    assert doc["total"]["verdict"] == "neutral"
    assert not doc["config_changed"]
    assert {c["component"] for c in doc["components"]} >= {
        "compute", "propagation", "retransmit_stall"}
    assert "scheduler" in doc["phases"]


def test_compare_trace_out_is_valid_and_two_sided(ledger, tmp_path):
    trace = tmp_path / "cmp.trace.json"
    code, text = run_cli(["compare", "0", "1", "--path", str(ledger),
                          "--trace-out", str(trace)])
    assert code == 0
    assert "Chrome trace written" in text
    doc = json.loads(trace.read_text())
    validate_chrome_trace(doc)
    assert {e["pid"] for e in doc["traceEvents"]} == {1, 2}


def test_compare_detects_fabricated_regression(ledger):
    records = json.loads(ledger.read_text())
    cand = records[1]
    cand["critpath"]["retransmit_stall_s"] += cand["critpath"]["wall_s"]
    ledger.write_text(json.dumps(records))
    with pytest.raises(SystemExit) as err:
        run_cli(["compare", "0", "1", "--path", str(ledger)])
    assert err.value.code == 1
    # The verdict names the guilty component.
    code, text = run_cli(["compare", "0", "1", "--path", str(ledger),
                          "--json", "--threshold", "1000"])
    assert code == 0   # huge threshold: neutral total, but deltas remain
    doc = json.loads(text)
    by_name = {c["component"]: c for c in doc["components"]}
    assert by_name["retransmit_stall"]["delta_s"] > 0
    assert by_name["compute"]["delta_s"] == 0.0


def test_compare_accepts_standalone_record_files(ledger, tmp_path):
    records = records_from_file(str(ledger))
    a = store_record(records[0], root=str(tmp_path / "c"))
    b = tmp_path / "single.json"
    b.write_text(json.dumps(records[1].to_dict()))
    code, text = run_cli(["compare", a, str(b)])
    assert code == 0
    assert "(exact)" in text


def test_compare_rejects_records_without_critpath(ledger):
    records = json.loads(ledger.read_text())
    del records[0]["critpath"]
    records[0]["schema"] = 1
    ledger.write_text(json.dumps(records))
    with pytest.raises(SystemExit) as err:
        run_cli(["compare", "0", "1", "--path", str(ledger)])
    assert "no critpath payload" in str(err.value)


def test_compare_operand_errors(ledger, tmp_path):
    with pytest.raises(SystemExit) as err:
        run_cli(["compare", "0", "7", "--path", str(ledger)])
    assert "out of range" in str(err.value)
    with pytest.raises(SystemExit) as err:
        run_cli(["compare", "0", "1",
                 "--path", str(tmp_path / "missing.json")])
    assert "no trajectory records" in str(err.value)
    with pytest.raises(SystemExit) as err:
        run_cli(["compare", str(tmp_path / "nope.json"), "0",
                 "--path", str(ledger)])
    assert "not an integer index" in str(err.value)


def test_bench_diff_delegates_to_component_diff(ledger):
    """With v2 records in the trajectory, bench-diff explains its
    headline ratio with the per-component table from repro compare."""
    code, text = run_cli(["bench-diff", "--path", str(ledger)])
    assert code == 0
    assert "ratio" in text
    assert "retransmit_stall" in text   # the component table rode along
    assert "(exact)" in text

    code, text = run_cli(["bench-diff", "--path", str(ledger), "--json"])
    assert code == 0
    doc = json.loads(text)
    assert doc["critpath_diff"]["all_neutral"] is True
    assert doc["critpath_diff"]["residual_s"] == 0.0
