"""Integration tests for the AMPI layer on the simulated grid."""

import numpy as np
import pytest

from repro.ampi import ANY_SOURCE, ANY_TAG, AmpiWorld, ampi_run
from repro.core.mapping import RoundRobinMapping
from repro.errors import AmpiError
from repro.grid.presets import teragrid_env


def test_send_recv_pair(env4):
    def program(mpi):
        if mpi.rank == 0:
            mpi.send({"a": 7, "b": 3.14}, dest=1, tag=11)
            return "sent"
        data = yield mpi.recv(source=0, tag=11)
        return data

    world = ampi_run(env4, program, num_ranks=2)
    assert world.results_in_rank_order() == ["sent", {"a": 7, "b": 3.14}]


def test_recv_blocks_until_message(env4):
    times = {}

    def program(mpi):
        if mpi.rank == 0:
            mpi.charge(0.05)
            mpi.send("late", dest=1)
        else:
            data = yield mpi.recv(source=0)
            times["recv_done"] = mpi.now
            assert data == "late"

    ampi_run(env4, program, num_ranks=2)
    assert times["recv_done"] >= 0.05


def test_wildcard_source_and_tag(env4):
    def program(mpi):
        if mpi.rank == 0:
            out = []
            for _ in range(2):
                src, tag, data = yield mpi.recv_status(source=ANY_SOURCE,
                                                       tag=ANY_TAG)
                out.append((src, tag, data))
            return sorted(out)
        mpi.send(f"from-{mpi.rank}", dest=0, tag=mpi.rank * 10)

    world = ampi_run(env4, program, num_ranks=3)
    assert world.results[0] == [(1, 10, "from-1"), (2, 20, "from-2")]


def test_pair_ordering_preserved_under_jitter():
    """MPI non-overtaking must survive a jittered WAN."""
    env = teragrid_env(2, seed=11)

    def program(mpi):
        if mpi.rank == 0:
            for i in range(20):
                mpi.send(i, dest=1, tag=0)
        else:
            out = []
            for _ in range(20):
                out.append((yield mpi.recv(source=0, tag=0)))
            return out

    world = ampi_run(env, program, num_ranks=2)
    assert world.results[1] == list(range(20))


def test_isend_irecv_waitall(env4):
    def program(mpi):
        right = (mpi.rank + 1) % mpi.size
        left = (mpi.rank - 1) % mpi.size
        reqs = [mpi.irecv(source=left, tag=1)]
        mpi.isend(mpi.rank * 2, dest=right, tag=1)
        values = yield mpi.waitall(reqs)
        return values[0]

    world = ampi_run(env4, program, num_ranks=4)
    assert world.results_in_rank_order() == [6, 0, 2, 4]


def test_waitany(env4):
    def program(mpi):
        if mpi.rank == 0:
            r1 = mpi.irecv(source=1, tag=1)
            r2 = mpi.irecv(source=2, tag=2)
            idx, data = yield mpi.waitany([r1, r2])
            return (idx, data)
        if mpi.rank == 1:
            mpi.charge(0.5)   # rank 1 is slow
            mpi.send("slow", dest=0, tag=1)
        else:
            mpi.send("fast", dest=0, tag=2)

    world = ampi_run(env4, program, num_ranks=3)
    assert world.results[0] == (1, "fast")


def test_posted_receive_matches_before_mailbox(env4):
    def program(mpi):
        if mpi.rank == 0:
            req = mpi.irecv(source=1, tag=5)
            data = yield mpi.wait(req)
            return data
        mpi.send("posted", dest=1 - mpi.rank, tag=5)

    world = ampi_run(env4, program, num_ranks=2)
    assert world.results[0] == "posted"


def test_sendrecv_ring(env4):
    def program(mpi):
        right = (mpi.rank + 1) % mpi.size
        left = (mpi.rank - 1) % mpi.size
        got = yield mpi.sendrecv(mpi.rank, dest=right, source=left)
        return got

    world = ampi_run(env4, program, num_ranks=8)
    assert world.results_in_rank_order() == [7, 0, 1, 2, 3, 4, 5, 6]


def test_collectives_suite(env4):
    def program(mpi):
        total = yield mpi.allreduce(mpi.rank + 1, op="sum")
        biggest = yield mpi.allreduce(mpi.rank, op="max")
        rooted = yield mpi.reduce(mpi.rank, op="sum", root=2)
        bval = yield mpi.bcast("hello" if mpi.rank == 1 else None, root=1)
        gathered = yield mpi.gather(mpi.rank * 10, root=0)
        ag = yield mpi.allgather(mpi.rank)
        scattered = yield mpi.scatter(
            [f"part{r}" for r in range(mpi.size)] if mpi.rank == 0 else None,
            root=0)
        prefix = yield mpi.scan(1, op="sum")
        yield mpi.barrier()
        return (total, biggest, rooted, bval, gathered, ag, scattered,
                prefix)

    world = ampi_run(env4, program, num_ranks=4)
    r = world.results_in_rank_order()
    assert all(x[0] == 10 for x in r)
    assert all(x[1] == 3 for x in r)
    assert [x[2] for x in r] == [None, None, 6, None]
    assert all(x[3] == "hello" for x in r)
    assert r[0][4] == [0, 10, 20, 30]
    assert all(x[4] is None for x in r[1:])
    assert all(x[5] == [0, 1, 2, 3] for x in r)
    assert [x[6] for x in r] == ["part0", "part1", "part2", "part3"]
    assert [x[7] for x in r] == [1, 2, 3, 4]


def test_alltoall(env4):
    def program(mpi):
        out = yield mpi.alltoall(
            [f"{mpi.rank}->{d}" for d in range(mpi.size)])
        return out

    world = ampi_run(env4, program, num_ranks=3)
    assert world.results[1] == ["0->1", "1->1", "2->1"]


def test_allreduce_numpy_arrays(env4):
    def program(mpi):
        arr = np.full(3, float(mpi.rank))
        total = yield mpi.allreduce(arr, op="sum")
        return total

    world = ampi_run(env4, program, num_ranks=4)
    assert np.array_equal(world.results[0], [6.0, 6.0, 6.0])


def test_virtualization_ranks_exceed_pes(env4):
    """More ranks than PEs: the core AMPI virtualization claim."""
    def program(mpi):
        right = (mpi.rank + 1) % mpi.size
        left = (mpi.rank - 1) % mpi.size
        token = yield mpi.sendrecv(mpi.rank, dest=right, source=left)
        total = yield mpi.allreduce(token, op="sum")
        return total

    world = ampi_run(env4, program, num_ranks=32)
    expected = sum(range(32))
    assert all(v == expected for v in world.results.values())


def test_rank_program_must_be_generator(env4):
    def not_a_generator(mpi):
        return 42

    with pytest.raises(AmpiError):
        ampi_run(env4, not_a_generator, num_ranks=2)


def test_yielding_garbage_rejected(env4):
    def program(mpi):
        yield "not-a-descriptor"

    with pytest.raises(AmpiError):
        ampi_run(env4, program, num_ranks=1)


def test_deadlock_detection_via_unfinished_ranks(env4):
    def program(mpi):
        if mpi.rank == 0:
            yield mpi.recv(source=1, tag=9)  # never sent
        return None

    world = AmpiWorld(env4, program, num_ranks=2)
    world.run()
    assert not world.all_finished
    with pytest.raises(AmpiError):
        world.results_in_rank_order()


def test_send_to_invalid_rank(env4):
    from repro.errors import RankError

    def program(mpi):
        mpi.send("x", dest=99)
        yield mpi.barrier()

    with pytest.raises(RankError):
        ampi_run(env4, program, num_ranks=2)


def test_program_args_passed(env4):
    def program(mpi, factor, offset):
        value = yield mpi.allreduce(mpi.rank * factor + offset)
        return value

    world = ampi_run(env4, program, num_ranks=2, program_args=(10, 1))
    assert world.results[0] == 12


def test_custom_rank_mapping(env4):
    def program(mpi):
        if False:
            yield
        return None

    world = AmpiWorld(env4, program, num_ranks=4,
                      mapping=RoundRobinMapping())
    world.run()
    assert [world.comm.pe_of_rank(r) for r in range(4)] == [0, 1, 2, 3]
    assert world.comm.ranks_on_pe(2) == [2]


def test_finished_at_recorded(env4):
    def program(mpi):
        mpi.charge(0.1)
        yield mpi.barrier()

    world = ampi_run(env4, program, num_ranks=4)
    assert world.finished_at is not None
    assert world.finished_at >= 0.1
