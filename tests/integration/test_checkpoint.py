"""Tests for checkpoint/restore (paper §2.1 fault-tolerance support)."""

import numpy as np
import pytest

from repro.core.chare import Chare
from repro.core.checkpoint import restore_checkpoint, take_checkpoint
from repro.core.ids import ChareID
from repro.core.mapping import RoundRobinMapping
from repro.core.method import entry
from repro.errors import RuntimeSystemError
from repro.grid.presets import artificial_latency_env
from repro.units import ms


class Accumulator(Chare):
    def __init__(self, seed):
        super().__init__()
        self.state = np.full(4, float(seed))
        self.log = []

    @entry
    def bump(self, x):
        self.state += x
        self.log.append(x)
        self.charge(1e-4)

    @entry
    def spread(self, rounds):
        """Message the next element, chaining work across the array."""
        self.state *= 1.0001
        if rounds > 0:
            nxt = (self.thisIndex[0] + 1) % 6
            self.thisProxy[nxt].spread(rounds - 1)


def build(env):
    rts = env.runtime
    arr = rts.create_array(Accumulator, range(6), RoundRobinMapping(),
                           args_of=lambda idx: ((idx[0],), {}))
    return rts, arr


def states(rts, arr):
    return [rts.chare_object(ChareID(arr.collection, (i,))).state.copy()
            for i in range(6)]


def test_checkpoint_requires_quiescence(env4):
    rts, arr = build(env4)
    arr.bump(1.0)
    with pytest.raises(RuntimeSystemError):
        take_checkpoint(rts)   # broadcast still in flight
    env4.run()
    take_checkpoint(rts)       # quiescent now


def test_checkpoint_counts_and_bytes(env4):
    rts, arr = build(env4)
    env4.run()
    ckpt = take_checkpoint(rts)
    assert ckpt.num_chares == 6
    assert ckpt.total_bytes > 6 * 32   # at least the numpy payloads
    assert ckpt.taken_at == rts.now


def test_restore_reproduces_state_and_placement(env4):
    rts, arr = build(env4)
    arr.bump(2.5)
    arr[3].spread(10)
    env4.run()
    ckpt = take_checkpoint(rts)
    before = states(rts, arr)
    placement = [rts.pe_of(ChareID(arr.collection, (i,)))
                 for i in range(6)]

    env2 = artificial_latency_env(4, ms(2))
    restore_checkpoint(env2.runtime, ckpt)
    arr2 = env2.runtime.collection_proxy(arr.collection)
    after = states(env2.runtime, arr2)
    for b, a in zip(before, after):
        assert np.array_equal(b, a)
    assert [env2.runtime.pe_of(ChareID(arr2.collection, (i,)))
            for i in range(6)] == placement


def test_restore_then_continue_equals_continue():
    """The fault-tolerance contract: a restart is invisible."""
    # Path A: run phase 1 + phase 2 without interruption.
    envA = artificial_latency_env(4, ms(2))
    rtsA, arrA = build(envA)
    arrA.bump(1.0)
    envA.run()
    arrA.bump(3.0)
    arrA[0].spread(7)
    envA.run()
    expected = states(rtsA, arrA)

    # Path B: checkpoint after phase 1, restore elsewhere, run phase 2.
    envB1 = artificial_latency_env(4, ms(2))
    rtsB1, arrB1 = build(envB1)
    arrB1.bump(1.0)
    envB1.run()
    ckpt = take_checkpoint(rtsB1)

    envB2 = artificial_latency_env(4, ms(2))
    restore_checkpoint(envB2.runtime, ckpt)
    arrB2 = envB2.runtime.collection_proxy(arrB1.collection)
    arrB2.bump(3.0)
    arrB2[0].spread(7)
    envB2.run()
    got = states(envB2.runtime, arrB2)

    for e, g in zip(expected, got):
        assert np.array_equal(e, g)


def test_restored_chares_are_independent_copies(env4):
    rts, arr = build(env4)
    env4.run()
    ckpt = take_checkpoint(rts)
    # Mutate the original after the snapshot...
    arr.bump(100.0)
    env4.run()
    # ...the checkpoint must still hold the old values.
    env2 = artificial_latency_env(4, ms(2))
    restore_checkpoint(env2.runtime, ckpt)
    obj = env2.runtime.chare_object(ChareID(arr.collection, (0,)))
    assert obj.state[0] == pytest.approx(0.0)


def test_restore_into_dirty_runtime_rejected(env4):
    rts, arr = build(env4)
    env4.run()
    ckpt = take_checkpoint(rts)
    with pytest.raises(RuntimeSystemError):
        restore_checkpoint(rts, ckpt)    # same (non-empty) runtime


def test_restore_into_smaller_machine_rejected():
    env = artificial_latency_env(8, ms(1))
    rts, arr = build(env)
    env.run()
    ckpt = take_checkpoint(rts)
    env_small = artificial_latency_env(4, ms(1))
    with pytest.raises(RuntimeSystemError):
        restore_checkpoint(env_small.runtime, ckpt)


def test_checkpoint_rejects_mid_migration(env4):
    rts, arr = build(env4)
    env4.run()
    rts.migrate(ChareID(arr.collection, (0,)), 3)
    with pytest.raises(RuntimeSystemError):
        take_checkpoint(rts)   # migration message still pending


def test_restore_into_larger_machine_expands():
    """§2.1: the runtime can 'shrink and expand the set of processors';
    restore-into-more-PEs is the expand direction (chares keep their
    old homes and a later load balance can spread them)."""
    env = artificial_latency_env(4, ms(1))
    rts, arr = build(env)
    arr.bump(1.0)
    env.run()
    ckpt = take_checkpoint(rts)

    env_big = artificial_latency_env(8, ms(1))
    restore_checkpoint(env_big.runtime, ckpt)
    arr2 = env_big.runtime.collection_proxy(arr.collection)
    arr2.bump(1.0)
    env_big.run()

    from repro.core.loadbalance import GreedyLB
    env_big.runtime.load_balance(GreedyLB())
    env_big.run()
    pes_used = {env_big.runtime.pe_of(ChareID(arr2.collection, (i,)))
                for i in range(6)}
    assert len(pes_used) == 6          # spread over the larger machine
    got = states(env_big.runtime, arr2)
    assert all(s[0] == pytest.approx(i + 2.0) for i, s in enumerate(got))
