"""Tests for the ``python -m repro`` command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_table1_subset():
    code, text = run_cli(["table1", "--rows", "2x16", "--steps", "4"])
    assert code == 0
    assert "Table 1" in text
    assert "75.050" in text       # the paper column is present


def test_table1_rejects_unknown_row():
    with pytest.raises(SystemExit):
        run_cli(["table1", "--rows", "3x17"])


def test_table1_rejects_malformed_row():
    with pytest.raises(SystemExit):
        run_cli(["table1", "--rows", "oops"])


def test_table2_subset():
    code, text = run_cli(["table2", "--pes", "2", "--steps", "4"])
    assert code == 0
    assert "Table 2" in text
    assert "3.924" in text


def test_fig3_single_panel():
    code, text = run_cli(["fig3", "--pes", "4", "--latencies", "0", "4",
                          "--steps", "4"])
    assert code == 0
    assert "Figure 3 (4 PEs)" in text
    assert "objects=4" in text


def test_fig3_rejects_unknown_panel():
    with pytest.raises(SystemExit):
        run_cli(["fig3", "--pes", "7"])


def test_fig4_subset():
    code, text = run_cli(["fig4", "--pes", "4", "--latencies", "1", "64",
                          "--steps", "4"])
    assert code == 0
    assert "Figure 4" in text
    assert "pes=4" in text


def test_demo_runs():
    code, text = run_cli(["demo"])
    assert code == 0
    assert "ms/step" in text
    assert "hidden" in text


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_module_entry_point_importable():
    import repro.__main__  # noqa: F401  (must not execute main on import)
