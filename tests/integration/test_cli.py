"""Tests for the ``python -m repro`` command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_table1_subset():
    code, text = run_cli(["table1", "--rows", "2x16", "--steps", "4"])
    assert code == 0
    assert "Table 1" in text
    assert "75.050" in text       # the paper column is present


def test_table1_rejects_unknown_row():
    with pytest.raises(SystemExit):
        run_cli(["table1", "--rows", "3x17"])


def test_table1_rejects_malformed_row():
    with pytest.raises(SystemExit):
        run_cli(["table1", "--rows", "oops"])


def test_table2_subset():
    code, text = run_cli(["table2", "--pes", "2", "--steps", "4"])
    assert code == 0
    assert "Table 2" in text
    assert "3.924" in text


def test_fig3_single_panel():
    code, text = run_cli(["fig3", "--pes", "4", "--latencies", "0", "4",
                          "--steps", "4"])
    assert code == 0
    assert "Figure 3 (4 PEs)" in text
    assert "objects=4" in text


def test_fig3_rejects_unknown_panel():
    with pytest.raises(SystemExit):
        run_cli(["fig3", "--pes", "7"])


def test_fig4_subset():
    code, text = run_cli(["fig4", "--pes", "4", "--latencies", "1", "64",
                          "--steps", "4"])
    assert code == 0
    assert "Figure 4" in text
    assert "pes=4" in text


def test_demo_runs():
    code, text = run_cli(["demo"])
    assert code == 0
    assert "ms/step" in text
    assert "hidden" in text


def test_demo_json():
    code, text = run_cli(["demo", "--json"])
    assert code == 0
    doc = json.loads(text)
    assert len(doc["runs"]) == 4
    for row in doc["runs"]:
        assert {"pes", "objects", "latency_ms",
                "time_per_step_ms", "masked_fraction"} <= set(row)
        assert 0.0 <= row["masked_fraction"] <= 1.0


def test_trace_text_report():
    code, text = run_cli(["trace", "--pes", "4", "--objects", "16",
                          "--latency", "8", "--steps", "4"])
    assert code == 0
    assert "Latency-masking report" in text
    assert "masked fraction" in text
    assert "StencilBlock.ghost" in text


def test_trace_json_report():
    code, text = run_cli(["trace", "--pes", "4", "--objects", "16",
                          "--latency", "8", "--steps", "4", "--json"])
    assert code == 0
    doc = json.loads(text)
    assert doc["app"] == "stencil"
    assert doc["wan"]["windows"] > 0
    assert 0.0 <= doc["wan"]["masked_fraction"] <= 1.0
    assert 0.0 < doc["mean_utilization"] <= 1.0


def test_trace_exports_valid_files(tmp_path):
    from repro.obs.export import validate_chrome_trace

    trace_path = tmp_path / "run.trace.json"
    events_path = tmp_path / "run.events.jsonl"
    code, _ = run_cli(["trace", "--pes", "4", "--objects", "16",
                       "--latency", "4", "--steps", "3",
                       "--out", str(trace_path),
                       "--events-out", str(events_path)])
    assert code == 0
    doc = json.loads(trace_path.read_text())
    validate_chrome_trace(doc)
    assert any(ev.get("cat") == "exec" for ev in doc["traceEvents"])
    assert any(ev.get("cat") == "wan" for ev in doc["traceEvents"])
    records = [json.loads(line)
               for line in events_path.read_text().splitlines()]
    assert {r["type"] for r in records} == {"exec", "message", "hops"}
    hops = [r for r in records if r["type"] == "hops"]
    assert all(r["spans"] for r in hops)


def test_trace_leanmd():
    code, text = run_cli(["trace", "--app", "leanmd", "--pes", "4",
                          "--steps", "2", "--json"])
    assert code == 0
    assert json.loads(text)["app"] == "leanmd"


def test_trace_rejects_bad_pes_and_latency():
    with pytest.raises(SystemExit):
        run_cli(["trace", "--pes", "3"])
    with pytest.raises(SystemExit):
        run_cli(["trace", "--latency", "-1"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_module_entry_point_importable():
    import repro.__main__  # noqa: F401  (must not execute main on import)


# -- the parallel sweep executor command -------------------------------------


def test_sweep_serial_and_parallel_stdout_identical():
    argv = ["sweep", "fig3", "--panels", "2", "--latencies", "0", "4",
            "--steps", "2", "--no-cache", "--quiet"]
    code1, serial = run_cli(argv + ["--jobs", "1"])
    code2, parallel = run_cli(argv + ["--jobs", "2"])
    assert code1 == code2 == 0
    assert "Figure 3 (2 PEs)" in serial
    assert serial == parallel        # bit-identical artefact, any jobs


def test_sweep_second_run_is_cache_served(tmp_path):
    stats1, stats2 = tmp_path / "s1.json", tmp_path / "s2.json"
    argv = ["sweep", "table2", "--pes", "2", "--steps", "2", "--quiet",
            "--cache-dir", str(tmp_path / "cache")]
    code1, first = run_cli(argv + ["--stats-out", str(stats1)])
    code2, second = run_cli(argv + ["--stats-out", str(stats2)])
    assert code1 == code2 == 0
    assert first == second
    s1 = json.loads(stats1.read_text())
    s2 = json.loads(stats2.read_text())
    assert s1["cache_hits"] == 0 and s1["executed"] == s1["total"]
    assert s2["cache_fraction"] == 1.0 and s2["executed"] == 0


def test_sweep_fig3c_renders_both_flavours(tmp_path):
    stats = tmp_path / "stats.json"
    code, text = run_cli(["sweep", "fig3c", "--latencies", "0", "8",
                          "--steps", "2", "--no-cache", "--quiet",
                          "--stats-out", str(stats)])
    assert code == 0
    assert "Figure 3c (collectives)" in text
    assert "Figure 3c (collectives-ampi)" in text
    for variant in ("flat", "hier", "hier+striped"):
        assert variant in text
    s = json.loads(stats.read_text())
    assert s["total"] == 12 and s["errors"] == 0


def test_sweep_rejects_bad_jobs_and_panel():
    with pytest.raises(SystemExit):
        run_cli(["sweep", "fig3", "--jobs", "0"])
    with pytest.raises(SystemExit):
        run_cli(["sweep", "fig3", "--panels", "7"])


def test_sweep_table1_row_subset(tmp_path):
    code, text = run_cli(["sweep", "table1", "--rows", "2x16",
                          "--steps", "2", "--quiet", "--no-cache"])
    assert code == 0
    assert "Table 1" in text
