"""End-to-end checks for the online health telemetry.

The headline acceptance test: the *online* unmasking alert must agree
with the *post-hoc* knee analysis within one grid point, across three
virtualization degrees of the Figure-3 8-PE panel.  The watchdog sees
the knee live — with fixed memory — that the offline analyzer only
finds after the sweep.
"""

import pytest

from repro.apps.stencil import run_stencil
from repro.grid.presets import artificial_latency_env, lossy_wan_env
from repro.obs.timeseries import SamplingPolicy
from repro.units import ms

MESH = (512, 512)
STEPS = 8
LATENCIES_MS = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
KNEE_TOLERANCE = 1.5


def _sweep(objects):
    """Run the latency sweep; returns (step_times, onset_index)."""
    times = []
    onset = None
    for i, lat in enumerate(LATENCIES_MS):
        env = artificial_latency_env(8, ms(lat), health=True)
        times.append(run_stencil(env, MESH, objects,
                                 steps=STEPS).time_per_step)
        unmasked = any(e.rule == "unmasking" for e in env.health_events)
        if unmasked and onset is None:
            onset = i
    return times, onset


@pytest.mark.parametrize("objects", [16, 64, 256])
def test_online_unmasking_alert_agrees_with_posthoc_knee(objects):
    times, onset = _sweep(objects)
    # Post-hoc knee: the largest latency whose step time is still within
    # KNEE_TOLERANCE of the zero-latency baseline.
    knee = max(i for i, t in enumerate(times)
               if t <= KNEE_TOLERANCE * times[0])
    assert onset is not None, "alert never fired even at 32 ms"
    assert abs(onset - knee) <= 1, (
        f"objects={objects}: online onset at index {onset} "
        f"({LATENCIES_MS[onset]} ms) vs post-hoc knee at index {knee} "
        f"({LATENCIES_MS[knee]} ms)")


def test_alert_silent_in_the_masked_regime():
    """Where the runtime hides the latency, the watchdog stays quiet."""
    env = artificial_latency_env(8, ms(0.0), health=True)
    run_stencil(env, MESH, 64, steps=STEPS)
    assert not any(e.rule == "unmasking" for e in env.health_events)


def test_lossy_wan_raises_storm_and_arq_series():
    env = lossy_wan_env(8, ms(8.0), loss=0.3, seed=7, health=True)
    run_stencil(env, (256, 256), 64, steps=4)
    rules = {e.rule for e in env.health_events}
    assert "retransmit-storm" in rules
    assert "arq.in_flight" in env.sampler.series
    assert env.sampler.series["wan.retransmit_rate"].samples > 0


def test_governor_degrades_traced_run_under_tiny_budget():
    policy = SamplingPolicy(overhead_budget=1e-9)
    env = artificial_latency_env(4, ms(2.0), trace=True, health=True,
                                 sampling=policy)
    run_stencil(env, (256, 256), 16, steps=4)
    assert env.governor.level == "counters"
    downgrades = [e for e in env.health_events if e.rule == "obs-governor"]
    assert len(downgrades) == 2
    assert not env.tracer.enabled
    assert not env.aggregator.enabled
    snap = env.metrics.snapshot()
    assert snap["obs.level"] == 2
    assert "obs.overhead_fraction" in snap


def test_governor_recovery_restores_environment_ladder():
    """Down the ladder and back: the governor's upgrade callbacks must
    re-enable exactly what the downgrade callbacks disabled — sampler
    recording and aggregation at "sampling", per-event tracing at
    "full" (because this env requested tracing)."""
    env = artificial_latency_env(4, ms(2.0), trace=True, health=True,
                                 sampling=True)
    state = {"t": 0.0, "cost": 0.0}
    gov = env.governor
    gov.clock = lambda: state["t"]
    gov._t0 = 0.0
    gov.budget = 0.10
    gov.recovery_headroom = 0.5
    gov.recovery_patience = 2
    gov.add_cost_source("test", lambda: state["cost"])

    # Overspend: two checks walk full -> sampling -> counters and the
    # environment callbacks switch off tracing, recording, aggregation.
    for i in range(2):
        state["t"] += 1.0
        state["cost"] += 0.9
        gov.check(float(i))
    assert gov.level == "counters"
    assert not env.tracer.enabled
    assert not env.sampler.recording
    assert not env.aggregator.enabled

    # Calm: cost frozen while wall time advances; after patience x 2
    # calm checks the same ladder climbs back up.
    state["t"] = 200.0
    ticks = 0
    while gov.level != "full" and ticks < 10:
        state["t"] += 50.0
        gov.check(100.0 + ticks)
        ticks += 1
    assert gov.level == "full"
    assert env.tracer.enabled          # trace was requested at build time
    assert env.sampler.recording
    assert env.aggregator.enabled
    transitions = [e.severity for e in gov.events]
    assert transitions == ["warning", "warning", "info", "info"]


def test_governor_recovery_respects_trace_not_requested():
    """An env built *without* tracing must stay untraced after a full
    recovery — the governor restores the requested level, not more."""
    env = artificial_latency_env(4, ms(2.0), health=True, sampling=True)
    assert not env.tracer.enabled
    env._obs_to_sampling()
    env._obs_to_counters()
    env._obs_recover_sampling()
    env._obs_recover_full()
    assert not env.tracer.enabled
    assert env.sampler.recording
    assert env.aggregator.enabled


def test_every_snapshot_reports_overhead_fraction():
    """obs.overhead_fraction is present even with observability off."""
    env = artificial_latency_env(4, ms(2.0), stats=False)
    run_stencil(env, (256, 256), 16, steps=2)
    snap = env.metrics.snapshot()
    assert "obs.overhead_fraction" in snap
    assert snap["obs.overhead_s"] == 0.0
