"""End-to-end behaviour of the lossy WAN + reliable transport stack.

The acceptance bar for the fault subsystem: with drops, duplicates and
reordering live on the wide-area link, the stencil still computes the
*bit-identical* answer of the sequential reference, same-seed runs stay
deterministic, and a permanently dark link surfaces as a NetworkError
instead of a silent hang.
"""

import numpy as np
import pytest

from repro.apps.stencil.driver import StencilApp
from repro.apps.stencil.kernel import make_initial_mesh
from repro.apps.stencil.reference import run_reference
from repro.errors import (
    ConfigurationError,
    NetworkError,
    RetransmitError,
)
from repro.grid.presets import lossy_wan_env
from repro.network.faults import LinkFlap
from repro.network.reliable import ReliableTransport, RetransmitPolicy
from repro.units import ms

PES = 8
MESH = (64, 64)
OBJECTS = 16
STEPS = 6
FAULTS = dict(loss=0.05, duplication=0.02, reordering=0.05)


def lossy_env(**kwargs):
    cfg = dict(FAULTS)
    cfg.update(kwargs)
    return lossy_wan_env(PES, ms(2), **cfg)


def run_real(env):
    app = StencilApp(env, mesh=MESH, objects=OBJECTS, payload="real",
                     gather_mesh=True)
    return app.run(STEPS)


def test_bit_identical_to_reference_under_faults():
    env = lossy_env(seed=0)
    result = run_real(env)
    expected = run_reference(make_initial_mesh(*MESH, seed=0), STEPS)
    assert np.array_equal(result.final_mesh, expected)
    # The run must actually have exercised the protocol, or this test
    # proves nothing.
    r = env.transport.rstats
    assert r.transfers > 0
    assert r.retransmits + r.dups_suppressed > 0
    assert r.acked == r.transfers
    assert r.failures == 0
    assert env.transport.in_flight == 0


def test_same_seed_runs_are_identical():
    a_env, b_env = lossy_env(seed=3), lossy_env(seed=3)
    a, b = run_real(a_env), run_real(b_env)
    assert np.array_equal(a.step_times, b.step_times)
    assert a_env.now == b_env.now
    assert a_env.transport.rstats == b_env.transport.rstats


def test_different_seeds_fault_differently():
    a_env, b_env = lossy_env(seed=0), lossy_env(seed=1)
    run_real(a_env), run_real(b_env)
    a, b = a_env.transport.rstats, b_env.transport.rstats
    assert (a.retransmits, a.dups_suppressed, a_env.now) != \
           (b.retransmits, b.dups_suppressed, b_env.now)


def test_quiescence_is_clean():
    """No lingering retransmit timers once the app completes."""
    env = lossy_env(seed=0)
    run_real(env)
    assert env.engine.pending == 0


def test_permanent_outage_raises_network_error():
    env = lossy_env(loss=0.0, duplication=0.0, reordering=0.0,
                    flap=LinkFlap([(0.0, 1e9)]),
                    reliable=RetransmitPolicy(max_retries=3, rto_max=0.1))
    with pytest.raises(RetransmitError) as exc_info:
        run_real(env)
    assert isinstance(exc_info.value, NetworkError)


def test_outage_shorter_than_retry_budget_is_survived():
    env = lossy_env(loss=0.0, duplication=0.0, reordering=0.0,
                    flap=LinkFlap([(0.0, 0.05)]))
    result = run_real(env)
    expected = run_reference(make_initial_mesh(*MESH, seed=0), STEPS)
    assert np.array_equal(result.final_mesh, expected)
    assert env.transport.rstats.retransmits > 0


def test_unreliable_lossy_run_deadlocks_visibly():
    env = lossy_env(seed=0, duplication=0.0, reordering=0.0,
                    reliable=False)
    with pytest.raises(ConfigurationError, match="without completing"):
        run_real(env)


def test_unreliable_duplication_corrupts_visibly():
    env = lossy_env(seed=0, loss=0.0, duplication=0.5, reordering=0.0,
                    reliable=False)
    with pytest.raises(ConfigurationError, match="duplicate ghost"):
        run_real(env)


def test_reliable_transport_is_default_and_optional():
    assert isinstance(lossy_env().transport, ReliableTransport)
    env = lossy_env(reliable=False)
    assert env.transport is env.fabric


def test_fault_free_reliable_run_matches_plain_fabric_makespan():
    """With zero fault rates the protocol still acks, but the data path
    timing is untouched: step times match the unreliable run exactly."""
    clean = dict(loss=0.0, duplication=0.0, reordering=0.0)
    with_arq = run_real(lossy_env(**clean))
    without = run_real(lossy_env(reliable=False, **clean))
    assert np.array_equal(with_arq.step_times, without.step_times)


def test_fabric_stats_count_faults():
    env = lossy_env(seed=0, trace=True)
    run_real(env)
    stats = env.fabric.stats
    assert stats.total_dropped + stats.total_duplicated > 0
    tr = env.tracer
    assert tr.retransmits == env.transport.rstats.retransmits
    assert tr.dups_suppressed == env.transport.rstats.dups_suppressed
