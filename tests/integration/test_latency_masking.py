"""The paper's headline claims, asserted as tests.

These tests check the *behavioural* results of the reproduction:
latency masking exists, improves with virtualization, and the traces
prove the mechanism (PEs stay busy while WAN messages are in flight —
the Figure 2 timeline).
"""

import numpy as np

from repro.apps.stencil import StencilApp, run_stencil
from repro.bench.figures import knee_latency_ms
from repro.bench.records import Series
from repro.core.rts import RuntimeConfig
from repro.grid.presets import artificial_latency_env
from repro.units import ms

MESH = (512, 512)
STEPS = 10


def time_per_step(pes, objects, latency_ms, mesh=MESH, config=None):
    env = artificial_latency_env(pes, ms(latency_ms), config=config)
    return run_stencil(env, mesh, objects, steps=STEPS).time_per_step


def test_large_grain_flat_in_latency():
    """Paper §5.2: at 2 PEs (75 ms of work per step on the full
    2048x2048 mesh) execution time stays near constant over 0-32 ms."""
    base = time_per_step(2, 16, 0.0, mesh=(2048, 2048))
    worst = time_per_step(2, 16, 32.0, mesh=(2048, 2048))
    assert worst <= 1.25 * base


def test_small_grain_hurt_by_latency():
    """At 16 PEs on a small mesh, 32 ms latency cannot be hidden."""
    base = time_per_step(16, 64, 0.0)
    worst = time_per_step(16, 64, 32.0)
    assert worst > 3.0 * base


def test_higher_virtualization_masks_more():
    """Paper's key claim: more objects -> longer flat region.

    At the latency where low virtualization has already degraded, high
    virtualization must still be close to its zero-latency time.
    """
    lat = 2.0
    lo_base, lo_lat = time_per_step(16, 16, 0.0), time_per_step(16, 16, lat)
    hi_base, hi_lat = time_per_step(16, 256, 0.0), time_per_step(16, 256, lat)
    lo_degradation = lo_lat / lo_base
    hi_degradation = hi_lat / hi_base
    assert hi_degradation < lo_degradation


def test_knee_moves_right_with_virtualization():
    latencies = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0]
    knees = {}
    for objects in (16, 256):
        s = Series(str(objects))
        for lat in latencies:
            s.append(lat, time_per_step(16, objects, lat))
        knees[objects] = knee_latency_ms(s, tolerance=1.5)
    assert knees[256] > knees[16]


def test_asymptotic_step_time_tracks_latency():
    """Once saturated, per-step time approaches one-way latency + work:
    the iteration dependency across the seam bounds the rate."""
    for lat in (16.0, 32.0):
        t = time_per_step(16, 64, lat)
        assert t >= ms(lat)
        assert t <= ms(lat) + 3 * time_per_step(16, 64, 0.0)


def test_masking_mechanism_visible_in_trace():
    """Figure 2 made quantitative: while WAN ghosts fly, the destination
    PE executes other objects."""
    env = artificial_latency_env(4, ms(8), trace=True)
    # Per-PE work (~9 ms/step) exceeds the 8 ms latency: the flat regime,
    # where the paper's mechanism should fill WAN waits almost entirely.
    app = StencilApp(env, mesh=(1024, 1024), objects=64, payload="modeled")
    app.run(STEPS)
    tracer = env.tracer
    windows = tracer.wan_flight_windows()
    assert windows, "stencil must send WAN messages"
    # Consider mid-run windows (pipeline warmed up).
    windows = [w for w in windows
               if w[0] > tracer.makespan() * 0.3
               and w[1] < tracer.makespan() * 0.9]
    busy_fraction = []
    for sent, arrived, _src, dst in windows:
        span = arrived - sent
        if span <= 0:
            continue
        busy_fraction.append(tracer.busy_during(dst, sent, arrived) / span)
    assert busy_fraction
    # On average the receiving PE overlaps a solid share of the latency.
    assert float(np.mean(busy_fraction)) > 0.5


def test_no_masking_material_without_virtualization():
    """1 object/PE: the PE has nothing to overlap; trace shows idling."""
    env = artificial_latency_env(4, ms(8), trace=True)
    app = StencilApp(env, mesh=(64, 64), objects=4, payload="modeled")
    app.run(STEPS)
    tracer = env.tracer
    usage = tracer.pe_usage()
    makespan = tracer.makespan()
    utils = [usage[pe].utilization(makespan) for pe in sorted(usage)]
    assert max(utils) < 0.2  # mostly idle: latency fully exposed


def test_prioritized_wan_messages_run_first():
    """§6 extension: expedited WAN messages jump local queues."""
    config = RuntimeConfig(prioritized_queues=True, expedite_wan=True)
    t_prio = time_per_step(4, 64, 4.0, config=config)
    t_fifo = time_per_step(4, 64, 4.0)
    # The scheduler change must not break anything and should not be
    # dramatically worse; on this workload the effect is small.
    assert t_prio <= 1.2 * t_fifo


def test_deterministic_seed_sensitivity_teragrid():
    """TeraGrid runs are seed-reproducible and seed-sensitive."""
    from repro.grid.presets import teragrid_env

    def run(seed):
        env = teragrid_env(4, seed=seed)
        return run_stencil(env, MESH, 64, steps=STEPS).step_times

    a, b, c = run(1), run(1), run(2)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)
