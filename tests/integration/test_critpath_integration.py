"""End-to-end causal tracing: attribution, knee prediction, CLI, flows.

The acceptance bar for the knee analyzer: from ONE traced low-latency
run, the predicted Figure-3 knee must land within one sweep grid point
of the knee measured by actually sweeping the latency grid, for at
least three virtualization degrees of the 8-PE panel.  (The full-size
2048^2 mesh sweep lives in EXPERIMENTS.md; here a 512^2 mesh keeps the
same compute/latency structure at test-suite cost.)
"""

import io
import json

import pytest

from repro.apps.stencil import StencilApp
from repro.cli import main
from repro.grid.presets import artificial_latency_env
from repro.obs.critpath import CausalGraph, per_step_attribution, predict_knee
from repro.obs.export import chrome_trace, validate_chrome_trace
from repro.units import ms

PES = 8
MESH = (512, 512)
STEPS = 6
GRID_MS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
TOLERANCE = 1.5


def run_traced(objects, latency_ms=0.0):
    env = artificial_latency_env(PES, ms(latency_ms), trace=True)
    t0 = env.now
    app = StencilApp(env, mesh=MESH, objects=objects, payload="modeled")
    result = app.run(STEPS)
    boundaries = [t0] + [t0 + float(t) for t in result.step_times]
    return env, result, boundaries


def measured_knee_index(objects):
    """Index into GRID_MS of the knee measured by a real latency sweep."""
    times = []
    for lat in GRID_MS:
        env = artificial_latency_env(PES, ms(lat), stats=False)
        app = StencilApp(env, mesh=MESH, objects=objects, payload="modeled")
        times.append(app.run(STEPS).time_per_step)
    knee = 0
    for i, t in enumerate(times):
        if t <= TOLERANCE * times[0]:
            knee = i
        else:
            break
    return knee


@pytest.mark.parametrize("objects", (16, 64, 256))
def test_predicted_knee_within_one_grid_point(objects):
    env, result, boundaries = run_traced(objects)
    graph = CausalGraph.from_tracer(env.tracer)
    knee = predict_knee(graph, boundaries, 0.0,
                        [ms(x) for x in GRID_MS],
                        tolerance=TOLERANCE, warmup=result.warmup)
    predicted = min(range(len(GRID_MS)),
                    key=lambda i: abs(GRID_MS[i] - knee.knee_s * 1e3))
    measured = measured_knee_index(objects)
    assert abs(predicted - measured) <= 1, (
        f"objects={objects}: predicted grid point {predicted} "
        f"({GRID_MS[predicted]} ms) vs measured {measured} "
        f"({GRID_MS[measured]} ms)")


def test_attribution_invariant_on_real_run():
    env, result, boundaries = run_traced(64, latency_ms=4.0)
    graph = CausalGraph.from_tracer(env.tracer)
    steps = per_step_attribution(graph, boundaries)
    assert len(steps) == STEPS
    for att in steps:
        assert att.residual == pytest.approx(0.0, abs=1e-12)
    # At 4 ms one-way with plenty of objects/PE the path is mostly
    # compute (that's the paper's thesis), but never more than the wall.
    total_compute = sum(att.compute for att in steps)
    total_wall = sum(att.wall for att in steps)
    assert 0.0 < total_compute <= total_wall + 1e-12


def test_zero_shift_prediction_matches_measurement():
    env, result, boundaries = run_traced(64)
    graph = CausalGraph.from_tracer(env.tracer)
    knee = predict_knee(graph, boundaries, 0.0, [0.0],
                        warmup=result.warmup)
    assert knee.baseline_s == pytest.approx(result.time_per_step, rel=1e-9)


def test_chrome_trace_contains_matched_flow_events():
    env, _result, _boundaries = run_traced(16, latency_ms=2.0)
    doc = chrome_trace(env.tracer)
    validate_chrome_trace(doc)
    starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
    finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
    assert starts, "no causal flow events in the exported trace"
    assert len(starts) == len(finishes)
    by_id = {e["id"]: e for e in starts}
    for fin in finishes:
        assert fin["cat"] == "causal"
        assert fin["bp"] == "e"
        start = by_id[fin["id"]]
        assert start["ts"] <= fin["ts"]   # cause precedes effect


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_cli_critpath_text_and_json():
    code, text = run_cli(["critpath", "--pes", "4", "--objects", "16",
                          "--mesh", "256", "--steps", "5",
                          "--latency", "0", "--grid", "0", "4", "32"])
    assert code == 0
    assert "Critical path (steady state)" in text
    assert "predicted knee" in text

    code, text = run_cli(["critpath", "--pes", "4", "--objects", "16",
                          "--mesh", "256", "--steps", "5",
                          "--latency", "0", "--grid", "0", "4", "32",
                          "--per-step", "--json"])
    assert code == 0
    doc = json.loads(text)
    assert set(doc["critpath"]["knee"]["grid_ms"]) == {0.0, 4.0, 32.0}
    assert len(doc["per_step"]) == 5
    for step in doc["per_step"]:
        assert step["residual_s"] == pytest.approx(0.0, abs=1e-12)


def test_cli_critpath_writes_trace_with_flows(tmp_path):
    path = tmp_path / "run.trace.json"
    code, _text = run_cli(["critpath", "--pes", "4", "--objects", "16",
                           "--mesh", "256", "--steps", "5",
                           "--latency", "2", "--out", str(path)])
    assert code == 0
    doc = json.loads(path.read_text())
    assert any(e.get("ph") == "s" and e.get("cat") == "causal"
               for e in doc["traceEvents"])


def test_cli_bench_diff(tmp_path, monkeypatch):
    from repro.bench.harness import BENCH_LOG_ENV, stencil_point

    log = tmp_path / "traj.json"
    monkeypatch.setenv(BENCH_LOG_ENV, str(log))
    stencil_point("t", 4, 16, 0.0, mesh=(256, 256), steps=5)
    stencil_point("t", 4, 16, 0.0, mesh=(256, 256), steps=5)

    # Virtual time is bit-reproducible, so the identical second run
    # deduplicates instead of bloating the trajectory.
    records = json.loads(log.read_text())
    assert len(records) == 1

    # An unchanged re-run compares ok; fabricate the candidate record
    # (dedup only collapses *identical* runs appended via the harness).
    records.append(dict(records[-1]))
    log.write_text(json.dumps(records))
    code, text = run_cli(["bench-diff", "--path", str(log)])
    assert code == 0
    assert "ratio" in text and "ok" in text

    # A fabricated 2x slowdown must fail the diff.
    records = json.loads(log.read_text())
    records[-1] = dict(records[-1], time_per_step_s=
                       records[-1]["time_per_step_s"] * 2.0)
    log.write_text(json.dumps(records))
    with pytest.raises(SystemExit) as err:
        run_cli(["bench-diff", "--path", str(log)])
    assert err.value.code == 1


def test_cli_bench_diff_empty_log(tmp_path):
    with pytest.raises(SystemExit):
        run_cli(["bench-diff", "--path", str(tmp_path / "missing.json")])
