"""Integration tests for LeanMD on the simulated grid."""

import numpy as np
import pytest

from repro.apps.leanmd import (
    CellGrid,
    LeanMDApp,
    MdParams,
    build_system,
    run_leanmd,
    run_reference,
)
from repro.grid.presets import artificial_latency_env, single_cluster_env, teragrid_env
from repro.units import ms

GRID = (3, 3, 3)
APC = 5
STEPS = 5
SEED = 7


def parallel_positions(res, grid):
    return np.concatenate([res.final_state[c][0]
                           for c in CellGrid(grid).cells()])


def run_parallel(env, steps=STEPS):
    app = LeanMDApp(env, cells=GRID, atoms_per_cell=APC, payload="real",
                    gather_positions=True, seed=SEED)
    return app.run(steps)


@pytest.fixture(scope="module")
def reference():
    system = build_system(CellGrid(GRID), APC, MdParams(), seed=SEED)
    return run_reference(system, STEPS)


def test_matches_reference_single_cluster(reference):
    res = run_parallel(single_cluster_env(2))
    assert np.allclose(parallel_positions(res, GRID), reference.positions,
                       atol=1e-10)


def test_matches_reference_across_wan(reference):
    res = run_parallel(artificial_latency_env(4, ms(10)))
    assert np.allclose(parallel_positions(res, GRID), reference.positions,
                       atol=1e-10)


def test_matches_reference_teragrid(reference):
    res = run_parallel(teragrid_env(4, seed=2))
    assert np.allclose(parallel_positions(res, GRID), reference.positions,
                       atol=1e-10)


def test_energy_traces_match_reference(reference):
    res = run_parallel(artificial_latency_env(2, ms(1)))
    assert np.allclose(res.kinetic, reference.kinetic, atol=1e-9)
    assert np.allclose(res.potential, reference.potential, atol=1e-9)


def test_energy_approximately_conserved():
    """Symplectic integration at small dt: total energy drift is tiny."""
    res = run_parallel(single_cluster_env(2), steps=12)
    total = res.total_energy
    drift = abs(total[-1] - total[0]) / abs(total[0])
    assert drift < 0.05


def test_latency_never_changes_numerics(reference):
    for latency in (0.0, 50.0):
        res = run_parallel(artificial_latency_env(4, ms(latency)))
        assert np.allclose(parallel_positions(res, GRID),
                           reference.positions, atol=1e-10)


def test_deterministic_across_runs():
    a = run_leanmd(artificial_latency_env(8, ms(4)), cells=GRID,
                   atoms_per_cell=APC, steps=STEPS)
    b = run_leanmd(artificial_latency_env(8, ms(4)), cells=GRID,
                   atoms_per_cell=APC, steps=STEPS)
    assert np.array_equal(a.step_times, b.step_times)


def test_modeled_payload_same_timing_as_real():
    times = []
    for payload in ("real", "modeled"):
        env = artificial_latency_env(4, ms(4))
        app = LeanMDApp(env, cells=GRID, atoms_per_cell=APC,
                        payload=payload, seed=SEED)
        times.append(app.run(STEPS).step_times)
    assert np.allclose(times[0], times[1], rtol=0, atol=1e-12)


def test_step_times_monotone_and_result_shape():
    res = run_leanmd(artificial_latency_env(4, ms(2)), cells=GRID,
                     atoms_per_cell=APC, steps=STEPS)
    assert len(res.step_times) == STEPS
    assert np.all(np.diff(res.step_times) > 0)
    assert res.time_per_step > 0


def test_paper_scale_object_graph_runs():
    """The full 216-cell / 3,024-pair benchmark executes (modeled)."""
    env = artificial_latency_env(8, ms(1.725))
    res = run_leanmd(env, steps=3)
    assert len(res.step_times) == 3
    # ~8 s of sequential work over 8 PEs: order 1 s/step.
    assert 0.5 < res.time_per_step < 2.5


def test_bad_parameters():
    from repro.errors import ConfigurationError
    env = artificial_latency_env(2, ms(1))
    app = LeanMDApp(env, cells=GRID, atoms_per_cell=APC)
    with pytest.raises(ConfigurationError):
        app.run(0)


def test_colocated_pair_mapping_is_slower():
    """The naive placement (pairs at their first cell's PE) piles the
    seam pairs up; the default balanced placement beats it."""
    naive = LeanMDApp(artificial_latency_env(8, ms(2)), cells=GRID,
                      atoms_per_cell=APC, payload="modeled",
                      pair_mapping="colocated").run(STEPS)
    fair = LeanMDApp(artificial_latency_env(8, ms(2)), cells=GRID,
                     atoms_per_cell=APC, payload="modeled",
                     pair_mapping="balanced").run(STEPS)
    assert fair.time_per_step < naive.time_per_step


def test_colocated_mapping_same_numerics(reference):
    res = LeanMDApp(artificial_latency_env(4, ms(5)), cells=GRID,
                    atoms_per_cell=APC, payload="real",
                    gather_positions=True, seed=SEED,
                    pair_mapping="colocated").run(STEPS)
    assert np.allclose(parallel_positions(res, GRID), reference.positions,
                       atol=1e-10)


def test_invalid_pair_mapping_rejected():
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        LeanMDApp(artificial_latency_env(2, 0.0), pair_mapping="random")
