"""End-to-end network flight recorder: netview CLI, Fig-3c link load,
relay attribution, per-link Chrome lanes, sink agreement.

The acceptance bars exercised here, on test-suite-sized configs:

* the ``repro netview`` command works in text, ``--json`` (validated by
  the CI schema gate's own checker) and ``--trace-out`` modes;
* on the Figure-3c collective benchmark, hierarchical routing over
  striped WAN streams lowers the busiest WAN lane's busy time versus
  flat fan-out at **every** swept latency;
* a hierarchical multicast run attributes ``<rts>``/relay span cost to
  ``relay_overhead`` on the critical path (never possible for the
  point-to-point stencil);
* the post-hoc Tracer and the streaming TraceAggregator fold the same
  run's hop ledgers into bit-identical per-lane usage.
"""

import importlib.util
import io
import json
import pathlib

import pytest

from repro.apps.collectives import CollectiveBenchApp
from repro.cli import main
from repro.grid.presets import artificial_latency_env
from repro.obs.critpath import (
    CausalGraph,
    per_step_attribution,
    summarize_attribution,
)
from repro.units import ms

PES = 8
OBJECTS = 16
PAYLOAD = 64 * 1024
STEPS = 3
LATENCIES_MS = (0.0, 8.0, 32.0)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def run_collectives(latency_ms, routing, streams):
    env = artificial_latency_env(PES, ms(latency_ms), trace=True,
                                 routing=routing, wan_streams=streams)
    t0 = env.now
    app = CollectiveBenchApp(env, objects=OBJECTS, payload_bytes=PAYLOAD)
    result = app.run(STEPS)
    boundaries = [t0] + [t0 + float(t) for t in result.step_times]
    return env, result, boundaries


def max_wan_lane_busy(env):
    links = env.tracer.link_summary()
    wan = [u.busy_s for u in links.values() if u.wan]
    assert wan, "no WAN lanes recorded"
    return max(wan)


# -- CLI ----------------------------------------------------------------------

def test_cli_netview_text():
    code, text = run_cli(["netview", "--pes", "4", "--objects", "16",
                          "--mesh", "256", "--steps", "4",
                          "--latency", "8"])
    assert code == 0
    assert "Network flight recorder" in text
    assert "top messages by wire time" in text


def _load_schema_checker():
    path = (pathlib.Path(__file__).parents[2]
            / "benchmarks" / "check_netview_schema.py")
    spec = importlib.util.spec_from_file_location("check_netview_schema",
                                                  path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_cli_netview_json_passes_schema_gate():
    code, text = run_cli(["netview", "--pes", "4", "--objects", "16",
                          "--mesh", "256", "--steps", "4",
                          "--latency", "8", "--routing", "hierarchical",
                          "--streams", "4", "--json"])
    assert code == 0
    doc = json.loads(text)
    checker = _load_schema_checker()
    net = checker.check(doc)        # raises SystemExit on any violation
    assert net["wan_crossings"] > 0
    # Striping put the stream lanes on the books.
    assert any("/s" in lane for lane in net["lanes"])


def test_cli_netview_trace_out_has_network_lanes(tmp_path):
    path = tmp_path / "netview.trace.json"
    code, _text = run_cli(["netview", "--pes", "4", "--objects", "16",
                           "--mesh", "256", "--steps", "4",
                           "--latency", "8", "--streams", "4",
                           "--trace-out", str(path)])
    assert code == 0
    doc = json.loads(path.read_text())
    net_slices = [e for e in doc["traceEvents"]
                  if e.get("ph") == "X" and e.get("cat") == "net"]
    assert net_slices, "no per-hop network slices in the trace"
    assert len({e["tid"] for e in net_slices}) > 1   # one lane per device
    flows = [e for e in doc["traceEvents"]
             if e.get("cat") == "net-flow"]
    starts = [e for e in flows if e["ph"] == "s"]
    finishes = [e for e in flows if e["ph"] == "f"]
    assert starts and len(starts) == len(finishes)


def test_cli_netview_rejects_bad_flags():
    for argv in (["netview", "--pes", "3"],
                 ["netview", "--latency", "-1"],
                 ["netview", "--streams", "-2"],
                 ["netview", "--top", "0"]):
        with pytest.raises(SystemExit):
            run_cli(argv)


# -- Figure-3c link load ------------------------------------------------------

@pytest.mark.parametrize("latency_ms", LATENCIES_MS)
def test_hier_striped_reduces_busiest_wan_lane(latency_ms):
    flat_env, _res, _b = run_collectives(latency_ms, "flat", 0)
    fast_env, _res, _b = run_collectives(latency_ms, "hierarchical", 4)
    flat_busy = max_wan_lane_busy(flat_env)
    fast_busy = max_wan_lane_busy(fast_env)
    assert fast_busy < flat_busy, (
        f"{latency_ms} ms: hier+striped busiest WAN lane "
        f"{fast_busy * 1e3:.3f} ms !< flat {flat_busy * 1e3:.3f} ms")


# -- relay attribution --------------------------------------------------------

def test_relay_overhead_attributed_on_hierarchical_run():
    env, result, boundaries = run_collectives(8.0, "hierarchical", 4)
    graph = CausalGraph.from_tracer(env.tracer)
    steps = per_step_attribution(graph, boundaries)
    for att in steps:
        assert att.residual == pytest.approx(0.0, abs=1e-12)
    summary = summarize_attribution(steps, warmup=result.warmup)
    assert summary["relay_overhead_s"] > 0.0
    # The re-fan cost is real but small next to the wire time.
    assert summary["relay_overhead_s"] < summary["wan_flight_s"]


def test_stencil_run_has_no_relay_overhead():
    code, text = run_cli(["critpath", "--pes", "4", "--objects", "16",
                          "--mesh", "256", "--steps", "5",
                          "--latency", "4", "--grid", "0", "4", "--json"])
    assert code == 0
    doc = json.loads(text)
    assert doc["critpath"]["relay_overhead_s"] == 0.0


# -- sink agreement -----------------------------------------------------------

def test_tracer_and_aggregator_fold_identical_lanes():
    env, _result, _boundaries = run_collectives(8.0, "hierarchical", 4)
    batch = env.tracer.link_summary()
    live = env.aggregator.link_usage()
    assert set(live) == set(batch)
    for lane, bu in batch.items():
        assert live[lane].to_dict() == bu.to_dict()   # bit-identical
        assert live[lane].depth_counts == bu.depth_counts
