"""Tests for the Faucets-style deadline co-allocator (paper §6)."""

import pytest

from repro.errors import ConfigurationError
from repro.grid.faucets import (
    Allocation,
    ClusterOffer,
    StencilJob,
    build_environment,
    enumerate_candidates,
    plan_allocation,
    rehearse,
)
from repro.units import ms

JOB = StencilJob(mesh=(1024, 1024), objects=64, steps=100, deadline=1.0)


def test_offer_and_job_validation():
    with pytest.raises(ConfigurationError):
        ClusterOffer("x", -1)
    with pytest.raises(ConfigurationError):
        StencilJob(mesh=(64, 64), objects=4, steps=0, deadline=1.0)
    with pytest.raises(ConfigurationError):
        plan_allocation(JOB, [], ms(2))


def test_enumerate_candidates_shapes():
    offers = [ClusterOffer("a", 4), ClusterOffer("b", 8),
              ClusterOffer("c", 0)]
    cands = enumerate_candidates(JOB, offers, ms(2))
    singles = [c for c in cands if not c.co_allocated]
    pairs = [c for c in cands if c.co_allocated]
    assert {c.offers[0] for c in singles} == {("a", 4), ("b", 8)}
    assert len(pairs) == 1                       # only a+b (c is empty)
    assert pairs[0].offers == (("a", 4), ("b", 4))
    assert pairs[0].total_pes == 8


def test_candidates_capped_by_object_count():
    job = StencilJob(mesh=(64, 64), objects=4, steps=10, deadline=10.0)
    offers = [ClusterOffer("big", 64)]
    cands = enumerate_candidates(job, offers, ms(2))
    assert cands[0].offers == (("big", 4),)      # >4 PEs cannot help


def test_build_environment_single_and_dual():
    single = build_environment(Allocation((("a", 4),), 0.0))
    assert single.topology.num_clusters == 1
    dual = build_environment(Allocation((("a", 2), ("b", 2)), ms(5)))
    assert dual.topology.num_clusters == 2
    lan = dual.fabric.one_way_time(0, 1, 0)
    wan = dual.fabric.one_way_time(0, 2, 0)
    assert wan - lan == pytest.approx(ms(5), rel=0.01)


def test_rehearsal_predicts_scaling():
    small = rehearse(JOB, Allocation((("a", 2),), 0.0))
    large = rehearse(JOB, Allocation((("a", 8),), 0.0))
    assert large < small


def test_single_cluster_chosen_when_sufficient():
    offers = [ClusterOffer("ncsa", 16), ClusterOffer("anl", 16)]
    job = StencilJob(mesh=(1024, 1024), objects=64, steps=100,
                     deadline=1.0)   # ~0.35 s on 16 PEs: easy
    decision = plan_allocation(job, offers, ms(2))
    assert decision.meets_deadline
    assert not decision.allocation.co_allocated
    assert decision.predicted_time <= job.deadline


def test_co_allocation_when_no_single_cluster_suffices():
    """The paper's scenario: neither site alone meets the deadline."""
    offers = [ClusterOffer("ncsa", 8), ClusterOffer("anl", 8)]
    # Either site alone: ~2.1 s; 16 PEs co-allocated: ~1.1 s.
    job = StencilJob(mesh=(2048, 2048), objects=256, steps=100,
                     deadline=1.5)
    decision = plan_allocation(job, offers, ms(2))
    assert decision.meets_deadline
    assert decision.allocation.co_allocated
    assert decision.allocation.total_pes == 16
    # The rehearsal proves both singles were infeasible.
    singles = [t for a, t in decision.candidates if not a.co_allocated]
    assert all(t > job.deadline for t in singles)


def test_co_allocation_fails_when_latency_unmaskable():
    """High WAN latency + low virtualization: the broker must notice
    that co-allocation does not actually deliver the speedup."""
    offers = [ClusterOffer("ncsa", 8), ClusterOffer("anl", 8)]
    job = StencilJob(mesh=(2048, 2048), objects=16, steps=100,
                     deadline=3.5)   # 16 objects: 1/PE co-allocated
    decision = plan_allocation(job, offers, wan_latency=ms(30))
    # With 30 ms unmaskable latency the pair predicts > 3 s... the
    # broker either found a feasible single or reports infeasibility —
    # but it must never pick a co-allocation that misses the deadline.
    if decision.meets_deadline:
        assert decision.predicted_time <= job.deadline
    for alloc, t in decision.candidates:
        if alloc.co_allocated:
            assert t > min(tt for a, tt in decision.candidates
                           if not a.co_allocated) * 0.5


def test_infeasible_reports_best_effort():
    offers = [ClusterOffer("tiny", 2)]
    job = StencilJob(mesh=(2048, 2048), objects=16, steps=1000,
                     deadline=0.5)
    decision = plan_allocation(job, offers, ms(2))
    assert not decision.meets_deadline
    assert decision.allocation is not None
    assert decision.predicted_time > job.deadline


def test_allocation_describe():
    a = Allocation((("ncsa", 8), ("anl", 8)), ms(2))
    assert "ncsa:8+anl:8" in a.describe()
    assert "2 ms WAN" in a.describe()
    assert Allocation((("x", 4),), 0.0).describe() == "x:4"
