"""Property: the parallel sweep executor is bit-identical to serial.

Simulated virtual time is deterministic, so ``run_sweep(specs, jobs=N)``
must return *exactly* the rows of ``jobs=1`` — same values, same order —
for any worker count, any completion order, and any cache state.  Each
example runs whole simulations (tiny 64x64 meshes) and spins up a
process pool, so example counts are deliberately small.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.cache import RunCache
from repro.bench.executor import run_sweep
from repro.bench.specs import RunSpec

SWEEP_SETTINGS = dict(max_examples=5, deadline=None,
                      suppress_health_check=[HealthCheck.too_slow])


def spec_strategy():
    return st.builds(
        RunSpec,
        kind=st.just("stencil"),
        experiment=st.just("prop"),
        pes=st.sampled_from([2, 4]),
        objects=st.sampled_from([1, 4, 16]),
        latency_ms=st.sampled_from([0.0, 1.0, 4.0]),
        steps=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=3),
        environment=st.sampled_from(["artificial", "teragrid"]),
        mesh=st.just((64, 64)),
    )


@given(specs=st.lists(spec_strategy(), min_size=1, max_size=4))
@settings(**SWEEP_SETTINGS)
def test_parallel_sweep_is_bit_identical_to_serial(specs):
    serial = run_sweep(specs, jobs=1)
    parallel = run_sweep(specs, jobs=4)
    assert serial == parallel


@given(specs=st.lists(spec_strategy(), min_size=1, max_size=3,
                      unique_by=lambda s: s.config().__repr__()))
@settings(**SWEEP_SETTINGS)
def test_cached_rerun_is_bit_identical(specs, tmp_path_factory):
    cache = RunCache(str(tmp_path_factory.mktemp("sweep-cache")))
    fresh = run_sweep(specs, cache=cache)
    cached = run_sweep(specs, cache=cache)
    assert fresh == cached == run_sweep(specs)   # and matches no-cache
