"""Streaming aggregation must exactly match batch trace analysis.

:class:`~repro.sim.trace.TraceAggregator` folds the recording stream
into running aggregates; :class:`~repro.sim.trace.Tracer` stores every
event and analyses after the fact.  Benchmarks trust the streaming
numbers, so here hypothesis generates randomized valid schedules —
non-overlapping execution intervals per PE, WAN messages with drops,
retransmissions, wire duplicates, and id-less legacy events — replays
the identical event stream into both recorders, and checks that every
derived statistic agrees.

Times are drawn on a 1/16 grid so all arithmetic is exact in binary
floating point; the comparisons can therefore demand near-equality.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import pytest

from repro.network.hops import HOP_KINDS, HopSpan
from repro.obs.report import masked_latency_fraction
from repro.sim.trace import TraceAggregator, Tracer

COMMON = dict(deadline=None, max_examples=60,
              suppress_health_check=[HealthCheck.too_slow])

APPROX = dict(rel=1e-9, abs=1e-12)

#: (lane, owning link) pairs the synthetic hop ledgers draw from —
#: the shape a striped two-cluster chain produces.
HOP_LANES = (("delay", "delay"), ("wan/s0", "wan"), ("wan/s1", "wan"),
             ("shmem", "shmem"))


def _draw_ledger(draw, t0_ticks, t1_ticks):
    """A hop ledger tiling [t0, t1] with 1-3 spans on the 1/16 grid.

    Mirrors what a DeviceChain stamps: contiguous spans whose first
    enqueue is the send time and whose last arrive is the arrival.
    """
    interior = draw(st.lists(
        st.integers(min_value=t0_ticks, max_value=t1_ticks),
        min_size=0, max_size=2, unique=True))
    cuts = sorted({t0_ticks, t1_ticks, *interior})
    spans = []
    for a, b in zip(cuts, cuts[1:]):
        lane, link = draw(st.sampled_from(HOP_LANES))
        dq = draw(st.integers(min_value=a, max_value=b))
        ser = draw(st.integers(min_value=0, max_value=b - dq))
        spans.append(HopSpan(
            device=lane, link=link,
            kind=draw(st.sampled_from(HOP_KINDS)),
            enqueue=a / 16.0, dequeue=dq / 16.0, arrive=b / 16.0,
            ser_s=ser / 16.0,
            queue_depth=draw(st.integers(min_value=0, max_value=5)),
            stream=draw(st.sampled_from((None, 0, 1)))))
    return tuple(spans)


@st.composite
def schedules(draw):
    """A random valid recording stream: list of (time, op, args) events.

    Valid means what the engine guarantees: per-PE execution intervals
    never overlap, every event's arguments are self-consistent, and the
    whole stream is replayed in non-decreasing time order.
    """
    n_pes = draw(st.integers(min_value=1, max_value=4))
    events = []

    # Non-overlapping exec intervals per PE: pair up sorted unique ticks.
    for pe in range(n_pes):
        bounds = sorted(draw(st.lists(
            st.integers(min_value=0, max_value=1600),
            min_size=0, max_size=10, unique=True)))
        for i in range(0, len(bounds) - 1, 2):
            s, e = bounds[i] / 16.0, bounds[i + 1] / 16.0
            entry = draw(st.sampled_from(["a", "b", "c"]))
            events.append((s, "begin", (pe, s, "C", entry)))
            events.append((e, "end", (pe, e)))

    # Messages: some WAN, some local; some dropped, retransmitted, or
    # delivered twice (wire duplicates); some without a sequence id.
    # The drop_retx* fates exercise the reliable layer's worst case: the
    # first copy is lost on the wire, the retransmission's delivery is
    # reordered arbitrarily far relative to other messages, and (for
    # drop_retx_reorder) a duplicate delivery and a late spurious
    # retransmission — sent *after* the id was already delivered, i.e. a
    # reordered/lost ack — trail behind.
    n_msgs = draw(st.integers(min_value=0, max_value=12))
    for seq in range(n_msgs):
        src = draw(st.integers(min_value=0, max_value=n_pes - 1))
        dst = draw(st.integers(min_value=0, max_value=n_pes - 1))
        wan = draw(st.booleans())
        size = draw(st.integers(min_value=0, max_value=4096))
        t0i = draw(st.integers(min_value=0, max_value=1500))
        fli = draw(st.integers(min_value=1, max_value=400))
        t0, flight = t0i / 16.0, fli / 16.0
        use_seq = draw(st.booleans())
        sq = seq if use_seq else None
        # The fabric stamps a hop ledger on every non-dropped wire copy;
        # with_hops=False models a run whose sinks predate the recorder.
        with_hops = draw(st.booleans())
        relay = draw(st.integers(min_value=0, max_value=2))
        fate = draw(st.sampled_from(
            ["deliver", "deliver", "deliver", "drop", "dup", "retransmit",
             "drop_retx", "drop_retx_reorder"]))
        args = (src, dst, size, f"m{seq}", wan)

        def emit_hops(sent_i, arr_i, attempt):
            if with_hops:
                ledger = _draw_ledger(draw, sent_i, arr_i)
                events.append((sent_i / 16.0, "hops",
                               args + (sq, arr_i / 16.0, ledger,
                                       relay, attempt)))

        events.append((t0, "send", args + (sq,)))
        if fate == "drop":
            events.append((t0, "drop", args + (sq,)))
            continue
        if fate in ("drop_retx", "drop_retx_reorder"):
            events.append((t0, "drop", args + (sq,)))
            tri = t0i + draw(st.integers(min_value=1, max_value=64))
            attempt = 1
            events.append((tri / 16.0, "send", args + (sq,)))
            if draw(st.booleans()):
                # Second copy lost too; a further retransmission carries.
                events.append((tri / 16.0, "drop", args + (sq,)))
                tri += draw(st.integers(min_value=1, max_value=64))
                attempt = 2
                events.append((tri / 16.0, "send", args + (sq,)))
            deliver_i = tri + fli
            emit_hops(tri, deliver_i, attempt)
            events.append((deliver_i / 16.0, "deliver", args + (sq,)))
            if fate == "drop_retx_reorder":
                gapi = draw(st.integers(min_value=1, max_value=64))
                # Duplicate delivery of an earlier (slow) copy ...
                events.append(((deliver_i + gapi) / 16.0, "deliver",
                               args + (sq,)))
                # ... and a spurious retransmission after delivery (the
                # ack was itself lost or reordered).
                spur_i = deliver_i + 2 * gapi
                events.append((spur_i / 16.0, "send", args + (sq,)))
                emit_hops(spur_i, spur_i + fli, attempt + 1)
            continue
        emit_hops(t0i, t0i + fli, 0)
        if fate == "retransmit":
            tri = t0i + draw(st.integers(min_value=1, max_value=64))
            events.append((tri / 16.0, "send", args + (sq,)))
            emit_hops(tri, tri + fli, 1)
        deliver_at = t0 + flight
        events.append((deliver_at, "deliver", args + (sq,)))
        if fate == "dup":
            td = deliver_at + draw(st.integers(min_value=1,
                                               max_value=64)) / 16.0
            events.append((td, "deliver", args + (sq,)))

    # Stable sort by time: simultaneous events keep their emission order,
    # which preserves per-PE begin/end validity and send-before-deliver.
    events.sort(key=lambda ev: ev[0])
    return events


def replay(events, sink):
    ops = {
        "begin": sink.begin_execute,
        "end": sink.end_execute,
        "send": sink.message_sent,
        "deliver": sink.message_delivered,
        "drop": sink.message_dropped,
    }
    for time, op, args in events:
        if op in ("begin", "end"):
            ops[op](*args)
        elif op == "hops":
            src, dst, size, tag, wan, sq, arr, ledger, relay, att = args
            sink.message_hops(time, src, dst, size, tag, wan, sq, arr,
                              ledger, relay_hop=relay, arq_attempt=att)
        else:
            src, dst, size, tag, wan, sq = args
            ops[op](time, src, dst, size, tag, wan, seq=sq)
    return sink


@given(schedules())
@settings(**COMMON)
def test_streaming_matches_batch(events):
    batch = replay(events, Tracer())
    live = replay(events, TraceAggregator())

    # Makespan and per-PE usage.
    assert live.makespan() == pytest.approx(batch.makespan(), **APPROX)
    b_usage = batch.pe_usage()
    l_usage = live.pe_usage()
    assert set(l_usage) == set(b_usage)
    for pe, bu in b_usage.items():
        assert l_usage[pe].busy == pytest.approx(bu.busy, **APPROX)
        assert l_usage[pe].executions == bu.executions

    # Entry profiles.
    b_prof = batch.profile_by_entry()
    l_prof = live.profile_by_entry()
    assert set(l_prof) == set(b_prof)
    for key, bp in b_prof.items():
        assert l_prof[key].calls == bp.calls
        assert l_prof[key].total_time == pytest.approx(bp.total_time,
                                                       **APPROX)

    # WAN flight windows and the masked-latency fraction.
    windows = batch.wan_flight_windows()
    assert live.wan.windows == len(windows)
    fraction, flight, masked = masked_latency_fraction(batch)
    assert live.wan.flight_time == pytest.approx(flight, **APPROX)
    assert live.wan.masked_time == pytest.approx(masked, **APPROX)
    assert live.masked_latency_fraction == pytest.approx(fraction, **APPROX)


@given(schedules())
@settings(**COMMON)
def test_streaming_counters_match_batch(events):
    batch = replay(events, Tracer())
    live = replay(events, TraceAggregator())

    sends = [ev for ev in batch.messages if ev.kind == "send"]
    delivers = [ev for ev in batch.messages if ev.kind == "deliver"]
    drops = [ev for ev in batch.messages if ev.kind == "drop"]
    assert live.sends == len(sends)
    assert live.delivers == len(delivers)
    assert live.drops == len(drops)
    assert live.wan_sends == sum(1 for ev in sends if ev.crossed_wan)
    assert live.wan_delivers == sum(1 for ev in delivers if ev.crossed_wan)
    assert live.wan_drops == sum(1 for ev in drops if ev.crossed_wan)
    assert live.bytes_sent == sum(ev.size for ev in sends)
    assert live.wan_bytes_sent == sum(ev.size for ev in sends
                                      if ev.crossed_wan)

    # Open (never-delivered) windows: WAN sends that produced no window.
    assert live.wan.open_windows >= 0


@given(schedules())
@settings(**COMMON)
def test_link_folds_bit_identical(events):
    """Both sinks fold hop ledgers into identical per-lane usage.

    Exact ``==``, not approx: the post-hoc Tracer and the streaming
    TraceAggregator share :func:`fold_hops` and see the same event
    order, so every float sum must agree to the last bit — including
    under drops, retransmissions, duplicates and reordered deliveries.
    """
    batch = replay(events, Tracer())
    live = replay(events, TraceAggregator())

    b_links = batch.link_summary()
    l_links = live.link_usage()
    assert set(l_links) == set(b_links)
    for lane, bu in b_links.items():
        lu = l_links[lane]
        assert lu.to_dict() == bu.to_dict()
        assert lu.depth_counts == bu.depth_counts
        assert lu.wan == bu.wan
    assert live.summary()["links"] == {
        lane: bu.to_dict() for lane, bu in sorted(b_links.items())}


@given(schedules())
@settings(**COMMON)
def test_hop_ledgers_consistent_with_events(events):
    """Recorded ledgers stay internally consistent under fault fates.

    Every hop event's ledger tiles exactly from its send time to its
    arrival (the fabric's contract), every wire copy of a retransmitted
    id carries a distinct (seq, arrival) key, and the ledger lookup
    table resolves each key to the first-recorded copy.
    """
    batch = replay(events, Tracer())

    for ev in batch.hops:
        assert ev.hops, "hop event with an empty ledger"
        assert ev.hops[0].enqueue == ev.time
        assert max(h.arrive for h in ev.hops) == ev.arrival
        assert ev.wire_time == ev.arrival - ev.time
        for h in ev.hops:
            assert h.enqueue <= h.dequeue <= h.arrive
            assert h.ser_s <= h.arrive - h.dequeue
            assert h.queue_s >= 0.0 and h.total_s >= 0.0

    ledgers = batch.hop_ledgers()
    for ev in batch.hops:
        assert (ev.seq, ev.arrival) in ledgers
    # Dropped copies never stamp a ledger: each hop event pairs with a
    # send at the same instant that was not dropped at emission time.
    sends = {(ev.time, ev.src_pe, ev.dst_pe, ev.seq)
             for ev in batch.messages if ev.kind == "send"}
    for ev in batch.hops:
        assert (ev.time, ev.src_pe, ev.dst_pe, ev.seq) in sends
