"""Streaming aggregation must exactly match batch trace analysis.

:class:`~repro.sim.trace.TraceAggregator` folds the recording stream
into running aggregates; :class:`~repro.sim.trace.Tracer` stores every
event and analyses after the fact.  Benchmarks trust the streaming
numbers, so here hypothesis generates randomized valid schedules —
non-overlapping execution intervals per PE, WAN messages with drops,
retransmissions, wire duplicates, and id-less legacy events — replays
the identical event stream into both recorders, and checks that every
derived statistic agrees.

Times are drawn on a 1/16 grid so all arithmetic is exact in binary
floating point; the comparisons can therefore demand near-equality.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import pytest

from repro.obs.report import masked_latency_fraction
from repro.sim.trace import TraceAggregator, Tracer

COMMON = dict(deadline=None, max_examples=60,
              suppress_health_check=[HealthCheck.too_slow])

APPROX = dict(rel=1e-9, abs=1e-12)


@st.composite
def schedules(draw):
    """A random valid recording stream: list of (time, op, args) events.

    Valid means what the engine guarantees: per-PE execution intervals
    never overlap, every event's arguments are self-consistent, and the
    whole stream is replayed in non-decreasing time order.
    """
    n_pes = draw(st.integers(min_value=1, max_value=4))
    events = []

    # Non-overlapping exec intervals per PE: pair up sorted unique ticks.
    for pe in range(n_pes):
        bounds = sorted(draw(st.lists(
            st.integers(min_value=0, max_value=1600),
            min_size=0, max_size=10, unique=True)))
        for i in range(0, len(bounds) - 1, 2):
            s, e = bounds[i] / 16.0, bounds[i + 1] / 16.0
            entry = draw(st.sampled_from(["a", "b", "c"]))
            events.append((s, "begin", (pe, s, "C", entry)))
            events.append((e, "end", (pe, e)))

    # Messages: some WAN, some local; some dropped, retransmitted, or
    # delivered twice (wire duplicates); some without a sequence id.
    # The drop_retx* fates exercise the reliable layer's worst case: the
    # first copy is lost on the wire, the retransmission's delivery is
    # reordered arbitrarily far relative to other messages, and (for
    # drop_retx_reorder) a duplicate delivery and a late spurious
    # retransmission — sent *after* the id was already delivered, i.e. a
    # reordered/lost ack — trail behind.
    n_msgs = draw(st.integers(min_value=0, max_value=12))
    for seq in range(n_msgs):
        src = draw(st.integers(min_value=0, max_value=n_pes - 1))
        dst = draw(st.integers(min_value=0, max_value=n_pes - 1))
        wan = draw(st.booleans())
        size = draw(st.integers(min_value=0, max_value=4096))
        t0 = draw(st.integers(min_value=0, max_value=1500)) / 16.0
        flight = draw(st.integers(min_value=1, max_value=400)) / 16.0
        use_seq = draw(st.booleans())
        sq = seq if use_seq else None
        fate = draw(st.sampled_from(
            ["deliver", "deliver", "deliver", "drop", "dup", "retransmit",
             "drop_retx", "drop_retx_reorder"]))
        args = (src, dst, size, f"m{seq}", wan)
        events.append((t0, "send", args + (sq,)))
        if fate == "drop":
            events.append((t0, "drop", args + (sq,)))
            continue
        if fate in ("drop_retx", "drop_retx_reorder"):
            events.append((t0, "drop", args + (sq,)))
            tr = t0 + draw(st.integers(min_value=1, max_value=64)) / 16.0
            events.append((tr, "send", args + (sq,)))
            if draw(st.booleans()):
                # Second copy lost too; a further retransmission carries.
                events.append((tr, "drop", args + (sq,)))
                tr += draw(st.integers(min_value=1, max_value=64)) / 16.0
                events.append((tr, "send", args + (sq,)))
            deliver_at = tr + flight
            events.append((deliver_at, "deliver", args + (sq,)))
            if fate == "drop_retx_reorder":
                gap = draw(st.integers(min_value=1, max_value=64)) / 16.0
                # Duplicate delivery of an earlier (slow) copy ...
                events.append((deliver_at + gap, "deliver", args + (sq,)))
                # ... and a spurious retransmission after delivery (the
                # ack was itself lost or reordered).
                events.append((deliver_at + 2 * gap, "send", args + (sq,)))
            continue
        if fate == "retransmit":
            tr = t0 + draw(st.integers(min_value=1, max_value=64)) / 16.0
            events.append((tr, "send", args + (sq,)))
        deliver_at = t0 + flight
        events.append((deliver_at, "deliver", args + (sq,)))
        if fate == "dup":
            td = deliver_at + draw(st.integers(min_value=1,
                                               max_value=64)) / 16.0
            events.append((td, "deliver", args + (sq,)))

    # Stable sort by time: simultaneous events keep their emission order,
    # which preserves per-PE begin/end validity and send-before-deliver.
    events.sort(key=lambda ev: ev[0])
    return events


def replay(events, sink):
    ops = {
        "begin": sink.begin_execute,
        "end": sink.end_execute,
        "send": sink.message_sent,
        "deliver": sink.message_delivered,
        "drop": sink.message_dropped,
    }
    for time, op, args in events:
        if op in ("begin", "end"):
            ops[op](*args)
        else:
            src, dst, size, tag, wan, sq = args
            ops[op](time, src, dst, size, tag, wan, seq=sq)
    return sink


@given(schedules())
@settings(**COMMON)
def test_streaming_matches_batch(events):
    batch = replay(events, Tracer())
    live = replay(events, TraceAggregator())

    # Makespan and per-PE usage.
    assert live.makespan() == pytest.approx(batch.makespan(), **APPROX)
    b_usage = batch.pe_usage()
    l_usage = live.pe_usage()
    assert set(l_usage) == set(b_usage)
    for pe, bu in b_usage.items():
        assert l_usage[pe].busy == pytest.approx(bu.busy, **APPROX)
        assert l_usage[pe].executions == bu.executions

    # Entry profiles.
    b_prof = batch.profile_by_entry()
    l_prof = live.profile_by_entry()
    assert set(l_prof) == set(b_prof)
    for key, bp in b_prof.items():
        assert l_prof[key].calls == bp.calls
        assert l_prof[key].total_time == pytest.approx(bp.total_time,
                                                       **APPROX)

    # WAN flight windows and the masked-latency fraction.
    windows = batch.wan_flight_windows()
    assert live.wan.windows == len(windows)
    fraction, flight, masked = masked_latency_fraction(batch)
    assert live.wan.flight_time == pytest.approx(flight, **APPROX)
    assert live.wan.masked_time == pytest.approx(masked, **APPROX)
    assert live.masked_latency_fraction == pytest.approx(fraction, **APPROX)


@given(schedules())
@settings(**COMMON)
def test_streaming_counters_match_batch(events):
    batch = replay(events, Tracer())
    live = replay(events, TraceAggregator())

    sends = [ev for ev in batch.messages if ev.kind == "send"]
    delivers = [ev for ev in batch.messages if ev.kind == "deliver"]
    drops = [ev for ev in batch.messages if ev.kind == "drop"]
    assert live.sends == len(sends)
    assert live.delivers == len(delivers)
    assert live.drops == len(drops)
    assert live.wan_sends == sum(1 for ev in sends if ev.crossed_wan)
    assert live.wan_delivers == sum(1 for ev in delivers if ev.crossed_wan)
    assert live.wan_drops == sum(1 for ev in drops if ev.crossed_wan)
    assert live.bytes_sent == sum(ev.size for ev in sends)
    assert live.wan_bytes_sent == sum(ev.size for ev in sends
                                      if ev.crossed_wan)

    # Open (never-delivered) windows: WAN sends that produced no window.
    assert live.wan.open_windows >= 0
