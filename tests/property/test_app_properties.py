"""Hypothesis property tests on the applications and AMPI layer.

These run whole simulations per example, so example counts are kept
deliberately small; each case still covers a distinct random
configuration of decomposition, latency, and placement.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ampi import ampi_run
from repro.apps.leanmd import MdParams, pair_forces
from repro.apps.stencil import (
    StencilApp,
    make_initial_mesh,
    run_reference,
)
from repro.grid.presets import artificial_latency_env
from repro.units import ms

APP_SETTINGS = dict(max_examples=12, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


@given(
    objects=st.sampled_from([1, 4, 9, 16, 36]),
    latency_ms=st.floats(min_value=0.0, max_value=20.0),
    pes=st.sampled_from([2, 4, 6]),
    steps=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10),
)
@settings(**APP_SETTINGS)
def test_stencil_always_matches_reference(objects, latency_ms, pes, steps,
                                          seed):
    """The library's core correctness invariant: any decomposition, any
    latency, any PE count -> bit-identical numerics to the sequential
    reference."""
    env = artificial_latency_env(pes, ms(latency_ms))
    app = StencilApp(env, mesh=(36, 36), objects=objects, payload="real",
                     gather_mesh=True, seed=seed)
    res = app.run(steps, warmup=0 if steps == 1 else None)
    ref = run_reference(make_initial_mesh(36, 36, seed), steps)
    assert np.array_equal(res.final_mesh, ref)


@given(
    na=st.integers(min_value=1, max_value=8),
    nb=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_leanmd_newton_third_law_random(na, nb, seed):
    rng = np.random.default_rng(seed)
    box = np.array([3.0, 3.0, 3.0])
    pos_a = rng.random((na, 3)) * 3.0
    pos_b = rng.random((nb, 3)) * 3.0
    q_a = rng.choice([-1.0, 1.0], size=na)
    q_b = rng.choice([-1.0, 1.0], size=nb)
    f_a, f_b, _pot = pair_forces(pos_a, pos_b, q_a, q_b, box, MdParams())
    scale = max(np.abs(f_a).max(), np.abs(f_b).max(), 1.0)
    assert np.allclose(f_a.sum(axis=0) + f_b.sum(axis=0), 0.0,
                       atol=1e-12 * scale)
    assert np.all(np.isfinite(f_a)) and np.all(np.isfinite(f_b))


@given(
    ranks=st.integers(min_value=2, max_value=12),
    values=st.lists(st.integers(min_value=-100, max_value=100),
                    min_size=12, max_size=12),
    op=st.sampled_from(["sum", "max", "min"]),
)
@settings(**APP_SETTINGS)
def test_ampi_allreduce_always_correct(ranks, values, op):
    def program(mpi, vals):
        result = yield mpi.allreduce(vals[mpi.rank], op=op)
        return result

    env = artificial_latency_env(2, ms(1))
    world = ampi_run(env, program, num_ranks=ranks,
                     program_args=(values,))
    expected = {"sum": sum, "max": max, "min": min}[op](values[:ranks])
    assert all(v == expected for v in world.results.values())


@given(
    ranks=st.integers(min_value=2, max_value=10),
    token_count=st.integers(min_value=1, max_value=5),
)
@settings(**APP_SETTINGS)
def test_ampi_ring_delivers_everything_in_order(ranks, token_count):
    def program(mpi, n):
        right = (mpi.rank + 1) % mpi.size
        left = (mpi.rank - 1) % mpi.size
        for i in range(n):
            mpi.send((mpi.rank, i), dest=right, tag=7)
        got = []
        for _ in range(n):
            got.append((yield mpi.recv(source=left, tag=7)))
        return got

    env = artificial_latency_env(2, ms(2))
    world = ampi_run(env, program, num_ranks=ranks,
                     program_args=(token_count,))
    for rank, got in world.results.items():
        left = (rank - 1) % ranks
        assert got == [(left, i) for i in range(token_count)]
