"""The object fold must be bit-identical streaming vs batch.

:class:`~repro.sim.trace.TraceAggregator` drives the shared
:class:`~repro.sim.trace.ObjectFold` online, event by event;
:func:`~repro.obs.objview.fold_from_tracer` replays a batch
:class:`~repro.sim.trace.Tracer` recording through the same hooks after
the fact (messages first, then intervals).  Hypothesis generates
randomized valid schedules — per-PE non-overlapping executions with
object labels, queue-wait trigger pairing, labelled messages over
local/LAN/WAN with drop, duplicate and retransmit fates, and
*migration-shaped* sequences where one object's (totally ordered)
executions hop between PEs — replays the identical stream into both
recorders, and demands exact ``==`` on the full profile/matrix dump.

Times live on a 1/16 grid, but the equality asserted here is exact
``==`` regardless: both paths perform the same float additions in the
same per-object order (see the :class:`ObjectFold` docstring for the
argument), so every accumulator must agree to the last bit.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs.objview import ObjectView, fold_from_tracer
from repro.sim.trace import TraceAggregator, Tracer

COMMON = dict(deadline=None, max_examples=60,
              suppress_health_check=[HealthCheck.too_slow])

#: The migrating objects: the same labels execute on either of the two
#: dedicated migration PEs, so their profiles must follow the *object*.
MIG_OBJS = ("c9[0]", "c9[1]")


@st.composite
def labelled_schedules(draw):
    """A random valid labelled recording stream.

    Returns ``(events, expected_execs)`` where *events* is the
    time-sorted replayable stream and *expected_execs* maps each object
    label to the number of executions the schedule gave it (used to
    check that a migrating object's samples accumulate across PEs).
    """
    n_pes = draw(st.integers(min_value=1, max_value=3))
    mig_pes = (n_pes, n_pes + 1)
    pe_objs = {p: (f"c0[{p}.0]", f"c0[{p}.1]") for p in range(n_pes)}
    all_objs = tuple(o for objs in pe_objs.values() for o in objs) \
        + MIG_OBJS
    events = []
    expected_execs = {}

    # Messages: labelled endpoints, local/LAN/WAN, fault fates.  A
    # delivered seq may later trigger one execution (queue-wait pairing).
    delivered_tick = {}
    n_msgs = draw(st.integers(min_value=0, max_value=10))
    for seq in range(n_msgs):
        src = draw(st.integers(min_value=0, max_value=n_pes + 1))
        dst = draw(st.integers(min_value=0, max_value=n_pes + 1))
        wan = draw(st.booleans())
        size = draw(st.integers(min_value=0, max_value=4096))
        t0 = draw(st.integers(min_value=0, max_value=1400))
        flight = draw(st.integers(min_value=1, max_value=200))
        src_obj = draw(st.sampled_from(all_objs + (None,)))
        dst_obj = draw(st.sampled_from(all_objs + (None,)))
        args = (src, dst, size, f"m{seq}", wan, seq, src_obj, dst_obj)
        fate = draw(st.sampled_from(
            ["deliver", "deliver", "deliver", "drop", "dup",
             "retransmit"]))
        events.append((t0 / 16.0, "send", args))
        if fate == "drop":
            events.append((t0 / 16.0, "drop", args))
            continue
        if fate == "retransmit":
            t0 += draw(st.integers(min_value=1, max_value=64))
            events.append((t0 / 16.0, "send", args))
        arr = t0 + flight
        events.append((arr / 16.0, "deliver", args))
        delivered_tick[seq] = arr
        if fate == "dup":
            arr += draw(st.integers(min_value=1, max_value=64))
            events.append((arr / 16.0, "deliver", args))

    # Per-PE non-overlapping executions with PE-private object labels.
    intervals = []  # (begin_tick, end_tick, pe, obj)
    for pe in range(n_pes):
        bounds = sorted(draw(st.lists(
            st.integers(min_value=0, max_value=1600),
            min_size=0, max_size=8, unique=True)))
        for i in range(0, len(bounds) - 1, 2):
            obj = draw(st.sampled_from(pe_objs[pe] + (None,)))
            intervals.append((bounds[i], bounds[i + 1], pe, obj))

    # Migration-shaped executions: globally non-overlapping intervals
    # assigned to either migration PE, sharing the MIG_OBJS labels —
    # the same object runs on different PEs at different times, exactly
    # what a load-balancer migration produces.
    bounds = sorted(draw(st.lists(
        st.integers(min_value=0, max_value=1600),
        min_size=0, max_size=10, unique=True)))
    for i in range(0, len(bounds) - 1, 2):
        pe = draw(st.sampled_from(mig_pes))
        obj = draw(st.sampled_from(MIG_OBJS + (None,)))
        intervals.append((bounds[i], bounds[i + 1], pe, obj))

    # Attach triggers: each delivered seq fires at most one execution,
    # and only one that begins strictly after its first delivery (the
    # engine's causality guarantee).
    used = set()
    for begin, end, pe, obj in sorted(intervals):
        trigger = None
        candidates = sorted(sq for sq, tick in delivered_tick.items()
                            if tick < begin and sq not in used)
        if candidates and draw(st.booleans()):
            trigger = draw(st.sampled_from(candidates))
            used.add(trigger)
        entry = draw(st.sampled_from(["a", "b"]))
        events.append((begin / 16.0, "begin",
                       (pe, begin / 16.0, "C", entry, trigger, obj)))
        events.append((end / 16.0, "end", (pe, end / 16.0)))
        if obj is not None:
            expected_execs[obj] = expected_execs.get(obj, 0) + 1

    # Stable sort: simultaneous events keep emission order, preserving
    # per-PE begin/end validity and send-before-deliver.
    events.sort(key=lambda ev: ev[0])
    return events, expected_execs


def replay(events, sink, harvest_every=0):
    """Feed *events* into *sink*; optionally harvest the grain window.

    ``harvest_every=k`` calls :meth:`ObjectFold.harvest_window` on the
    sink's fold after every k-th event — the telemetry sampler does this
    mid-run, and it must never perturb the profile state.
    """
    for i, (time_, op, args) in enumerate(events):
        if op == "begin":
            pe, t, chare, entry, trigger, obj = args
            sink.begin_execute(pe, t, chare, entry,
                               trigger=trigger, obj=obj)
        elif op == "end":
            sink.end_execute(*args)
        else:
            src, dst, size, tag, wan, sq, src_obj, dst_obj = args
            meth = {"send": sink.message_sent,
                    "deliver": sink.message_delivered,
                    "drop": sink.message_dropped}[op]
            meth(time_, src, dst, size, tag, wan, seq=sq,
                 src_obj=src_obj, dst_obj=dst_obj)
        if harvest_every and (i + 1) % harvest_every == 0:
            fold = getattr(sink, "objview", None)
            if fold is not None:
                fold.harvest_window()
    return sink


@given(labelled_schedules())
@settings(**COMMON)
def test_streaming_fold_bit_identical_to_batch(schedule):
    events, _ = schedule
    batch = replay(events, Tracer())
    live = replay(events, TraceAggregator())
    assert live.objview.to_dict() == fold_from_tracer(batch).to_dict()


@given(labelled_schedules())
@settings(**COMMON)
def test_object_view_wrappers_agree(schedule):
    """The presentation wrapper agrees from either source, totals and
    makespan included."""
    events, _ = schedule
    batch = replay(events, Tracer())
    live = replay(events, TraceAggregator())
    assert ObjectView.from_source(live).to_dict() == \
        ObjectView.from_source(batch).to_dict()


@given(labelled_schedules(),
       st.integers(min_value=1, max_value=5))
@settings(**COMMON)
def test_window_harvest_never_perturbs_profiles(schedule, every):
    """Sampler harvests mid-stream leave the fold state untouched."""
    events, _ = schedule
    batch = replay(events, Tracer())
    live = replay(events, TraceAggregator(), harvest_every=every)
    assert live.objview.to_dict() == fold_from_tracer(batch).to_dict()
    # After a final harvest the window state is reset and empty.
    live.objview.harvest_window()
    assert live.objview.harvest_window() == (0.0, None)


@given(labelled_schedules())
@settings(**COMMON)
def test_migrating_objects_accumulate_across_pes(schedule):
    """Samples follow the *object*, not the PE it happened to be on.

    Every execution a migrating label performed — on whichever
    migration PE — lands in that label's single profile, in both folds.
    """
    events, expected_execs = schedule
    live = replay(events, TraceAggregator())
    fold = live.objview
    for obj, count in expected_execs.items():
        assert fold.profiles[obj].executions == count
    # Message traffic can open a profile without executions, but every
    # migrating label that *executed* is tracked, once, under its own
    # location-independent key.
    assert {o for o, p in fold.profiles.items()
            if o in MIG_OBJS and p.executions} == \
        {o for o in expected_execs if o in MIG_OBJS}
