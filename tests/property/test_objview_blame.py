"""The per-object blame invariant: object totals sum to the window.

:func:`repro.obs.critpath.per_object_blame` folds the labelled critical
path segments of :func:`~repro.obs.critpath.per_step_attribution` into
per-chare rows (compute / exposed WAN wait / queueing).  Because the
segments *tile* each step window and the object labels merely partition
that tiling, the rows' ``total_s`` values must sum to the window's
length — exactly, with residual ``0.0``, when event times are dyadic
rationals.

Hypothesis generates randomized causally-consistent runs with object
labels: multi-PE span chains, driver roots, WAN and local messages, hop
ledgers shaped like flat, hierarchical (relay spans) and striped
(multi-chunk stream) chains, drops, retransmissions, reordered
duplicate deliveries, queue gaps, and unlabelled ``<rts>`` relay work
(blamed to :data:`~repro.obs.critpath.UNATTRIBUTED`).  Times live on a
1/16 grid so every assertion here is exact ``==``.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.network.hops import HopSpan
from repro.obs.critpath import (
    UNATTRIBUTED,
    CausalGraph,
    per_object_blame,
    per_step_attribution,
    render_blame,
)
from repro.sim.trace import Tracer

COMMON = dict(deadline=None, max_examples=80,
              suppress_health_check=[HealthCheck.too_slow])

#: Labelled chares the runs draw from; ``<rts>`` relay spans carry no
#: object label and must land in the UNATTRIBUTED bucket.
CHARES = (("C", "a", "c0[0]"), ("C", "b", "c0[0]"), ("C", "a", "c0[1]"),
          ("C", "b", "c0[2]"), ("<rts>", "relay", None))

OBJ_LABELS = {obj for _c, _e, obj in CHARES if obj is not None}


def _draw_wan_ledger(draw, sent_i, arr_i):
    """A chain-shaped WAN hop ledger on the 1/16 grid.

    A delay-filter span first (the artificial-latency device), then the
    transport: either one plain wire span (flat/hierarchical chains) or
    1-3 striped stream chunks whose slowest chunk lands exactly at the
    arrival — the three chain shapes the Figure-3c variants produce.
    """
    cut = draw(st.integers(min_value=sent_i, max_value=arr_i))
    spans = []
    if cut > sent_i:
        spans.append(HopSpan(
            device="delay", link="delay",
            kind=draw(st.sampled_from(("propagation", "device_queue"))),
            enqueue=sent_i / 16.0, dequeue=sent_i / 16.0,
            arrive=cut / 16.0))
    if draw(st.booleans()):     # plain (flat/hierarchical) wire hop
        dq = draw(st.integers(min_value=cut, max_value=arr_i))
        ser = draw(st.integers(min_value=0, max_value=arr_i - dq))
        spans.append(HopSpan(
            device="wan", link="wan", kind="wire",
            enqueue=cut / 16.0, dequeue=dq / 16.0, arrive=arr_i / 16.0,
            ser_s=ser / 16.0,
            queue_depth=draw(st.integers(min_value=0, max_value=4))))
    else:                       # striped: slowest chunk defines arrival
        n_chunks = draw(st.integers(min_value=1, max_value=3))
        arrivals = [arr_i] + draw(st.lists(
            st.integers(min_value=cut, max_value=arr_i),
            min_size=n_chunks - 1, max_size=n_chunks - 1))
        for j, aj in enumerate(arrivals):
            dq = draw(st.integers(min_value=cut, max_value=aj))
            ser = draw(st.integers(min_value=0, max_value=aj - dq))
            spans.append(HopSpan(
                device=f"wan/s{j}", link="wan", kind="stream",
                enqueue=cut / 16.0, dequeue=dq / 16.0, arrive=aj / 16.0,
                ser_s=ser / 16.0,
                queue_depth=draw(st.integers(min_value=0, max_value=4)),
                stream=j))
    return tuple(spans)


@st.composite
def labelled_causal_runs(draw):
    """A random causally-consistent labelled run plus step boundaries.

    Mirrors what the engine guarantees: per-PE spans never overlap; a
    span triggered by a message starts at or after both its delivery
    and its same-PE predecessor's end; messages are sent when their
    causal parent finishes; drops precede retransmissions.
    """
    n_pes = draw(st.integers(min_value=1, max_value=3))
    n_spans = draw(st.integers(min_value=1, max_value=16))
    tracer = Tracer()
    pe_clock = [0.0] * n_pes
    spans = []          # (sid, pe, start, end, obj) in creation order
    seq = 0

    for sid in range(n_spans):
        pe = draw(st.integers(min_value=0, max_value=n_pes - 1))
        trigger = None
        parent = None
        delivered = None
        chare, entry_name, obj = draw(st.sampled_from(CHARES))

        kind = draw(st.sampled_from(
            ["root", "untriggered"] + (["caused"] * 4 if spans else [])))
        if kind != "untriggered":
            trigger = seq
            seq += 1
            if kind == "caused":
                psid, ppe, _pstart, pend, pobj = spans[
                    draw(st.integers(min_value=0, max_value=len(spans) - 1))]
                parent = psid
                src_pe, first_send, src_obj = ppe, pend, pobj
            else:   # driver-originated root message
                src_pe = draw(st.integers(min_value=0, max_value=n_pes - 1))
                first_send = draw(st.integers(min_value=0,
                                              max_value=64)) / 16.0
                src_obj = None
            wan = draw(st.booleans())
            tag = f"m{trigger}"
            sends = [first_send]
            n_retx = draw(st.integers(min_value=0, max_value=2))
            for _ in range(n_retx):
                # Each lost copy is dropped, then retransmitted later.
                tracer.message_dropped(sends[-1], src_pe, pe, 8, tag, wan,
                                      seq=trigger, cause=parent,
                                      src_obj=src_obj, dst_obj=obj)
                sends.append(sends[-1]
                             + draw(st.integers(min_value=1,
                                                max_value=32)) / 16.0)
            flight = draw(st.integers(min_value=1, max_value=64)) / 16.0
            delivered = sends[-1] + flight
            for t in sends:
                tracer.message_sent(t, src_pe, pe, 8, tag, wan,
                                    seq=trigger, cause=parent,
                                    src_obj=src_obj, dst_obj=obj)
            tracer.message_delivered(delivered, src_pe, pe, 8, tag, wan,
                                     seq=trigger, cause=parent,
                                     src_obj=src_obj, dst_obj=obj)
            if wan and draw(st.booleans()):
                # The fabric stamps a hop ledger on the carrying copy.
                tracer.message_hops(
                    sends[-1], src_pe, pe, 8, tag, True, trigger,
                    delivered,
                    _draw_wan_ledger(draw, int(sends[-1] * 16),
                                     int(delivered * 16)))
            if draw(st.booleans()):
                # Duplicate delivery of a slower copy, reordered behind.
                tracer.message_delivered(
                    delivered + draw(st.integers(min_value=1,
                                                 max_value=32)) / 16.0,
                    src_pe, pe, 8, tag, wan, seq=trigger, cause=parent,
                    src_obj=src_obj, dst_obj=obj)

        floor = max(pe_clock[pe], delivered or 0.0)
        queue_gap = draw(st.integers(min_value=0, max_value=8)) / 16.0
        start = floor + queue_gap
        duration = draw(st.integers(min_value=1, max_value=32)) / 16.0
        end = start + duration
        tracer.begin_execute(pe, start, chare, entry_name,
                             sid=sid, parent=parent, trigger=trigger,
                             obj=obj)
        tracer.end_execute(pe, end)
        pe_clock[pe] = end
        spans.append((sid, pe, start, end, obj))

    t_min = min(s[2] for s in spans)
    t_max = max(s[3] for s in spans)
    ticks = sorted(set(
        [int(s[2] * 16) for s in spans]
        + draw(st.lists(st.integers(min_value=int(t_min * 16),
                                    max_value=int(t_max * 16) + 32),
                        min_size=0, max_size=6))))
    boundaries = [t / 16.0 for t in ticks]
    return tracer, boundaries


@given(labelled_causal_runs())
@settings(**COMMON)
def test_blame_totals_partition_each_step_exactly(run):
    tracer, boundaries = run
    graph = CausalGraph.from_tracer(tracer)
    steps = per_step_attribution(graph, boundaries)
    for att in steps:
        blame = per_object_blame(att.segments)
        # The headline invariant: object totals sum to the step's wall
        # time, exactly (residual == 0.0 on the dyadic grid).
        assert sum(row["total_s"] for row in blame.values()) == att.wall
        for obj, row in blame.items():
            assert obj in OBJ_LABELS or obj == UNATTRIBUTED
            assert row["total_s"] == \
                row["compute_s"] + row["wan_wait_s"] + row["queue_s"]
            for v in row.values():
                assert v >= 0.0


@given(labelled_causal_runs())
@settings(**COMMON)
def test_blame_over_window_equals_merged_steps(run):
    """Folding all windows at once == summing per-step folds, exactly."""
    tracer, boundaries = run
    graph = CausalGraph.from_tracer(tracer)
    steps = per_step_attribution(graph, boundaries)
    whole = per_object_blame(
        [seg for att in steps for seg in att.segments])
    merged = {}
    for att in steps:
        for obj, row in per_object_blame(att.segments).items():
            acc = merged.setdefault(obj, dict.fromkeys(row, 0.0))
            for k, v in row.items():
                acc[k] += v
    assert whole == merged
    # And the global invariant across the whole analysed window.
    assert sum(row["total_s"] for row in whole.values()) == \
        sum(att.wall for att in steps)


@given(labelled_causal_runs())
@settings(**COMMON)
def test_compute_blame_lands_on_the_executing_object(run):
    """Compute blame only ever lands on objects that executed.

    The walk's segments tile the window (trailing idle is clipped into
    the last on-path span's bucket), so no *duration* bound holds — but
    the labels must route correctly: an object that never executed can
    accrue no compute blame, and unlabelled ``<rts>`` relay work lands
    in the runtime bucket, never on a chare.
    """
    tracer, boundaries = run
    graph = CausalGraph.from_tracer(tracer)
    steps = per_step_attribution(graph, boundaries)
    blame = per_object_blame(
        [seg for att in steps for seg in att.segments])
    executed = {iv.obj for iv in tracer.intervals if iv.obj is not None}
    for obj, row in blame.items():
        if row["compute_s"] > 0.0 or row["queue_s"] > 0.0:
            assert obj == UNATTRIBUTED or obj in executed


@given(labelled_causal_runs())
@settings(**COMMON)
def test_render_blame_lists_heaviest_first(run):
    tracer, boundaries = run
    graph = CausalGraph.from_tracer(tracer)
    steps = per_step_attribution(graph, boundaries)
    blame = per_object_blame(
        [seg for att in steps for seg in att.segments])
    text = render_blame(blame, top=3)
    lines = text.splitlines()
    assert lines[0].startswith("object")
    assert len(lines) <= 1 + min(3, len(blame))
    ranked = sorted(blame.items(),
                    key=lambda kv: (-kv[1]["total_s"], kv[0]))
    for line, (obj, _row) in zip(lines[1:], ranked):
        assert line.startswith(obj)
