"""Property-based tests for the watchdog and the observability governor.

The acceptance bar: the watchdog fires if and *only if* its condition
holds (episode semantics — one event per False -> True transition), and
governor downgrades are deterministic given a mocked clock.

All tests carry the ``watchdog`` marker so CI can select them with
``-m watchdog``.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs.health import (
    HealthConfig,
    HealthMonitor,
    HealthSample,
    ObsGovernor,
)

pytestmark = pytest.mark.watchdog

COMMON = dict(deadline=None, max_examples=80,
              suppress_health_check=[HealthCheck.too_slow])


def mk_sample(i, *, idle=0.0, wan_sends=0, retransmits=0, executions=None):
    return HealthSample(
        t=float(i), executions=executions if executions is not None else i,
        utilization={0: 1.0 - idle}, idle_fraction=idle,
        queue_depth=0, wan_in_flight=0, wan_sends=wan_sends,
        retransmits=retransmits)


# -- unmasking: fires iff idle crosses the threshold -----------------------


@given(idles=st.lists(st.floats(min_value=0.0, max_value=1.0,
                                allow_nan=False), min_size=1, max_size=40),
       warmup=st.integers(min_value=0, max_value=6),
       wan=st.lists(st.booleans(), min_size=40, max_size=40))
@settings(**COMMON)
def test_unmasking_fires_iff_condition_transitions(idles, warmup, wan):
    cfg = HealthConfig(warmup_samples=warmup)
    mon = HealthMonitor(cfg)
    # Independently recompute the pure rule: the episode state only
    # advances when the rule actually evaluates (past warmup, with WAN
    # traffic); otherwise it is frozen.
    was = False
    for i, idle in enumerate(idles):
        sends = 10 if wan[i] else 0
        fired = [e for e in mon.observe(mk_sample(i, idle=idle,
                                                  wan_sends=sends))
                 if e.rule == "unmasking"]
        if (i + 1) <= warmup or sends == 0:
            expect = False
        else:
            cond = idle > cfg.unmasked_idle_threshold
            expect = cond and not was
            was = cond
        assert len(fired) == (1 if expect else 0)
        if fired:
            assert fired[0].value == idle


# -- retransmit storm: fires iff the windowed rate crosses -----------------


@given(deltas=st.lists(st.tuples(st.integers(min_value=0, max_value=20),
                                 st.integers(min_value=0, max_value=20)),
                       min_size=1, max_size=40))
@settings(**COMMON)
def test_storm_fires_iff_windowed_rate_crosses(deltas):
    cfg = HealthConfig(storm_rate=0.5, storm_min_retransmits=3)
    mon = HealthMonitor(cfg)
    sends = retx = 0
    was = False
    for i, (d_sent, d_retx) in enumerate(deltas):
        d_retx = min(d_retx, d_sent)  # can't retransmit more than sent
        sends += d_sent
        retx += d_retx
        fired = [e for e in mon.observe(mk_sample(i, wan_sends=sends,
                                                  retransmits=retx))
                 if e.rule == "retransmit-storm"]
        rate = d_retx / d_sent if d_sent > 0 else 0.0
        cond = d_retx >= cfg.storm_min_retransmits and rate > cfg.storm_rate
        expect = cond and not was
        was = cond
        assert len(fired) == (1 if expect else 0)
        assert mon.last_retransmit_rate == pytest.approx(rate)


# -- episode semantics hold for every rule ---------------------------------


@given(idles=st.lists(st.sampled_from([0.05, 0.9]), min_size=5,
                      max_size=60))
@settings(**COMMON)
def test_no_rule_double_fires_within_an_episode(idles):
    mon = HealthMonitor(HealthConfig(warmup_samples=0))
    history = []
    for i, idle in enumerate(idles):
        events = mon.observe(mk_sample(i, idle=idle, wan_sends=10))
        history.append((idle > mon.config.unmasked_idle_threshold,
                        sum(1 for e in events if e.rule == "unmasking")))
    # Between any two unmasking events the condition must have dropped.
    last_fire = None
    for i, (cond, n) in enumerate(history):
        assert n <= 1
        if n == 1:
            if last_fire is not None:
                assert any(not c for c, _ in history[last_fire + 1:i])
            last_fire = i


# -- governor: ladder dynamics deterministic under a mocked clock ----------


@given(steps=st.lists(st.tuples(
    st.floats(min_value=0.1, max_value=5.0, allow_nan=False),  # wall dt
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False)),  # cost dt
    min_size=1, max_size=30),
    budget=st.floats(min_value=0.01, max_value=0.5, allow_nan=False))
@settings(**COMMON)
def test_governor_downgrade_deterministic(steps, budget):
    def run_once():
        state = {"t": 0.0, "cost": 0.0}
        gov = ObsGovernor(budget=budget, clock=lambda: state["t"])
        gov.add_cost_source("x", lambda: state["cost"])
        trajectory = []
        for i, (dt, dc) in enumerate(steps):
            state["t"] += dt
            state["cost"] += dc
            ev = gov.check(float(i))
            trajectory.append((gov.level, ev.rule if ev else None,
                              round(gov.overhead_fraction(), 12)))
        return trajectory, [e.to_dict() for e in gov.events]

    first = run_once()
    second = run_once()
    assert first == second

    # Ladder discipline: one rung per check in either direction —
    # downgrades while over budget, recoveries after a calm stretch.
    levels = ["full"] + [lvl for lvl, _, _ in first[0]]
    order = {"full": 0, "sampling": 1, "counters": 2}
    for prev, cur in zip(levels, levels[1:]):
        assert abs(order[cur] - order[prev]) <= 1


@given(steps=st.lists(st.tuples(
    st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False)),
    min_size=1, max_size=30),
    budget=st.floats(min_value=0.01, max_value=0.5, allow_nan=False))
@settings(**COMMON)
def test_governor_transitions_iff_shadow_state_machine(steps, budget):
    """The governor's level trajectory matches an independently coded
    shadow of its contract: downgrade one rung when over budget; after
    ``recovery_patience`` consecutive checks calmer than
    ``recovery_headroom x budget``, recover one rung; anything else is
    a no-op.  Event severities tag the direction (warning down, info
    up)."""
    state = {"t": 0.0, "cost": 0.0}
    gov = ObsGovernor(budget=budget, clock=lambda: state["t"])
    gov.add_cost_source("x", lambda: state["cost"])
    level, calm = 0, 0
    for i, (dt, dc) in enumerate(steps):
        state["t"] += dt
        state["cost"] += dc
        fraction = gov.overhead_fraction()
        ev = gov.check(float(i))
        if fraction > budget:
            calm = 0
            if level < 2:
                level += 1
                assert ev is not None and ev.severity == "warning"
                assert ev.rule == "obs-governor"
            else:
                assert ev is None
        elif level == 0:
            calm = 0
            assert ev is None
        elif fraction > budget * gov.recovery_headroom:
            calm = 0
            assert ev is None
        else:
            calm += 1
            if calm >= gov.recovery_patience:
                calm = 0
                level -= 1
                assert ev is not None and ev.severity == "info"
                assert ev.rule == "obs-governor"
            else:
                assert ev is None
        assert gov.level_index == level


def test_governor_recovers_full_ladder_round_trip():
    """Deterministic end-to-end walk: full -> sampling -> counters under
    sustained overspend, then all the way back up once the cost stops
    accruing and the fraction decays below the recovery band."""
    state = {"t": 0.0, "cost": 0.0}
    gov = ObsGovernor(budget=0.10, clock=lambda: state["t"],
                      recovery_headroom=0.5, recovery_patience=2)
    gov.add_cost_source("x", lambda: state["cost"])
    seen = []
    gov.on_downgrade("sampling", lambda: seen.append("down:sampling"))
    gov.on_downgrade("counters", lambda: seen.append("down:counters"))
    gov.on_upgrade("sampling", lambda: seen.append("up:sampling"))
    gov.on_upgrade("full", lambda: seen.append("up:full"))

    # Overspend: cost grows at 50% of wall -> two downgrades to floor.
    for i in range(3):
        state["t"] += 1.0
        state["cost"] += 0.5
        gov.check(float(i))
    assert gov.level == "counters"
    # Calm: cost frozen, wall advances; fraction decays toward zero.
    # cost=1.5; fraction < 0.05 (headroom x budget) needs t > 30.
    state["t"] = 40.0
    ticks = 0
    while gov.level != "full" and ticks < 10:
        state["t"] += 5.0
        gov.check(100.0 + ticks)
        ticks += 1
    assert gov.level == "full"
    assert seen == ["down:sampling", "down:counters",
                    "up:sampling", "up:full"]
    severities = [e.severity for e in gov.events]
    assert severities == ["warning", "warning", "info", "info"]
