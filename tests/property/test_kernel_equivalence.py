"""Hypothesis equivalence properties: numpy block kernels vs references.

ISSUE 10's kernel satellite: the vectorized block kernels that replaced
the per-cell Python inner loops must be **bit-identical** (stencil) or
reassociation-tight (LeanMD) to ``reference.py`` on arbitrary — odd,
lopsided, tiny — shapes, and across ghost depths beyond one.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.leanmd.forces import pair_forces, self_forces
from repro.apps.leanmd.reference import (
    pair_forces_percell,
    self_forces_percell,
)
from repro.apps.leanmd.system import MdParams
from repro.apps.stencil.deep_ghost import deep_jacobi_phase
from repro.apps.stencil.kernel import (
    jacobi_step,
    jacobi_step_into,
    make_initial_mesh,
)
from repro.apps.stencil.reference import (
    jacobi_step_percell,
    run_reference,
)

KERNEL_SETTINGS = dict(max_examples=40, deadline=None,
                       suppress_health_check=[HealthCheck.too_slow])


@given(
    rows=st.integers(min_value=3, max_value=41),
    cols=st.integers(min_value=3, max_value=41),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(**KERNEL_SETTINGS)
def test_block_kernels_bitwise_equal_on_any_shape(rows, cols, seed):
    """Expression form, in-place form and per-cell reference agree bit
    for bit on arbitrary padded shapes (odd, even, extreme aspect)."""
    rng = np.random.default_rng(seed)
    padded = rng.random((rows, cols))
    expected = jacobi_step(padded)
    out = np.empty((rows - 2, cols - 2))
    assert np.array_equal(jacobi_step_into(padded, out), expected)
    assert np.array_equal(jacobi_step_percell(padded), expected)


@given(
    rows=st.integers(min_value=11, max_value=29),
    cols=st.integers(min_value=11, max_value=29),
    depth=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(**KERNEL_SETTINGS)
def test_deep_ghost_phase_bitwise_equals_plain_steps(rows, cols, depth,
                                                     seed):
    """One deep-halo phase of ``depth`` sub-steps on a whole mesh equals
    ``depth`` plain reference steps, bit for bit, at any depth."""
    mesh = make_initial_mesh(rows, cols, seed)
    padded = mesh.copy()
    fixed = (mesh[0, :].copy(), mesh[-1, :].copy(),
             mesh[:, 0].copy(), mesh[:, -1].copy())

    def apply_fixed():
        padded[0, :], padded[-1, :] = fixed[0], fixed[1]
        padded[:, 0], padded[:, -1] = fixed[2], fixed[3]

    deep_jacobi_phase(padded, depth, apply_fixed)
    # On a whole mesh the shrinking valid window only ever touches
    # cells whose neighbours are Dirichlet-pinned, so the interior
    # matches depth plain steps exactly.
    expected = run_reference(mesh, depth)
    assert np.array_equal(padded[depth:-depth, depth:-depth],
                          expected[depth:-depth, depth:-depth])


@given(
    na=st.integers(min_value=1, max_value=10),
    nb=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(**KERNEL_SETTINGS)
def test_leanmd_pair_kernel_matches_percell(na, nb, seed):
    """Vectorized cell-pair forces equal the scalar double loop within
    summation-reassociation tolerance, for any pair of cell sizes."""
    rng = np.random.default_rng(seed)
    params = MdParams()
    box = np.array([5.0, 5.0, 5.0])
    pos_a = rng.random((na, 3)) * 5.0
    pos_b = rng.random((nb, 3)) * 5.0
    q_a = rng.uniform(-1.0, 1.0, size=na)
    q_b = rng.uniform(-1.0, 1.0, size=nb)
    f_a, f_b, pot = pair_forces(pos_a, pos_b, q_a, q_b, box, params)
    r_a, r_b, r_pot = pair_forces_percell(pos_a, pos_b, q_a, q_b, box,
                                          params)
    np.testing.assert_allclose(f_a, r_a, rtol=1e-10, atol=1e-8)
    np.testing.assert_allclose(f_b, r_b, rtol=1e-10, atol=1e-8)
    np.testing.assert_allclose(pot, r_pot, rtol=1e-10, atol=1e-10)


@given(
    n=st.integers(min_value=1, max_value=14),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(**KERNEL_SETTINGS)
def test_leanmd_self_kernel_matches_percell(n, seed):
    """Vectorized intra-cell forces equal the scalar pair loop."""
    rng = np.random.default_rng(seed)
    params = MdParams()
    box = np.array([5.0, 5.0, 5.0])
    pos = rng.random((n, 3)) * 5.0
    q = rng.uniform(-1.0, 1.0, size=n)
    f, pot = self_forces(pos, q, box, params)
    r_f, r_pot = self_forces_percell(pos, q, box, params)
    np.testing.assert_allclose(f, r_f, rtol=1e-10, atol=1e-8)
    np.testing.assert_allclose(pot, r_pot, rtol=1e-10, atol=1e-10)
