"""Property tests: hierarchical multicast / grid-aware tree invariants.

The load-bearing invariant from the collective-routing work: whatever
the topology and whichever subset of PEs participates, the wide area is
crossed exactly once per participating remote cluster — by the
reduction tree's upward edges and by the multicast relay's downward
hops alike.  And with flat routing (the default), virtual time is
bit-identical to the seed behaviour.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.chare import Chare
from repro.core.mapping import RoundRobinMapping
from repro.core.method import entry
from repro.core.reduction import build_tree
from repro.core.rts import RuntimeConfig
from repro.grid.environment import GridEnvironment
from repro.network.chain import DeviceChain
from repro.network.devices import (
    LanDevice,
    LoopbackDevice,
    ShmemDevice,
    WanDevice,
)
from repro.network.links import myrinet_like, shared_memory
from repro.network.topology import GridTopology

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])

#: Small but shape-diverse machines: 1-3 clusters, uneven sizes, node
#: widths that do and do not divide the cluster sizes.
topologies = st.builds(
    GridTopology,
    st.lists(st.integers(min_value=1, max_value=5),
             min_size=1, max_size=3),
    pes_per_node=st.integers(min_value=1, max_value=3),
)


@st.composite
def topo_and_hosting(draw):
    topo = draw(topologies)
    hosting = draw(st.lists(
        st.integers(min_value=0, max_value=topo.num_pes - 1),
        min_size=1, max_size=topo.num_pes, unique=True))
    return topo, sorted(hosting)


def wan_edges(tree, topo):
    return [(pe, par) for pe, par in tree.parent.items()
            if par is not None and not topo.same_cluster(pe, par)]


@given(topo_and_hosting(), st.booleans())
@settings(**COMMON)
def test_tree_crosses_wan_once_per_extra_cluster(case, node_aware):
    topo, hosting = case
    tree = build_tree(hosting, topo, node_aware=node_aware)
    clusters_present = len({topo.cluster_of(pe) for pe in hosting})
    assert len(wan_edges(tree, topo)) == clusters_present - 1
    # Well-formed: every hosting PE reaches the root.
    for pe in hosting:
        seen = set()
        cur = pe
        while tree.parent[cur] is not None:
            assert cur not in seen
            seen.add(cur)
            cur = tree.parent[cur]
        assert cur == tree.root


@given(topo_and_hosting(), st.booleans())
@settings(**COMMON)
def test_node_aware_tree_keeps_shmem_edges_on_node(case, _unused):
    topo, hosting = case
    tree = build_tree(hosting, topo, node_aware=True)
    # A non-node-root PE always parents within its own node.
    for pe, par in tree.parent.items():
        if par is None or topo.same_node(pe, par):
            continue
        # Cross-node edge: then *pe* must be its node's lowest hosting PE.
        node_hosting = [p for p in hosting
                        if topo.node_of(p) == topo.node_of(pe)]
        assert pe == min(node_hosting)


# -- the relay path, simulated end to end -------------------------------------

class Catcher(Chare):
    def __init__(self):
        super().__init__()
        self.got = []

    @entry
    def take(self, *args):
        self.got.append((self.now, args))


def make_env(topo, routing):
    chain = DeviceChain([
        LoopbackDevice(shared_memory(name="loopback")),
        ShmemDevice(shared_memory()),
        LanDevice(myrinet_like()),
        WanDevice(myrinet_like(name="wan")),
    ])
    config = RuntimeConfig(collective_routing=routing)
    return GridEnvironment(topo, chain, config=config)


def run_multicast(topo, dests, routing):
    """Multicast to *dests* (one element per PE); returns (times, wan)."""
    env = make_env(topo, routing)
    rts = env.runtime
    arr = rts.create_array(Catcher, range(topo.num_pes),
                           RoundRobinMapping())
    arr.section(dests).take("payload")
    env.run()
    objs = rts._collections[arr.collection].objects
    times = {idx: list(objs[idx].got) for idx in objs}
    wan = sum(d.messages_carried for d in env.chain.transports()
              if "wan" in d.name)
    return times, wan


@given(topo_and_hosting())
@settings(max_examples=25, **COMMON)
def test_relay_crosses_wan_once_per_remote_cluster(case):
    topo, dests = case
    times, wan = run_multicast(topo, dests, "hierarchical")
    # The driver-originated multicast starts on PE 0's cluster.
    origin_cluster = topo.cluster_of(0)
    remote_clusters = {topo.cluster_of(pe) for pe in dests} - {origin_cluster}
    assert wan == len(remote_clusters)
    # Exactly the addressed elements received the payload, once each.
    for idx, got in times.items():
        expected = [("payload",)] if idx[0] in dests else []
        assert [args for _t, args in got] == expected


@given(topo_and_hosting())
@settings(max_examples=15, **COMMON)
def test_flat_routing_bit_identical_to_default(case):
    topo, dests = case
    explicit, _ = run_multicast(topo, dests, "flat")
    default, _ = run_multicast(topo, dests, RuntimeConfig().collective_routing)
    assert explicit == default
