"""Hypothesis property tests for the sharded conservative-PDES engine.

The headline invariant of ISSUE 10: sharding the event space changes
*nothing observable* in virtual time.  For randomized multi-cluster
topologies, WAN latencies, decompositions and seeds, every shard count
must yield the exact trajectory digest of the ordered-ties serial
baseline — and the deterministic merge of shard logs must replay into
identical :class:`~repro.sim.trace.TraceAggregator` folds.

Each example runs several whole simulations, so example counts are kept
deliberately small (same budget as ``test_app_properties.py``).
"""

import os

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.stencil import StencilApp
from repro.grid.pdes import (
    StencilPdesJob,
    run_serial_baseline,
    run_sharded,
)
from repro.sim.shardlog import replay_into
from repro.sim.trace import TraceAggregator
from repro.units import ms

PDES_SETTINGS = dict(max_examples=10, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

#: Cluster layouts: 2- and 4-cluster grids, even and lopsided.
TOPOLOGIES = [(2, 2), (1, 3), (3, 2), (2, 2, 2), (2, 4, 2, 4)]


def _job(cluster_sizes, latency_ms_value, objects, steps, seed=0,
         payload="modeled", mesh=(48, 48), kernel="numpy"):
    return StencilPdesJob(cluster_sizes=tuple(cluster_sizes),
                          latency=ms(latency_ms_value), mesh=mesh,
                          objects=objects, steps=steps, payload=payload,
                          kernel=kernel, seed=seed)


def _fold(records):
    """Shard-count-independent aggregate folds of a merged trajectory."""
    agg = replay_into(TraceAggregator(), records)
    return {"summary": agg.summary(), "makespan": agg.makespan(),
            "pe_usage": agg.pe_usage(),
            "profile": agg.profile_by_entry()}


@given(
    topology=st.sampled_from(TOPOLOGIES),
    latency_ms=st.floats(min_value=2.0, max_value=64.0),
    objects=st.sampled_from([4, 9, 16]),
    steps=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=7),
)
@settings(**PDES_SETTINGS)
def test_sharded_trajectory_bit_identical_to_serial(topology, latency_ms,
                                                    objects, steps, seed):
    """Any shard count, any topology/latency/seed -> one trajectory."""
    job = _job(topology, latency_ms, objects, steps, seed)
    baseline = run_serial_baseline(job)
    assert baseline.records, "baseline recorded no events"
    for shards in (1, 2, 4, 8):
        sharded = run_sharded(job, shards)
        assert sharded.shards <= len(topology)
        assert sharded.digest == baseline.digest, (
            f"trajectory diverged at {shards} shards "
            f"(got {sharded.shards} after clamping)")
        assert sharded.records == baseline.records
        assert sharded.events == baseline.events
        assert sharded.makespan == baseline.makespan
        assert sharded.result.time_per_step == \
            baseline.result.time_per_step


@given(
    topology=st.sampled_from([(2, 2), (2, 2, 2)]),
    latency_ms=st.floats(min_value=2.0, max_value=32.0),
    steps=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=5),
)
@settings(**PDES_SETTINGS)
def test_shard_log_replay_folds_match_serial(topology, latency_ms, steps,
                                             seed):
    """Merged shard logs replay into the serial baseline's exact folds."""
    job = _job(topology, latency_ms, objects=4, steps=steps, seed=seed)
    baseline = run_serial_baseline(job)
    sharded = run_sharded(job, len(topology))
    assert _fold(sharded.records) == _fold(baseline.records)


@given(
    pes=st.sampled_from([2, 4, 6]),
    steps=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=5),
)
@settings(**PDES_SETTINGS)
def test_single_cluster_degenerate_clamps_to_one_shard(pes, steps, seed):
    """Zero lookahead (one cluster, loopback-only) is legal: the planner
    clamps to a single shard, which needs no conservative window."""
    job = _job((pes,), latency_ms_value=4.0, objects=4, steps=steps,
               seed=seed)
    baseline = run_serial_baseline(job)
    sharded = run_sharded(job, 8)
    assert sharded.shards == 1
    assert sharded.rounds == 0
    assert sharded.digest == baseline.digest


def test_real_payload_checksums_bit_equal_across_shards():
    """With real numerics the sharded run must reproduce both the
    ordered-ties serial baseline and a classic-engine app run, bit for
    bit — ordered ties and sharding change scheduling keys, never
    numerics or virtual time."""
    job = _job((2, 2), 8.0, objects=4, steps=3, payload="real",
               mesh=(24, 24))
    baseline = run_serial_baseline(job)
    sharded = run_sharded(job, 2)
    assert sharded.digest == baseline.digest
    assert sharded.result.checksum == baseline.result.checksum
    # Classic engine (default int tie keys), same topology and app.
    env = job.environment()
    app = StencilApp(env, mesh=(24, 24), objects=4, payload="real")
    classic = app.run(3)
    assert classic.checksum == sharded.result.checksum
    assert classic.time_per_step == sharded.result.time_per_step


def test_percell_kernel_same_trajectory_and_checksum():
    """Kernel flavour must not leak into the trajectory: percell and
    numpy runs are bit-identical in both virtual time and numerics."""
    numpy_run = run_serial_baseline(
        _job((2, 2), 8.0, objects=4, steps=2, payload="real",
             mesh=(24, 24), kernel="numpy"))
    percell_run = run_serial_baseline(
        _job((2, 2), 8.0, objects=4, steps=2, payload="real",
             mesh=(24, 24), kernel="percell"))
    assert numpy_run.digest == percell_run.digest
    assert numpy_run.result.checksum == percell_run.result.checksum


def test_multiprocessing_workers_match_serial():
    """The parallel=True path (one OS process per shard) certifies the
    same digest; worker count honours REPRO_PDES_WORKERS."""
    shards = int(os.environ.get("REPRO_PDES_WORKERS", "2"))
    clusters = max(2, min(8, shards))
    job = _job((2,) * clusters, latency_ms_value=8.0, objects=4,
               steps=2, seed=1)
    baseline = run_serial_baseline(job)
    sharded = run_sharded(job, shards, parallel=True)
    assert sharded.digest == baseline.digest
    assert sharded.events == baseline.events
    assert np.isfinite(sharded.makespan)
