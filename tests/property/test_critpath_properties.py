"""The attribution invariant: components sum exactly to step wall time.

:func:`repro.obs.critpath.per_step_attribution` claims its components
(compute, relay overhead, the wire-level WAN decomposition —
propagation / bandwidth serialization / stripe pacing / device queue —
queueing/serialization, retransmit stall) *partition* each step window
— the backward walk emits contiguous clipped segments, so their
durations telescope to exactly the window's length.  Hypothesis
generates randomized causally-consistent runs — multi-PE span chains,
driver roots, WAN and local messages, hop ledgers shaped like flat,
hierarchical (relay spans) and striped (multi-chunk stream) chains,
drops, retransmissions, reordered deliveries, queue gaps, pre-causal
legacy events — records them into a batch Tracer, and checks the
invariant on arbitrary step boundaries.

Times live on a 1/16 grid, so every duration and subtraction is exact
in binary floating point and the invariant can be asserted *exactly*
(residual ``== 0.0``), not approximately.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.network.hops import HopSpan
from repro.obs.critpath import (
    COMPONENTS,
    WIRE_COMPONENTS,
    CausalGraph,
    per_step_attribution,
    replay_with_latency,
    summarize_attribution,
)
from repro.sim.trace import Tracer

COMMON = dict(deadline=None, max_examples=80,
              suppress_health_check=[HealthCheck.too_slow])


def _draw_wan_ledger(draw, sent_i, arr_i):
    """A chain-shaped WAN hop ledger on the 1/16 grid.

    A delay-filter span first (the artificial-latency device), then the
    transport: either one plain wire span, or 1-3 striped stream chunks
    whose slowest chunk lands exactly at the arrival — the three chain
    shapes the Figure-3c variants produce.
    """
    cut = draw(st.integers(min_value=sent_i, max_value=arr_i))
    spans = []
    if cut > sent_i:
        spans.append(HopSpan(
            device="delay", link="delay",
            kind=draw(st.sampled_from(("propagation", "device_queue"))),
            enqueue=sent_i / 16.0, dequeue=sent_i / 16.0,
            arrive=cut / 16.0))
    if draw(st.booleans()):     # plain (flat/hierarchical) wire hop
        dq = draw(st.integers(min_value=cut, max_value=arr_i))
        ser = draw(st.integers(min_value=0, max_value=arr_i - dq))
        spans.append(HopSpan(
            device="wan", link="wan", kind="wire",
            enqueue=cut / 16.0, dequeue=dq / 16.0, arrive=arr_i / 16.0,
            ser_s=ser / 16.0,
            queue_depth=draw(st.integers(min_value=0, max_value=4))))
    else:                       # striped: slowest chunk defines arrival
        n_chunks = draw(st.integers(min_value=1, max_value=3))
        arrivals = [arr_i] + draw(st.lists(
            st.integers(min_value=cut, max_value=arr_i),
            min_size=n_chunks - 1, max_size=n_chunks - 1))
        for j, aj in enumerate(arrivals):
            dq = draw(st.integers(min_value=cut, max_value=aj))
            ser = draw(st.integers(min_value=0, max_value=aj - dq))
            spans.append(HopSpan(
                device=f"wan/s{j}", link="wan", kind="stream",
                enqueue=cut / 16.0, dequeue=dq / 16.0, arrive=aj / 16.0,
                ser_s=ser / 16.0,
                queue_depth=draw(st.integers(min_value=0, max_value=4)),
                stream=j))
    return tuple(spans)


@st.composite
def causal_runs(draw):
    """A random causally-consistent run plus candidate step boundaries.

    Mirrors what the engine guarantees: per-PE spans never overlap; a
    span triggered by a message starts at or after both its delivery
    and its same-PE predecessor's end; messages are sent when their
    causal parent finishes (outbox flush at busy-interval end); drops
    precede retransmissions; retransmitted ids keep one delivery.
    """
    n_pes = draw(st.integers(min_value=1, max_value=3))
    n_spans = draw(st.integers(min_value=1, max_value=16))
    tracer = Tracer()
    pe_clock = [0.0] * n_pes
    spans = []          # (sid, pe, start, end) in creation order
    seq = 0

    for sid in range(n_spans):
        pe = draw(st.integers(min_value=0, max_value=n_pes - 1))
        trigger = None
        parent = None
        delivered = None

        kind = draw(st.sampled_from(
            ["root", "untriggered"] + (["caused"] * 4 if spans else [])))
        if kind != "untriggered":
            trigger = seq
            seq += 1
            if kind == "caused":
                psid, ppe, _pstart, pend = spans[
                    draw(st.integers(min_value=0, max_value=len(spans) - 1))]
                parent = psid
                src_pe, first_send = ppe, pend
            else:   # driver-originated root message
                src_pe = draw(st.integers(min_value=0, max_value=n_pes - 1))
                first_send = draw(st.integers(min_value=0,
                                              max_value=64)) / 16.0
            wan = draw(st.booleans())
            tag = f"m{trigger}"
            sends = [first_send]
            n_retx = draw(st.integers(min_value=0, max_value=2))
            for _ in range(n_retx):
                # Each lost copy is dropped, then retransmitted later.
                tracer.message_dropped(sends[-1], src_pe, pe, 8, tag, wan,
                                       seq=trigger, cause=parent)
                sends.append(sends[-1]
                             + draw(st.integers(min_value=1,
                                                max_value=32)) / 16.0)
            flight = draw(st.integers(min_value=1, max_value=64)) / 16.0
            delivered = sends[-1] + flight
            for t in sends:
                tracer.message_sent(t, src_pe, pe, 8, tag, wan,
                                    seq=trigger, cause=parent)
            tracer.message_delivered(delivered, src_pe, pe, 8, tag, wan,
                                     seq=trigger, cause=parent)
            if wan and draw(st.booleans()):
                # The fabric stamps a hop ledger on the carrying copy.
                tracer.message_hops(
                    sends[-1], src_pe, pe, 8, tag, True, trigger,
                    delivered,
                    _draw_wan_ledger(draw, int(sends[-1] * 16),
                                     int(delivered * 16)))
            if draw(st.booleans()):
                # Duplicate delivery of a slower copy, reordered behind.
                tracer.message_delivered(
                    delivered + draw(st.integers(min_value=1,
                                                 max_value=32)) / 16.0,
                    src_pe, pe, 8, tag, wan, seq=trigger, cause=parent)

        floor = max(pe_clock[pe], delivered or 0.0)
        queue_gap = draw(st.integers(min_value=0, max_value=8)) / 16.0
        start = floor + queue_gap
        duration = draw(st.integers(min_value=1, max_value=32)) / 16.0
        end = start + duration
        chare, entry_name = draw(st.sampled_from(
            [("C", "a"), ("C", "b"), ("<rts>", "relay")]))
        tracer.begin_execute(pe, start, chare, entry_name,
                             sid=sid, parent=parent, trigger=trigger)
        tracer.end_execute(pe, end)
        pe_clock[pe] = end
        spans.append((sid, pe, start, end))

    # Occasionally a pre-causal legacy interval (sid=None): the graph
    # must skip it without disturbing the walk.
    if draw(st.booleans()):
        pe = draw(st.integers(min_value=0, max_value=n_pes - 1))
        t = pe_clock[pe] + 1.0
        tracer.begin_execute(pe, t, "L", "legacy")
        tracer.end_execute(pe, t + 0.5)

    t_min = min(s[2] for s in spans)
    t_max = max(s[3] for s in spans)
    ticks = sorted(set(
        [int(s[2] * 16) for s in spans]
        + draw(st.lists(st.integers(min_value=int(t_min * 16),
                                    max_value=int(t_max * 16) + 32),
                        min_size=0, max_size=6))))
    boundaries = [t / 16.0 for t in ticks]
    return tracer, boundaries


@given(causal_runs())
@settings(**COMMON)
def test_components_partition_each_step_exactly(run):
    tracer, boundaries = run
    graph = CausalGraph.from_tracer(tracer)
    steps = per_step_attribution(graph, boundaries)
    assert len(steps) == max(len(boundaries) - 1, 0)
    for att in steps:
        # The headline invariant, exact on the dyadic grid.
        assert att.residual == 0.0
        assert att.total == att.wall
        for k in COMPONENTS:
            assert getattr(att, k) >= 0.0
        # The segments tile [t_start, t_end] with no gaps or overlaps.
        if att.segments:
            assert att.segments[0].start == att.t_start
            assert att.segments[-1].end == att.t_end
            for a, b in zip(att.segments, att.segments[1:]):
                assert a.end == b.start
        for seg in att.segments:
            assert seg.end > seg.start
            assert seg.kind in COMPONENTS


@given(causal_runs())
@settings(**COMMON)
def test_summary_shares_sum_to_one(run):
    tracer, boundaries = run
    graph = CausalGraph.from_tracer(tracer)
    steps = per_step_attribution(graph, boundaries)
    summary = summarize_attribution(steps)
    if summary["wall_s"] > 0:
        assert abs(sum(summary[f"{k}_share"] for k in COMPONENTS)
                   - 1.0) < 1e-9


@given(causal_runs())
@settings(**COMMON)
def test_wire_decomposition_sums_to_wan_flight(run):
    """The derived wan_flight is exactly its four wire components.

    Exact on the dyadic grid, per step and in the summary — the
    extended decomposition refines the old wan_flight bucket without
    ever inventing or losing time.
    """
    tracer, boundaries = run
    graph = CausalGraph.from_tracer(tracer)
    steps = per_step_attribution(graph, boundaries)
    for att in steps:
        assert att.wan_flight == sum(getattr(att, k)
                                     for k in WIRE_COMPONENTS)
        doc = att.to_dict()
        assert doc["wan_flight_s"] == sum(doc[f"{k}_s"]
                                          for k in WIRE_COMPONENTS)
    summary = summarize_attribution(steps)
    assert summary["wan_flight_s"] == sum(summary[f"{k}_s"]
                                          for k in WIRE_COMPONENTS)
    if summary["wall_s"] > 0:
        assert abs(summary["wan_flight_share"]
                   - sum(summary[f"{k}_share"]
                         for k in WIRE_COMPONENTS)) < 1e-9


@given(causal_runs())
@settings(**COMMON)
def test_zero_shift_replay_reproduces_observed_starts(run):
    tracer, _boundaries = run
    graph = CausalGraph.from_tracer(tracer)
    new_start = replay_with_latency(graph, 0.0)
    for span in graph.order:
        assert new_start[span.sid] == span.start


@given(causal_runs())
@settings(**COMMON)
def test_positive_shift_never_speeds_anything_up(run):
    tracer, _boundaries = run
    graph = CausalGraph.from_tracer(tracer)
    base = replay_with_latency(graph, 0.0)
    shifted = replay_with_latency(graph, 2.0)
    for sid in base:
        assert shifted[sid] >= base[sid]
