"""Hypothesis properties of the fault-injection + reliable-delivery stack.

Two invariants the whole subsystem hangs on:

* **exactly-once**: whatever combination of loss, duplication and
  reordering the WAN inflicts, every reliable transfer is delivered to
  the application exactly once;
* **determinism**: two environments built from the same seed observe
  bit-identical delivery schedules, fault decisions included.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.network.chain import DeviceChain
from repro.network.devices import LanDevice, LoopbackDevice, ShmemDevice, WanDevice
from repro.network.fabric import NetworkFabric
from repro.network.faults import FaultyDevice, LinkFlap
from repro.network.links import myrinet_like, shared_memory
from repro.network.message import Message
from repro.network.reliable import ReliableTransport, RetransmitPolicy
from repro.network.topology import GridTopology
from repro.sim.engine import Engine

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])

#: Generous retry budget: with drop <= 0.5 the chance of exhausting 25
#: retries is ~1e-8 per transfer, so the property never flakes on it.
PATIENT = RetransmitPolicy(max_retries=25)

rates = st.floats(min_value=0.0, max_value=0.5)


def lossy_transport(drop, dup, reorder, seed):
    chain = DeviceChain([
        LoopbackDevice(shared_memory(name="loopback")),
        ShmemDevice(shared_memory()),
        LanDevice(myrinet_like()),
        FaultyDevice(drop, dup, reorder, reorder_delay=2e-3, seed=seed),
        WanDevice(myrinet_like(name="wan")),
    ])
    engine = Engine()
    fabric = NetworkFabric(engine, GridTopology.two_cluster(4), chain)
    return engine, ReliableTransport(fabric, PATIENT)


@given(drop=rates, dup=rates, reorder=rates,
       seed=st.integers(min_value=0, max_value=2**31),
       n=st.integers(min_value=1, max_value=20))
@settings(max_examples=40, **COMMON)
def test_exactly_once_delivery_under_arbitrary_faults(drop, dup, reorder,
                                                      seed, n):
    engine, rel = lossy_transport(drop, dup, reorder, seed)
    delivered = []
    sent = []
    for i in range(n):
        msg = Message(src_pe=0, dst_pe=2, size_bytes=100, tag=f"m{i}")
        sent.append(msg.seq)
        rel.send(msg, lambda m: delivered.append(m.seq))
    engine.run()
    assert sorted(delivered) == sorted(sent)    # all arrived, none twice
    assert rel.in_flight == 0
    assert rel.rstats.failures == 0


@given(drop=rates, dup=rates, reorder=rates,
       seed=st.integers(min_value=0, max_value=2**31),
       n=st.integers(min_value=1, max_value=12))
@settings(max_examples=30, **COMMON)
def test_same_seed_lossy_runs_bit_identical(drop, dup, reorder, seed, n):
    def schedule():
        engine, rel = lossy_transport(drop, dup, reorder, seed)
        deliveries = []
        for i in range(n):
            rel.send(Message(src_pe=0, dst_pe=2, size_bytes=100,
                             tag=f"m{i}"),
                     lambda m: deliveries.append((m.tag, engine.now)))
        engine.run()
        r = rel.rstats
        return deliveries, engine.now, (r.retransmits, r.dups_suppressed,
                                        r.acks_sent, r.rtt_samples)

    assert schedule() == schedule()


@given(raw=st.lists(st.tuples(st.floats(min_value=0.0, max_value=100.0),
                              st.floats(min_value=1e-6, max_value=10.0)),
                    min_size=0, max_size=8),
       t=st.floats(min_value=-1.0, max_value=130.0))
@settings(**COMMON)
def test_flap_down_at_matches_window_membership(raw, t):
    windows = [(start, start + length) for start, length in raw]
    flap = LinkFlap(windows)
    assert flap.down_at(t) == any(s <= t < e for s, e in windows)
