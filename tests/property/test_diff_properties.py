"""The differential attribution invariant: deltas close exactly.

:func:`repro.obs.diff.compare_records` claims its per-component deltas
sum to the total step-time delta with ``residual == 0.0`` wherever the
underlying arithmetic is exact.  Reusing the causally-consistent run
generator from the single-run invariant suite (flat, hierarchical and
striped hop ledgers, drops, retransmissions, reordered deliveries on
the 1/16 dyadic grid), we build ledger records out of real
:func:`~repro.obs.critpath.per_step_attribution` output and check the
comparison closes exactly — against itself, against an independently
generated run, and under latency-like scaling.

Step counts are trimmed to powers of two so the per-step division is
itself exact; every quantity then lives on a dyadic grid where sums and
differences are lossless, making ``== 0.0`` a legitimate assertion
rather than an approximation.
"""

from hypothesis import HealthCheck, given, settings

from repro.bench.trajectory import RunRecord
from repro.obs.critpath import COMPONENTS, CausalGraph, per_step_attribution
from repro.obs.diff import compare_records
from repro.obs.ledger import attribution_totals
from test_critpath_properties import causal_runs

COMMON = dict(deadline=None, max_examples=80,
              suppress_health_check=[HealthCheck.too_slow])


def dyadic_boundaries(boundaries):
    """Trim to a power-of-two step count (>= 1 step where possible).

    Dyadic window totals divided by a power of two stay dyadic, so the
    per-step division inside compare_records is exact and the residual
    assertion can be ``== 0.0`` instead of approximate.
    """
    n = len(boundaries) - 1
    if n < 1:
        return boundaries
    k = 1
    while k * 2 <= n:
        k *= 2
    return boundaries[:k + 1]


def record_from_run(run, name="run"):
    tracer, boundaries = run
    boundaries = dyadic_boundaries(boundaries)
    graph = CausalGraph.from_tracer(tracer)
    steps = per_step_attribution(graph, boundaries)
    cp = attribution_totals(steps)
    tps = cp["wall_s"] / max(cp["steps"], 1)
    return RunRecord(name=name, config={"name": name}, schema=2,
                     time_per_step_s=tps, critpath=cp)


@given(causal_runs())
@settings(**COMMON)
def test_self_compare_closes_exactly_and_is_neutral(run):
    rec = record_from_run(run)
    cmp = compare_records(rec, rec)
    assert cmp.residual_s == 0.0
    assert cmp.exact
    assert cmp.delta_step_s == 0.0
    assert all(c.delta_s == 0.0 for c in cmp.components)
    assert cmp.all_neutral
    assert not cmp.config_changed


@given(causal_runs(), causal_runs())
@settings(**COMMON)
def test_cross_run_deltas_sum_exactly_to_total_delta(run_a, run_b):
    """Two unrelated runs — different fates, shapes, step counts — still
    diff with zero residual on the dyadic grid."""
    base = record_from_run(run_a, "base")
    cand = record_from_run(run_b, "cand")
    cmp = compare_records(base, cand)
    assert cmp.residual_s == 0.0
    delta_sum = 0.0
    for c in cmp.components:
        delta_sum += c.delta_s
    assert cmp.delta_step_s == delta_sum
    assert cmp.delta_step_s == cmp.candidate_step_s - cmp.baseline_step_s


@given(causal_runs())
@settings(**COMMON)
def test_doubled_components_attribute_the_whole_delta(run):
    """Scaling every component by 2 (a power of two: lossless) must show
    up as a delta equal to the baseline total, attributed component by
    component with nothing left over."""
    base = record_from_run(run)
    cp2 = dict(base.critpath)
    for k in COMPONENTS:
        cp2[f"{k}_s"] = cp2[f"{k}_s"] * 2.0
    cp2["wall_s"] = cp2["wall_s"] * 2.0
    cand = RunRecord(name="x2", config={"name": "x2"}, schema=2,
                     time_per_step_s=base.time_per_step_s * 2.0,
                     critpath=cp2)
    cmp = compare_records(base, cand)
    assert cmp.residual_s == 0.0
    assert cmp.delta_step_s == cmp.baseline_step_s
    for c in cmp.components:
        assert c.delta_s == c.baseline_s
        if c.baseline_s > 0.0:
            assert c.candidate_s == 2.0 * c.baseline_s


@given(causal_runs())
@settings(**COMMON)
def test_ledger_totals_match_per_step_attribution(run):
    """attribution_totals is a faithful roll-up: each component total is
    the exact sum of the per-step values and the partition survives."""
    tracer, boundaries = run
    boundaries = dyadic_boundaries(boundaries)
    graph = CausalGraph.from_tracer(tracer)
    steps = per_step_attribution(graph, boundaries)
    cp = attribution_totals(steps)
    assert cp["steps"] == len(steps)
    assert cp["residual_s"] == 0.0
    for k in COMPONENTS:
        total = 0.0
        for att in steps:
            total += getattr(att, k)
        assert cp[f"{k}_s"] == total
    comp_sum = 0.0
    for k in COMPONENTS:
        comp_sum += cp[f"{k}_s"]
    assert cp["wall_s"] == comp_sum
