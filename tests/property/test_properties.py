"""Hypothesis property tests on core data structures and invariants."""


import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ids import ChareID
from repro.core.mapping import BlockMapping, ClusterSplitMapping, RoundRobinMapping
from repro.core.method import payload_bytes
from repro.core.queue import MessageQueue
from repro.core.reduction import build_tree, combine, finalize, wrap_contribution
from repro.network.message import Message
from repro.network.topology import GridTopology
from repro.sim.engine import Engine

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


# -- engine: event ordering is exactly (time, post order) -----------------------

@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=60))
@settings(**COMMON)
def test_engine_fires_in_stable_time_order(times):
    eng = Engine()
    fired = []
    for i, t in enumerate(times):
        eng.post(t, lambda i=i, t=t: fired.append((t, i)))
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)


# -- message queue: priority discipline -------------------------------------------

@given(st.lists(st.integers(min_value=-10, max_value=10),
                min_size=1, max_size=50))
@settings(**COMMON)
def test_priority_queue_is_stable_sort(priorities):
    q = MessageQueue(prioritized=True)
    for k, p in enumerate(priorities):
        q.push(Message(src_pe=0, dst_pe=0, size_bytes=0, priority=p,
                       tag=str(k)))
    out = [(m.priority, int(m.tag)) for m in q.drain()]
    assert out == sorted(out)


@given(st.lists(st.integers(min_value=-10, max_value=10),
                min_size=1, max_size=50))
@settings(**COMMON)
def test_fifo_queue_preserves_arrival_order(priorities):
    q = MessageQueue(prioritized=False)
    for k, p in enumerate(priorities):
        q.push(Message(src_pe=0, dst_pe=0, size_bytes=0, priority=p,
                       tag=str(k)))
    assert [int(m.tag) for m in q.drain()] == list(range(len(priorities)))


# -- reducers ------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=-1000, max_value=1000),
                min_size=1, max_size=40))
@settings(**COMMON)
def test_sum_reduction_order_independent_for_ints(values):
    acc_fwd = None
    for v in values:
        acc_fwd = combine("sum", acc_fwd, v)
    acc_rev = None
    for v in reversed(values):
        acc_rev = combine("sum", acc_rev, v)
    assert acc_fwd == acc_rev == sum(values)


@given(st.lists(st.integers(min_value=-1000, max_value=1000),
                min_size=1, max_size=40))
@settings(**COMMON)
def test_max_min_reductions_match_builtins(values):
    acc_max = acc_min = None
    for v in values:
        acc_max = combine("max", acc_max, v)
        acc_min = combine("min", acc_min, v)
    assert acc_max == max(values)
    assert acc_min == min(values)


@given(st.lists(st.tuples(st.integers(0, 99), st.integers()),
                min_size=1, max_size=30, unique_by=lambda t: t[0]))
@settings(**COMMON)
def test_concat_reduction_sorted_regardless_of_arrival(pairs):
    acc = None
    for idx, val in pairs:
        acc = combine("concat", acc,
                      wrap_contribution("concat", ChareID(0, (idx,)), val))
    out = finalize("concat", acc)
    assert out == sorted(((i,), v) for i, v in pairs)


# -- reduction tree over random hosting sets -------------------------------------------

@given(st.integers(min_value=1, max_value=32),
       st.data())
@settings(**COMMON)
def test_reduction_tree_wellformed_random(num_pes_half, data):
    topo = GridTopology.two_cluster(2 * num_pes_half)
    hosting = data.draw(st.lists(
        st.integers(0, 2 * num_pes_half - 1), min_size=1, max_size=40))
    tree = build_tree(hosting, topo)
    distinct = sorted(set(hosting))
    # every hosting PE reaches the root without cycles
    for pe in distinct:
        cur, hops = pe, 0
        while tree.parent.get(cur) is not None:
            cur = tree.parent[cur]
            hops += 1
            assert hops <= len(distinct)
        assert cur == tree.root
    # cross-cluster edges: at most one per extra cluster
    wan = sum(1 for pe, par in tree.parent.items()
              if par is not None and not topo.same_cluster(pe, par))
    clusters_present = len({topo.cluster_of(pe) for pe in distinct})
    assert wan == clusters_present - 1


# -- mappings ---------------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=40),
       st.integers(min_value=1, max_value=16))
@settings(**COMMON)
def test_block_mapping_total_and_balanced(n, num_pes_half):
    topo = GridTopology.two_cluster(2 * num_pes_half)
    indices = [(i,) for i in range(n)]
    table = BlockMapping().assign(indices, topo)
    assert sorted(table) == indices
    counts = {}
    for pe in table.values():
        assert 0 <= pe < topo.num_pes
        counts[pe] = counts.get(pe, 0) + 1
    assert max(counts.values()) - min(counts.values()) <= 1


@given(st.integers(min_value=1, max_value=40),
       st.integers(min_value=1, max_value=16))
@settings(**COMMON)
def test_roundrobin_mapping_total_and_balanced(n, num_pes_half):
    topo = GridTopology.two_cluster(2 * num_pes_half)
    table = RoundRobinMapping().assign([(i,) for i in range(n)], topo)
    counts = [0] * topo.num_pes
    for pe in table.values():
        counts[pe] += 1
    assert max(counts) - min(counts) <= 1


@given(st.integers(min_value=2, max_value=30))
@settings(**COMMON)
def test_cluster_split_never_leaks(n):
    topo = GridTopology.two_cluster(8)
    mapping = ClusterSplitMapping(lambda idx: idx[0] % 2)
    table = mapping.assign([(i,) for i in range(n)], topo)
    for (i,), pe in table.items():
        assert topo.cluster_of(pe) == i % 2


# -- payload size estimation -----------------------------------------------------------------

nested_payloads = st.recursive(
    st.one_of(st.none(), st.integers(), st.floats(allow_nan=False),
              st.text(max_size=20), st.booleans()),
    lambda children: st.lists(children, max_size=5),
    max_leaves=20)


@given(nested_payloads)
@settings(**COMMON)
def test_payload_bytes_nonnegative(obj):
    assert payload_bytes(obj) >= 0


@given(st.lists(st.integers(), max_size=10), st.integers())
@settings(**COMMON)
def test_payload_bytes_monotone_under_append(lst, extra):
    assert payload_bytes(lst + [extra]) >= payload_bytes(lst)


@given(st.integers(min_value=0, max_value=10000))
@settings(**COMMON)
def test_payload_bytes_numpy_exact(n):
    assert payload_bytes(np.zeros(n)) == n * 8


# -- checkpoint roundtrip ---------------------------------------------------------

from repro.core.chare import Chare  # noqa: E402  (module-level: picklable)


class _Holder(Chare):
    """Module-level so checkpointing (pickle) can serialize it."""

    def __init__(self, v):
        super().__init__()
        self.v = v


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=8),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_checkpoint_roundtrip_preserves_arbitrary_state(values, half):
    from repro.core.checkpoint import restore_checkpoint, take_checkpoint
    from repro.core.ids import ChareID
    from repro.core.mapping import RoundRobinMapping
    from repro.grid.presets import artificial_latency_env

    Holder = _Holder
    env = artificial_latency_env(2 * half, 0.001)
    arr = env.runtime.create_array(
        Holder, range(len(values)), RoundRobinMapping(),
        args_of=lambda idx: ((values[idx[0]],), {}))
    env.run()
    ckpt = take_checkpoint(env.runtime)

    env2 = artificial_latency_env(2 * half, 0.001)
    restore_checkpoint(env2.runtime, ckpt)
    for i, v in enumerate(values):
        obj = env2.runtime.chare_object(ChareID(arr.collection, (i,)))
        assert obj.v == v
