"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """Raised for inconsistencies inside the discrete-event engine."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled in the past or after shutdown."""


class NetworkError(ReproError):
    """Base class for messaging/transport failures."""


class RoutingError(NetworkError):
    """Raised when no device in a chain claims a (source, destination) pair."""


class TopologyError(NetworkError):
    """Raised for malformed grid/cluster/node/processor topologies."""


class RetransmitError(NetworkError):
    """Raised when a reliable transfer exhausts its retransmit budget."""


class RuntimeSystemError(ReproError):
    """Base class for message-driven runtime failures."""


class UnknownChareError(RuntimeSystemError):
    """Raised when a message targets a chare ID that was never registered."""


class EntryMethodError(RuntimeSystemError):
    """Raised when an entry-method invocation is malformed."""


class MigrationError(RuntimeSystemError):
    """Raised when a chare migration cannot be carried out."""


class ReductionError(RuntimeSystemError):
    """Raised for inconsistent reduction contributions."""


class LoadBalanceError(RuntimeSystemError):
    """Raised when a load-balancing strategy produces an invalid plan."""


class AmpiError(ReproError):
    """Base class for Adaptive-MPI layer failures."""


class RankError(AmpiError):
    """Raised when an operation names an out-of-range or finished rank."""


class CollectiveError(AmpiError):
    """Raised when a collective is used inconsistently across ranks."""


class ConfigurationError(ReproError):
    """Raised for invalid experiment or environment configuration."""


class CalibrationError(ConfigurationError):
    """Raised when cost-model calibration constants are out of range."""
