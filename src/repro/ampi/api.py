"""The MPI handle exposed to rank programs.

A rank program is a generator function receiving an :class:`MpiHandle`:

>>> def program(mpi):
...     if mpi.rank == 0:
...         mpi.send({"a": 7}, dest=1, tag=11)
...     elif mpi.rank == 1:
...         data = yield mpi.recv(source=0, tag=11)
...     total = yield mpi.allreduce(mpi.rank, op="sum")
...     return total

Conventions follow mpi4py's lowercase API (see the domain guides):
``send``/``recv`` for Python objects, ``isend``/``irecv`` returning
request handles, and collectives named ``bcast``, ``reduce``,
``allreduce``, ``gather``, ``scatter``, ``alltoall``, ``scan``.

Blocking calls **return descriptors that must be yielded**; calls that
cannot block (``send``, ``isend``, ``charge``) act immediately and
return plain values.  Yielding is the AMPI context switch: while a rank
waits, the message-driven scheduler runs other work on the PE.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.ampi.collectives import waiting_ranks
from repro.ampi.datatypes import ANY_SOURCE, ANY_TAG, DEFAULT_TAG
from repro.ampi.request import (
    CollectiveWait,
    NoWait,
    RecvWait,
    Request,
    RequestWait,
)
from repro.ampi.threadchare import RankChare
from repro.errors import RankError


class MpiHandle:
    """Per-rank MPI facade bound to a :class:`RankChare`."""

    __slots__ = ("_chare",)

    def __init__(self, chare: RankChare) -> None:
        self._chare = chare

    # -- identity ------------------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank in the world communicator."""
        return self._chare.rank

    @property
    def size(self) -> int:
        """Number of ranks in the world communicator."""
        return self._chare.size

    @property
    def now(self) -> float:
        """Current virtual time (``MPI_Wtime`` analogue)."""
        return self._chare.now

    def charge(self, seconds: float) -> None:
        """Account *seconds* of compute for the current execution burst."""
        self._chare.charge(seconds)

    # -- point-to-point --------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = DEFAULT_TAG,
             size: Optional[int] = None) -> None:
        """Eager asynchronous send (returns immediately; do not yield)."""
        self._chare.api_send(dest, tag, obj, size)

    def isend(self, obj: Any, dest: int, tag: int = DEFAULT_TAG,
              size: Optional[int] = None) -> Request:
        """Nonblocking send; the returned request is already complete."""
        self._chare.api_send(dest, tag, obj, size)
        req = Request("send")
        req.fulfill(None)
        return req

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvWait:
        """Blocking receive — ``data = yield mpi.recv(...)``."""
        return RecvWait(source=source, tag=tag)

    def recv_status(self, source: int = ANY_SOURCE,
                    tag: int = ANY_TAG) -> RecvWait:
        """Like :meth:`recv` but resumes with ``(source, tag, data)``."""
        return RecvWait(source=source, tag=tag, with_status=True)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; complete it with :meth:`wait`."""
        return self._chare.api_post_irecv(source, tag)

    def wait(self, request: Request) -> RequestWait:
        """Block until *request* completes — ``data = yield mpi.wait(r)``."""
        return RequestWait(requests=(request,), wait_all=True, single=True)

    def waitall(self, requests: Sequence[Request]) -> RequestWait:
        """Block until all *requests* complete; resumes with a tuple."""
        return RequestWait(requests=tuple(requests), wait_all=True)

    def waitany(self, requests: Sequence[Request]) -> RequestWait:
        """Block until any request completes; resumes with ``(i, data)``."""
        return RequestWait(requests=tuple(requests), wait_all=False)

    def sendrecv(self, obj: Any, dest: int, sendtag: int = DEFAULT_TAG,
                 source: int = ANY_SOURCE,
                 recvtag: int = ANY_TAG) -> RecvWait:
        """Send *obj* to *dest* and receive — the stencil workhorse."""
        self._chare.api_send(dest, sendtag, obj, None)
        return RecvWait(source=source, tag=recvtag)

    # -- collectives --------------------------------------------------------------

    def _collective(self, kind: str, op: Optional[str], root: int,
                    value: Any):
        seq = self._chare.api_contribute_collective(kind, op, root, value)
        if self._chare.rank in waiting_ranks(kind, root, self._chare.size):
            return CollectiveWait(seq)
        return NoWait(None)

    def barrier(self):
        """``yield mpi.barrier()`` — all ranks synchronize."""
        return self._collective("barrier", None, 0, None)

    def bcast(self, obj: Any, root: int = 0):
        """``value = yield mpi.bcast(obj, root)`` (obj ignored off-root)."""
        self._check_root(root)
        return self._collective("bcast", None, root, obj)

    def reduce(self, value: Any, op: str = "sum", root: int = 0):
        """Root resumes with the reduction; other ranks with ``None``."""
        self._check_root(root)
        return self._collective("reduce", op, root, value)

    def allreduce(self, value: Any, op: str = "sum"):
        """All ranks resume with the reduction result."""
        return self._collective("allreduce", op, 0, value)

    def gather(self, value: Any, root: int = 0):
        """Root resumes with the rank-ordered list of values."""
        self._check_root(root)
        return self._collective("gather", None, root, value)

    def allgather(self, value: Any):
        """All ranks resume with the rank-ordered list of values."""
        return self._collective("allgather", None, 0, value)

    def scatter(self, values: Optional[Sequence] = None, root: int = 0):
        """Root supplies one value per rank; each rank gets its own."""
        self._check_root(root)
        return self._collective("scatter", None, root,
                                list(values) if values is not None else None)

    def alltoall(self, values: Sequence):
        """Every rank supplies one value per peer; receives one from each."""
        return self._collective("alltoall", None, 0, list(values))

    def scan(self, value: Any, op: str = "sum"):
        """Inclusive prefix reduction over ranks."""
        return self._collective("scan", op, 0, value)

    # -- misc ---------------------------------------------------------------------

    def _check_root(self, root: int) -> None:
        if not (0 <= root < self._chare.size):
            raise RankError(f"invalid root rank {root}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<mpi rank {self.rank}/{self.size}>"
