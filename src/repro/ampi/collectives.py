"""Pure collective-result computation.

AMPI collectives ride the runtime's grid-aware reduction trees: every
rank contributes ``(kind, value)`` to a ``concat`` reduction; the root
callback folds the rank-ordered values with the functions here and sends
each waiting rank its personal result.

Keeping this module free of runtime state makes the MPI semantics
(who waits, who gets what) directly unit-testable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.ampi.datatypes import get_op, reduce_values
from repro.errors import CollectiveError

#: Collective kinds and whether every rank blocks for a result.
ALL_WAIT_KINDS = frozenset(
    {"barrier", "bcast", "allreduce", "allgather", "alltoall", "scan"})
ROOT_WAIT_KINDS = frozenset({"reduce", "gather"})
#: Kinds where only the root blocks... plus scatter, where everyone but
#: the root *receives* data, so everyone waits.
SCATTER_KINDS = frozenset({"scatter"})

VALID_KINDS = ALL_WAIT_KINDS | ROOT_WAIT_KINDS | SCATTER_KINDS

#: Kinds whose computed result is identical for every waiting rank —
#: eligible for single-payload multicast distribution under hierarchical
#: collective routing (each receiver deep-copies its own instance).
SHARED_RESULT_KINDS = frozenset({"barrier", "bcast", "allreduce",
                                 "allgather"})


def waiting_ranks(kind: str, root: int, size: int) -> List[int]:
    """Which ranks yield a :class:`CollectiveWait` for this collective."""
    if kind in ALL_WAIT_KINDS or kind in SCATTER_KINDS:
        return list(range(size))
    if kind in ROOT_WAIT_KINDS:
        return [root]
    raise CollectiveError(f"unknown collective kind {kind!r}")


def compute_results(kind: str, op: Optional[str], root: int,
                    values_by_rank: List[Any]) -> Dict[int, Any]:
    """Per-rank results of one completed collective.

    Parameters
    ----------
    values_by_rank:
        Every rank's contributed value, index = rank.  ``barrier``
        contributions are ignored; ``scatter``/``alltoall`` expect lists.
    """
    size = len(values_by_rank)
    if kind == "barrier":
        return {r: None for r in range(size)}

    if kind == "bcast":
        return {r: values_by_rank[root] for r in range(size)}

    if kind == "reduce":
        return {root: reduce_values(op or "sum", values_by_rank)}

    if kind == "allreduce":
        result = reduce_values(op or "sum", values_by_rank)
        return {r: result for r in range(size)}

    if kind == "gather":
        return {root: list(values_by_rank)}

    if kind == "allgather":
        gathered = list(values_by_rank)
        return {r: list(gathered) for r in range(size)}

    if kind == "scatter":
        chunks = values_by_rank[root]
        if not isinstance(chunks, (list, tuple)) or len(chunks) != size:
            raise CollectiveError(
                f"scatter root must provide a list of exactly {size} "
                f"items, got {type(chunks).__name__} of length "
                f"{len(chunks) if hasattr(chunks, '__len__') else '?'}")
        return {r: chunks[r] for r in range(size)}

    if kind == "alltoall":
        for r, v in enumerate(values_by_rank):
            if not isinstance(v, (list, tuple)) or len(v) != size:
                raise CollectiveError(
                    f"alltoall rank {r} must provide a list of exactly "
                    f"{size} items")
        return {r: [values_by_rank[s][r] for s in range(size)]
                for r in range(size)}

    if kind == "scan":
        fn = get_op(op or "sum")
        out: Dict[int, Any] = {}
        acc = None
        for r, v in enumerate(values_by_rank):
            acc = v if acc is None else fn(acc, v)
            out[r] = acc
        return out

    raise CollectiveError(f"unknown collective kind {kind!r}")


def check_uniform(kind: str, op: Optional[str], root: int,
                  seen: List[tuple]) -> None:
    """Every rank must have called the *same* collective.

    *seen* is the list of ``(kind, op, root)`` triples the ranks
    contributed; any mismatch is a classic MPI deadlock-in-waiting and
    is surfaced loudly instead.
    """
    for i, triple in enumerate(seen):
        if triple != (kind, op, root):
            raise CollectiveError(
                f"collective mismatch: rank {i} called {triple}, "
                f"rank 0 called {(kind, op, root)}")
