"""Requests and wait descriptors for nonblocking AMPI operations.

AMPI rank programs are coroutines: a *blocking* operation is expressed by
``yield``-ing a descriptor; the hosting
:class:`~repro.ampi.threadchare.RankChare` parks the coroutine until the
descriptor is satisfiable and resumes it with the result — meanwhile the
PE's message-driven scheduler runs other ranks and chares, which is
precisely how AMPI masks latency (paper §2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import AmpiError


class Request:
    """Handle for a nonblocking operation (isend/irecv).

    Mirrors mpi4py's ``Request``: ``test()`` polls, and waiting happens
    by yielding ``mpi.wait(req)`` / ``mpi.waitall(reqs)`` from the rank
    program.
    """

    __slots__ = ("kind", "source", "tag", "complete", "value", "_consumed")

    def __init__(self, kind: str, source: int = -1, tag: int = -1) -> None:
        self.kind = kind          # "send" | "recv"
        self.source = source
        self.tag = tag
        self.complete = False
        self.value: Any = None
        self._consumed = False

    def test(self) -> bool:
        """Nonblocking completion check."""
        return self.complete

    def fulfill(self, value: Any) -> None:
        if self.complete:
            raise AmpiError("request fulfilled twice")
        self.complete = True
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.complete else "pending"
        return f"<Request {self.kind} src={self.source} tag={self.tag} {state}>"


# -- wait descriptors (the values rank coroutines yield) ---------------------


@dataclass(frozen=True)
class RecvWait:
    """Block until a matching point-to-point message is available."""

    source: int
    tag: int
    #: Return the full (source, tag, data) status triple instead of data.
    with_status: bool = False


@dataclass(frozen=True)
class RequestWait:
    """Block until one or all of the given requests complete."""

    requests: tuple
    wait_all: bool = True
    #: ``mpi.wait(one_request)`` resumes with the bare value rather than
    #: a one-element tuple.
    single: bool = False


@dataclass(frozen=True)
class CollectiveWait:
    """Block until the collective with this sequence number delivers."""

    seq: int


@dataclass(frozen=True)
class NoWait:
    """Resume immediately with ``value`` (uniformity helper).

    Lets API methods that *sometimes* block (e.g. ``reduce`` on non-root
    ranks) always return a yieldable object.
    """

    value: Any = None


WaitDescriptor = (RecvWait, RequestWait, CollectiveWait, NoWait)
