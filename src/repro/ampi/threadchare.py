"""The rank chare: an MPI process as a migratable coroutine.

AMPI (paper §2.1) "implements the MPI standard by encapsulating each MPI
process within a user-level migratable thread.  By embedding each thread
within a Charm++ object, AMPI programs can automatically take advantage
of the features of the Charm++ runtime system."

Here the user-level thread is a Python generator: the rank program is a
generator function ``program(mpi, *args)`` that ``yield``-s wait
descriptors at blocking MPI calls.  :class:`RankChare` hosts the
generator, drives it forward inside entry-method executions, and parks
it when a descriptor cannot complete — freeing the PE for other ranks
and chares, which is exactly the latency-masking behaviour under test.

Point-to-point ordering: MPI guarantees non-overtaking between a pair of
ranks.  The underlying network may reorder (jittered WAN), so each sender
numbers its messages per destination and the receiver releases them in
sequence.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional, Tuple

from repro.ampi.request import (
    CollectiveWait,
    NoWait,
    RecvWait,
    Request,
    RequestWait,
)
from repro.core.chare import Chare
from repro.core.method import entry
from repro.ampi.datatypes import ANY_SOURCE, ANY_TAG
from repro.errors import AmpiError, RankError


def _matches(source: int, tag: int, want_source: int, want_tag: int) -> bool:
    """Does an arrived (source, tag) satisfy a receive pattern?"""
    return ((want_source == ANY_SOURCE or want_source == source)
            and (want_tag == ANY_TAG or want_tag == tag))


class RankChare(Chare):
    """One MPI rank, hosted as a message-driven object.

    Applications never instantiate this directly; use
    :func:`repro.ampi.world.ampi_run`.
    """

    def __init__(self, rank: int, world) -> None:
        super().__init__()
        self.rank = rank
        self.world = world
        self._gen = None
        self._parked: Optional[Any] = None
        self._finished = False
        self.return_value: Any = None

        # Point-to-point machinery.
        self._mailbox: List[Tuple[int, int, Any]] = []   # (source, tag, data)
        self._posted: List[Request] = []                 # pending irecvs
        self._send_seq: Dict[int, int] = {}              # per-dest counters
        self._expected_seq: Dict[int, int] = {}          # per-source counters
        self._stash: Dict[int, Dict[int, Tuple[int, Any]]] = {}

        # Collective machinery.
        self.coll_seq = 0                                # program-order count
        self._coll_results: Dict[int, Any] = {}

    # -- properties -----------------------------------------------------------

    @property
    def size(self) -> int:
        return self.world.num_ranks

    @property
    def finished(self) -> bool:
        return self._finished

    # -- entry methods ---------------------------------------------------------

    @entry
    def start(self) -> None:
        """Boot the rank program (broadcast by the world at launch)."""
        if self._gen is not None:
            raise AmpiError(f"rank {self.rank} started twice")
        self.charge(self.world.config.startup_overhead)
        self._gen = self.world.make_program(self)
        self._advance(None)

    @entry
    def p2p(self, src_rank: int, seq: int, tag: int, data: Any) -> None:
        """A point-to-point payload arrived from *src_rank*."""
        self.charge(self.world.config.op_overhead)
        expected = self._expected_seq.get(src_rank, 0)
        if seq != expected:
            # Out-of-order (jittered WAN): stash until the gap fills.
            self._stash.setdefault(src_rank, {})[seq] = (tag, data)
            return
        self._admit(src_rank, tag, data)
        self._expected_seq[src_rank] = expected + 1
        # Release any consecutive stashed successors.
        stash = self._stash.get(src_rank, {})
        nxt = expected + 1
        while nxt in stash:
            t, d = stash.pop(nxt)
            self._admit(src_rank, t, d)
            nxt += 1
        self._expected_seq[src_rank] = nxt

    @entry
    def coll_result(self, seq: int, value: Any, shared: bool = False) -> None:
        """This rank's share of collective #*seq* completed.

        ``shared=True`` marks a multicast-distributed result whose
        payload object is common to all receiving ranks; the copy real
        MPI would make when deserializing happens here instead, so ranks
        never alias each other's result.
        """
        self.charge(self.world.config.op_overhead)
        if seq in self._coll_results:
            raise AmpiError(
                f"rank {self.rank}: duplicate collective result #{seq}")
        if shared:
            value = copy.deepcopy(value)
        self._coll_results[seq] = value
        parked = self._parked
        if isinstance(parked, CollectiveWait) and parked.seq == seq:
            self._parked = None
            self._advance(self._coll_results.pop(seq))

    # -- p2p internals -------------------------------------------------------------

    def _admit(self, source: int, tag: int, data: Any) -> None:
        """An in-sequence message becomes visible to receives."""
        # MPI matching order: posted (nonblocking) receives first.
        for req in self._posted:
            if not req.complete and _matches(source, tag,
                                             req.source, req.tag):
                req.fulfill((source, tag, data))
                self._maybe_resume_requests()
                return
        self._mailbox.append((source, tag, data))
        parked = self._parked
        if isinstance(parked, RecvWait) and _matches(
                source, tag, parked.source, parked.tag):
            self._mailbox.pop()
            self._parked = None
            self._advance(self._recv_value(parked, source, tag, data))

    @staticmethod
    def _recv_value(desc: RecvWait, source: int, tag: int, data: Any) -> Any:
        return (source, tag, data) if desc.with_status else data

    def _try_mailbox(self, desc: RecvWait) -> Optional[Tuple[Any]]:
        """Pop the first mailbox entry matching *desc*, if any."""
        for i, (source, tag, data) in enumerate(self._mailbox):
            if _matches(source, tag, desc.source, desc.tag):
                del self._mailbox[i]
                return (self._recv_value(desc, source, tag, data),)
        return None

    def _maybe_resume_requests(self) -> None:
        parked = self._parked
        if not isinstance(parked, RequestWait):
            return
        ready = self._requests_ready(parked)
        if ready is not None:
            self._parked = None
            self._advance(ready[0])

    def _requests_ready(self, desc: RequestWait) -> Optional[Tuple[Any]]:
        reqs = desc.requests
        if desc.wait_all:
            if all(r.complete for r in reqs):
                values = tuple(self._consume(r) for r in reqs)
                return (values[0],) if desc.single else (values,)
            return None
        for i, r in enumerate(reqs):
            if r.complete:
                return ((i, self._consume(r)),)
        return None

    def _consume(self, req: Request) -> Any:
        if req in self._posted:
            self._posted.remove(req)
        if req.kind == "recv":
            source, tag, data = req.value
            return data
        return None

    # -- API-facing helpers (called by MpiHandle between yields) --------------------

    def api_send(self, dest: int, tag: int, data: Any,
                 size: Optional[int]) -> None:
        if not (0 <= dest < self.size):
            raise RankError(f"send to invalid rank {dest}")
        seq = self._send_seq.get(dest, 0)
        self._send_seq[dest] = seq + 1
        self.charge(self.world.config.op_overhead)
        self.world.rank_element(dest).p2p(
            self.rank, seq, tag, data, _size=size, _tag=f"mpi:p2p t{tag}")

    def api_post_irecv(self, source: int, tag: int) -> Request:
        req = Request("recv", source=source, tag=tag)
        # Match against already-arrived messages first.
        for i, (src, t, data) in enumerate(self._mailbox):
            if _matches(src, t, source, tag):
                del self._mailbox[i]
                req.fulfill((src, t, data))
                return req
        self._posted.append(req)
        return req

    def api_contribute_collective(self, kind: str, op: Optional[str],
                                  root: int, value: Any) -> int:
        """Join the next collective; returns its sequence number."""
        seq = self.coll_seq
        self.coll_seq += 1
        self.charge(self.world.config.op_overhead)
        self.contribute(((kind, op, root), value), "concat",
                        self.world.collective_target(seq))
        return seq

    # -- the coroutine driver ------------------------------------------------------------

    def _advance(self, send_value: Any) -> None:
        """Resume the rank program until it parks or finishes."""
        if self._gen is None:
            raise AmpiError(f"rank {self.rank} not started")
        if self._finished:
            raise AmpiError(f"rank {self.rank} resumed after finishing")
        value = send_value
        while True:
            try:
                desc = self._gen.send(value)
            except StopIteration as stop:
                self._finished = True
                self.return_value = stop.value
                self.world.rank_done(self.rank, stop.value)
                return
            ready = self._poll(desc)
            if ready is None:
                self._parked = desc
                return
            value = ready[0]

    def _poll(self, desc: Any) -> Optional[Tuple[Any]]:
        """Try to satisfy *desc* now; None means 'must park'."""
        if isinstance(desc, NoWait):
            return (desc.value,)
        if isinstance(desc, RecvWait):
            return self._try_mailbox(desc)
        if isinstance(desc, RequestWait):
            return self._requests_ready(desc)
        if isinstance(desc, CollectiveWait):
            if desc.seq in self._coll_results:
                return (self._coll_results.pop(desc.seq),)
            return None
        raise AmpiError(
            f"rank program yielded {desc!r}; yield only objects produced "
            "by the mpi handle (recv, wait, barrier, ...)")

    def pack_size(self) -> int:
        """Rank state on the wire: mailbox plus a nominal stack."""
        from repro.core.method import payload_bytes
        return 1024 + sum(payload_bytes(d) for (_s, _t, d) in self._mailbox)
