"""AMPI constants and reduction operations.

Follows the mpi4py conventions from the domain guides: lowercase methods
communicate pickled Python objects / NumPy arrays, wildcard constants
are ``ANY_SOURCE`` / ``ANY_TAG``, and reduce operations are named like
their MPI counterparts.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

import numpy as np

from repro.errors import CollectiveError

#: Match a receive against any sending rank.
ANY_SOURCE: int = -1
#: Match a receive against any tag.
ANY_TAG: int = -1

#: Default tag for sends that do not specify one.
DEFAULT_TAG: int = 0


def _op_sum(a: Any, b: Any) -> Any:
    return a + b


def _op_prod(a: Any, b: Any) -> Any:
    return a * b


def _op_max(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return max(a, b)


def _op_min(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return min(a, b)


def _op_land(a: Any, b: Any) -> Any:
    return bool(a) and bool(b)


def _op_lor(a: Any, b: Any) -> Any:
    return bool(a) or bool(b)


#: Named reduce operations available to ``reduce``/``allreduce``/``scan``.
OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "sum": _op_sum,
    "prod": _op_prod,
    "max": _op_max,
    "min": _op_min,
    "land": _op_land,
    "lor": _op_lor,
}


def get_op(name: str) -> Callable[[Any, Any], Any]:
    """Look up a reduce operation by name."""
    try:
        return OPS[name]
    except KeyError:
        raise CollectiveError(
            f"unknown reduce op {name!r}; have {sorted(OPS)}") from None


def reduce_values(op_name: str, values: list) -> Any:
    """Left-fold *values* (rank order) with the named operation.

    Rank-ordered folding keeps floating-point results identical across
    runs and mappings — the determinism guarantee the tests rely on.
    """
    if not values:
        raise CollectiveError("reduce over zero values")
    op = get_op(op_name)
    acc = values[0]
    for v in values[1:]:
        acc = op(acc, v)
    return acc
