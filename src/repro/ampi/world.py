"""AMPI world lifecycle: boot ranks, run, collect results.

:func:`ampi_run` is the mpiexec of the simulated grid:

>>> world = ampi_run(env, program, num_ranks=8)
>>> world.results[0]          # each rank's return value
>>> world.finished_at         # virtual completion time (seconds)
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, List, Optional

from repro.ampi.api import MpiHandle
from repro.ampi.collectives import (
    SHARED_RESULT_KINDS,
    check_uniform,
    compute_results,
    waiting_ranks,
)
from repro.ampi.communicator import AmpiConfig, Communicator
from repro.ampi.threadchare import RankChare
from repro.core.mapping import BlockMapping
from repro.core.method import payload_bytes
from repro.errors import AmpiError, CollectiveError
from repro.grid.environment import GridEnvironment


class AmpiWorld:
    """All host-side state of one AMPI job on one environment."""

    def __init__(self, env: GridEnvironment, program: Callable,
                 num_ranks: int, mapping=None,
                 program_args: tuple = (),
                 config: Optional[AmpiConfig] = None) -> None:
        self.env = env
        self.rts = env.runtime
        self.program = program
        self.program_args = program_args
        self.num_ranks = num_ranks
        self.config = config or AmpiConfig()

        self.results: Dict[int, Any] = {}
        self.finished_at: Optional[float] = None
        self._done_count = 0

        proxy = self.rts.create_array(
            RankChare, list(range(num_ranks)),
            mapping if mapping is not None else BlockMapping(),
            args_of=lambda idx: ((idx[0], self), {}))
        self.comm = Communicator(self.rts, proxy, num_ranks)
        self._launched = False

    # -- wiring used by RankChare --------------------------------------------

    def make_program(self, chare: RankChare):
        """Instantiate the rank program generator for *chare*."""
        gen = self.program(MpiHandle(chare), *self.program_args)
        if not hasattr(gen, "send"):
            raise AmpiError(
                "the rank program must be a generator function "
                "(use `yield mpi.recv(...)` style blocking calls)")
        return gen

    def rank_element(self, rank: int):
        return self.comm.element(rank)

    def collective_target(self, seq: int) -> Callable:
        """Reduction callback finishing collective #*seq*.

        Receives the rank-ordered ``[(index, ((kind, op, root), value))]``
        pairs from the runtime's concat reduction, validates uniformity,
        computes per-rank results and messages the waiting ranks.

        Results are **deep-copied at the delivery boundary**: several of
        the :func:`compute_results` kinds hand every rank the same
        object (bcast/allreduce), or alias the root's own structures
        (scatter/alltoall chunks).  In a real MPI each rank would
        deserialize a private copy off the wire; without the copy, one
        rank mutating its result would corrupt its peers'.

        With hierarchical collective routing, kinds whose result is
        identical on every rank are distributed via **one section
        multicast** instead of per-rank point sends — the runtime's
        relay then carries the payload across the WAN once per remote
        cluster, and each receiving rank deep-copies on receipt
        (``shared=True``).
        """

        def finish_collective(pairs: List) -> None:
            if len(pairs) != self.num_ranks:
                raise CollectiveError(
                    f"collective #{seq}: {len(pairs)} contributions for "
                    f"{self.num_ranks} ranks")
            triples = [p[1][0] for p in pairs]
            kind, op, root = triples[0]
            check_uniform(kind, op, root, triples)
            values = [p[1][1] for p in pairs]
            results = compute_results(kind, op, root, values)
            waiting = waiting_ranks(kind, root, self.num_ranks)
            if (kind in SHARED_RESULT_KINDS and len(waiting) > 1
                    and self.rts.config.collective_routing
                    == "hierarchical"):
                value = results.get(waiting[0])
                self.comm.proxy.section(waiting).coll_result(
                    seq, value, shared=True,
                    _size=64 + payload_bytes(value),
                    _tag=f"mpi:{kind}#{seq}")
                return
            for rank in waiting:
                value = copy.deepcopy(results.get(rank))
                self.rank_element(rank).coll_result(
                    seq, value,
                    _size=64 + payload_bytes(value),
                    _tag=f"mpi:{kind}#{seq}")

        finish_collective.__name__ = f"collective_{seq}"
        return finish_collective

    def rank_done(self, rank: int, value: Any) -> None:
        if rank in self.results:
            raise AmpiError(f"rank {rank} finished twice")
        self.results[rank] = value
        self._done_count += 1
        if self._done_count == self.num_ranks:
            self.finished_at = self.rts.now

    # -- lifecycle ----------------------------------------------------------------

    def launch(self) -> None:
        """Broadcast ``start`` to every rank (idempotence-guarded)."""
        if self._launched:
            raise AmpiError("world already launched")
        self._launched = True
        self.comm.proxy.start()

    def run(self, until: Optional[float] = None) -> "AmpiWorld":
        """Launch if needed and drain the simulation."""
        if not self._launched:
            self.launch()
        self.env.run(until)
        return self

    @property
    def all_finished(self) -> bool:
        return self._done_count == self.num_ranks

    def results_in_rank_order(self) -> List[Any]:
        """Rank return values as a list (raises if any rank is unfinished)."""
        if not self.all_finished:
            missing = [r for r in range(self.num_ranks)
                       if r not in self.results]
            raise AmpiError(f"ranks {missing} never finished "
                            "(deadlock in the rank program?)")
        return [self.results[r] for r in range(self.num_ranks)]


def ampi_run(env: GridEnvironment, program: Callable,
             num_ranks: Optional[int] = None, mapping=None,
             program_args: tuple = (),
             config: Optional[AmpiConfig] = None) -> AmpiWorld:
    """Run an AMPI program to completion on *env*; returns the world.

    Parameters
    ----------
    program:
        Generator function ``program(mpi, *program_args)``.
    num_ranks:
        Defaults to one rank per PE; pass more for virtualization —
        AMPI's whole point is that ranks may (and should) outnumber PEs.
    mapping:
        Rank placement; defaults to block mapping, which puts the first
        half of the ranks on the first cluster, matching the paper.
    """
    ranks = num_ranks if num_ranks is not None else env.topology.num_pes
    world = AmpiWorld(env, program, ranks, mapping=mapping,
                      program_args=program_args, config=config)
    return world.run()
