"""Adaptive MPI: the MPI standard on message-driven objects (paper §2.1).

Rank programs are generator functions receiving an
:class:`~repro.ampi.api.MpiHandle`; blocking calls are ``yield``-ed.
Because each rank is a chare, ranks outnumbering PEs gives the scheduler
material to overlap WAN latency with — the same mechanism as raw
Charm++ chares, behind an MPI-shaped API.

>>> from repro.ampi import ampi_run
>>> def program(mpi):
...     right = (mpi.rank + 1) % mpi.size
...     left = (mpi.rank - 1) % mpi.size
...     token = yield mpi.sendrecv(mpi.rank, dest=right, source=left)
...     total = yield mpi.allreduce(token, op="sum")
...     return total
>>> world = ampi_run(env, program, num_ranks=32)  # doctest: +SKIP
"""

from repro.ampi.api import MpiHandle
from repro.ampi.communicator import AmpiConfig, Communicator
from repro.ampi.datatypes import ANY_SOURCE, ANY_TAG, OPS
from repro.ampi.request import Request
from repro.ampi.threadchare import RankChare
from repro.ampi.world import AmpiWorld, ampi_run

__all__ = [
    "ampi_run",
    "AmpiWorld",
    "MpiHandle",
    "RankChare",
    "Request",
    "Communicator",
    "AmpiConfig",
    "ANY_SOURCE",
    "ANY_TAG",
    "OPS",
]
