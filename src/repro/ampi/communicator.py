"""Communicator metadata and AMPI layer configuration.

Only the world communicator exists (the paper's applications need no
splits); :class:`Communicator` owns the rank ↔ chare-array addressing so
the world object stays focused on lifecycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, TYPE_CHECKING

from repro.core.proxy import ArrayProxy, ChareProxy
from repro.errors import ConfigurationError, RankError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.rts import Runtime


@dataclass(frozen=True)
class AmpiConfig:
    """Cost constants of the AMPI layer (virtual seconds).

    ``op_overhead`` is charged per MPI call and per message handled —
    the user-level-thread scheduling cost AMPI adds over raw Charm++.
    """

    op_overhead: float = 1e-6
    startup_overhead: float = 5e-6

    def __post_init__(self) -> None:
        if self.op_overhead < 0 or self.startup_overhead < 0:
            raise ConfigurationError("AMPI overheads must be >= 0")


class Communicator:
    """Rank-indexed view of the rank-chare array (COMM_WORLD)."""

    def __init__(self, rts: "Runtime", proxy: ArrayProxy,
                 num_ranks: int) -> None:
        if num_ranks <= 0:
            raise ConfigurationError(
                f"need at least one rank, got {num_ranks}")
        self._rts = rts
        self._proxy = proxy
        self._num_ranks = num_ranks

    @property
    def size(self) -> int:
        return self._num_ranks

    @property
    def proxy(self) -> ArrayProxy:
        return self._proxy

    def element(self, rank: int) -> ChareProxy:
        """Proxy to the chare hosting *rank*."""
        if not (0 <= rank < self._num_ranks):
            raise RankError(f"rank {rank} out of range 0..{self._num_ranks - 1}")
        return self._proxy[rank]

    def pe_of_rank(self, rank: int) -> int:
        """The PE currently hosting *rank* (changes under migration)."""
        return self._rts.pe_of(self.element(rank).chare_id)

    def ranks_on_pe(self, pe: int) -> List[int]:
        """All ranks currently hosted by *pe*."""
        return [r for r in range(self._num_ranks)
                if self.pe_of_rank(r) == pe]
