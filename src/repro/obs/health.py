"""Watchdog rules, health events, and the observability governor.

The telemetry sampler (:mod:`repro.obs.timeseries`) produces a stream of
:class:`HealthSample` snapshots; this module turns them into judgements:

* :class:`HealthMonitor` — rule-based watchdog.  Each rule is a pure
  threshold over the sample stream; rules fire *per episode* (an event
  on the transition into the bad state, silence while it persists, a
  fresh event only after recovery and relapse), so a 10-second stall is
  one alert, not ten thousand:

  - **stall** — entry-method executions stopped advancing for more than
    ``stall_factor`` x the trailing-median progress gap (critical);
  - **retransmit-storm** — the windowed retransmit/send ratio on the
    WAN blew past ``storm_rate`` (warning);
  - **load-imbalance** — max/mean PE utilization exceeded
    ``imbalance_ratio`` (warning);
  - **unmasking** — the idle fraction trended above
    ``unmasked_idle_threshold``: the latency the runtime was hiding is
    now *visible*, i.e. the Figure-3 knee observed online rather than
    post-hoc (warning).  The default threshold ``1 - 1/1.5`` is exactly
    the idle share at which step time reaches 1.5x the compute-bound
    baseline — the same tolerance the knee analyzer uses;
  - **wan-saturation** — the busiest WAN lane's windowed busy fraction
    exceeded ``wan_saturation_busy`` while the idle fraction was rising:
    the run is bandwidth-bound, not latency-bound, so adding objects
    will not mask it (warning).  Fed by the network flight recorder's
    per-lane utilization series.

* :class:`ObsGovernor` — keeps observability honest about its own cost.
  Sinks and samplers register wall-clock cost sources; the governor
  compares their sum against elapsed wall time and, when a configured
  budget is exceeded, degrades one level at a time
  (``full`` tracing → ``sampling``-only → ``counters``-only), invoking
  a callback per level and logging the downgrade as a health event.
  Degradation also *recovers*: once the overhead fraction has stayed
  below ``recovery_headroom x budget`` for ``recovery_patience``
  consecutive checks, the governor upgrades one level back up the same
  ladder (with per-level ``on_upgrade`` callbacks and an info-severity
  event), so a transient load spike does not permanently blind the
  run.  The hysteresis — a fraction of the budget, held for several
  checks — prevents downgrade/upgrade flapping right at the threshold.
  The clock is injectable, so downgrade and recovery behaviour are
  deterministic under test.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.errors import ConfigurationError

#: Governor degradation ladder, most expensive first.
OBS_LEVELS = ("full", "sampling", "counters")


@dataclass(frozen=True)
class HealthEvent:
    """One structured watchdog finding."""

    t: float                 # virtual time the rule fired
    severity: str            # "info" | "warning" | "critical"
    rule: str                # e.g. "stall", "unmasking", "obs-governor"
    metric: str              # the metric the rule watched
    value: float             # observed value at firing time
    threshold: float         # the configured threshold it crossed
    message: str             # human-readable one-liner

    def to_dict(self) -> Dict[str, object]:
        return {
            "t": self.t,
            "severity": self.severity,
            "rule": self.rule,
            "metric": self.metric,
            "value": self.value,
            "threshold": self.threshold,
            "message": self.message,
        }

    def render(self) -> str:
        return (f"[{self.severity.upper():8s}] t={self.t * 1e3:10.3f} ms  "
                f"{self.rule}: {self.message}")


@dataclass
class HealthSample:
    """One telemetry snapshot offered to the watchdog."""

    t: float
    #: Cumulative entry-method executions across all PEs.
    executions: int
    #: pe -> EMA-smoothed windowed utilization.
    utilization: Dict[int, float]
    #: EMA-smoothed idle fraction (1 - mean utilization).
    idle_fraction: float
    #: Total scheduler queue depth across PEs.
    queue_depth: int
    #: Cross-WAN wire copies currently in transit.
    wan_in_flight: int
    #: Cumulative cross-WAN wire copies sent.
    wan_sends: int
    #: Cumulative data retransmissions.
    retransmits: int
    #: Online masked-latency fraction (``None`` when no aggregator).
    masked_fraction: Optional[float] = None
    #: Busiest WAN lane's windowed busy fraction from the flight
    #: recorder (``None`` when no aggregator / no hop ledgers yet).
    max_link_busy: Optional[float] = None
    #: Longest single entry-method execution in this sampling window
    #: from the object fold (``None`` when object stats are off).
    top_grain_s: Optional[float] = None
    #: The object that ran that longest execution.
    top_grain_obj: Optional[str] = None


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds for the watchdog rules."""

    #: Stall: no progress for longer than this multiple of the trailing
    #: median inter-progress gap.
    stall_factor: float = 4.0
    #: Progress gaps observed before the stall rule arms.
    stall_min_history: int = 3
    #: Retransmit storm: windowed retransmits/sends ratio threshold ...
    storm_rate: float = 0.5
    #: ... with at least this many retransmits in the window.
    storm_min_retransmits: int = 3
    #: Load imbalance: max/mean utilization ratio threshold ...
    imbalance_ratio: float = 2.0
    #: ... applied only when mean utilization is above this floor
    #: (ratios over near-zero means are noise).
    imbalance_min_util: float = 0.05
    #: Unmasking: idle fraction above this means the WAN latency is no
    #: longer hidden.  ``1 - 1/1.5`` matches the knee analyzer's 1.5x
    #: step-time tolerance.
    unmasked_idle_threshold: float = 1.0 - 1.0 / 1.5
    #: WAN saturation: a wire lane's windowed busy fraction above this
    #: while the idle fraction is rising means the link itself — not the
    #: latency — became the bottleneck (bandwidth-bound, not
    #: latency-bound).
    wan_saturation_busy: float = 0.8
    #: Grain anomaly: while unmasked idleness persists, one object's
    #: single execution covering more than this fraction of the sampling
    #: window means the decomposition — one over-coarse chare — is why
    #: the latency shows (the advisor's split candidate, seen online).
    grain_dominance: float = 0.5
    #: Samples ignored by the unmasking/imbalance rules while EMAs warm
    #: up (startup transients look like idleness).
    warmup_samples: int = 5

    def __post_init__(self) -> None:
        if self.stall_factor <= 1.0:
            raise ConfigurationError(
                f"stall_factor must be > 1: {self.stall_factor}")
        if not (0.0 < self.storm_rate <= 1.0):
            raise ConfigurationError(
                f"storm_rate must be in (0, 1]: {self.storm_rate}")
        if self.imbalance_ratio <= 1.0:
            raise ConfigurationError(
                f"imbalance_ratio must be > 1: {self.imbalance_ratio}")
        if not (0.0 < self.unmasked_idle_threshold < 1.0):
            raise ConfigurationError(
                "unmasked_idle_threshold must be in (0, 1): "
                f"{self.unmasked_idle_threshold}")
        if not (0.0 < self.wan_saturation_busy <= 1.0):
            raise ConfigurationError(
                "wan_saturation_busy must be in (0, 1]: "
                f"{self.wan_saturation_busy}")
        if not (0.0 < self.grain_dominance <= 1.0):
            raise ConfigurationError(
                f"grain_dominance must be in (0, 1]: {self.grain_dominance}")


class HealthMonitor:
    """Runs the watchdog rules over successive :class:`HealthSample`\\ s.

    Pure and deterministic: no wall clock, no I/O.  Feed it samples (the
    :class:`~repro.obs.timeseries.TelemetrySampler` does this every
    tick) and collect :class:`HealthEvent` lists back.
    """

    def __init__(self, config: Optional[HealthConfig] = None) -> None:
        self.config = config or HealthConfig()
        self.samples_seen = 0
        self.events: List[HealthEvent] = []
        #: rule -> currently inside a bad episode?
        self._active: Dict[str, bool] = {}
        # stall-rule state
        self._last_executions: Optional[int] = None
        self._last_progress_t: Optional[float] = None
        self._gaps: Deque[float] = deque(maxlen=64)
        # storm-rule state (cumulative counters from the last sample)
        self._prev_retransmits = 0
        self._prev_wan_sends = 0
        #: Windowed retransmit/send ratio from the latest sample (the
        #: sampler records it as the ``wan.retransmit_rate`` series).
        self.last_retransmit_rate = 0.0
        # wan-saturation-rule state (idle trend needs last sample's value)
        self._prev_idle: Optional[float] = None
        # grain-anomaly-rule state (window length needs last sample's t)
        self._prev_t: Optional[float] = None

    # -- rule evaluation --------------------------------------------------

    def observe(self, sample: HealthSample) -> List[HealthEvent]:
        """Evaluate every rule; returns newly fired events (per episode)."""
        self.samples_seen += 1
        fired: List[HealthEvent] = []
        self._rule_stall(sample, fired)
        self._rule_storm(sample, fired)
        self._rule_imbalance(sample, fired)
        self._rule_unmasking(sample, fired)
        self._rule_wan_saturation(sample, fired)
        self._rule_grain_anomaly(sample, fired)
        self._prev_t = sample.t
        self.events.extend(fired)
        return fired

    def _episode(self, rule: str, condition: bool) -> bool:
        """True exactly when *rule* transitions into the bad state."""
        was = self._active.get(rule, False)
        self._active[rule] = condition
        return condition and not was

    def _rule_stall(self, s: HealthSample, fired: List[HealthEvent]) -> None:
        cfg = self.config
        if self._last_executions is None:
            self._last_executions = s.executions
            self._last_progress_t = s.t
            return
        if s.executions > self._last_executions:
            if self._last_progress_t is not None:
                gap = s.t - self._last_progress_t
                if gap > 0:
                    self._gaps.append(gap)
            self._last_executions = s.executions
            self._last_progress_t = s.t
            self._episode("stall", False)
            return
        if len(self._gaps) < cfg.stall_min_history:
            return
        stalled_for = s.t - (self._last_progress_t or 0.0)
        median = sorted(self._gaps)[len(self._gaps) // 2]
        limit = cfg.stall_factor * median
        if self._episode("stall", stalled_for > limit):
            fired.append(HealthEvent(
                t=s.t, severity="critical", rule="stall",
                metric="progress.gap_s", value=stalled_for, threshold=limit,
                message=f"no entry executed for {stalled_for * 1e3:.3f} ms "
                        f"(> {cfg.stall_factor:g}x trailing median gap "
                        f"{median * 1e3:.3f} ms)"))

    def _rule_storm(self, s: HealthSample, fired: List[HealthEvent]) -> None:
        cfg = self.config
        d_retx = s.retransmits - self._prev_retransmits
        d_sent = s.wan_sends - self._prev_wan_sends
        self._prev_retransmits = s.retransmits
        self._prev_wan_sends = s.wan_sends
        rate = d_retx / d_sent if d_sent > 0 else 0.0
        self.last_retransmit_rate = rate
        cond = d_retx >= cfg.storm_min_retransmits and rate > cfg.storm_rate
        if self._episode("retransmit-storm", cond):
            fired.append(HealthEvent(
                t=s.t, severity="warning", rule="retransmit-storm",
                metric="wan.retransmit_rate", value=rate,
                threshold=cfg.storm_rate,
                message=f"{d_retx} retransmits / {d_sent} WAN sends in one "
                        f"window (rate {rate:.2f} > {cfg.storm_rate:g})"))

    def _rule_imbalance(self, s: HealthSample,
                        fired: List[HealthEvent]) -> None:
        cfg = self.config
        if self.samples_seen <= cfg.warmup_samples or not s.utilization:
            return
        utils = list(s.utilization.values())
        mean = sum(utils) / len(utils)
        if mean < cfg.imbalance_min_util:
            self._episode("load-imbalance", False)
            return
        ratio = max(utils) / mean
        if self._episode("load-imbalance", ratio > cfg.imbalance_ratio):
            fired.append(HealthEvent(
                t=s.t, severity="warning", rule="load-imbalance",
                metric="util.max_over_mean", value=ratio,
                threshold=cfg.imbalance_ratio,
                message=f"max/mean PE utilization {ratio:.2f} > "
                        f"{cfg.imbalance_ratio:g} (mean {mean:.1%})"))

    def _rule_unmasking(self, s: HealthSample,
                        fired: List[HealthEvent]) -> None:
        cfg = self.config
        if self.samples_seen <= cfg.warmup_samples or s.wan_sends == 0:
            return
        cond = s.idle_fraction > cfg.unmasked_idle_threshold
        if self._episode("unmasking", cond):
            fired.append(HealthEvent(
                t=s.t, severity="warning", rule="unmasking",
                metric="idle.fraction_ema", value=s.idle_fraction,
                threshold=cfg.unmasked_idle_threshold,
                message=f"idle fraction {s.idle_fraction:.1%} > "
                        f"{cfg.unmasked_idle_threshold:.1%}: WAN latency "
                        "is no longer masked (past the knee)"))

    def _rule_wan_saturation(self, s: HealthSample,
                             fired: List[HealthEvent]) -> None:
        cfg = self.config
        prev_idle = self._prev_idle
        self._prev_idle = s.idle_fraction
        if (self.samples_seen <= cfg.warmup_samples
                or s.max_link_busy is None):
            return
        idle_rising = prev_idle is not None and s.idle_fraction > prev_idle
        cond = s.max_link_busy > cfg.wan_saturation_busy and idle_rising
        if self._episode("wan-saturation", cond):
            fired.append(HealthEvent(
                t=s.t, severity="warning", rule="wan-saturation",
                metric="net.max_link_busy", value=s.max_link_busy,
                threshold=cfg.wan_saturation_busy,
                message=f"busiest WAN lane {s.max_link_busy:.1%} occupied "
                        f"(> {cfg.wan_saturation_busy:.0%}) while idle "
                        f"fraction rises to {s.idle_fraction:.1%}: "
                        "bandwidth-bound, more objects will not mask it"))

    def _rule_grain_anomaly(self, s: HealthSample,
                            fired: List[HealthEvent]) -> None:
        cfg = self.config
        if (self.samples_seen <= cfg.warmup_samples or s.wan_sends == 0
                or s.top_grain_s is None or self._prev_t is None):
            return
        window = s.t - self._prev_t
        if window <= 0:
            return
        dominance = s.top_grain_s / window
        # Fires only while latency is visibly unmasked: a big grain
        # under full overlap is the paper's ideal, not an anomaly.
        cond = (s.idle_fraction > cfg.unmasked_idle_threshold
                and dominance > cfg.grain_dominance)
        if self._episode("grain-anomaly", cond):
            obj = s.top_grain_obj or "?"
            fired.append(HealthEvent(
                t=s.t, severity="warning", rule="grain-anomaly",
                metric="obj.top_grain_s", value=s.top_grain_s,
                threshold=cfg.grain_dominance * window,
                message=f"object {obj} ran one {s.top_grain_s * 1e3:.3f} ms "
                        f"entry ({dominance:.0%} of the window) while idle "
                        f"fraction is {s.idle_fraction:.1%}: over-coarse "
                        "grain is unmasking the WAN latency (consider a "
                        "split)"))

    # -- introspection ----------------------------------------------------

    def fired(self, rule: str) -> List[HealthEvent]:
        """All events this monitor emitted for *rule*."""
        return [e for e in self.events if e.rule == rule]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"HealthMonitor(samples={self.samples_seen}, "
                f"events={len(self.events)})")


class ObsGovernor:
    """Budgets observability's own wall-clock cost.

    Parameters
    ----------
    budget:
        Maximum tolerated ``obs_cost / elapsed_wall`` fraction; ``None``
        means "measure but never downgrade".
    clock:
        Wall-clock source (injectable: tests drive a fake clock and get
        bit-deterministic downgrade sequences).
    recovery_headroom:
        Upgrade hysteresis: recovery arms only while the overhead
        fraction sits below ``recovery_headroom x budget`` (default half
        the budget), so a level bouncing right at the threshold never
        flaps.
    recovery_patience:
        Consecutive calm checks required before one upgrade step.
    """

    def __init__(self, budget: Optional[float] = None,
                 clock: Callable[[], float] = time.perf_counter,
                 recovery_headroom: float = 0.5,
                 recovery_patience: int = 3) -> None:
        if budget is not None and budget <= 0:
            raise ConfigurationError(f"governor budget must be > 0: {budget}")
        if not (0.0 < recovery_headroom <= 1.0):
            raise ConfigurationError(
                f"recovery_headroom must be in (0, 1]: {recovery_headroom}")
        if recovery_patience < 1:
            raise ConfigurationError(
                f"recovery_patience must be >= 1: {recovery_patience}")
        self.budget = budget
        self.clock = clock
        self.recovery_headroom = recovery_headroom
        self.recovery_patience = recovery_patience
        self._t0 = clock()
        self._sources: Dict[str, Callable[[], float]] = {}
        self._on_downgrade: Dict[str, Callable[[], None]] = {}
        self._on_upgrade: Dict[str, Callable[[], None]] = {}
        self._calm_checks = 0
        self.level = OBS_LEVELS[0]
        self.events: List[HealthEvent] = []

    # -- wiring -----------------------------------------------------------

    def add_cost_source(self, name: str,
                        cost_fn: Callable[[], float]) -> None:
        """Register a cumulative wall-seconds cost callable."""
        self._sources[name] = cost_fn

    def on_downgrade(self, level: str, callback: Callable[[], None]) -> None:
        """Run *callback* when the governor degrades *to* level."""
        if level not in OBS_LEVELS:
            raise ConfigurationError(f"unknown obs level {level!r}; "
                                     f"valid: {OBS_LEVELS}")
        self._on_downgrade[level] = callback

    def on_upgrade(self, level: str, callback: Callable[[], None]) -> None:
        """Run *callback* when the governor recovers *to* level."""
        if level not in OBS_LEVELS:
            raise ConfigurationError(f"unknown obs level {level!r}; "
                                     f"valid: {OBS_LEVELS}")
        self._on_upgrade[level] = callback

    # -- accounting -------------------------------------------------------

    def overhead_seconds(self) -> float:
        return sum(fn() for fn in self._sources.values())

    def overhead_fraction(self) -> float:
        """Observability wall seconds / elapsed wall seconds."""
        elapsed = self.clock() - self._t0
        if elapsed <= 0:
            return 0.0
        return self.overhead_seconds() / elapsed

    @property
    def level_index(self) -> int:
        return OBS_LEVELS.index(self.level)

    def as_metrics(self) -> Dict[str, float]:
        """Flat ``obs.*`` names for the metrics registry."""
        return {
            "obs.overhead_fraction": self.overhead_fraction(),
            "obs.overhead_s": self.overhead_seconds(),
            "obs.level": self.level_index,
        }

    # -- enforcement ------------------------------------------------------

    def check(self, sim_now: float) -> Optional[HealthEvent]:
        """Adjust one level if warranted; returns the transition event.

        Called once per sampler tick.  Over budget, degrade one level
        per call so a single pathological tick cannot skip straight to
        counters-only before the cheaper remedy was tried.  Under
        ``recovery_headroom x budget`` for ``recovery_patience``
        consecutive checks, upgrade one level back — recovery climbs
        the same ladder it descended, one rung per transition.
        """
        if self.budget is None:
            return None
        fraction = self.overhead_fraction()
        if fraction > self.budget:
            self._calm_checks = 0
            idx = self.level_index
            if idx + 1 >= len(OBS_LEVELS):
                return None  # already at the floor
            self.level = OBS_LEVELS[idx + 1]
            callback = self._on_downgrade.get(self.level)
            if callback is not None:
                callback()
            event = HealthEvent(
                t=sim_now, severity="warning", rule="obs-governor",
                metric="obs.overhead_fraction", value=fraction,
                threshold=self.budget,
                message=f"observability overhead {fraction:.1%} > budget "
                        f"{self.budget:.1%}: degraded "
                        f"{OBS_LEVELS[idx]} -> {self.level}")
            self.events.append(event)
            return event
        idx = self.level_index
        if idx == 0:
            self._calm_checks = 0
            return None  # nothing to recover
        if fraction > self.budget * self.recovery_headroom:
            self._calm_checks = 0
            return None  # under budget but not calm enough to climb
        self._calm_checks += 1
        if self._calm_checks < self.recovery_patience:
            return None
        self._calm_checks = 0
        self.level = OBS_LEVELS[idx - 1]
        callback = self._on_upgrade.get(self.level)
        if callback is not None:
            callback()
        event = HealthEvent(
            t=sim_now, severity="info", rule="obs-governor",
            metric="obs.overhead_fraction", value=fraction,
            threshold=self.budget * self.recovery_headroom,
            message=f"observability overhead {fraction:.1%} stayed below "
                    f"{self.recovery_headroom:.0%} of budget for "
                    f"{self.recovery_patience} checks: recovered "
                    f"{OBS_LEVELS[idx]} -> {self.level}")
        self.events.append(event)
        return event

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ObsGovernor(level={self.level}, "
                f"budget={self.budget}, "
                f"sources={sorted(self._sources)})")


class TimedSink:
    """A :class:`~repro.sim.trace.TraceSink` wrapper that self-times.

    Timing every call would itself be the overhead it measures, so the
    wrapper samples: one call in every :attr:`stride` is timed and the
    measurement is scaled by the stride.  Cumulative estimated cost is
    exposed via :attr:`cost_s` for the governor.  Even so, the extra
    indirection per trace event is not free, which is why
    :class:`~repro.grid.environment.GridEnvironment` only installs the
    wrapper when an overhead budget makes the governor need the number.
    """

    def __init__(self, inner, stride: int = 16,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        if stride < 1:
            raise ConfigurationError(f"stride must be >= 1: {stride}")
        self.inner = inner
        self.stride = stride
        self.clock = clock
        self.cost_s = 0.0
        self._calls = 0

    @property
    def enabled(self) -> bool:
        return self.inner.enabled

    def _tick(self) -> Optional[float]:
        """Start a timing window on every stride-th call."""
        self._calls += 1
        if self._calls % self.stride:
            return None
        return self.clock()

    def _tock(self, t0: Optional[float]) -> None:
        if t0 is not None:
            self.cost_s += (self.clock() - t0) * self.stride

    def begin_execute(self, pe, now, chare, entry, sid=None, parent=None,
                      trigger=None, obj=None):
        t0 = self._tick()
        self.inner.begin_execute(pe, now, chare, entry, sid=sid,
                                 parent=parent, trigger=trigger, obj=obj)
        self._tock(t0)

    def end_execute(self, pe, now):
        t0 = self._tick()
        self.inner.end_execute(pe, now)
        self._tock(t0)

    def message_sent(self, now, src_pe, dst_pe, size, tag, crossed_wan,
                     seq=None, cause=None, ack_for=None,
                     src_obj=None, dst_obj=None):
        t0 = self._tick()
        self.inner.message_sent(now, src_pe, dst_pe, size, tag, crossed_wan,
                                seq, cause=cause, ack_for=ack_for,
                                src_obj=src_obj, dst_obj=dst_obj)
        self._tock(t0)

    def message_delivered(self, now, src_pe, dst_pe, size, tag, crossed_wan,
                          seq=None, cause=None, ack_for=None,
                          src_obj=None, dst_obj=None):
        t0 = self._tick()
        self.inner.message_delivered(now, src_pe, dst_pe, size, tag,
                                     crossed_wan, seq, cause=cause,
                                     ack_for=ack_for,
                                     src_obj=src_obj, dst_obj=dst_obj)
        self._tock(t0)

    def message_dropped(self, now, src_pe, dst_pe, size, tag, crossed_wan,
                        seq=None, cause=None, ack_for=None,
                        src_obj=None, dst_obj=None):
        t0 = self._tick()
        self.inner.message_dropped(now, src_pe, dst_pe, size, tag,
                                   crossed_wan, seq, cause=cause,
                                   ack_for=ack_for,
                                   src_obj=src_obj, dst_obj=dst_obj)
        self._tock(t0)

    def note_retransmit(self):
        t0 = self._tick()
        self.inner.note_retransmit()
        self._tock(t0)

    def note_dup_suppressed(self):
        t0 = self._tick()
        self.inner.note_dup_suppressed()
        self._tock(t0)

    def message_hops(self, now, src_pe, dst_pe, size, tag, crossed_wan,
                     seq, arrival, hops, relay_hop=0, arq_attempt=0):
        t0 = self._tick()
        self.inner.message_hops(now, src_pe, dst_pe, size, tag,
                                crossed_wan, seq, arrival, hops,
                                relay_hop=relay_hop,
                                arq_attempt=arq_attempt)
        self._tock(t0)

    def close(self):
        close = getattr(self.inner, "close", None)
        if close is not None:
            close()
