"""Causal critical-path analysis and per-step latency attribution.

The paper's headline claim — the near-horizontal region of Figures 3/4
and its knee — is a statement about the *critical path*: injected WAN
latency is invisible exactly while it stays off the critical path of
each step.  This module turns the causal trace (execution spans carrying
``sid``/``parent``/``trigger`` ids, message events carrying ``cause``)
into that argument, quantitatively:

* :class:`CausalGraph` — the step DAG reconstructed from a batch
  :class:`~repro.sim.trace.Tracer`: execution spans are nodes, message
  sends (ghost exchanges, reductions, acks and retransmissions from the
  reliable layer) are edges.
* :func:`critical_path` (via :meth:`CausalGraph.critical_path`) — the
  longest weighted chain ending at a given instant, reconstructed by
  walking blockers backward.  In this runtime a span starts at exactly
  ``max(trigger delivery, previous-span end on the same PE)``, so the
  walk is deterministic and the resulting labelled segments *partition*
  the analysed window — which yields the
* **per-step attribution** (:func:`per_step_attribution`): wall time of
  each application step decomposed into ``compute`` (critical spans),
  ``relay_overhead`` (hierarchical-multicast re-fan executions), the
  four wire components refining WAN flight time via the network flight
  recorder's hop ledgers (``propagation``, ``bandwidth_serialization``,
  ``stripe_pacing``, ``device_queue``), ``retransmit_stall`` (first-send
  to last-send of retransmitted transfers on the path) and
  ``queue_serial`` (local wire time, pre-transport serialization, and
  startup slack), with the invariant that the components sum to the
  measured step time.
* the **knee analyzer** (:func:`replay_with_latency`,
  :func:`predict_knee`): a what-if replay of the DAG that shifts every
  WAN edge by a hypothetical latency delta while preserving the observed
  per-PE execution order, predicting the Figure-3 step time T(L) — and
  hence the knee — from a *single* low-latency run.

cf. Eijkhout's task-graph latency-tolerance transformations (PAPERS.md)
for the DAG view, and Charm++ Projections' critical-path module for the
backward-walk idea.
"""

from __future__ import annotations

import sys
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.network.hops import HopLedger
from repro.sim.trace import Tracer

_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}

#: Attribution component labels, in rendering order.  The four wire
#: components (see :data:`WIRE_COMPONENTS`) refine what used to be a
#: single ``wan_flight`` bucket, using the per-hop ledger the network
#: flight recorder stamps on every wire copy:
#:
#: * ``relay_overhead`` — execution time of ``<rts>.relay`` re-fan hops
#:   in hierarchical multicasts (previously misfiled under ``compute``);
#: * ``propagation`` — link latency: injected WAN delay plus the
#:   latency/overhead share of transit;
#: * ``bandwidth_serialization`` — bytes/bandwidth occupancy of the
#:   serving lane;
#: * ``stripe_pacing`` — waiting for a striped stream to free up;
#: * ``device_queue`` — waiting in a contended (non-striped) pipe.
COMPONENTS = ("compute", "relay_overhead", "propagation",
              "bandwidth_serialization", "stripe_pacing", "device_queue",
              "queue_serial", "retransmit_stall")

#: The components that make up the derived ``wan_flight`` total (wire
#: time of cross-cluster messages on the critical path).
WIRE_COMPONENTS = ("propagation", "bandwidth_serialization",
                   "stripe_pacing", "device_queue")


@dataclass(frozen=True, **_SLOTS)
class Span:
    """One entry-method execution as a DAG node."""

    sid: int
    pe: int
    start: float
    end: float
    chare: str
    entry: str
    parent: Optional[int]
    trigger: Optional[int]
    #: Location-independent object label (``str(ChareID)``), ``None``
    #: for runtime-internal spans (``<rts>``, ``<driver>``).
    obj: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def label(self) -> str:
        return f"{self.chare}.{self.entry}"


@dataclass(**_SLOTS)
class MessageRecord:
    """All lifecycle events of one message sequence id, folded."""

    seq: int
    src_pe: int
    dst_pe: int
    tag: str
    crossed_wan: bool
    cause: Optional[int] = None
    ack_for: Optional[int] = None
    #: Every send time (first entry = original transmission; the rest
    #: are retransmissions and fault-injected duplicates).
    sends: List[float] = field(default_factory=list)
    #: First delivery time — the one that enqueues the execution
    #: (duplicates are suppressed downstream).
    delivered: Optional[float] = None
    drops: int = 0
    #: ``arrival -> hop ledger`` per wire copy (flight recorder).  The
    #: arrival key is the exact float the delivery event carries, so the
    #: delivered copy's ledger is ``ledgers[delivered]``.
    ledgers: Dict[float, HopLedger] = field(default_factory=dict)

    @property
    def retransmitted(self) -> bool:
        return len(self.sends) > 1

    @property
    def first_send(self) -> float:
        return self.sends[0]

    def last_send_before_delivery(self) -> float:
        """Latest send that can have produced the first delivery."""
        if self.delivered is None:
            return self.sends[-1]
        best = self.sends[0]
        for t in self.sends:
            if t <= self.delivered and t > best:
                best = t
        return best


@dataclass(frozen=True, **_SLOTS)
class PathSegment:
    """One labelled time slice of a critical path (``[start, end]``)."""

    start: float
    end: float
    kind: str       # one of COMPONENTS
    detail: str     # human-readable: span label or message tag
    #: Object blamed for this slice: compute segments blame the chare
    #: that executed; wait segments (wire, queue, stalls, gaps) blame
    #: the *downstream* chare whose start they delayed.  ``None`` for
    #: runtime-internal work and startup filler.
    obj: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class StepAttribution:
    """One application step's wall time, decomposed along its path."""

    step: int
    t_start: float
    t_end: float
    compute: float = 0.0
    relay_overhead: float = 0.0
    propagation: float = 0.0
    bandwidth_serialization: float = 0.0
    stripe_pacing: float = 0.0
    device_queue: float = 0.0
    queue_serial: float = 0.0
    retransmit_stall: float = 0.0
    #: The labelled path segments inside [t_start, t_end], in time order.
    segments: List[PathSegment] = field(default_factory=list)

    @property
    def wall(self) -> float:
        return self.t_end - self.t_start

    @property
    def wan_flight(self) -> float:
        """Derived: cross-WAN wire time on the path (sum of the four
        wire components), kept for Figure-3 style reporting."""
        return (self.propagation + self.bandwidth_serialization
                + self.stripe_pacing + self.device_queue)

    @property
    def total(self) -> float:
        """Sum of all components (the invariant's left side)."""
        return (self.compute + self.relay_overhead + self.propagation
                + self.bandwidth_serialization + self.stripe_pacing
                + self.device_queue + self.queue_serial
                + self.retransmit_stall)

    @property
    def residual(self) -> float:
        """``wall - total``: 0 up to float addition error."""
        return self.wall - self.total

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "step": self.step,
            "t_start_s": self.t_start,
            "t_end_s": self.t_end,
            "wall_s": self.wall,
        }
        for k in COMPONENTS:
            out[f"{k}_s"] = getattr(self, k)
        out["wan_flight_s"] = self.wan_flight
        out["residual_s"] = self.residual
        out["path_segments"] = len(self.segments)
        return out


def _compute_kind(span: Span) -> str:
    """Attribution bucket for a critical execution span.

    The hierarchical multicast's ``<rts>.relay`` re-fan hops are runtime
    overhead of the routing scheme, not application work; filing them
    under ``compute`` (as the pre-ledger analysis did) hides exactly the
    cost the routing comparison needs to expose.
    """
    if span.chare == "<rts>" and span.entry == "relay":
        return "relay_overhead"
    return "compute"


def _emit_wire(emit, msg: MessageRecord, last_send: float,
               cursor: float, obj: Optional[str] = None) -> None:
    """Decompose one WAN wire window ``[last_send, cursor]`` by ledger.

    ``cursor`` is the delivery instant of the copy that produced the
    first delivery, so ``msg.ledgers[cursor]`` (exact float key) is that
    copy's hop ledger.  Each wire hop splits into queueing (device or
    stripe), bandwidth serialization and propagation sub-intervals; on a
    striped link only the **critical chunk** (latest arrival) is walked
    — the other chunks' wire time is overlapped, which is the point of
    striping.  Emission telescopes a single ``cur`` across the window
    (each piece starts where the previous ended, the last piece is
    clamped to ``cursor``, any tail becomes propagation), so the pieces
    tile ``[last_send, cursor]`` *exactly* regardless of float noise in
    the intermediate hop timestamps.  A WAN message without a ledger
    (recorder off for part of the run) falls back to one propagation
    segment.
    """
    detail = f"{msg.tag} PE{msg.src_pe}->PE{msg.dst_pe}"
    hops = msg.ledgers.get(cursor)
    if not hops:
        emit(last_send, cursor, "propagation", detail, obj)
        return
    critical = None
    for h in hops:
        if h.kind == "stream" and (critical is None
                                   or h.arrive > critical.arrive):
            critical = h
    intervals: List[tuple] = []
    for h in hops:
        if h.kind == "wire" or h is critical:
            queue_kind = ("stripe_pacing" if h.kind == "stream"
                          else "device_queue")
            ser_end = h.dequeue + h.ser_s
            intervals.append((h.enqueue, h.dequeue, queue_kind))
            intervals.append((h.dequeue, ser_end, "bandwidth_serialization"))
            intervals.append((ser_end, h.arrive, "propagation"))
        elif h.kind == "stream":
            continue  # non-critical chunk: fully overlapped
        else:
            # Filter-device span: the whole interval carries its kind.
            intervals.append((h.enqueue, h.arrive, h.kind))
    intervals.sort(key=lambda iv: (iv[0], iv[1]))
    cur = last_send
    for a, b, kind in intervals:
        if cur >= cursor:
            break
        if b <= cur:
            continue
        hi = b if b < cursor else cursor
        emit(cur, hi, kind, detail, obj)
        cur = hi
    if cur < cursor:
        emit(cur, cursor, "propagation", detail, obj)


class CausalGraph:
    """The step DAG of one traced run.

    Nodes are execution spans (sid-keyed); edges are messages (the span
    that sent a message is the causal parent of the execution the
    delivery triggers) plus the implicit same-PE run-to-completion chain
    (a PE's spans never overlap, so each span is also blocked by its
    predecessor on the same PE).
    """

    def __init__(self, spans: Dict[int, Span],
                 messages: Dict[int, MessageRecord]) -> None:
        self.spans = spans
        self.messages = messages
        #: pe -> spans sorted by start time.
        self.by_pe: Dict[int, List[Span]] = {}
        for span in spans.values():
            self.by_pe.setdefault(span.pe, []).append(span)
        for lst in self.by_pe.values():
            lst.sort(key=lambda s: (s.start, s.sid))
        #: sid -> same-PE predecessor sid (run-to-completion chain).
        self._pe_pred: Dict[int, Optional[int]] = {}
        for lst in self.by_pe.values():
            prev: Optional[Span] = None
            for span in lst:
                self._pe_pred[span.sid] = prev.sid if prev else None
                prev = span
        #: All spans sorted by (start, sid) — a valid topological order
        #: (every edge ends at a strictly later start; see replay).
        self.order: List[Span] = sorted(
            spans.values(), key=lambda s: (s.start, s.sid))
        self._starts = [s.start for s in self.order]

    # -- construction ------------------------------------------------------

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "CausalGraph":
        """Build the DAG from a batch trace recorded with causal ids."""
        if not tracer.enabled:
            raise ConfigurationError(
                "cannot build a causal graph from a disabled tracer "
                "(run with trace=True)")
        spans: Dict[int, Span] = {}
        for iv in tracer.intervals:
            if iv.sid is None:
                continue  # pre-causal producer; no node identity
            spans[iv.sid] = Span(iv.sid, iv.pe, iv.start, iv.end,
                                 iv.chare, iv.entry, iv.parent, iv.trigger,
                                 obj=iv.obj)
        messages: Dict[int, MessageRecord] = {}
        for ev in tracer.messages:
            if ev.seq is None:
                continue
            rec = messages.get(ev.seq)
            if rec is None:
                rec = messages[ev.seq] = MessageRecord(
                    seq=ev.seq, src_pe=ev.src_pe, dst_pe=ev.dst_pe,
                    tag=ev.tag, crossed_wan=ev.crossed_wan,
                    cause=ev.cause, ack_for=ev.ack_for)
            if ev.kind == "send":
                rec.sends.append(ev.time)
            elif ev.kind == "deliver":
                if rec.delivered is None or ev.time < rec.delivered:
                    rec.delivered = ev.time
            elif ev.kind == "drop":
                rec.drops += 1
        for ev in getattr(tracer, "hops", ()):
            if ev.seq is None:
                continue
            rec = messages.get(ev.seq)
            if rec is not None:
                rec.ledgers.setdefault(ev.arrival, ev.hops)
        for rec in messages.values():
            rec.sends.sort()
        return cls(spans, messages)

    # -- queries -----------------------------------------------------------

    def pe_pred(self, sid: int) -> Optional[Span]:
        """Same-PE predecessor span (run-to-completion chain edge)."""
        pred = self._pe_pred.get(sid)
        return self.spans[pred] if pred is not None else None

    def terminal_span(self, t: float) -> Optional[Span]:
        """The span with the latest start <= *t* (step-boundary anchor).

        Step completion times are recorded *inside* user code, i.e. at
        the start instant of the execution that advanced the step, so a
        boundary time is always some span's exact start.
        """
        i = bisect_right(self._starts, t)
        return self.order[i - 1] if i else None

    def ack_edges(self) -> List[MessageRecord]:
        """Reliable-transport ack messages (reverse-direction edges)."""
        return [m for m in self.messages.values() if m.ack_for is not None]

    # -- the backward walk -------------------------------------------------

    def critical_path(self, t_end: float,
                      t_start: float = 0.0) -> List[PathSegment]:
        """Labelled critical-path segments partitioning [t_start, t_end].

        Starting from the span anchored at *t_end*, repeatedly ask "what
        blocked this span's start?":

        * its trigger message's delivery (``d``), or
        * the end of the previous span on the same PE (``p``).

        The scheduler dispatches the moment a PE goes idle and a message
        is queued, so ``start == max(d, p)`` always; ties prefer the
        message edge (the wire, not the queue, was binding).  Each hop
        prepends contiguous labelled segments — span compute, WAN or
        local wire time, retransmit stall — so the result tiles the
        window exactly; holes the trace cannot explain (driver startup,
        missing causal ids) become ``queue_serial`` filler.

        Every segment also carries an object blame label: compute
        blames the chare that executed, wait segments blame the
        *downstream* chare whose start they delayed (its inbound WAN
        wire time, queue wait, retransmit stalls), startup filler stays
        unattributed.  Because the labels merely annotate the same
        tiling, per-object blame sums preserve the attribution
        invariant exactly (see :func:`per_object_blame`).
        """
        segments: List[PathSegment] = []

        def emit(lo: float, hi: float, kind: str, detail: str,
                 obj: Optional[str] = None) -> None:
            lo = max(lo, t_start)
            hi = min(hi, t_end)
            if hi > lo:
                segments.append(PathSegment(lo, hi, kind, detail, obj=obj))

        span = self.terminal_span(t_end)
        cursor = t_end
        if span is None:
            emit(t_start, t_end, "queue_serial", "no spans recorded")
            return segments
        if span.start < t_end:
            # Boundary fell inside the span (non-start anchor): count the
            # span's elapsed share as compute, then explain its start.
            emit(span.start, t_end, _compute_kind(span), span.label,
                 span.obj)
            cursor = max(span.start, t_start)

        while cursor > t_start:
            msg = (self.messages.get(span.trigger)
                   if span.trigger is not None else None)
            d = msg.delivered if msg is not None else None
            pred = self.pe_pred(span.sid)
            p = pred.end if pred is not None else None
            # Wait time explained below delayed *this* span's start.
            consumer = span.obj

            if d is not None and d <= cursor and (p is None or d >= p):
                # Message edge: the trigger's arrival was binding.
                if d < cursor:
                    emit(d, cursor, "queue_serial",
                         f"queue wait ({msg.tag})", consumer)
                    cursor = d
                last_send = msg.last_send_before_delivery()
                first_send = msg.first_send
                if last_send < cursor:
                    if msg.crossed_wan:
                        _emit_wire(emit, msg, last_send, cursor, consumer)
                    else:
                        emit(last_send, cursor, "queue_serial",
                             f"{msg.tag} PE{msg.src_pe}->PE{msg.dst_pe}",
                             consumer)
                    cursor = max(last_send, t_start)
                if first_send < cursor:
                    emit(first_send, cursor, "retransmit_stall",
                         f"{msg.tag} x{len(msg.sends)} sends", consumer)
                    cursor = max(first_send, t_start)
                parent = (self.spans.get(msg.cause)
                          if msg.cause is not None else None)
                if parent is None or parent.end > cursor:
                    # Root message (driver-originated) or inconsistent
                    # ids: nothing more to explain on this chain.
                    emit(t_start, cursor, "queue_serial", "startup")
                    cursor = t_start
                    break
                if parent.end < cursor:
                    emit(parent.end, cursor, "queue_serial",
                         "serialization gap", consumer)
                    cursor = parent.end
                emit(parent.start, cursor, _compute_kind(parent),
                     parent.label, parent.obj)
                cursor = max(parent.start, t_start)
                span = parent
            elif pred is not None and p is not None and p <= cursor:
                # Same-PE edge: the processor, not the wire, was binding.
                if p < cursor:
                    emit(p, cursor, "queue_serial", "scheduler gap",
                         consumer)
                    cursor = p
                emit(pred.start, cursor, _compute_kind(pred), pred.label,
                     pred.obj)
                cursor = max(pred.start, t_start)
                span = pred
            else:
                emit(t_start, cursor, "queue_serial", "startup")
                cursor = t_start
                break
        segments.sort(key=lambda s: (s.start, s.end))
        return segments


def per_step_attribution(graph: CausalGraph,
                         boundaries: Sequence[float],
                         keep_segments: bool = True
                         ) -> List[StepAttribution]:
    """Attribute each step window between consecutive *boundaries*.

    *boundaries* are absolute virtual times: the run's start followed by
    each step's completion instant (``t0`` + ``result.step_times``).
    Returns one :class:`StepAttribution` per window, whose components
    sum to the window's wall time (exactly, up to float addition).
    """
    out: List[StepAttribution] = []
    for k in range(1, len(boundaries)):
        w0, w1 = float(boundaries[k - 1]), float(boundaries[k])
        att = StepAttribution(step=k - 1, t_start=w0, t_end=w1)
        if w1 > w0:
            segs = graph.critical_path(w1, w0)
            for seg in segs:
                setattr(att, seg.kind,
                        getattr(att, seg.kind) + seg.duration)
            if keep_segments:
                att.segments = segs
        out.append(att)
    return out


def summarize_attribution(steps: Sequence[StepAttribution],
                          warmup: int = 0) -> Dict[str, float]:
    """Aggregate component shares over the steady-state steps."""
    window = list(steps)[warmup:] or list(steps)
    totals = {k: 0.0 for k in COMPONENTS}
    wall = 0.0
    for att in window:
        wall += att.wall
        for k in COMPONENTS:
            totals[k] += getattr(att, k)
    out: Dict[str, float] = {"wall_s": wall, "steps": float(len(window))}
    for k in COMPONENTS:
        out[f"{k}_s"] = totals[k]
        out[f"{k}_share"] = totals[k] / wall if wall > 0 else 0.0
    # Derived roll-up of the wire components, kept so Figure-3 style
    # "how much is the WAN" reporting has one number to point at.
    wan = sum(totals[k] for k in WIRE_COMPONENTS)
    out["wan_flight_s"] = wan
    out["wan_flight_share"] = wan / wall if wall > 0 else 0.0
    return out


#: Blame bucket for path time no chare is responsible for: runtime
#: spans (``<rts>``/``<driver>`` work), startup filler, and waits whose
#: consuming span is runtime-internal.
UNATTRIBUTED = "<runtime>"


def per_object_blame(segments: Sequence[PathSegment]
                     ) -> Dict[str, Dict[str, float]]:
    """Fold labelled path segments into per-object blame.

    Accepts the segments of one :meth:`CausalGraph.critical_path` walk
    or the concatenation of many step windows
    (``[s for att in steps for s in att.segments]``).  Returns, per
    blamed object (runtime-internal time under :data:`UNATTRIBUTED`):

    * ``compute_s`` — the object's own executions on the path (plus
      relay overhead for the runtime bucket);
    * ``wan_wait_s`` — inbound WAN wire time and retransmit stalls that
      delayed the object's starts (the wait finer decomposition would
      mask);
    * ``queue_s`` — local wire/queue/scheduler time charged to it;
    * ``total_s`` — the sum of the above.

    Because the segments tile the analysed window and the labels merely
    partition that tiling, the objects' ``total_s`` values sum to the
    window's length — exactly (residual 0.0) when all event times are
    dyadic rationals, to float addition error otherwise.
    """
    out: Dict[str, Dict[str, float]] = {}
    for seg in segments:
        obj = seg.obj if seg.obj is not None else UNATTRIBUTED
        row = out.get(obj)
        if row is None:
            row = out[obj] = {"compute_s": 0.0, "wan_wait_s": 0.0,
                              "queue_s": 0.0, "total_s": 0.0}
        if seg.kind in ("compute", "relay_overhead"):
            bucket = "compute_s"
        elif seg.kind == "queue_serial":
            bucket = "queue_s"
        else:  # wire components + retransmit_stall: inbound WAN waits
            bucket = "wan_wait_s"
        row[bucket] += seg.duration
        row["total_s"] += seg.duration
    return out


def render_blame(blame: Dict[str, Dict[str, float]],
                 top: int = 10) -> str:
    """Terminal table of per-object critical-path blame, largest first."""
    ranked = sorted(blame.items(),
                    key=lambda kv: (-kv[1]["total_s"], kv[0]))[:top]
    lines = [f"{'object':<16} {'total_ms':>9} {'compute_ms':>11} "
             f"{'wan_wait_ms':>12} {'queue_ms':>9}"]
    for obj, row in ranked:
        lines.append(f"{obj:<16} {row['total_s'] * 1e3:>9.3f} "
                     f"{row['compute_s'] * 1e3:>11.3f} "
                     f"{row['wan_wait_s'] * 1e3:>12.3f} "
                     f"{row['queue_s'] * 1e3:>9.3f}")
    return "\n".join(lines)


# -- the knee analyzer -----------------------------------------------------


def replay_with_latency(graph: CausalGraph,
                        delta_s: float) -> Dict[int, float]:
    """What-if replay: predicted span start times with WAN shifted.

    Every WAN message edge's weight (parent end -> dependent start,
    i.e. observed wire time including retransmit stalls) is shifted by
    *delta_s*; local edges and compute durations are unchanged; the
    observed per-PE execution order is preserved via the
    run-to-completion chain.  Spans are processed in observed start
    order, which is a valid topological order: every edge ends at a
    strictly later observed start (durations are positive and
    deliveries precede the starts they trigger).
    """
    new_start: Dict[int, float] = {}
    new_end: Dict[int, float] = {}
    for span in graph.order:
        candidates: List[float] = []
        observed: List[float] = []
        pred = graph.pe_pred(span.sid)
        if pred is not None:
            candidates.append(new_end[pred.sid])
            observed.append(pred.end)
        msg = (graph.messages.get(span.trigger)
               if span.trigger is not None else None)
        if msg is not None and msg.delivered is not None:
            shift = delta_s if msg.crossed_wan else 0.0
            parent = (graph.spans.get(msg.cause)
                      if msg.cause is not None else None)
            if parent is not None and parent.end <= msg.delivered:
                wire = msg.delivered - parent.end
                candidates.append(new_end[parent.sid]
                                  + max(0.0, wire + shift))
            elif msg.sends:
                # Driver-originated: the send instant does not move.
                wire = msg.delivered - msg.first_send
                candidates.append(msg.first_send + max(0.0, wire + shift))
            else:
                candidates.append(msg.delivered + max(0.0, shift))
            observed.append(msg.delivered)
        if not candidates:
            candidates.append(span.start)  # true root keeps its epoch
            observed.append(span.start)
        # Observed queueing slack beyond the binding blocker (0 in runs
        # from this scheduler, which dispatches the instant a PE idles)
        # is preserved, so a zero shift reproduces the trace exactly.
        slack = max(0.0, span.start - max(observed))
        t = max(candidates) + slack
        new_start[span.sid] = t
        new_end[span.sid] = t + span.duration
    return new_start


def predicted_step_time(graph: CausalGraph,
                        boundaries: Sequence[float],
                        delta_s: float,
                        warmup: int = 1) -> float:
    """Predicted steady-state seconds/step at a shifted WAN latency.

    Maps each observed step boundary to its terminal span, replays the
    DAG with the shift, and differences the predicted boundary times the
    same way :class:`~repro.apps.stencil.driver.StencilResult` does.
    """
    terminals = [graph.terminal_span(float(b)) for b in boundaries[1:]]
    if any(t is None for t in terminals):
        raise ConfigurationError("boundaries precede every recorded span")
    new_start = replay_with_latency(graph, delta_s)
    pred = [new_start[t.sid] for t in terminals]  # type: ignore[union-attr]
    if len(pred) <= warmup + 1:
        return pred[-1] / max(len(pred), 1) if pred else 0.0
    window = pred[warmup:]
    return (window[-1] - window[0]) / (len(window) - 1)


@dataclass
class KneePrediction:
    """The knee analyzer's output for one traced configuration."""

    #: One-way latency of the traced run, seconds.
    observed_latency_s: float
    #: Swept hypothetical one-way latencies, seconds.
    grid_s: List[float]
    #: Predicted steady-state step time at each grid latency.
    predicted_step_s: List[float]
    #: Knee tolerance (EXPERIMENTS.md uses 1.5x the baseline).
    tolerance: float

    @property
    def baseline_s(self) -> float:
        return self.predicted_step_s[0] if self.predicted_step_s else 0.0

    @property
    def knee_s(self) -> float:
        """Largest grid latency within tolerance x baseline (Fig-3 knee)."""
        if not self.grid_s:
            return 0.0
        knee = self.grid_s[0]
        for lat, t in zip(self.grid_s, self.predicted_step_s):
            if t <= self.tolerance * self.baseline_s:
                knee = lat
            else:
                break
        return knee

    def to_dict(self) -> Dict[str, object]:
        return {
            "observed_latency_ms": self.observed_latency_s * 1e3,
            "grid_ms": [x * 1e3 for x in self.grid_s],
            "predicted_step_ms": [x * 1e3 for x in self.predicted_step_s],
            "baseline_step_ms": self.baseline_s * 1e3,
            "tolerance": self.tolerance,
            "predicted_knee_ms": self.knee_s * 1e3,
        }


def predict_knee(graph: CausalGraph, boundaries: Sequence[float],
                 observed_latency_s: float, grid_s: Sequence[float],
                 tolerance: float = 1.5, warmup: int = 1
                 ) -> KneePrediction:
    """Predict the Figure-3 knee from one traced low-latency run.

    For each hypothetical one-way latency in *grid_s*, replays the DAG
    with WAN edges shifted by ``L - observed`` and reads off the
    steady-state step time; the knee is the largest grid latency whose
    predicted step time stays within *tolerance* of the lowest-latency
    prediction (the same definition EXPERIMENTS.md applies to measured
    sweeps).
    """
    grid = sorted(float(x) for x in grid_s)
    preds = [predicted_step_time(graph, boundaries,
                                 lat - observed_latency_s, warmup=warmup)
             for lat in grid]
    return KneePrediction(observed_latency_s=observed_latency_s,
                          grid_s=grid, predicted_step_s=preds,
                          tolerance=tolerance)


def render_attribution(steps: Sequence[StepAttribution],
                       warmup: int = 0) -> str:
    """Terminal table: per-step breakdown plus the steady-state shares."""
    lines = [f"{'step':>4} {'wall(ms)':>10} {'compute':>10} {'relay':>10} "
             f"{'wan':>10} {'queue':>10} {'stall':>10}"]
    for att in steps:
        lines.append(
            f"{att.step:>4} {att.wall * 1e3:>10.3f} "
            f"{att.compute * 1e3:>10.3f} "
            f"{att.relay_overhead * 1e3:>10.3f} "
            f"{att.wan_flight * 1e3:>10.3f} "
            f"{att.queue_serial * 1e3:>10.3f} "
            f"{att.retransmit_stall * 1e3:>10.3f}")
    summary = summarize_attribution(steps, warmup=warmup)
    lines.append("")
    lines.append(
        "steady state: "
        + "  ".join(f"{k} {summary[f'{k}_share']:.1%}" for k in COMPONENTS))
    lines.append(
        "wire total (wan_flight): "
        f"{summary['wan_flight_share']:.1%} "
        "= " + " + ".join(
            f"{k} {summary[f'{k}_share']:.1%}" for k in WIRE_COMPONENTS))
    return "\n".join(lines)
