"""A unified metrics registry: counters, gauges, log-bucketed histograms.

Before this module existed, runtime statistics were scattered across
``FabricStats``, ``ReliableStats``, ``PeStats`` and ad-hoc tracer
counters, each with its own shape and no common way to snapshot a run.
:class:`MetricsRegistry` puts one queryable surface over all of them:

* **instruments** — :class:`Counter`, :class:`Gauge` and
  :class:`Histogram` objects created on first use via
  :meth:`MetricsRegistry.counter` / ``gauge`` / ``histogram`` and
  updated directly on hot paths (all O(1));
* **collectors** — callables returning ``{name: value}`` mappings,
  registered with :meth:`MetricsRegistry.register_collector`.  The
  existing stat structs stay exactly where they are (tests and load
  balancers read them in place); the registry *pulls* from them at
  snapshot time, so wrapping them costs nothing per event.

:meth:`MetricsRegistry.snapshot` merges both sources into a flat,
JSON-friendly dict.  Metric names are dotted paths
(``"fabric.wan-artificial.messages"``, ``"trace.masked_fraction"``);
the registry imposes no schema beyond name uniqueness per kind.

Each :class:`~repro.grid.environment.GridEnvironment` owns a private
registry so that two simulations never share counters; a process-wide
default registry is available via :func:`default_registry` for code
running outside an environment.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import ConfigurationError

MetricValue = Union[int, float]
Collector = Callable[[], Mapping[str, MetricValue]]


class Counter:
    """A monotonically increasing count (events, bytes, retransmits)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: MetricValue = 0

    def inc(self, amount: MetricValue = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (queue depth, imbalance ratio, RTO)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: MetricValue = 0

    def set(self, value: MetricValue) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A log-bucketed histogram of non-negative samples.

    Buckets are geometric: bucket *i* covers
    ``[least * growth**i, least * growth**(i+1))``, with one underflow
    bucket for samples below *least* (including zero).  Geometric
    buckets keep the memory footprint O(log(max/min)) regardless of how
    many samples are recorded — entry-method durations span nanoseconds
    to seconds, and a sweep records millions of them.

    Parameters
    ----------
    least:
        Lower bound of the first bucket.  Defaults to 1 ns, suiting
        durations in seconds.
    growth:
        Bucket width ratio (> 1).  The default of 2 gives power-of-two
        buckets.
    """

    __slots__ = ("name", "least", "growth", "_log_growth", "count",
                 "total", "min", "max", "buckets")

    def __init__(self, name: str, least: float = 1e-9,
                 growth: float = 2.0) -> None:
        if least <= 0:
            raise ConfigurationError(f"histogram least must be > 0: {least}")
        if growth <= 1.0:
            raise ConfigurationError(f"histogram growth must be > 1: {growth}")
        self.name = name
        self.least = least
        self.growth = growth
        self._log_growth = math.log(growth)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: bucket index -> sample count; index -1 is the underflow bucket.
        self.buckets: Dict[int, int] = {}

    def record(self, value: float) -> None:
        if value < 0:
            raise ConfigurationError(
                f"histogram {self.name!r} got negative sample {value}")
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        idx = self.bucket_index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    def bucket_index(self, value: float) -> int:
        """The bucket a sample falls in (-1 is the underflow bucket)."""
        if value < self.least:
            return -1
        return int(math.log(value / self.least) / self._log_growth + 1e-12)

    def bucket_bounds(self, index: int) -> Tuple[float, float]:
        """``[lo, hi)`` bounds of bucket *index*."""
        if index < 0:
            return (0.0, self.least)
        return (self.least * self.growth ** index,
                self.least * self.growth ** (index + 1))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile, linearly interpolated.

        The covering bucket is found by rank; the returned value
        interpolates linearly within that bucket's bounds (clamped to
        the observed ``[min, max]``), rather than pessimistically
        reporting the bucket's upper bound.
        """
        if not (0.0 <= q <= 1.0):
            raise ConfigurationError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for idx in sorted(self.buckets):
            n = self.buckets[idx]
            if seen + n >= target:
                lo, hi = self.bucket_bounds(idx)
                frac = (target - seen) / n
                value = lo + frac * (hi - lo)
                return min(max(value, self.min), self.max)
            seen += n
        return self.max  # pragma: no cover - defensive

    def to_dict(self) -> Dict[str, MetricValue]:
        out: Dict[str, MetricValue] = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Histogram({self.name}: n={self.count}, "
                f"mean={self.mean:.3g})")


class MetricsRegistry:
    """Named instruments plus pull-collectors, snapshot-able as one dict.

    Instrument getters are *get-or-create*: the first call with a name
    creates the instrument, later calls return the same object.  Asking
    for an existing name as a different kind raises — a counter silently
    shadowing a gauge is precisely the bug this registry exists to
    prevent.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: List[Tuple[str, Collector]] = []

    # -- instruments -----------------------------------------------------

    def _check_unique(self, name: str, kind: str) -> None:
        owners = {"counter": self._counters, "gauge": self._gauges,
                  "histogram": self._histograms}
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ConfigurationError(
                    f"metric {name!r} already registered as a {other_kind}")

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            self._check_unique(name, "counter")
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            self._check_unique(name, "gauge")
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, least: float = 1e-9,
                  growth: float = 2.0) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            self._check_unique(name, "histogram")
            h = self._histograms[name] = Histogram(name, least, growth)
        return h

    # -- collectors ------------------------------------------------------

    def register_collector(self, name: str, collector: Collector) -> None:
        """Register a pull source consulted at snapshot time.

        *collector* returns a ``{metric_name: value}`` mapping; *name*
        identifies the source in error messages and allows replacement
        (re-registering a name overwrites the previous collector, so an
        environment can re-wire after swapping a fabric).
        """
        for i, (existing, _fn) in enumerate(self._collectors):
            if existing == name:
                self._collectors[i] = (name, collector)
                return
        self._collectors.append((name, collector))

    # -- querying --------------------------------------------------------

    def snapshot(self) -> Dict[str, MetricValue]:
        """Flat ``{name: value}`` view of every metric, collectors included.

        Histograms contribute ``name.count`` / ``name.sum`` /
        ``name.mean`` / ``name.min`` / ``name.max`` plus interpolated
        ``name.p50`` / ``name.p95`` / ``name.p99`` sub-keys.
        """
        out: Dict[str, MetricValue] = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = g.value
        for name, h in self._histograms.items():
            for sub, value in h.to_dict().items():
                out[f"{name}.{sub}"] = value
        for source, collector in self._collectors:
            values = collector()
            for name, value in values.items():
                if name in out:
                    raise ConfigurationError(
                        f"collector {source!r} redefines metric {name!r}")
                out[name] = value
        return dict(sorted(out.items()))

    def get(self, name: str, default: Optional[MetricValue] = None
            ) -> Optional[MetricValue]:
        """One metric's current value (snapshot semantics for collectors)."""
        return self.snapshot().get(name, default)

    def render(self) -> str:
        """Aligned text table of the current snapshot (for logs/CLI)."""
        snap = self.snapshot()
        if not snap:
            return "(no metrics)"
        width = max(len(k) for k in snap)
        lines = []
        for key, value in snap.items():
            if isinstance(value, float):
                lines.append(f"{key:<{width}}  {value:.6g}")
            else:
                lines.append(f"{key:<{width}}  {value}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)}, "
                f"collectors={len(self._collectors)})")


#: Process-wide fallback registry for code running outside an environment.
_DEFAULT: Optional[MetricsRegistry] = None


def default_registry() -> MetricsRegistry:
    """The process-wide registry (created on first use)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = MetricsRegistry()
    return _DEFAULT
