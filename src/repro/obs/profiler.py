"""Wall-clock self-profiler: where does *host* time go?

Everything else in :mod:`repro.obs` measures the *simulated* clock; this
module measures the simulator itself.  ROADMAP item 2 (real-parallel
PDES, vectorized kernels) will be judged on host wall-clock, so the
repository needs a first-party answer to "which layer is slow" that
does not require strapping cProfile onto every run.

:class:`WallProfiler` is a *stack-free* phase timer.  The engine's
dispatch loop (see :meth:`repro.sim.engine.Engine._run_all`) takes one
chained clock read per fired event (the timestamp after event *N* is
the start of event *N+1*) and reports ``(action, elapsed)`` here; the
elapsed time lands in a flat ``function -> (calls, seconds)`` bucket
table, and each function is classified into a coarse phase by its
defining module — scheduler, network, telemetry, application — only at
reporting time (there are a handful of distinct dispatch functions, so
the fold is O(functions), not O(events)).  No per-event allocation, no
call stack, no sampling bias: total accounted time is exact to clock
resolution, and the per-event cost is one ``perf_counter`` call plus a
dict probe, bounded < 5 % by the perf-smoke acceptance bar.

Sink self-timing is *reused*, never paid for: when a sampling budget
has already installed the :class:`~repro.obs.health.TimedSink`
stride-sampler for the :class:`~repro.obs.health.ObsGovernor`, its
cumulative cost registers as a **nested** source here (trace sinks run
inside dispatch phases, so their time is a refinement of, not an
addition to, the dispatch total).  The profiler never installs a
TimedSink itself — without a budget the sinks' time simply stays
folded into the dispatch phases that call them.
Explicit non-dispatch blocks (report building, critical-path analysis)
are timed with the :meth:`WallProfiler.section` context manager.

The clock is injectable, so unit tests drive a fake clock and assert
exact aggregation; :meth:`summary` exports per-phase shares into the
run ledger (:mod:`repro.obs.ledger`), and
:meth:`chrome_trace_events` emits a flamegraph-shaped process —
a root ``run`` slice with one child slice per phase — that rides in
the same trace-event file as the virtual-time timeline.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

#: Dispatch-phase classification by defining-module prefix, first match
#: wins.  ``repro.obs`` actions (the telemetry sampler's daemon tick)
#: are observability's own dispatch share; anything unknown (test
#: lambdas, drivers defined in __main__) lands in "other".
_PREFIX_PHASES: Tuple[Tuple[str, str], ...] = (
    ("repro.core", "scheduler"),
    ("repro.network", "network"),
    ("repro.obs", "obs.telemetry"),
    ("repro.apps", "app"),
    ("repro.ampi", "app"),
    ("repro.sim", "engine"),
    ("repro.grid", "engine"),
)

_OTHER_PHASE = "other"


def classify_action(func) -> str:
    """Coarse profiler phase for an engine-dispatched callable.

    Classification is by the *defining module* of the underlying
    function (``__func__`` for bound methods), which survives closures
    and partials created inside the layer they belong to.
    """
    mod = getattr(func, "__module__", None) or ""
    for prefix, phase in _PREFIX_PHASES:
        if mod == prefix or mod.startswith(prefix + "."):
            return phase
    return _OTHER_PHASE


class WallProfiler:
    """Flat wall-clock phase aggregation with an injectable clock.

    Parameters
    ----------
    clock:
        Wall-clock source; tests inject a fake for deterministic
        aggregation assertions.  The total window is ``clock()`` at
        :meth:`summary` time minus ``clock()`` at construction, so a
        profiler built alongside the environment also accounts setup
        and analysis time (as ``unaccounted`` unless wrapped in a
        :meth:`section`).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter
                 ) -> None:
        self.clock = clock
        #: section name -> [calls, wall_seconds] for explicit
        #: :meth:`section` blocks; dispatch events aggregate per
        #: *function* in :attr:`_buckets` and fold into phases at
        #: reporting time via :meth:`phase_table`.
        self.phases: Dict[str, List[float]] = {}
        #: function object -> [calls, wall_seconds].  Keying the hot
        #: path by the underlying function (one dict probe, two list
        #: updates) defers phase classification entirely to reporting
        #: time — there are only ever a handful of distinct dispatch
        #: functions, so the fold is O(functions), not O(events).
        self._buckets: Dict[object, List[float]] = {}
        #: (name, cumulative-cost callable) pairs whose time is *inside*
        #: the dispatch phases (e.g. TimedSink): reported as nested,
        #: excluded from the unaccounted computation.
        self._nested: List[Tuple[str, Callable[[], float]]] = []
        self._t0 = clock()

    # -- recording --------------------------------------------------------

    def record_action(self, action, elapsed_s: float) -> None:
        """Account one dispatched event (called from the engine loop)."""
        func = getattr(action, "__func__", action)
        bucket = self._buckets.get(func)
        if bucket is None:
            bucket = self._buckets[func] = [0, 0.0]
        bucket[0] += 1
        bucket[1] += elapsed_s

    @contextmanager
    def section(self, name: str):
        """Time an explicit non-dispatch block (analysis, export...)."""
        t0 = self.clock()
        try:
            yield
        finally:
            elapsed = self.clock() - t0
            bucket = self.phases.get(name)
            if bucket is None:
                bucket = self.phases[name] = [0, 0.0]
            bucket[0] += 1
            bucket[1] += elapsed

    def add_nested_source(self, name: str,
                          cost_fn: Callable[[], float]) -> None:
        """Register a cumulative cost already contained in other phases.

        The governor's :class:`~repro.obs.health.TimedSink` estimate is
        the canonical case: sink calls run *inside* scheduler/network
        dispatch, so their seconds refine the dispatch totals rather
        than adding to them.
        """
        self._nested.append((name, cost_fn))

    # -- reporting --------------------------------------------------------

    def total_wall_s(self) -> float:
        """Wall seconds since construction (the profiled window)."""
        return max(self.clock() - self._t0, 0.0)

    def phase_table(self) -> Dict[str, List[float]]:
        """Merged ``phase -> [calls, wall_seconds]`` table.

        Folds the per-function dispatch buckets through
        :func:`classify_action` and merges the explicit sections —
        the deferred half of the hot path's work, run once per report.
        """
        table: Dict[str, List[float]] = {}
        for func, (calls, wall) in self._buckets.items():
            row = table.setdefault(classify_action(func), [0, 0.0])
            row[0] += calls
            row[1] += wall
        for name, (calls, wall) in self.phases.items():
            row = table.setdefault(name, [0, 0.0])
            row[0] += calls
            row[1] += wall
        return table

    def summary(self) -> Dict[str, object]:
        """JSON-friendly per-phase shares for the run ledger."""
        total = self.total_wall_s()
        table = self.phase_table()
        phases: Dict[str, Dict[str, object]] = {}
        accounted = 0.0
        for name in sorted(table):
            calls, wall = table[name]
            accounted += wall
            phases[name] = {
                "calls": int(calls),
                "wall_s": wall,
                "share": wall / total if total > 0 else 0.0,
            }
        for name, cost_fn in self._nested:
            cost = cost_fn()
            phases[name] = {
                "wall_s": cost,
                "share": cost / total if total > 0 else 0.0,
                "nested": True,
            }
        unaccounted = max(total - accounted, 0.0)
        return {
            "total_wall_s": total,
            "unaccounted_s": unaccounted,
            "unaccounted_share": (unaccounted / total if total > 0
                                  else 0.0),
            "phases": phases,
        }

    def render(self) -> str:
        """Terminal rendering: one bar row per phase, largest first."""
        doc = self.summary()
        total = doc["total_wall_s"]
        lines = [f"wall-clock profile: {total * 1e3:.1f} ms total"]
        rows = sorted(doc["phases"].items(),
                      key=lambda kv: -kv[1]["wall_s"])
        width = max((len(n) for n, _ in rows), default=0)
        for name, row in rows:
            bar = "#" * int(round(row["share"] * 30))
            nested = "  (nested)" if row.get("nested") else ""
            calls = (f"  {row['calls']:7d} calls"
                     if "calls" in row else " " * 15)
            lines.append(f"  {name:<{width}}  {row['wall_s'] * 1e3:8.2f} ms"
                         f"  {row['share']:6.1%} {bar}{calls}{nested}")
        lines.append(f"  {'(unaccounted)':<{width}}  "
                     f"{doc['unaccounted_s'] * 1e3:8.2f} ms"
                     f"  {doc['unaccounted_share']:6.1%}")
        return "\n".join(lines)

    def chrome_trace_events(self, pid: int = 2) -> List[dict]:
        """Flamegraph-shaped trace-event slices for this profile.

        One Chrome-trace *process* (default pid 2, next to the PE
        timeline at 0 and the network lanes at 1): a root ``run`` slice
        spanning the whole profiled window, child slices for each phase
        laid out left-to-right largest-first, nested sources as
        grandchildren at the origin of the slice they refine.  The
        horizontal axis is *cumulative wall time*, not when the work
        happened — the flamegraph convention.
        """
        doc = self.summary()
        total_us = doc["total_wall_s"] * 1e6
        events: List[dict] = [
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": "wall-clock profile"}},
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": "phases"}},
            {"name": "run", "ph": "X", "pid": pid, "tid": 0,
             "ts": 0.0, "dur": total_us,
             "args": {"unaccounted_s": doc["unaccounted_s"]}},
        ]
        cursor = 0.0
        flat = [(n, r) for n, r in doc["phases"].items()
                if not r.get("nested")]
        flat.sort(key=lambda kv: -kv[1]["wall_s"])
        for name, row in flat:
            dur = row["wall_s"] * 1e6
            if dur <= 0.0:
                continue
            args = {"share": row["share"]}
            if "calls" in row:
                args["calls"] = row["calls"]
            events.append({"name": name, "ph": "X", "pid": pid, "tid": 0,
                           "ts": cursor, "dur": dur, "args": args})
            cursor += dur
        # Nested sources refine the dispatch slices; they are drawn at
        # the root's origin one level deeper (their own row via a
        # second tid keeps Chrome's nesting rules happy even when they
        # straddle phase boundaries).
        for name, row in doc["phases"].items():
            if not row.get("nested"):
                continue
            dur = min(row["wall_s"], doc["total_wall_s"]) * 1e6
            if dur <= 0.0:
                continue
            events.append({"name": name, "ph": "X", "pid": pid, "tid": 1,
                           "ts": 0.0, "dur": dur,
                           "args": {"share": row["share"],
                                    "nested": True}})
        return events

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"WallProfiler(phases={sorted(self.phase_table())}, "
                f"total={self.total_wall_s():.3f}s)")


def install_profiler(engine, profiler: Optional[WallProfiler]) -> None:
    """Attach *profiler* to *engine*'s dispatch loop (None detaches)."""
    engine.profiler = profiler
