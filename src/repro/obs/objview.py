"""Projections-style *object view*: per-chare profiles and advisor.

Charm++'s Projections tool has a per-object usage view that answers the
question the PE/link/run views cannot: *which objects* are over-coarse,
chatty, or misplaced.  This module is that view for the simulated
runtime, built from the object labels the scheduler and fabric stamp on
trace events (see :class:`repro.sim.trace.ObjectFold` for the shared
fold both recorders drive):

* :func:`fold_from_tracer` — replay a batch :class:`~repro.sim.trace.Tracer`
  recording through the shared fold.  Bit-identical to the streaming
  fold a :class:`~repro.sim.trace.TraceAggregator` builds online
  (hypothesis-tested in ``tests/property/test_objview_streaming.py``).
* :class:`ObjectView` — presentation wrapper: JSON dump, text tables,
  totals, and the object×object communication matrix.
* :func:`recommend_decomposition` — the decomposition advisor: flags
  over-coarse objects (grain comparable to the per-step WAN latency, so
  their wait cannot hide behind a peer's compute), over-fine ones
  (per-message overhead dominated) and misplaced ones (traffic with one
  partner predominantly WAN), and — given the run shape — recommends a
  virtualization degree from the paper's masking condition
  ``C·(1 − 1/v) ≥ L`` (validated against the cached Figure-3 panel in
  ``tests/integration/test_objview_advisor.py``).

The batch replay feeds messages first and intervals second.  That is
bit-identical to the interleaved streaming order because (a) all
message counters are integers, (b) queue-wait pairing is FIFO per
sequence id and every execution sharing a trigger seq runs on one PE
(bundle sub-messages, duplicate deliveries), so the k-th pop pairs the
k-th delivery on both paths, and (c) one object's executions are
totally ordered (run-to-completion per PE; migration serializes the
move), so its float accumulators see the same additions in the same
order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.sim.trace import (
    CommEdge,
    ObjectFold,
    ObjectProfile,
    TraceAggregator,
    Tracer,
)

__all__ = [
    "CommEdge",
    "ObjectFold",
    "ObjectProfile",
    "ObjectView",
    "Suggestion",
    "Advice",
    "fold_from_tracer",
    "recommend_decomposition",
]


def fold_from_tracer(tracer: Tracer) -> ObjectFold:
    """Fold a batch :class:`Tracer` recording into per-object profiles.

    Drives the exact hooks :class:`TraceAggregator` calls online, in an
    order proven equivalent (module docstring), so the result is bit
    identical to the streaming fold of the same run.
    """
    fold = ObjectFold()
    for ev in tracer.messages:
        local = ev.src_pe == ev.dst_pe
        if ev.kind == "send":
            fold.on_send(ev.size, ev.crossed_wan, local,
                         ev.src_obj, ev.dst_obj)
        elif ev.kind == "deliver":
            fold.on_deliver(ev.time, ev.seq, ev.size, ev.crossed_wan,
                            local, ev.dst_obj)
        else:
            fold.on_drop(ev.src_obj)
    for iv in tracer.intervals:
        fold.on_begin(iv.start, iv.obj, iv.trigger)
        fold.on_exec(iv.obj, iv.entry, iv.duration)
    return fold


def _fold_of(source: Union[ObjectFold, Tracer, TraceAggregator,
                           "ObjectView"]) -> ObjectFold:
    """Accept any object-view source and return its fold."""
    if isinstance(source, ObjectView):
        return source.fold
    if isinstance(source, ObjectFold):
        return source
    if isinstance(source, Tracer):
        return fold_from_tracer(source)
    objview = getattr(source, "objview", None)
    if objview is None:
        raise ValueError(
            "source has no object statistics (TraceAggregator built "
            "with objects=False?)")
    return objview


class ObjectView:
    """Presentation wrapper around an :class:`ObjectFold`.

    Construct from whichever recorder the run kept:
    ``ObjectView.from_source(tracer_or_aggregator)``.
    """

    def __init__(self, fold: ObjectFold, makespan_s: float = 0.0) -> None:
        self.fold = fold
        self.makespan_s = makespan_s

    @classmethod
    def from_source(cls, source: Union[ObjectFold, Tracer,
                                       TraceAggregator]) -> "ObjectView":
        makespan = 0.0
        if isinstance(source, (Tracer, TraceAggregator)):
            makespan = source.makespan()
        return cls(_fold_of(source), makespan_s=makespan)

    # -- queries ---------------------------------------------------------

    @property
    def profiles(self) -> Dict[str, ObjectProfile]:
        return self.fold.profiles

    @property
    def matrix(self) -> Dict[Tuple[str, str], CommEdge]:
        return self.fold.matrix

    def totals(self) -> Dict[str, object]:
        """Aggregate counters across all tracked objects."""
        profs = self.fold.profiles.values()
        return {
            "objects": len(self.fold.profiles),
            "executions": sum(p.executions for p in profs),
            "compute_s": self.fold.total_compute_s(),
            "queue_wait_s": sum(p.queue_wait_s for p in profs),
            "bytes_sent": sum(p.bytes_sent for p in profs),
            "wan_bytes_sent": sum(p.bytes_sent_wan for p in profs),
            "matrix_edges": len(self.fold.matrix),
            "makespan_s": self.makespan_s,
        }

    def to_dict(self) -> Dict[str, object]:
        out = self.fold.to_dict()
        out["totals"] = self.totals()
        return out

    # -- rendering -------------------------------------------------------

    def render(self, top: int = 10) -> str:
        """Text object view: top-compute table plus matrix hot spots."""
        lines: List[str] = []
        t = self.totals()
        lines.append(
            f"object view: {t['objects']} objects, "
            f"{t['executions']} executions, "
            f"{t['compute_s'] * 1e3:.3f} ms compute"
            + (f", makespan {self.makespan_s * 1e3:.3f} ms"
               if self.makespan_s else ""))
        profs = self.fold.top_by_compute(top)
        if profs:
            lines.append("")
            lines.append(f"{'object':<16} {'execs':>6} {'compute_ms':>11} "
                         f"{'p50_grain_us':>13} {'p95_grain_us':>13} "
                         f"{'wait_ms':>8} {'wan_out_kB':>11} "
                         f"{'wan_in_kB':>10}")
            for p in profs:
                lines.append(
                    f"{p.obj:<16} {p.executions:>6} "
                    f"{p.compute_s * 1e3:>11.3f} "
                    f"{p.grain_quantile(0.5) * 1e6:>13.1f} "
                    f"{p.grain_quantile(0.95) * 1e6:>13.1f} "
                    f"{p.queue_wait_s * 1e3:>8.3f} "
                    f"{p.bytes_sent_wan / 1e3:>11.1f} "
                    f"{p.bytes_recv_wan / 1e3:>10.1f}")
        edges = sorted(self.fold.matrix.values(),
                       key=lambda e: (-e.bytes, e.src, e.dst))[:top]
        if edges:
            lines.append("")
            lines.append(f"{'src -> dst':<34} {'msgs':>6} {'kB':>9} "
                         f"{'wan_msgs':>9} {'wan_kB':>9}")
            for e in edges:
                lines.append(
                    f"{e.src + ' -> ' + e.dst:<34} {e.messages:>6} "
                    f"{e.bytes / 1e3:>9.1f} {e.wan_messages:>9} "
                    f"{e.wan_bytes / 1e3:>9.1f}")
        return "\n".join(lines)


# -- decomposition advisor ----------------------------------------------------

@dataclass(frozen=True)
class Suggestion:
    """One advisor finding about one object."""

    obj: str
    #: ``"split"`` (over-coarse), ``"merge"`` (over-fine) or
    #: ``"migrate"`` (dominant WAN partner).
    action: str
    reason: str
    #: Predicted critical-path seconds recovered if applied; the ranking
    #: key (largest first).
    predicted_savings_s: float
    #: For ``migrate``: the partner object to co-locate with.
    partner: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "obj": self.obj,
            "action": self.action,
            "reason": self.reason,
            "predicted_savings_s": self.predicted_savings_s,
        }
        if self.partner is not None:
            out["partner"] = self.partner
        return out


@dataclass(frozen=True)
class Advice:
    """Advisor output: ranked suggestions plus the aggregate direction."""

    suggestions: List[Suggestion]
    #: ``"finer"`` (decompose more), ``"coarser"`` (merge), ``"keep"``.
    direction: str
    #: Total objects the masking condition asks for (``None`` when the
    #: run shape — ``num_pes``/``steps`` — was not provided).
    recommended_objects: Optional[int] = None
    #: Inputs echoed for the report/ledger.
    params: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "direction": self.direction,
            "recommended_objects": self.recommended_objects,
            "suggestions": [s.to_dict() for s in self.suggestions],
            "params": dict(self.params),
        }


def _recommended_degree(compute_per_pe_step: float, wan_latency_s: float,
                        overhead_s: float, num_pes: int,
                        grain_floor_factor: float) -> int:
    """Total objects from the paper's masking condition.

    With ``v`` objects per PE and per-PE per-step compute ``C``, an
    object's one-way WAN wait ``L`` hides behind its peers when
    ``C·(1 − 1/v) ≥ L``; solve for the smallest such ``v``, capped where
    grain ``C/v`` would sink below ``grain_floor_factor ×`` the
    per-message overhead (over-fine regime).
    """
    c = compute_per_pe_step
    if c <= 0.0:
        return num_pes
    g_min = grain_floor_factor * overhead_s
    v_max = max(1, int(c / g_min)) if g_min > 0 else 1 << 30
    if wan_latency_s <= 0.0:
        v = 1
    elif wan_latency_s >= c:
        # Latency exceeds a whole step's compute: no degree fully masks
        # it; ask for the finest grain that is not overhead-bound.
        v = v_max
    else:
        v = math.ceil(1.0 / (1.0 - wan_latency_s / c))
    return max(1, min(v, v_max)) * num_pes


def recommend_decomposition(
        source: Union[ObjectFold, Tracer, TraceAggregator, "ObjectView"],
        wan_latency_s: float,
        *,
        overhead_s: float = 2e-6,
        num_pes: Optional[int] = None,
        steps: Optional[int] = None,
        blame: Optional[Mapping[str, Mapping[str, float]]] = None,
        coarse_ratio: float = 1.0,
        fine_ratio: float = 4.0,
        migrate_ratio: float = 0.5,
        grain_floor_factor: float = 8.0,
) -> Advice:
    """Flag over-coarse / over-fine / misplaced objects, ranked.

    Parameters
    ----------
    source:
        Anything holding object statistics: an :class:`ObjectFold`, a
        batch :class:`Tracer`, a :class:`TraceAggregator` (with object
        stats on) or an :class:`ObjectView`.
    wan_latency_s:
        One-way per-step WAN latency of the run (the wait a finer
        decomposition would mask).
    overhead_s:
        Fixed per-message scheduling cost (``RuntimeConfig.scheduler_
        overhead``); the over-fine bound.
    num_pes, steps:
        Run shape; when both are given the masking condition yields
        :attr:`Advice.recommended_objects`.
    blame:
        Optional per-object critical-path blame (from
        :func:`repro.obs.critpath.per_object_blame`): when present, an
        object's measured exposed WAN wait ranks its split suggestion
        instead of the fold-derived upper bound.
    coarse_ratio, fine_ratio, migrate_ratio, grain_floor_factor:
        Heuristic knobs — an object is *over-coarse* when its mean
        grain is at least ``coarse_ratio × wan_latency_s``; *over-fine*
        when its mean grain is at most ``fine_ratio × overhead_s``;
        *misplaced* when at least ``migrate_ratio`` of its traffic is
        WAN bytes with a single partner.
    """
    fold = _fold_of(source)
    suggestions: List[Suggestion] = []
    split_savings = 0.0
    merge_savings = 0.0

    # Heaviest partner per object from the sparse matrix (both ways).
    partner_wan: Dict[str, Tuple[str, int, int]] = {}
    partner_total: Dict[str, int] = {}
    for (src, dst), cell in fold.matrix.items():
        for me, other in ((src, dst), (dst, src)):
            partner_total[me] = partner_total.get(me, 0) + cell.bytes
            best = partner_wan.get(me)
            if best is None or cell.wan_bytes > best[1]:
                partner_wan[me] = (other, cell.wan_bytes, cell.wan_messages)

    for obj in sorted(fold.profiles):
        p = fold.profiles[obj]
        if p.executions == 0:
            continue
        grain = p.mean_grain_s
        obj_blame = blame.get(obj) if blame is not None else None

        if wan_latency_s > 0.0 and grain >= coarse_ratio * wan_latency_s:
            if obj_blame is not None:
                savings = float(obj_blame.get("wan_wait_s", 0.0))
            else:
                # Upper bound: every inbound WAN wait could hide behind
                # a peer's grain if this object were split.
                savings = wan_latency_s * p.msgs_recv_wan
            if savings > 0.0:
                suggestions.append(Suggestion(
                    obj=obj, action="split",
                    reason=(f"mean grain {grain * 1e3:.3f} ms >= "
                            f"{coarse_ratio:g}x WAN latency "
                            f"{wan_latency_s * 1e3:.3f} ms: too coarse "
                            f"to overlap"),
                    predicted_savings_s=savings))
                split_savings += savings
        elif grain <= fine_ratio * overhead_s:
            # Merging pairs halves the per-message scheduling cost.
            savings = overhead_s * p.executions / 2.0
            suggestions.append(Suggestion(
                obj=obj, action="merge",
                reason=(f"mean grain {grain * 1e6:.2f} us <= "
                        f"{fine_ratio:g}x per-message overhead "
                        f"{overhead_s * 1e6:.2f} us: overhead dominated"),
                predicted_savings_s=savings))
            merge_savings += savings

        best = partner_wan.get(obj)
        total = partner_total.get(obj, 0)
        if (best is not None and total > 0
                and best[1] >= migrate_ratio * total):
            partner, wan_bytes, wan_msgs = best
            suggestions.append(Suggestion(
                obj=obj, action="migrate",
                reason=(f"{wan_bytes / 1e3:.1f} kB of "
                        f"{total / 1e3:.1f} kB total traffic is WAN "
                        f"with {partner}: co-locate"),
                predicted_savings_s=wan_latency_s * wan_msgs,
                partner=partner))

    suggestions.sort(key=lambda s: (-s.predicted_savings_s, s.obj,
                                    s.action))

    recommended = None
    if num_pes and steps:
        c_pe = fold.total_compute_s() / (num_pes * steps)
        recommended = _recommended_degree(
            c_pe, wan_latency_s, overhead_s, num_pes, grain_floor_factor)

    current = len(fold.profiles)
    if recommended is not None and current:
        if recommended > current:
            direction = "finer"
        elif recommended < current:
            direction = "coarser"
        else:
            direction = "keep"
    elif split_savings > merge_savings and split_savings > 0.0:
        direction = "finer"
    elif merge_savings > 0.0:
        direction = "coarser"
    else:
        direction = "keep"

    return Advice(
        suggestions=suggestions,
        direction=direction,
        recommended_objects=recommended,
        params={
            "wan_latency_s": wan_latency_s,
            "overhead_s": overhead_s,
            "coarse_ratio": coarse_ratio,
            "fine_ratio": fine_ratio,
            "migrate_ratio": migrate_ratio,
        })
