"""The run ledger: structured v2 records of every traced run.

PRs 2-7 gave single runs deep observability; the ledger is what makes
runs *comparable*.  Every traced run can emit one compact
:class:`~repro.bench.trajectory.RunRecord` (schema 2) carrying

* the config digest (aligning re-runs of the same configuration),
* the **full critical-path decomposition** — window totals for every
  component of :data:`repro.obs.critpath.COMPONENTS`, summed so the
  exact partition invariant survives (components total to ``wall_s``
  with ``residual_s == 0.0`` on the dyadic grids the property tests
  exercise),
* the network roll-up (``extra["net"]``: lanes, WAN crossings,
  busy/queue seconds) from the flight recorder's link fold,
* health episodes (``extra["health"]``: per-rule and per-severity
  counts from the watchdog + governor),
* the wall-clock phase profile from the self-profiler, when one ran.

Records are appended flock-safe to the existing trajectory log (the
same ``BENCH_critpath.json`` machinery, same advisory lock + atomic
rename) and can additionally be **content-addressed** alongside the
:class:`~repro.bench.cache.RunCache` entries: the key is the SHA-256 of
the record's canonical JSON minus its wall-clock-dependent fields, so a
byte-identical re-run maps to the same ledger entry, exactly like a
cache hit.  ``repro compare`` (:mod:`repro.obs.diff`) consumes pairs of
these records.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, List, Optional

from repro.bench.trajectory import RunRecord, append_record
from repro.obs.critpath import COMPONENTS, WIRE_COMPONENTS

#: Ledger records are trajectory records with this schema number.
LEDGER_SCHEMA = 2

#: Content-addressed ledger entries live here, next to the run cache's
#: two-level fanout (the default cache root is ``.repro-cache``).
LEDGER_SUBDIR = "ledger"


def attribution_totals(steps) -> Dict[str, Any]:
    """Window totals of a per-step attribution, partition preserved.

    Sums each component across the given
    :class:`~repro.obs.critpath.StepAttribution` steps (all steps — no
    warmup trimming, so two runs of different lengths still diff
    honestly per step), then totals the component sums in the fixed
    :data:`~repro.obs.critpath.COMPONENTS` order.  On the dyadic grids
    of the property tests every addition is exact, so ``residual_s`` —
    the window wall time minus the component total — is exactly ``0.0``;
    on real runs it is float noise, recorded rather than hidden.
    """
    comp = {k: 0.0 for k in COMPONENTS}
    wall = 0.0
    for att in steps:
        wall += att.wall
        for k in COMPONENTS:
            comp[k] += getattr(att, k)
    out: Dict[str, Any] = {"steps": len(steps), "wall_s": wall}
    for k in COMPONENTS:
        out[f"{k}_s"] = comp[k]
    out["wan_flight_s"] = sum(comp[k] for k in WIRE_COMPONENTS)
    total = 0.0
    for k in COMPONENTS:
        total += comp[k]
    out["residual_s"] = wall - total
    return out


def net_rollup(env) -> Optional[Dict[str, Any]]:
    """WAN roll-up from the flight recorder's online link fold.

    ``None`` when the environment has no aggregator or saw no hop
    ledgers (e.g. ``stats=False`` runs, or zero-latency configs whose
    chain never stamps WAN hops).
    """
    agg = getattr(env, "aggregator", None)
    usage = getattr(agg, "link_usage", None)
    links = usage() if usage is not None else {}
    if not links:
        return None
    wan = [u for u in links.values() if u.wan]
    return {
        "lanes": len(links),
        "wan_lanes": len(wan),
        "wan_crossings": sum(u.crossings for u in wan),
        "wan_busy_s": sum(u.busy_s for u in wan),
        "wan_queue_s": sum(u.queue_s for u in wan),
    }


def objects_rollup(env, blame=None) -> Optional[Dict[str, Any]]:
    """Per-object roll-up from the aggregator's streaming object fold.

    Compact enough to commit — totals plus the top objects by compute —
    and, when per-object critical-path *blame* is supplied
    (:func:`repro.obs.critpath.per_object_blame` output), the full
    blame mapping rides along so ``repro compare`` can diff which
    object's exposed WAN wait moved.  ``None`` when the environment
    kept no object statistics (``stats=False`` or ``object_stats=False``
    runs).
    """
    agg = getattr(env, "aggregator", None)
    fold = getattr(agg, "objview", None)
    if fold is None or not fold.profiles:
        return None
    out: Dict[str, Any] = {
        "tracked": len(fold.profiles),
        "compute_s": fold.total_compute_s(),
        "matrix_edges": len(fold.matrix),
        "top_by_compute": [
            {"obj": p.obj, "compute_s": p.compute_s,
             "executions": p.executions,
             "p95_grain_s": p.grain_quantile(0.95)}
            for p in fold.top_by_compute(5)],
    }
    if blame is not None:
        out["blame"] = {obj: dict(parts)
                        for obj, parts in sorted(blame.items())}
    return out


def health_rollup(events) -> Optional[Dict[str, Any]]:
    """Compact digest of watchdog/governor episodes; ``None`` if none.

    Counts per rule and per severity rather than the full event list:
    the ledger is meant to stay small enough to commit, and the counts
    are what a diff cares about ("candidate fired retransmit-storm
    twice, baseline never did").
    """
    events = list(events)
    if not events:
        return None
    by_rule: Dict[str, int] = {}
    by_severity: Dict[str, int] = {}
    for e in events:
        by_rule[e.rule] = by_rule.get(e.rule, 0) + 1
        by_severity[e.severity] = by_severity.get(e.severity, 0) + 1
    return {"events": len(events), "by_rule": by_rule,
            "by_severity": by_severity}


def _median_step_s(result) -> float:
    """Median steady-state step time from a result's completion times."""
    times = [float(t) for t in result.step_times]
    warmup = getattr(result, "warmup", 0)
    window = times[warmup:] if len(times) > warmup + 1 else times
    diffs = sorted(b - a for a, b in zip(window, window[1:]))
    if not diffs:
        return float(result.time_per_step)
    mid = len(diffs) // 2
    if len(diffs) % 2:
        return diffs[mid]
    return (diffs[mid - 1] + diffs[mid]) / 2.0


def build_run_record(*, name: str, config: Dict[str, Any], result, env,
                     steps_attribution=None, profiler=None,
                     objects_blame=None,
                     extra: Optional[Dict[str, Any]] = None) -> RunRecord:
    """Assemble a schema-2 ledger record from one completed run.

    Parameters
    ----------
    name, config:
        Display name and the digestible configuration dict (use the
        same key set as :mod:`repro.bench.harness` so ledger records
        and trajectory records of the same run share a digest).
    result:
        The application's run result (step times, warmup).
    env:
        The :class:`~repro.grid.environment.GridEnvironment` the run
        used; supplies the aggregator, health events, and profiler.
    steps_attribution:
        Per-step critical-path attribution
        (:func:`repro.obs.critpath.per_step_attribution` output); when
        given, its window totals become the record's ``critpath``.
    profiler:
        A :class:`~repro.obs.profiler.WallProfiler` whose summary rides
        along as the record's ``profile``; defaults to the
        environment's own, when one is attached.
    objects_blame:
        Optional per-object critical-path blame
        (:func:`repro.obs.critpath.per_object_blame` output); folded
        into the record's ``extra["objects"]`` roll-up.
    extra:
        Additional entries merged into the record's ``extra`` dict.
    """
    critpath = (attribution_totals(steps_attribution)
                if steps_attribution is not None else None)
    compute_share = None
    if critpath is not None and critpath["wall_s"] > 0:
        compute_share = critpath["compute_s"] / critpath["wall_s"]
    agg = getattr(env, "aggregator", None)
    rec_extra: Dict[str, Any] = {
        "time_per_step_mean_s": float(result.time_per_step),
        **(extra or {}),
    }
    net = net_rollup(env)
    if net is not None:
        rec_extra.setdefault("net", net)
    health = health_rollup(getattr(env, "health_events", ()))
    if health is not None:
        rec_extra.setdefault("health", health)
    objects = objects_rollup(env, blame=objects_blame)
    if objects is not None:
        rec_extra.setdefault("objects", objects)
    if profiler is None:
        profiler = getattr(env, "profiler", None)
    return RunRecord(
        name=name, config=config,
        time_per_step_s=_median_step_s(result),
        masked_fraction=(agg.masked_latency_fraction
                         if agg is not None and agg.enabled else None),
        critpath_compute_share=compute_share,
        extra=rec_extra,
        schema=LEDGER_SCHEMA,
        critpath=critpath,
        profile=profiler.summary() if profiler is not None else None,
    )


def ledger_key(record: RunRecord) -> str:
    """Content hash identifying *record*'s deterministic payload.

    Canonical-JSON SHA-256 with the wall-clock-dependent fields
    (``created``, ``profile``, ``extra``) removed: a byte-identical
    re-run of the same configuration produces the same key, so storing
    it is idempotent — exactly the :mod:`repro.bench.cache` contract.
    """
    doc = record.to_dict()
    doc.pop("created", None)
    doc.pop("profile", None)
    doc.pop("extra", None)
    canon = json.dumps(doc, sort_keys=True, separators=(",", ":"),
                       default=str)
    return hashlib.sha256(canon.encode()).hexdigest()


def store_record(record: RunRecord, root: str = ".repro-cache") -> str:
    """Content-address *record* under ``root/ledger/``; returns the path.

    Same layout and atomicity discipline as the run cache: two-level
    fanout, tempfile + rename, idempotent for identical runs.
    """
    key = ledger_key(record)
    path = os.path.join(root, LEDGER_SUBDIR, key[:2], key + ".json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    doc = {"key": key, "schema": LEDGER_SCHEMA, "record": record.to_dict()}
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_stored(path: str) -> RunRecord:
    """Load one content-addressed ledger entry back into a record."""
    with open(path) as fh:
        doc = json.load(fh)
    return RunRecord.from_dict(doc["record"])


def append_ledger(record: RunRecord, path: str, dedup: bool = False,
                  cache_root: Optional[str] = None) -> int:
    """Append a ledger record to a trajectory file (flock-safe).

    ``dedup`` defaults to off here — a ledger file built for an A/B
    comparison *wants* both records even when the runs are identical
    (the all-neutral self-compare is the CI smoke's whole point).  Pass
    ``cache_root`` to also store the record content-addressed alongside
    the run cache.
    """
    count = append_record(record, path=path, dedup=dedup)
    if cache_root is not None:
        store_record(record, root=cache_root)
    return count


def records_from_file(path: str) -> List[RunRecord]:
    """Records from *path*: a trajectory array, a single record dict,
    or a content-addressed ledger entry — whichever the file holds."""
    with open(path) as fh:
        raw = json.load(fh)
    if isinstance(raw, list):
        return [RunRecord.from_dict(d) for d in raw]
    if isinstance(raw, dict) and "record" in raw:
        return [RunRecord.from_dict(raw["record"])]
    if isinstance(raw, dict):
        return [RunRecord.from_dict(raw)]
    raise ValueError(f"{path}: not a trajectory array or record object")
