"""Differential run analysis: explain *why* two runs differ.

``repro bench-diff`` says a run got 12 % slower; this module says the
12 % is 9 % retransmit stall and 3 % stripe pacing.  Given two ledger
records (:mod:`repro.obs.ledger`, trajectory schema 2),
:func:`compare_records` aligns their critical-path decompositions and
diffs them with **exact attribution**: the per-component virtual-time
deltas sum to the total time-per-step delta with ``residual == 0.0``
wherever the underlying arithmetic is exact (dyadic grids in the
property tests; identical records in the CI self-compare), and the
residual is *reported*, never absorbed, everywhere else.

The exactness is by construction, not hope: per-step values divide each
component's window total by the window's step count, the totals on each
side are the same fixed-order sum over
:data:`~repro.obs.critpath.COMPONENTS`, and the comparison's residual
is ``(candidate_total - baseline_total) - sum(component deltas)`` — the
same telescoping discipline the single-run attribution invariant uses.

Each component gets a verdict — ``regressed`` / ``improved`` /
``neutral`` — against a threshold scaled by the baseline's total step
time (a 2 % swing of the *step* is interesting; 2 % of a nanoseconds-
sized component is noise).  Wall-clock phase profiles and network
roll-ups diff alongside, informationally: wall time is honest about
being machine-dependent, so it never drives a verdict.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.bench.trajectory import RunRecord
from repro.obs.critpath import COMPONENTS

#: Relative threshold: a component delta within this fraction of the
#: baseline's total step time is neutral.
DEFAULT_THRESHOLD = 0.02

#: Absolute floor under which any delta is neutral regardless of the
#: relative threshold (guards zero-ish baselines).
DEFAULT_ABS_FLOOR_S = 1e-9

REGRESSED, IMPROVED, NEUTRAL = "regressed", "improved", "neutral"


def _verdict(delta_s: float, scale_s: float) -> str:
    if abs(delta_s) <= scale_s:
        return NEUTRAL
    return REGRESSED if delta_s > 0 else IMPROVED


@dataclass
class ComponentDelta:
    """One critical-path component's per-step diff."""

    component: str
    baseline_s: float
    candidate_s: float
    delta_s: float
    verdict: str

    def to_dict(self) -> Dict[str, Any]:
        return {"component": self.component,
                "baseline_s": self.baseline_s,
                "candidate_s": self.candidate_s,
                "delta_s": self.delta_s,
                "verdict": self.verdict}


@dataclass
class RunComparison:
    """Outcome of aligning two ledger records.

    All component values are virtual seconds *per step* (each side's
    window totals divided by its own step count, so runs of different
    lengths compare honestly).
    """

    baseline: RunRecord
    candidate: RunRecord
    components: List[ComponentDelta]
    baseline_step_s: float
    candidate_step_s: float
    delta_step_s: float
    #: (candidate_total - baseline_total) - sum(component deltas):
    #: exactly 0.0 under exact arithmetic, float noise otherwise.
    residual_s: float
    verdict: str
    threshold: float
    abs_floor_s: float
    #: phase -> {baseline_s, candidate_s, delta_s} wall-clock diffs
    #: (informational: never drives a verdict).
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: net-rollup key -> {baseline, candidate, delta}.
    net: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: object label -> per-object critical-path blame diff (virtual
    #: seconds over each side's whole window):
    #: {total_baseline_s, total_candidate_s, total_delta_s,
    #:  wan_baseline_s, wan_candidate_s, wan_delta_s}.  Present only
    #: when both ledger records carry the ``extra["objects"]["blame"]``
    #: roll-up; informational, never drives a verdict.
    objects: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def config_changed(self) -> bool:
        return self.baseline.digest != self.candidate.digest

    @property
    def all_neutral(self) -> bool:
        """True when the total and every component verdict is neutral."""
        return (self.verdict == NEUTRAL
                and all(c.verdict == NEUTRAL for c in self.components))

    @property
    def exact(self) -> bool:
        """Whether the attribution closed with zero residual."""
        return self.residual_s == 0.0

    # -- rendering --------------------------------------------------------

    def render_components(self) -> str:
        """The per-component table alone (bench-diff embeds this)."""
        width = max(len(c.component) for c in self.components)
        lines = [f"{'component':<{width}}  {'baseline':>12}  "
                 f"{'candidate':>12}  {'delta':>12}  verdict"]
        for c in self.components:
            lines.append(
                f"{c.component:<{width}}  {c.baseline_s * 1e3:9.4f} ms"
                f"  {c.candidate_s * 1e3:9.4f} ms"
                f"  {c.delta_s * 1e3:+9.4f} ms  {c.verdict}")
        lines.append(
            f"{'total/step':<{width}}  {self.baseline_step_s * 1e3:9.4f} ms"
            f"  {self.candidate_step_s * 1e3:9.4f} ms"
            f"  {self.delta_step_s * 1e3:+9.4f} ms  {self.verdict}")
        lines.append(f"residual {self.residual_s:+.3e} s"
                     + ("  (exact)" if self.exact else ""))
        return "\n".join(lines)

    def render(self) -> str:
        lines = [
            f"baseline  {self.baseline.name}  "
            f"(digest {self.baseline.digest})",
            f"candidate {self.candidate.name}  "
            f"(digest {self.candidate.digest})",
        ]
        if self.config_changed:
            lines.append("note      config digests differ: the comparison "
                         "crosses configurations")
        lines.append("")
        lines.append(self.render_components())
        lines.append("")
        lines.append(
            f"measured median step "
            f"{self.baseline.time_per_step_s * 1e3:.3f} ms -> "
            f"{self.candidate.time_per_step_s * 1e3:.3f} ms")
        if self.phases:
            lines.append("wall-clock phases (informational):")
            for name in sorted(self.phases):
                row = self.phases[name]
                lines.append(
                    f"  {name:<16} {row['baseline_s'] * 1e3:9.2f} ms -> "
                    f"{row['candidate_s'] * 1e3:9.2f} ms "
                    f"({row['delta_s'] * 1e3:+8.2f} ms)")
        if self.net:
            lines.append("net roll-up:")
            for name in sorted(self.net):
                row = self.net[name]
                lines.append(f"  {name:<16} {row['baseline']:g} -> "
                             f"{row['candidate']:g} ({row['delta']:+g})")
        if self.objects:
            moved = sorted(self.objects.items(),
                           key=lambda kv: (-abs(kv[1]["wan_delta_s"]),
                                           kv[0]))[:10]
            lines.append("per-object blame (wan wait, informational):")
            for obj, row in moved:
                lines.append(
                    f"  {obj:<16} {row['wan_baseline_s'] * 1e3:9.4f} ms -> "
                    f"{row['wan_candidate_s'] * 1e3:9.4f} ms "
                    f"({row['wan_delta_s'] * 1e3:+9.4f} ms)")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        def _side(rec: RunRecord) -> Dict[str, Any]:
            return {"name": rec.name, "digest": rec.digest,
                    "schema": rec.schema,
                    "time_per_step_s": rec.time_per_step_s,
                    "masked_fraction": rec.masked_fraction,
                    "steps": (rec.critpath or {}).get("steps")}

        return {
            "schema": 1,
            "baseline": _side(self.baseline),
            "candidate": _side(self.candidate),
            "threshold": self.threshold,
            "abs_floor_s": self.abs_floor_s,
            "components": [c.to_dict() for c in self.components],
            "total": {
                "baseline_s": self.baseline_step_s,
                "candidate_s": self.candidate_step_s,
                "delta_s": self.delta_step_s,
                "verdict": self.verdict,
            },
            "residual_s": self.residual_s,
            "exact": self.exact,
            "all_neutral": self.all_neutral,
            "config_changed": self.config_changed,
            "phases": self.phases,
            "net": self.net,
            "objects": self.objects,
        }

    def chrome_trace(self) -> Dict[str, Any]:
        """Side-by-side trace: one process per run, component slices.

        Each process shows one *average step* tiled by its critical-path
        components (virtual µs), so chrome://tracing / Perfetto renders
        the diff as two stacked bars to eyeball against each other.
        """
        events: List[dict] = []
        sides = ((1, "baseline", self.baseline, True),
                 (2, "candidate", self.candidate, False))
        for pid, label, rec, is_base in sides:
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "tid": 0, "args": {"name": f"{label}: {rec.name}"}})
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": 0, "args": {"name": "critpath / step"}})
            total = (self.baseline_step_s if is_base
                     else self.candidate_step_s)
            events.append({"name": "step", "ph": "X", "pid": pid, "tid": 0,
                           "ts": 0.0, "dur": total * 1e6,
                           "args": {"digest": rec.digest}})
            cursor = 0.0
            for c in self.components:
                dur = (c.baseline_s if is_base else c.candidate_s) * 1e6
                if dur <= 0.0:
                    continue
                events.append({"name": c.component, "ph": "X", "pid": pid,
                               "tid": 0, "ts": cursor, "dur": dur,
                               "args": {"delta_s": c.delta_s,
                                        "verdict": c.verdict}})
                cursor += dur
        return {"traceEvents": events, "displayTimeUnit": "ms"}


def _per_step(critpath: Dict[str, Any], key: str) -> float:
    steps = max(int(critpath.get("steps", 0)), 1)
    return float(critpath.get(key, 0.0)) / steps


def compare_records(baseline: RunRecord, candidate: RunRecord, *,
                    threshold: float = DEFAULT_THRESHOLD,
                    abs_floor_s: float = DEFAULT_ABS_FLOOR_S
                    ) -> RunComparison:
    """Align two ledger records and diff their critpath decompositions.

    Raises
    ------
    ValueError
        If either record lacks the v2 ``critpath`` payload (v1 records
        can only be compared by ``repro bench-diff``'s headline ratio).
    """
    for label, rec in (("baseline", baseline), ("candidate", candidate)):
        if not rec.critpath:
            raise ValueError(
                f"{label} record {rec.name!r} has no critpath payload "
                f"(schema {rec.schema}); re-run it with --ledger-out or "
                f"a v2-aware harness to enable component diffing")
    b_cp, c_cp = baseline.critpath, candidate.critpath

    b_vals = [_per_step(b_cp, f"{k}_s") for k in COMPONENTS]
    c_vals = [_per_step(c_cp, f"{k}_s") for k in COMPONENTS]
    b_total = 0.0
    for v in b_vals:
        b_total += v
    c_total = 0.0
    for v in c_vals:
        c_total += v
    delta_total = c_total - b_total
    deltas = [c - b for b, c in zip(b_vals, c_vals)]
    delta_sum = 0.0
    for d in deltas:
        delta_sum += d
    residual = delta_total - delta_sum

    scale = max(abs_floor_s, threshold * b_total)
    components = [
        ComponentDelta(component=k, baseline_s=b, candidate_s=c,
                       delta_s=d, verdict=_verdict(d, scale))
        for k, b, c, d in zip(COMPONENTS, b_vals, c_vals, deltas)
    ]

    phases: Dict[str, Dict[str, float]] = {}
    b_ph = (baseline.profile or {}).get("phases", {})
    c_ph = (candidate.profile or {}).get("phases", {})
    for name in sorted(set(b_ph) | set(c_ph)):
        b_s = float(b_ph.get(name, {}).get("wall_s", 0.0))
        c_s = float(c_ph.get(name, {}).get("wall_s", 0.0))
        phases[name] = {"baseline_s": b_s, "candidate_s": c_s,
                        "delta_s": c_s - b_s}

    net: Dict[str, Dict[str, float]] = {}
    b_net = baseline.extra.get("net") or {}
    c_net = candidate.extra.get("net") or {}
    for name in sorted(set(b_net) | set(c_net)):
        b_v, c_v = b_net.get(name, 0), c_net.get(name, 0)
        if isinstance(b_v, (int, float)) and isinstance(c_v, (int, float)):
            net[name] = {"baseline": b_v, "candidate": c_v,
                         "delta": c_v - b_v}

    objects: Dict[str, Dict[str, float]] = {}
    b_blame = (baseline.extra.get("objects") or {}).get("blame") or {}
    c_blame = (candidate.extra.get("objects") or {}).get("blame") or {}
    if b_blame and c_blame:
        for obj in sorted(set(b_blame) | set(c_blame)):
            b_row, c_row = b_blame.get(obj, {}), c_blame.get(obj, {})
            b_tot = float(b_row.get("total_s", 0.0))
            c_tot = float(c_row.get("total_s", 0.0))
            b_wan = float(b_row.get("wan_wait_s", 0.0))
            c_wan = float(c_row.get("wan_wait_s", 0.0))
            objects[obj] = {
                "total_baseline_s": b_tot, "total_candidate_s": c_tot,
                "total_delta_s": c_tot - b_tot,
                "wan_baseline_s": b_wan, "wan_candidate_s": c_wan,
                "wan_delta_s": c_wan - b_wan,
            }

    return RunComparison(
        baseline=baseline, candidate=candidate, components=components,
        baseline_step_s=b_total, candidate_step_s=c_total,
        delta_step_s=delta_total, residual_s=residual,
        verdict=_verdict(delta_total, scale),
        threshold=threshold, abs_floor_s=abs_floor_s,
        phases=phases, net=net, objects=objects)


def write_compare_trace(comparison: RunComparison, path: str) -> None:
    """Validate and write the comparison's Chrome trace to *path*."""
    from repro.obs.export import validate_chrome_trace

    doc = comparison.chrome_trace()
    validate_chrome_trace(doc)
    with open(path, "w") as fh:
        json.dump(doc, fh)
