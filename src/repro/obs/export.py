"""Trace export: Chrome trace-event JSON and a JSON-lines event log.

The batch :class:`~repro.sim.trace.Tracer` holds everything Projections
would: per-PE execution intervals and message lifecycle events.  This
module serializes that record into two interchange formats:

* **Chrome trace-event JSON** (:func:`export_chrome_trace`) — open the
  file in ``chrome://tracing`` or https://ui.perfetto.dev and the
  Figure-2 timeline renders interactively: one track per PE with
  entry-method slices, async spans for WAN flights, instant markers for
  drops and retransmissions.  Format reference: the "Trace Event
  Format" document (JSON Array / JSON Object variants; we emit the
  object form with ``traceEvents``).
* **JSON-lines event log** (:func:`write_event_log`) — one structured
  record per line, trivially greppable / loadable into pandas, for
  offline analysis that outgrows the built-in queries.

Timestamps are microseconds (the trace-event format's unit); virtual
time zero maps to ts zero.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.obs.health import HealthEvent
from repro.sim.trace import Tracer

#: Event phases this exporter emits (subset of the trace-event format).
_PHASES = {"X", "b", "e", "i", "M", "s", "t", "f", "C"}

_SEC_TO_US = 1e6


def chrome_trace_events(tracer: Tracer,
                        health_events: Optional[Sequence[HealthEvent]] = None
                        ) -> List[Dict[str, Any]]:
    """Build the ``traceEvents`` list for *tracer*'s recorded run.

    *health_events* (e.g. ``env.health_events``) render as
    globally-scoped instant events (``ph="i"``, ``cat="health"``, scope
    ``"g"``) — vertical markers across every PE track at the virtual
    time each watchdog rule fired.

    Emitted events:

    * ``M`` metadata naming the process and one thread per PE;
    * ``X`` complete events for every entry-method execution
      (``cat="exec"``, name ``Chare.entry``);
    * ``b``/``e`` async pairs for every WAN flight window
      (``cat="wan"``, one id per window) so in-flight spans render as
      arcs above the PE tracks;
    * ``i`` instant events for wire drops (``cat="fault"``) and
      retransmissions (second and later sends of one sequence id);
    * ``s``/``f`` flow-event pairs (``cat="causal"``) connecting each
      message send to the entry-method execution its delivery triggered,
      so the viewer draws cause -> effect arrows between PE tracks
      (requires a trace recorded with causal ids, i.e. any trace from
      this runtime; absent ids simply emit no flows);
    * a second ``network`` process (``pid=1``) with one thread per wire
      lane — each WAN link, contended pipe direction and striped stream
      gets its own track — carrying ``X`` slices (``cat="net"``) for
      every hop span the flight recorder stamped (service start to
      arrival), plus ``s``/``f`` flows (``cat="net-flow"``) tying each
      striped chunk to its parent message's delivery on the destination
      PE track (requires a trace recorded with the flight recorder on,
      i.e. any full trace from this runtime);
    * a third ``objects`` process (``pid=2``) with one thread per chare
      — the Projections object view — carrying ``X`` slices
      (``cat="obj"``) for every entry execution on that object's own
      lane regardless of which PE ran it (so migrations read as a
      continuous lane), plus ``C`` counter tracks accumulating the
      object×object communication matrix (total and WAN kB delivered)
      over virtual time (requires a trace recorded with object labels,
      i.e. any full trace from this runtime).
    """
    events: List[Dict[str, Any]] = [{
        "ph": "M", "name": "process_name", "pid": 0, "tid": 0,
        "args": {"name": "repro simulated grid"},
    }]
    pes = sorted({iv.pe for iv in tracer.intervals}
                 | {ev.src_pe for ev in tracer.messages}
                 | {ev.dst_pe for ev in tracer.messages})
    for pe in pes:
        events.append({
            "ph": "M", "name": "thread_name", "pid": 0, "tid": pe,
            "args": {"name": f"PE {pe}"},
        })

    for iv in tracer.intervals:
        events.append({
            "ph": "X", "cat": "exec",
            "name": f"{iv.chare}.{iv.entry}",
            "pid": 0, "tid": iv.pe,
            "ts": iv.start * _SEC_TO_US,
            "dur": iv.duration * _SEC_TO_US,
        })

    for i, (sent, arrived, src, dst) in enumerate(tracer.wan_flight_windows()):
        ident = f"wan-{i}"
        common = {"cat": "wan", "name": f"WAN {src}->{dst}",
                  "pid": 0, "id": ident}
        events.append({**common, "ph": "b", "tid": src,
                       "ts": sent * _SEC_TO_US,
                       "args": {"src_pe": src, "dst_pe": dst}})
        events.append({**common, "ph": "e", "tid": dst,
                       "ts": arrived * _SEC_TO_US})

    seen_sends: set = set()
    for ev in tracer.messages:
        if ev.kind == "drop":
            events.append({
                "ph": "i", "cat": "fault", "name": "drop", "s": "t",
                "pid": 0, "tid": ev.dst_pe, "ts": ev.time * _SEC_TO_US,
                "args": {"src_pe": ev.src_pe, "dst_pe": ev.dst_pe,
                         "tag": ev.tag},
            })
        elif ev.kind == "send" and ev.seq is not None:
            key = (ev.src_pe, ev.dst_pe, ev.seq)
            if key in seen_sends:
                events.append({
                    "ph": "i", "cat": "fault", "name": "retransmit",
                    "s": "t", "pid": 0, "tid": ev.src_pe,
                    "ts": ev.time * _SEC_TO_US,
                    "args": {"src_pe": ev.src_pe, "dst_pe": ev.dst_pe,
                             "tag": ev.tag},
                })
            else:
                seen_sends.add(key)

    # Flow arrows: one per (message, triggered execution) pair.  The
    # flow starts at the first send on the source PE's track and
    # finishes (binding to the enclosing slice, bp="e") at the start of
    # the execution the delivery triggered on the destination track.
    first_send_of: Dict[int, Any] = {}
    for ev in tracer.messages:
        if ev.kind == "send" and ev.seq is not None:
            if ev.seq not in first_send_of:
                first_send_of[ev.seq] = ev
    for iv in tracer.intervals:
        if iv.trigger is None:
            continue
        send_ev = first_send_of.get(iv.trigger)
        if send_ev is None:
            continue
        ident = f"flow-{iv.trigger}-{iv.sid}"
        events.append({
            "ph": "s", "cat": "causal", "name": send_ev.tag or "msg",
            "pid": 0, "tid": send_ev.src_pe, "id": ident,
            "ts": send_ev.time * _SEC_TO_US,
            "args": {"seq": iv.trigger, "cause": send_ev.cause},
        })
        events.append({
            "ph": "f", "bp": "e", "cat": "causal",
            "name": send_ev.tag or "msg",
            "pid": 0, "tid": iv.pe, "id": ident,
            "ts": iv.start * _SEC_TO_US,
            "args": {"sid": iv.sid},
        })

    # Network flight-recorder lanes: a second process with one thread
    # per wire lane, so link/stream occupancy renders under the PE rows.
    hop_events = getattr(tracer, "hops", ())
    if hop_events:
        lanes = sorted({h.device for hev in hop_events for h in hev.hops})
        lane_tid = {lane: tid for tid, lane in enumerate(lanes)}
        events.append({"ph": "M", "name": "process_name", "pid": 1,
                       "tid": 0, "args": {"name": "network"}})
        for lane, tid in lane_tid.items():
            events.append({"ph": "M", "name": "thread_name", "pid": 1,
                           "tid": tid, "args": {"name": lane}})
        for i, hop_ev in enumerate(hop_events):
            for k, h in enumerate(hop_ev.hops):
                args: Dict[str, Any] = {"seq": hop_ev.seq, "kind": h.kind,
                                        "queue_depth": h.queue_depth,
                                        "relay_hop": hop_ev.relay_hop}
                if h.stream is not None:
                    args["stream"] = h.stream
                events.append({
                    "ph": "X", "cat": "net",
                    "name": hop_ev.tag or h.link,
                    "pid": 1, "tid": lane_tid[h.device],
                    "ts": h.dequeue * _SEC_TO_US,
                    "dur": (h.arrive - h.dequeue) * _SEC_TO_US,
                    "args": args,
                })
                if h.kind == "stream":
                    # Tie each striped chunk to the parent message's
                    # delivery on the destination PE track.
                    ident = f"net-{i}-{k}"
                    name = hop_ev.tag or "chunk"
                    events.append({
                        "ph": "s", "cat": "net-flow", "name": name,
                        "pid": 1, "tid": lane_tid[h.device], "id": ident,
                        "ts": h.dequeue * _SEC_TO_US,
                        "args": {"seq": hop_ev.seq, "stream": h.stream}})
                    events.append({
                        "ph": "f", "bp": "e", "cat": "net-flow",
                        "name": name, "pid": 0, "tid": hop_ev.dst_pe,
                        "id": ident, "ts": hop_ev.arrival * _SEC_TO_US,
                        "args": {"seq": hop_ev.seq}})

    # Object lanes: one thread per chare, every execution on its own
    # track no matter which PE ran it — migrations stay one lane.
    objs = sorted({iv.obj for iv in tracer.intervals if iv.obj is not None})
    if objs:
        obj_tid = {obj: tid for tid, obj in enumerate(objs)}
        events.append({"ph": "M", "name": "process_name", "pid": 2,
                       "tid": 0, "args": {"name": "objects"}})
        for obj, tid in obj_tid.items():
            events.append({"ph": "M", "name": "thread_name", "pid": 2,
                           "tid": tid, "args": {"name": obj}})
        for iv in tracer.intervals:
            if iv.obj is None:
                continue
            events.append({
                "ph": "X", "cat": "obj",
                "name": f"{iv.chare}.{iv.entry}",
                "pid": 2, "tid": obj_tid[iv.obj],
                "ts": iv.start * _SEC_TO_US,
                "dur": iv.duration * _SEC_TO_US,
                "args": {"pe": iv.pe},
            })
        # Comm-matrix counters: cumulative object->object traffic as a
        # counter track under the objects process, one sample per
        # labeled delivery.
        cum_bytes = cum_wan = 0
        for ev in tracer.messages:
            if ev.kind != "deliver" or ev.dst_obj is None:
                continue
            cum_bytes += ev.size
            if ev.crossed_wan:
                cum_wan += ev.size
            events.append({
                "ph": "C", "cat": "obj", "name": "object comm",
                "pid": 2, "tid": 0, "ts": ev.time * _SEC_TO_US,
                "args": {"kB": cum_bytes / 1e3, "wan_kB": cum_wan / 1e3},
            })

    for hev in (health_events or ()):
        events.append({
            "ph": "i", "cat": "health", "name": hev.rule, "s": "g",
            "pid": 0, "tid": 0, "ts": hev.t * _SEC_TO_US,
            "args": hev.to_dict(),
        })
    return events


def chrome_trace(tracer: Tracer,
                 health_events: Optional[Sequence[HealthEvent]] = None
                 ) -> Dict[str, Any]:
    """The complete trace-event JSON object for *tracer*."""
    return {"traceEvents": chrome_trace_events(tracer, health_events),
            "displayTimeUnit": "ms"}


def export_chrome_trace(tracer: Tracer,
                        path_or_file: Union[str, IO[str]]) -> Dict[str, Any]:
    """Write the Chrome trace for *tracer* to *path_or_file* (JSON).

    Returns the document just written (handy for validation / tests).
    """
    doc = chrome_trace(tracer)
    if hasattr(path_or_file, "write"):
        json.dump(doc, path_or_file)
    else:
        with open(path_or_file, "w") as fh:
            json.dump(doc, fh)
    return doc


def validate_chrome_trace(doc: Dict[str, Any]) -> None:
    """Raise :class:`~repro.errors.ConfigurationError` on schema breaks.

    Checks the subset of the trace-event format this exporter uses:
    top-level shape, per-phase required keys, numeric timestamps, and
    matched async begin/end pairs.  Used by the unit tests and by
    ``repro trace`` before writing a file.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ConfigurationError("trace document must contain 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ConfigurationError("'traceEvents' must be a list")
    async_open: Dict[Any, int] = {}
    flow_open: Dict[Any, int] = {}
    for n, ev in enumerate(events):
        where = f"traceEvents[{n}]"
        if not isinstance(ev, dict):
            raise ConfigurationError(f"{where} is not an object")
        ph = ev.get("ph")
        if ph not in _PHASES:
            raise ConfigurationError(f"{where}: unknown phase {ph!r}")
        for key in ("name", "pid", "tid"):
            if key not in ev:
                raise ConfigurationError(f"{where}: missing {key!r}")
        if not isinstance(ev["name"], str):
            raise ConfigurationError(f"{where}: 'name' must be a string")
        for key in ("pid", "tid"):
            if not isinstance(ev[key], int):
                raise ConfigurationError(f"{where}: {key!r} must be an int")
        if ph == "M":
            continue
        if "ts" not in ev or not isinstance(ev["ts"], (int, float)):
            raise ConfigurationError(f"{where}: missing numeric 'ts'")
        if ev["ts"] < 0:
            raise ConfigurationError(f"{where}: negative 'ts'")
        if ph == "X":
            if "dur" not in ev or not isinstance(ev["dur"], (int, float)):
                raise ConfigurationError(f"{where}: X event needs 'dur'")
            if ev["dur"] < 0:
                raise ConfigurationError(f"{where}: negative 'dur'")
        elif ph in ("b", "e"):
            if "id" not in ev:
                raise ConfigurationError(f"{where}: async event needs 'id'")
            key = (ev.get("cat"), ev["id"])
            if ph == "b":
                async_open[key] = async_open.get(key, 0) + 1
            else:
                if async_open.get(key, 0) <= 0:
                    raise ConfigurationError(
                        f"{where}: async end without begin (id={ev['id']})")
                async_open[key] -= 1
        elif ph == "i":
            if ev.get("s") not in ("g", "p", "t"):
                raise ConfigurationError(
                    f"{where}: instant event needs scope 's' in g/p/t")
        elif ph == "C":
            series = ev.get("args")
            if not isinstance(series, dict) or not series:
                raise ConfigurationError(
                    f"{where}: counter event needs non-empty 'args'")
            for k, v in series.items():
                if not isinstance(v, (int, float)):
                    raise ConfigurationError(
                        f"{where}: counter series {k!r} must be numeric")
        elif ph in ("s", "t", "f"):
            if "id" not in ev:
                raise ConfigurationError(f"{where}: flow event needs 'id'")
            key = (ev.get("cat"), ev["id"])
            if ph == "s":
                flow_open[key] = flow_open.get(key, 0) + 1
            else:
                if flow_open.get(key, 0) <= 0:
                    raise ConfigurationError(
                        f"{where}: flow {ph!r} without a preceding 's' "
                        f"(id={ev['id']})")
                if ph == "f":
                    flow_open[key] -= 1
    dangling = {k: v for k, v in async_open.items() if v != 0}
    if dangling:
        raise ConfigurationError(
            f"unbalanced async begin/end pairs: {sorted(dangling)}")
    unfinished = {k: v for k, v in flow_open.items() if v != 0}
    if unfinished:
        raise ConfigurationError(
            f"flow starts without a finish: {sorted(unfinished)}")


def write_event_log(tracer: Tracer,
                    path_or_file: Union[str, IO[str]]) -> int:
    """Write a JSON-lines structured event log; returns the line count.

    One record per execution interval (``type="exec"``), one per
    message lifecycle event (``type="message"``), and one per wire
    copy's hop ledger (``type="hops"``, spans inlined), each a flat
    JSON object with times in seconds.
    """
    lines: List[str] = []
    for iv in tracer.intervals:
        lines.append(json.dumps({
            "type": "exec", "pe": iv.pe, "start_s": iv.start,
            "end_s": iv.end, "chare": iv.chare, "entry": iv.entry,
            "sid": iv.sid, "parent": iv.parent, "trigger": iv.trigger,
            "obj": iv.obj,
        }))
    for ev in tracer.messages:
        lines.append(json.dumps({
            "type": "message", "kind": ev.kind, "time_s": ev.time,
            "src_pe": ev.src_pe, "dst_pe": ev.dst_pe, "size": ev.size,
            "tag": ev.tag, "wan": ev.crossed_wan, "seq": ev.seq,
            "cause": ev.cause, "ack_for": ev.ack_for,
            "src_obj": ev.src_obj, "dst_obj": ev.dst_obj,
        }))
    for hop_ev in getattr(tracer, "hops", ()):
        lines.append(json.dumps({
            "type": "hops", "time_s": hop_ev.time,
            "src_pe": hop_ev.src_pe, "dst_pe": hop_ev.dst_pe,
            "size": hop_ev.size, "tag": hop_ev.tag,
            "wan": hop_ev.crossed_wan, "seq": hop_ev.seq,
            "arrival_s": hop_ev.arrival, "relay_hop": hop_ev.relay_hop,
            "arq_attempt": hop_ev.arq_attempt,
            "spans": [h.to_dict() for h in hop_ev.hops],
        }))
    text = "\n".join(lines) + ("\n" if lines else "")
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        with open(path_or_file, "w") as fh:
            fh.write(text)
    return len(lines)
