"""The latency-masking report: the paper's argument as numbers.

Eijkhout's task-graph latency-tolerance work (PAPERS.md) quantifies
masking as an explicit overlap fraction; this module computes and
renders that number — plus utilization and a comm/compute breakdown —
for any run, from either recorder:

* a batch :class:`~repro.sim.trace.Tracer` (post-hoc: pairs WAN
  windows, then measures destination busy time inside each), or
* a streaming :class:`~repro.sim.trace.TraceAggregator` (the same
  quantities, already folded online).

Both paths produce a :class:`LatencyMaskingReport` with a text rendering
for terminals and ``to_dict()`` for ``--json`` consumers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.sim.trace import EntryProfile, TraceAggregator, Tracer


def masked_latency_fraction(tracer: Tracer) -> Tuple[float, float, float]:
    """Batch overlap computation from a full trace.

    Returns ``(masked_fraction, flight_time, masked_time)`` where
    *masked_fraction* is the share of total WAN in-flight seconds during
    which the destination PE was executing entry methods.
    """
    flight = 0.0
    masked = 0.0
    for sent, arrived, _src, dst in tracer.wan_flight_windows():
        span = arrived - sent
        if span <= 0:
            continue
        flight += span
        masked += tracer.busy_during(dst, sent, arrived)
    fraction = masked / flight if flight > 0 else 0.0
    return fraction, flight, masked


@dataclass
class LatencyMaskingReport:
    """One run's observability digest."""

    makespan_s: float
    pes: int
    executions: int
    busy_time_s: float
    #: pe -> busy fraction of the makespan.
    utilization: Dict[int, float]
    #: Top entry methods by total time: (chare, entry, calls, total_s).
    top_entries: List[Tuple[str, str, int, float]]
    wan_windows: int
    wan_flight_time_s: float
    wan_masked_time_s: float
    masked_fraction: float
    retransmits: int = 0
    dups_suppressed: int = 0
    #: Optional critical-path section (``repro critpath`` fills it):
    #: steady-state component shares from
    #: :func:`repro.obs.critpath.summarize_attribution` and, when the
    #: knee analyzer ran, its :class:`~repro.obs.critpath.KneePrediction`
    #: digest under ``"knee"``.
    critpath: Optional[Dict[str, object]] = None
    #: Optional health section (``repro health`` fills it): the watchdog
    #: and governor events fired during the run, as
    #: :meth:`~repro.obs.health.HealthEvent.to_dict` dicts, plus the
    #: final observability level and overhead fraction.
    health: Optional[Dict[str, object]] = None
    #: Optional telemetry section: the
    #: :meth:`~repro.obs.timeseries.TelemetrySampler.summary` digest.
    timeseries: Optional[Dict[str, object]] = None
    #: Optional network flight-recorder section (``repro netview`` fills
    #: it): per-lane utilization, per-link roll-ups and the top wire
    #: messages, from :func:`netview_section`.
    net: Optional[Dict[str, object]] = None
    #: Optional object-view section (``repro objview`` fills it): the
    #: per-chare totals, top objects by compute, per-object
    #: critical-path blame and the decomposition advisor's verdict,
    #: from :func:`objview_section`.
    objects: Optional[Dict[str, object]] = None
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def mean_utilization(self) -> float:
        if not self.utilization:
            return 0.0
        return sum(self.utilization.values()) / len(self.utilization)

    @property
    def compute_fraction(self) -> float:
        """Busy share of total PE-seconds (compute side of the split)."""
        denom = self.makespan_s * self.pes
        return self.busy_time_s / denom if denom > 0 else 0.0

    @property
    def degenerate_label(self) -> Optional[str]:
        """Name for the WAN-overlap edge cases, ``None`` when ordinary.

        * ``"no-wan-traffic"`` — nothing ever crossed the wide area (a
          single-cluster or single-PE run): the masked fraction is
          vacuously 0 and should not be read as "nothing was masked".
        * ``"fully-masked"`` — every in-flight second was hidden behind
          destination work (the paper's ideal flat-region case).
        * ``"nothing-masked"`` — WAN flights happened but the
          destination idled through all of them (1 object/PE territory).
        """
        if self.wan_windows == 0 or self.wan_flight_time_s <= 0.0:
            return "no-wan-traffic"
        if self.wan_masked_time_s >= self.wan_flight_time_s:
            return "fully-masked"
        if self.wan_masked_time_s <= 0.0:
            return "nothing-masked"
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "makespan_s": self.makespan_s,
            "pes": self.pes,
            "executions": self.executions,
            "busy_time_s": self.busy_time_s,
            "mean_utilization": self.mean_utilization,
            "compute_fraction": self.compute_fraction,
            "utilization": {str(pe): u
                            for pe, u in sorted(self.utilization.items())},
            "top_entries": [
                {"chare": c, "entry": e, "calls": n, "total_s": t}
                for c, e, n, t in self.top_entries],
            "wan": {
                "windows": self.wan_windows,
                "flight_time_s": self.wan_flight_time_s,
                "masked_time_s": self.wan_masked_time_s,
                "masked_fraction": self.masked_fraction,
                "retransmits": self.retransmits,
                "dups_suppressed": self.dups_suppressed,
                "degenerate": self.degenerate_label,
            },
            **({"critpath": self.critpath}
               if self.critpath is not None else {}),
            **({"health": self.health}
               if self.health is not None else {}),
            **({"timeseries": self.timeseries}
               if self.timeseries is not None else {}),
            **({"net": self.net} if self.net is not None else {}),
            **({"objects": self.objects}
               if self.objects is not None else {}),
            **self.extra,
        }

    def render(self) -> str:
        """Human-readable report (the ``repro trace`` default output)."""
        lines = [
            "Latency-masking report",
            "----------------------",
            f"makespan            {self.makespan_s * 1e3:10.3f} ms",
            f"PEs active          {self.pes:10d}",
            f"entry executions    {self.executions:10d}",
            f"busy PE-time        {self.busy_time_s * 1e3:10.3f} ms "
            f"({self.compute_fraction:.1%} of PE-seconds)",
            f"mean utilization    {self.mean_utilization:10.1%}",
        ]
        if self.utilization:
            worst = min(self.utilization, key=self.utilization.get)
            best = max(self.utilization, key=self.utilization.get)
            lines.append(
                f"utilization range   PE {worst} {self.utilization[worst]:.1%}"
                f"  ..  PE {best} {self.utilization[best]:.1%}")
        lines += [
            "",
            f"WAN flight windows  {self.wan_windows:10d}",
            f"WAN in-flight time  {self.wan_flight_time_s * 1e3:10.3f} ms",
            f"  masked (dst busy) {self.wan_masked_time_s * 1e3:10.3f} ms",
            f"  masked fraction   {self.masked_fraction:10.1%}",
        ]
        label = self.degenerate_label
        if label is not None:
            note = {
                "no-wan-traffic": "no WAN traffic: masked fraction is "
                                  "vacuous",
                "fully-masked": "fully masked: every in-flight second "
                                "was hidden",
                "nothing-masked": "nothing masked: destination idled "
                                  "through every flight",
            }[label]
            lines.append(f"  note              {note}")
        if self.retransmits or self.dups_suppressed:
            lines.append(f"retransmits         {self.retransmits:10d}")
            lines.append(f"dups suppressed     {self.dups_suppressed:10d}")
        if self.critpath is not None:
            lines += ["", "Critical path (steady state)"]
            for key, title in (("compute", "compute"),
                               ("relay_overhead", "relay overhead"),
                               ("wan_flight", "WAN in-flight"),
                               ("propagation", "  propagation"),
                               ("bandwidth_serialization", "  serialization"),
                               ("stripe_pacing", "  stripe pacing"),
                               ("device_queue", "  device queue"),
                               ("queue_serial", "queue/serialization"),
                               ("retransmit_stall", "retransmit stall")):
                share = self.critpath.get(f"{key}_share")
                secs = self.critpath.get(f"{key}_s")
                if share is not None and secs is not None:
                    lines.append(f"  {title:18s}{float(secs) * 1e3:10.3f} ms "
                                 f"({float(share):.1%} of step time)")
            knee = self.critpath.get("knee")
            if isinstance(knee, dict):
                lines.append(
                    f"  predicted knee    "
                    f"{float(knee.get('predicted_knee_ms', 0.0)):10.3f} ms "
                    f"(T(L) within {float(knee.get('tolerance', 0.0)):g}x "
                    f"of baseline)")
        if self.health is not None:
            lines += ["", "Health"]
            level = self.health.get("obs_level")
            overhead = self.health.get("obs_overhead_fraction")
            if level is not None:
                lines.append(f"  observability level {level}")
            if overhead is not None:
                lines.append(f"  obs overhead        "
                             f"{float(overhead):.2%} of wall time")
            events = self.health.get("events") or []
            lines.append(f"  events fired        {len(events)}")
            for ev in events:
                lines.append(
                    f"    [{str(ev.get('severity', '?')).upper():8s}] "
                    f"t={float(ev.get('t', 0.0)) * 1e3:10.3f} ms  "
                    f"{ev.get('rule')}: {ev.get('message')}")
        if self.timeseries is not None:
            series = self.timeseries.get("series") or {}
            if series:
                lines += ["", "Telemetry (last / min / max)"]
                name_w = max(len(n) for n in series)
                for name in sorted(series):
                    s = series[name]
                    lines.append(
                        f"  {name:<{name_w}}  {float(s['last']):.4g} / "
                        f"{float(s['min']):.4g} / {float(s['max']):.4g}")
        if self.net is not None:
            lanes = self.net.get("lanes") or {}
            if lanes:
                lines += ["", "Network flight recorder",
                          f"{'lane':28s} {'wan':>4} {'cross':>7} "
                          f"{'busy(ms)':>10} {'busy%':>7} {'queue(ms)':>10} "
                          f"{'p95 q':>6}"]
                for lane in sorted(lanes):
                    u = lanes[lane]
                    lines.append(
                        f"{lane:28s} {'wan' if u.get('wan') else '-':>4} "
                        f"{int(u.get('crossings', 0)):>7} "
                        f"{float(u.get('busy_s', 0.0)) * 1e3:>10.3f} "
                        f"{float(u.get('busy_fraction', 0.0)):>7.1%} "
                        f"{float(u.get('queue_s', 0.0)) * 1e3:>10.3f} "
                        f"{int(u.get('p95_queue_depth', 0)):>6}")
            top_msgs = self.net.get("top_messages") or []
            if top_msgs:
                lines += ["", f"top messages by wire time "
                              f"({len(top_msgs)} shown)",
                          f"{'seq':>8} {'route':14s} {'tag':16s} "
                          f"{'bytes':>9} {'wire(ms)':>10} {'relay':>6} "
                          f"{'arq':>4}"]
                for m in top_msgs:
                    route = f"PE{m.get('src_pe')}->PE{m.get('dst_pe')}"
                    lines.append(
                        f"{str(m.get('seq')):>8} {route:14s} "
                        f"{str(m.get('tag', '')):16s} "
                        f"{int(m.get('size', 0)):>9} "
                        f"{float(m.get('wire_s', 0.0)) * 1e3:>10.3f} "
                        f"{int(m.get('relay_hop', 0)):>6} "
                        f"{int(m.get('arq_attempt', 0)):>4}")
        if self.objects is not None:
            totals = self.objects.get("totals") or {}
            lines += ["", "Object view",
                      f"  objects tracked     "
                      f"{int(totals.get('objects', 0)):10d}",
                      f"  object compute      "
                      f"{float(totals.get('compute_s', 0.0)) * 1e3:10.3f} ms",
                      f"  comm-matrix edges   "
                      f"{int(totals.get('matrix_edges', 0)):10d}"]
            top_objs = self.objects.get("top_by_compute") or []
            if top_objs:
                lines.append(f"  {'object':<16} {'execs':>6} "
                             f"{'compute(ms)':>12} {'p95 grain(us)':>14} "
                             f"{'wan wait(ms)':>13}")
                for row in top_objs:
                    wan_wait = row.get("blame_wan_wait_s")
                    lines.append(
                        f"  {str(row.get('obj')):<16} "
                        f"{int(row.get('executions', 0)):>6} "
                        f"{float(row.get('compute_s', 0.0)) * 1e3:>12.3f} "
                        f"{float(row.get('p95_grain_s', 0.0)) * 1e6:>14.1f} "
                        + (f"{float(wan_wait) * 1e3:>13.3f}"
                           if wan_wait is not None else f"{'-':>13}"))
            advice = self.objects.get("advice")
            if isinstance(advice, dict):
                rec = advice.get("recommended_objects")
                lines.append(
                    f"  advisor             direction={advice.get('direction')}"
                    + (f", recommended objects={int(rec)}"
                       if rec is not None else ""))
                for s in (advice.get("suggestions") or [])[:5]:
                    lines.append(
                        f"    [{str(s.get('action')).upper():7s}] "
                        f"{s.get('obj')}: {s.get('reason')} "
                        f"(saves ~{float(s.get('predicted_savings_s', 0.0)) * 1e3:.3f} ms)")
        if self.top_entries:
            lines += ["", f"{'chare.entry':32s} {'calls':>8} {'time(ms)':>10}"]
            for chare, entry, calls, total in self.top_entries:
                lines.append(f"{chare + '.' + entry:32s} {calls:>8} "
                             f"{total * 1e3:>10.3f}")
        return "\n".join(lines)


def health_section(events, governor=None) -> Dict[str, object]:
    """Build the report's ``health`` section from fired events.

    Parameters
    ----------
    events:
        Iterable of :class:`~repro.obs.health.HealthEvent` (e.g.
        ``env.health_events``).
    governor:
        Optional :class:`~repro.obs.health.ObsGovernor`; contributes the
        final observability level and overhead fraction.
    """
    out: Dict[str, object] = {
        "events": [e.to_dict() for e in events],
    }
    if governor is not None:
        out["obs_level"] = governor.level
        out["obs_overhead_fraction"] = governor.overhead_fraction()
    return out


def netview_section(source: Union[Tracer, TraceAggregator],
                    top: int = 10) -> Dict[str, object]:
    """Build the report's ``net`` section from the flight recorder.

    Works from either recorder: per-lane usage plus per-link roll-ups
    (stream lanes summed under their owning device).  The top-*top*
    wire messages are available only from a batch :class:`Tracer`
    (the aggregator folds ledgers without storing them).
    """
    if isinstance(source, Tracer):
        links = source.link_summary()
    elif isinstance(source, TraceAggregator):
        links = source.link_usage()
    else:
        raise ConfigurationError(
            f"cannot build a netview from {type(source).__name__}")
    makespan = source.makespan()
    lanes: Dict[str, object] = {}
    rollup: Dict[str, Dict[str, object]] = {}
    for lane in sorted(links):
        u = links[lane]
        entry = u.to_dict()
        entry["busy_fraction"] = u.busy_fraction(makespan)
        lanes[lane] = entry
        agg = rollup.setdefault(u.link, {
            "lanes": 0, "crossings": 0, "busy_s": 0.0, "queue_s": 0.0,
            "wan": False})
        agg["lanes"] += 1
        agg["crossings"] += u.crossings
        agg["busy_s"] += u.busy_s
        agg["queue_s"] += u.queue_s
        agg["wan"] = agg["wan"] or u.wan
    for agg in rollup.values():
        agg["busy_fraction"] = (agg["busy_s"] / makespan
                                if makespan > 0 else 0.0)
    out: Dict[str, object] = {
        "makespan_s": makespan,
        "lanes": lanes,
        "links": rollup,
        "wan_crossings": sum(u.crossings for u in links.values() if u.wan),
    }
    if isinstance(source, Tracer):
        out["top_messages"] = [{
            "seq": ev.seq, "src_pe": ev.src_pe, "dst_pe": ev.dst_pe,
            "tag": ev.tag, "size": ev.size, "wire_s": ev.wire_time,
            "sent_s": ev.time, "arrival_s": ev.arrival,
            "relay_hop": ev.relay_hop, "arq_attempt": ev.arq_attempt,
            "wan": ev.crossed_wan, "hops": len(ev.hops),
        } for ev in source.top_wire_messages(top)]
    return out


def objview_section(source, top: int = 5, blame=None,
                    advice=None) -> Dict[str, object]:
    """Build the report's ``objects`` section from the object fold.

    Parameters
    ----------
    source:
        Anything :class:`~repro.obs.objview.ObjectView` accepts: a
        batch :class:`Tracer`, a :class:`TraceAggregator` with object
        stats on, or an :class:`~repro.sim.trace.ObjectFold`.
    top:
        Objects listed in ``top_by_compute``.
    blame:
        Optional per-object critical-path blame
        (:func:`repro.obs.critpath.per_object_blame` output); rides
        along verbatim and annotates each top object's row.
    advice:
        Optional :class:`~repro.obs.objview.Advice`; its digest lands
        under ``"advice"``.
    """
    from repro.obs.objview import ObjectView

    view = source if isinstance(source, ObjectView) \
        else ObjectView.from_source(source)
    rows = []
    for p in view.fold.top_by_compute(top):
        row = {
            "obj": p.obj,
            "executions": p.executions,
            "compute_s": p.compute_s,
            "p50_grain_s": p.grain_quantile(0.5),
            "p95_grain_s": p.grain_quantile(0.95),
            "max_grain_s": p.max_grain_s,
            "queue_wait_s": p.queue_wait_s,
            "wan_bytes_sent": p.bytes_sent_wan,
            "wan_bytes_recv": p.bytes_recv_wan,
        }
        if blame is not None and p.obj in blame:
            row["blame_wan_wait_s"] = float(blame[p.obj]["wan_wait_s"])
            row["blame_total_s"] = float(blame[p.obj]["total_s"])
        rows.append(row)
    out: Dict[str, object] = {
        "totals": view.totals(),
        "top_by_compute": rows,
    }
    if blame is not None:
        out["blame"] = {obj: dict(parts)
                        for obj, parts in sorted(blame.items())}
    if advice is not None:
        out["advice"] = advice.to_dict()
    return out


def _top_entries(profiles: Dict[Tuple[str, str], EntryProfile],
                 top: int) -> List[Tuple[str, str, int, float]]:
    ranked = sorted(profiles.values(), key=lambda p: -p.total_time)[:top]
    return [(p.chare, p.entry, p.calls, p.total_time) for p in ranked]


def build_report(source: Union[Tracer, TraceAggregator],
                 top: int = 8) -> LatencyMaskingReport:
    """Build a :class:`LatencyMaskingReport` from either recorder."""
    if isinstance(source, TraceAggregator):
        span = source.makespan()
        usage = source.pe_usage()
        return LatencyMaskingReport(
            makespan_s=span,
            pes=len(usage),
            executions=sum(u.executions for u in usage.values()),
            busy_time_s=sum(u.busy for u in usage.values()),
            utilization={pe: u.utilization(span) for pe, u in usage.items()},
            top_entries=_top_entries(source.profile_by_entry(), top),
            wan_windows=source.wan.windows,
            wan_flight_time_s=source.wan.flight_time,
            wan_masked_time_s=source.wan.masked_time,
            masked_fraction=source.wan.masked_fraction,
            retransmits=source.retransmits,
            dups_suppressed=source.dups_suppressed,
        )
    if isinstance(source, Tracer):
        if not source.enabled:
            raise ConfigurationError(
                "cannot report on a disabled tracer (enable trace=True or "
                "use the streaming aggregator)")
        span = source.makespan()
        usage = source.pe_usage()
        fraction, flight, masked = masked_latency_fraction(source)
        return LatencyMaskingReport(
            makespan_s=span,
            pes=len(usage),
            executions=sum(u.executions for u in usage.values()),
            busy_time_s=sum(u.busy for u in usage.values()),
            utilization={pe: u.utilization(span) for pe, u in usage.items()},
            top_entries=_top_entries(source.profile_by_entry(), top),
            wan_windows=len(source.wan_flight_windows()),
            wan_flight_time_s=flight,
            wan_masked_time_s=masked,
            masked_fraction=fraction,
            retransmits=source.retransmits,
            dups_suppressed=source.dups_suppressed,
        )
    raise ConfigurationError(
        f"cannot build a report from {type(source).__name__}")
