"""Fixed-memory virtual-time telemetry: ring-buffer series + sampler.

Batch tracing (:class:`~repro.sim.trace.Tracer`) answers *what happened*
after the run; the streaming aggregator answers *how much overall*.
Neither answers "what was the queue depth doing around t=40 ms?" without
storing every event.  This module adds the missing middle layer:

* :class:`TimeSeries` — a bounded sequence of ``(virtual_time, value)``
  points.  When the buffer fills, adjacent pairs are merged (averaged)
  and the per-point sample count doubles, so an arbitrarily long run
  always fits in O(capacity) memory at progressively coarser resolution
  — the classic doubling-downsample trick.
* :class:`SamplingPolicy` — cadence/capacity/smoothing knobs, plus the
  observability *overhead budget* enforced by
  :class:`~repro.obs.health.ObsGovernor`.
* :class:`TelemetrySampler` — a daemon event on the simulation engine
  (``Engine.post_in(..., daemon=True)``) that wakes every *interval*
  virtual seconds and records per-PE utilization (windowed, then
  EMA-smoothed), scheduler queue depth, in-flight WAN traffic,
  retransmit rate and the online masked-latency fraction; each sample is
  also offered to a :class:`~repro.obs.health.HealthMonitor` so watchdog
  rules run *during* the simulation, not after it.

The sampler self-times every tick with a wall clock (injectable for
tests) and reports that cost to the governor, which is how "observability
is over budget" is detected.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Eight-level block characters for terminal sparklines.
_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def render_sparkline(values: List[float], width: int = 40) -> str:
    """A one-line unicode sparkline of *values*, resampled to *width*."""
    if not values:
        return ""
    if len(values) > width:
        # Average contiguous chunks down to `width` cells.
        chunk = len(values) / width
        resampled = []
        for i in range(width):
            lo = int(i * chunk)
            hi = max(int((i + 1) * chunk), lo + 1)
            window = values[lo:hi]
            resampled.append(sum(window) / len(window))
        values = resampled
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK_CHARS[0] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_CHARS) - 1))
        out.append(_SPARK_CHARS[idx])
    return "".join(out)


class TimeSeries:
    """A bounded ``(virtual_time, value)`` series with 2x downsampling.

    Parameters
    ----------
    name:
        Dotted metric-style name (``"util.mean_ema"``).
    capacity:
        Maximum retained points (must be even, >= 2).  Memory is
        O(capacity) forever: on overflow, adjacent point pairs are
        averaged into one and every retained point then represents
        twice as many raw samples (:attr:`bucket_count`).
    """

    __slots__ = ("name", "capacity", "bucket_count", "points",
                 "_acc_t", "_acc_v", "_acc_n", "samples")

    def __init__(self, name: str, capacity: int = 256) -> None:
        if capacity < 2 or capacity % 2:
            raise ConfigurationError(
                f"timeseries capacity must be even and >= 2: {capacity}")
        self.name = name
        self.capacity = capacity
        #: Raw samples folded into each retained point (doubles on
        #: overflow; power of two by construction).
        self.bucket_count = 1
        self.points: List[Tuple[float, float]] = []
        self._acc_t = 0.0
        self._acc_v = 0.0
        self._acc_n = 0
        #: Total raw samples ever offered.
        self.samples = 0

    def add(self, t: float, value: float) -> None:
        """Record one raw sample at virtual time *t*."""
        self.samples += 1
        self._acc_t += t
        self._acc_v += value
        self._acc_n += 1
        if self._acc_n < self.bucket_count:
            return
        self.points.append((self._acc_t / self._acc_n,
                            self._acc_v / self._acc_n))
        self._acc_t = self._acc_v = 0.0
        self._acc_n = 0
        if len(self.points) == self.capacity:
            self._downsample()

    def _downsample(self) -> None:
        merged = []
        for i in range(0, len(self.points), 2):
            (t0, v0), (t1, v1) = self.points[i], self.points[i + 1]
            merged.append(((t0 + t1) / 2.0, (v0 + v1) / 2.0))
        self.points = merged
        self.bucket_count *= 2

    def __len__(self) -> int:
        return len(self.points)

    def times(self) -> List[float]:
        return [t for t, _v in self.points]

    def values(self) -> List[float]:
        return [v for _t, v in self.points]

    @property
    def last(self) -> Optional[float]:
        """Most recent retained value (``None`` before any point lands)."""
        if self._acc_n:
            return self._acc_v / self._acc_n
        return self.points[-1][1] if self.points else None

    def sparkline(self, width: int = 40) -> str:
        return render_sparkline(self.values(), width)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "samples": self.samples,
            "bucket_count": self.bucket_count,
            "points": [[t, v] for t, v in self.points],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TimeSeries({self.name}: {len(self.points)} pts, "
                f"x{self.bucket_count})")


@dataclass(frozen=True)
class SamplingPolicy:
    """Cadence and budget knobs for the telemetry sampler."""

    #: Virtual seconds between samples.  The default suits the paper's
    #: millisecond-class step times (a few samples per stencil step).
    interval: float = 1e-3
    #: Per-series retained points (see :class:`TimeSeries`).
    capacity: int = 256
    #: EMA smoothing factor for utilization / idle-fraction series.
    ema_alpha: float = 0.3
    #: Record a ``pe.N.util_ema`` series per PE (cheap up to ~64 PEs).
    per_pe_series: bool = True
    #: Observability overhead budget as a fraction of wall time
    #: (``None`` disables the governor's downgrade behaviour).
    overhead_budget: Optional[float] = None

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError(
                f"sampling interval must be > 0: {self.interval}")
        if not (0.0 < self.ema_alpha <= 1.0):
            raise ConfigurationError(
                f"ema_alpha must be in (0, 1]: {self.ema_alpha}")
        if self.overhead_budget is not None and self.overhead_budget <= 0:
            raise ConfigurationError(
                f"overhead_budget must be > 0: {self.overhead_budget}")


class TelemetrySampler:
    """Periodic daemon event sampling runtime health onto time series.

    Parameters
    ----------
    engine:
        The simulation engine (provides the virtual clock and daemon
        scheduling; daemon ticks never keep a run alive or perturb
        quiescence detection).
    runtime:
        The message-driven runtime whose PEs are sampled.
    policy:
        Cadence/capacity knobs; ``None`` uses defaults.
    transport:
        The fabric or reliable transport (for in-flight / retransmit
        gauges); optional.
    aggregator:
        Streaming trace aggregator supplying the online masked-latency
        fraction; optional.
    monitor:
        A :class:`~repro.obs.health.HealthMonitor` offered every sample;
        events it emits accumulate in :attr:`health_events`.
    governor:
        An :class:`~repro.obs.health.ObsGovernor`; the sampler reports
        its own wall-clock cost there and invokes
        :meth:`~repro.obs.health.ObsGovernor.check` once per tick.
    clock:
        Wall-clock source for self-timing (injectable in tests).
    """

    def __init__(self, engine, runtime, policy: Optional[SamplingPolicy] = None,
                 *, transport=None, aggregator=None, monitor=None,
                 governor=None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.engine = engine
        self.runtime = runtime
        self.policy = policy or SamplingPolicy()
        self.transport = transport
        self.aggregator = aggregator
        self.monitor = monitor
        self.governor = governor
        self.clock = clock
        self.enabled = True
        #: False while paused: the tick heartbeat keeps firing (so the
        #: governor still gets its periodic check and can recover) but
        #: nothing is recorded.
        self.recording = True
        self.series: Dict[str, TimeSeries] = {}
        self.health_events: List = []
        self.ticks = 0
        #: Cumulative wall seconds spent inside ticks (governor input).
        self.cost_s = 0.0
        self._started = False
        self._last_t: Optional[float] = None
        self._prev_busy: Dict[int, float] = {}
        self._util_ema: Dict[int, float] = {}
        self._idle_ema: Optional[float] = None
        #: lane -> cumulative busy seconds at the previous tick (for
        #: windowed per-link busy-fraction series from the flight
        #: recorder's online link fold).
        self._prev_link_busy: Dict[str, float] = {}
        if governor is not None:
            governor.add_cost_source("sampler", lambda: self.cost_s)

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Schedule the first tick (idempotent)."""
        if self._started:
            return
        self._started = True
        self.engine.post_in(self.policy.interval, self._tick, daemon=True)

    def stop(self) -> None:
        """Stop sampling: the next tick fires but records nothing and
        does not reschedule."""
        self.enabled = False

    def pause(self) -> None:
        """Stop *recording* but keep the tick heartbeat alive.

        The governor's downgrade-to-counters remedy uses this instead of
        :meth:`stop`: sampling cost drops to two clock reads per tick,
        yet :meth:`~repro.obs.health.ObsGovernor.check` still runs every
        interval — without the heartbeat the governor could never
        observe the overhead fraction falling and recover.
        """
        self.recording = False

    def resume(self) -> None:
        """Resume recording after :meth:`pause` (idempotent)."""
        self.recording = True

    # -- sampling ---------------------------------------------------------

    def _series(self, name: str) -> TimeSeries:
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = TimeSeries(name, self.policy.capacity)
        return s

    def _ema(self, prev: Optional[float], value: float) -> float:
        if prev is None:
            return value
        a = self.policy.ema_alpha
        return prev + a * (value - prev)

    def _tick(self) -> None:
        if not self.enabled:
            return
        t0 = self.clock()
        now = self.engine.now
        if self.recording:
            self._sample(now)
            self.ticks += 1
        self.cost_s += self.clock() - t0
        if self.governor is not None:
            event = self.governor.check(now)
            if event is not None:
                self.health_events.append(event)
        if self.enabled:
            self.engine.post_in(self.policy.interval, self._tick,
                                daemon=True)

    def _sample(self, now: float) -> None:
        window = (now - self._last_t) if self._last_t is not None \
            else self.policy.interval
        self._last_t = now
        alpha = self.policy.ema_alpha

        pes = self.runtime.scheduler.pes
        executions = 0
        queue_depth = 0
        utils = []
        for ps in pes:
            executions += ps.stats.executions
            queue_depth += len(ps.queue)
            prev_busy = self._prev_busy.get(ps.pe, 0.0)
            delta = ps.stats.busy_time - prev_busy
            self._prev_busy[ps.pe] = ps.stats.busy_time
            util = min(delta / window, 1.0) if window > 0 else 0.0
            ema = self._util_ema.get(ps.pe)
            ema = util if ema is None else ema + alpha * (util - ema)
            self._util_ema[ps.pe] = ema
            utils.append(ema)
            if self.policy.per_pe_series:
                self._series(f"pe.{ps.pe}.util_ema").add(now, ema)

        mean_util = sum(utils) / len(utils) if utils else 0.0
        max_util = max(utils) if utils else 0.0
        self._idle_ema = self._ema(self._idle_ema, 1.0 - mean_util) \
            if utils else self._idle_ema
        idle = self._idle_ema if self._idle_ema is not None else 0.0
        self._series("util.mean_ema").add(now, mean_util)
        self._series("util.max_ema").add(now, max_util)
        self._series("idle.fraction_ema").add(now, idle)
        self._series("queue.depth").add(now, queue_depth)

        wan_in_flight = getattr(self.transport, "wan_in_flight", 0)
        wan_sent = getattr(self.transport, "wan_sent", 0)
        retransmits = 0
        rstats = getattr(self.transport, "rstats", None)
        if rstats is not None:
            retransmits = rstats.retransmits
        elif self.aggregator is not None:
            retransmits = self.aggregator.retransmits
        self._series("wan.in_flight").add(now, wan_in_flight)
        arq = getattr(self.transport, "in_flight", None)
        if rstats is not None and arq is not None:
            self._series("arq.in_flight").add(now, arq)

        masked = None
        if self.aggregator is not None and self.aggregator.enabled:
            masked = self.aggregator.masked_latency_fraction
            self._series("wan.masked_fraction").add(now, masked)

        # Per-WAN-lane windowed busy fraction from the flight recorder's
        # online link fold (deltas of cumulative serialization seconds).
        max_link_busy = None
        link_usage = getattr(self.aggregator, "link_usage", None)
        if link_usage is not None and self.aggregator.enabled:
            for lane, usage in link_usage().items():
                if not usage.wan:
                    continue
                prev = self._prev_link_busy.get(lane, 0.0)
                self._prev_link_busy[lane] = usage.busy_s
                frac = min((usage.busy_s - prev) / window, 1.0) \
                    if window > 0 else 0.0
                self._series(f"net.{lane}.busy").add(now, frac)
                if max_link_busy is None or frac > max_link_busy:
                    max_link_busy = frac
            if max_link_busy is not None:
                self._series("net.max_link_busy").add(now, max_link_busy)

        # Longest single execution in this window from the object fold
        # (harvested every tick so the window always spans one interval).
        top_grain = top_grain_obj = None
        objview = getattr(self.aggregator, "objview", None)
        if objview is not None and self.aggregator.enabled:
            top_grain, top_grain_obj = objview.harvest_window()
            self._series("obj.top_grain_s").add(now, top_grain)

        if self.monitor is not None:
            from repro.obs.health import HealthSample
            sample = HealthSample(
                t=now, executions=executions,
                utilization=dict(self._util_ema),
                idle_fraction=idle, queue_depth=queue_depth,
                wan_in_flight=wan_in_flight, wan_sends=wan_sent,
                retransmits=retransmits, masked_fraction=masked,
                max_link_busy=max_link_busy,
                top_grain_s=top_grain, top_grain_obj=top_grain_obj)
            events = self.monitor.observe(sample)
            if events:
                self.health_events.extend(events)
            # Rate series fed from the monitor's windowed delta so the
            # watchdog and the plot see identical numbers.
            self._series("wan.retransmit_rate").add(
                now, self.monitor.last_retransmit_rate)
        else:
            # No monitor: compute the windowed rate locally.
            prev = getattr(self, "_prev_retx", (0, 0))
            d_retx = retransmits - prev[0]
            d_sent = wan_sent - prev[1]
            self._prev_retx = (retransmits, wan_sent)
            rate = d_retx / d_sent if d_sent > 0 else 0.0
            self._series("wan.retransmit_rate").add(now, rate)

    # -- reporting --------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """JSON-friendly digest: per-series last/min/max + health events."""
        out: Dict[str, object] = {
            "ticks": self.ticks,
            "interval_s": self.policy.interval,
            "cost_s": self.cost_s,
            "series": {},
        }
        for name in sorted(self.series):
            s = self.series[name]
            vals = s.values()
            if not vals:
                continue
            out["series"][name] = {
                "last": vals[-1],
                "min": min(vals),
                "max": max(vals),
                "points": len(vals),
                "bucket_count": s.bucket_count,
            }
        out["health_events"] = [e.to_dict() for e in self.health_events]
        return out

    def render(self, width: int = 40) -> str:
        """Terminal rendering: one sparkline row per series."""
        lines = [f"telemetry: {self.ticks} samples @ "
                 f"{self.policy.interval * 1e3:g} ms virtual"]
        name_w = max((len(n) for n in self.series), default=0)
        for name in sorted(self.series):
            s = self.series[name]
            if not s.points:
                continue
            last = s.values()[-1]
            lines.append(f"  {name:<{name_w}}  {s.sparkline(width)}  "
                         f"last={last:.4g}")
        return "\n".join(lines)
