"""Observability: metrics, trace aggregation, export, and reports.

The paper's whole argument rests on *seeing* overlap — Charm++'s
Projections tool renders the timeline that proves WAN latency is hidden
behind other objects' work.  This package is the reproduction's
Projections-grade surface:

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  named counters, gauges and log-bucketed histograms that the runtime,
  network and load-balancing layers publish into;
* :mod:`repro.obs.export` — Chrome trace-event JSON (open the file in
  ``chrome://tracing`` or https://ui.perfetto.dev) and a JSON-lines
  structured event log, both generated from a recorded
  :class:`~repro.sim.trace.Tracer`;
* :mod:`repro.obs.report` — the latency-masking report: utilization,
  comm/compute breakdown, and the headline **masked-latency fraction**
  (share of WAN in-flight time during which the destination PE was
  busy), computed either from a batch trace or from the streaming
  :class:`~repro.sim.trace.TraceAggregator`;
* :mod:`repro.obs.critpath` — causal critical-path analysis: the step
  DAG, per-step latency attribution (compute / WAN flight / queueing /
  retransmit stall, summing exactly to the step's wall time), and the
  knee analyzer predicting Figure 3's knee from one low-latency run;
* :mod:`repro.obs.timeseries` — fixed-memory virtual-time telemetry:
  ring-buffer :class:`TimeSeries` with 2x downsampling and the
  :class:`TelemetrySampler` daemon that feeds them during the run;
* :mod:`repro.obs.health` — the rule-based watchdog
  (:class:`HealthMonitor` emitting structured :class:`HealthEvent`\\ s:
  stall, retransmit storm, load imbalance, online unmasking) and the
  :class:`ObsGovernor` that degrades observability when its own
  wall-clock cost exceeds a configured budget.
"""

from repro.obs.critpath import (
    CausalGraph,
    KneePrediction,
    PathSegment,
    StepAttribution,
    per_step_attribution,
    predict_knee,
    render_attribution,
    replay_with_latency,
    summarize_attribution,
)
from repro.obs.export import (
    chrome_trace_events,
    export_chrome_trace,
    validate_chrome_trace,
    write_event_log,
)
from repro.obs.health import (
    OBS_LEVELS,
    HealthConfig,
    HealthEvent,
    HealthMonitor,
    HealthSample,
    ObsGovernor,
    TimedSink,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import (
    LatencyMaskingReport,
    build_report,
    masked_latency_fraction,
)
from repro.obs.timeseries import (
    SamplingPolicy,
    TelemetrySampler,
    TimeSeries,
    render_sparkline,
)

__all__ = [
    "CausalGraph",
    "KneePrediction",
    "PathSegment",
    "StepAttribution",
    "per_step_attribution",
    "predict_knee",
    "render_attribution",
    "replay_with_latency",
    "summarize_attribution",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "chrome_trace_events",
    "export_chrome_trace",
    "validate_chrome_trace",
    "write_event_log",
    "LatencyMaskingReport",
    "build_report",
    "masked_latency_fraction",
    "OBS_LEVELS",
    "HealthConfig",
    "HealthEvent",
    "HealthMonitor",
    "HealthSample",
    "ObsGovernor",
    "TimedSink",
    "SamplingPolicy",
    "TelemetrySampler",
    "TimeSeries",
    "render_sparkline",
]
