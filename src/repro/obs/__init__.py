"""Observability: metrics, trace aggregation, export, and reports.

The paper's whole argument rests on *seeing* overlap — Charm++'s
Projections tool renders the timeline that proves WAN latency is hidden
behind other objects' work.  This package is the reproduction's
Projections-grade surface:

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  named counters, gauges and log-bucketed histograms that the runtime,
  network and load-balancing layers publish into;
* :mod:`repro.obs.export` — Chrome trace-event JSON (open the file in
  ``chrome://tracing`` or https://ui.perfetto.dev) and a JSON-lines
  structured event log, both generated from a recorded
  :class:`~repro.sim.trace.Tracer`;
* :mod:`repro.obs.report` — the latency-masking report: utilization,
  comm/compute breakdown, and the headline **masked-latency fraction**
  (share of WAN in-flight time during which the destination PE was
  busy), computed either from a batch trace or from the streaming
  :class:`~repro.sim.trace.TraceAggregator`;
* :mod:`repro.obs.critpath` — causal critical-path analysis: the step
  DAG, per-step latency attribution (compute / WAN flight / queueing /
  retransmit stall, summing exactly to the step's wall time), and the
  knee analyzer predicting Figure 3's knee from one low-latency run;
* :mod:`repro.obs.timeseries` — fixed-memory virtual-time telemetry:
  ring-buffer :class:`TimeSeries` with 2x downsampling and the
  :class:`TelemetrySampler` daemon that feeds them during the run;
* :mod:`repro.obs.health` — the rule-based watchdog
  (:class:`HealthMonitor` emitting structured :class:`HealthEvent`\\ s:
  stall, retransmit storm, load imbalance, online unmasking) and the
  :class:`ObsGovernor` that degrades observability when its own
  wall-clock cost exceeds a configured budget — and recovers it when
  the cost stays calm;
* :mod:`repro.obs.profiler` — the wall-clock self-profiler
  (:class:`WallProfiler`): phase-bucketed timing of the engine's
  dispatch loop (scheduler / network / telemetry / app) with a
  flamegraph-shaped Chrome-trace export, < 5 % overhead by the
  perf-smoke bar and zero when off;
* :mod:`repro.obs.ledger` — the run ledger: schema-2
  :class:`~repro.bench.trajectory.RunRecord`\\ s carrying the full
  critical-path decomposition, net/health roll-ups and the wall-clock
  profile, appended flock-safe to the trajectory log and optionally
  content-addressed beside the run cache;
* :mod:`repro.obs.diff` — differential analysis
  (:func:`compare_records`, ``repro compare``): aligns two ledger
  records and attributes their step-time delta to critical-path
  components *exactly* (the component deltas sum to the total delta
  with zero residual under exact arithmetic).
"""

from repro.obs.critpath import (
    UNATTRIBUTED,
    CausalGraph,
    KneePrediction,
    PathSegment,
    StepAttribution,
    per_object_blame,
    per_step_attribution,
    predict_knee,
    render_attribution,
    render_blame,
    replay_with_latency,
    summarize_attribution,
)
from repro.obs.export import (
    chrome_trace_events,
    export_chrome_trace,
    validate_chrome_trace,
    write_event_log,
)
from repro.obs.health import (
    OBS_LEVELS,
    HealthConfig,
    HealthEvent,
    HealthMonitor,
    HealthSample,
    ObsGovernor,
    TimedSink,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.objview import (
    Advice,
    ObjectView,
    Suggestion,
    fold_from_tracer,
    recommend_decomposition,
)
from repro.obs.report import (
    LatencyMaskingReport,
    build_report,
    masked_latency_fraction,
    objview_section,
)
from repro.obs.timeseries import (
    SamplingPolicy,
    TelemetrySampler,
    TimeSeries,
    render_sparkline,
)

from repro.obs.profiler import (
    WallProfiler,
    classify_action,
    install_profiler,
)

#: Ledger/diff names resolve lazily (PEP 562): those modules import
#: repro.bench.trajectory, whose package pulls the application drivers,
#: which import repro.grid.environment, which imports *this* package —
#: an eager import here deadlocks the whole chain at startup.
_LAZY_EXPORTS = {
    "append_ledger": "repro.obs.ledger",
    "attribution_totals": "repro.obs.ledger",
    "build_run_record": "repro.obs.ledger",
    "health_rollup": "repro.obs.ledger",
    "ledger_key": "repro.obs.ledger",
    "load_stored": "repro.obs.ledger",
    "net_rollup": "repro.obs.ledger",
    "objects_rollup": "repro.obs.ledger",
    "records_from_file": "repro.obs.ledger",
    "store_record": "repro.obs.ledger",
    "ComponentDelta": "repro.obs.diff",
    "RunComparison": "repro.obs.diff",
    "compare_records": "repro.obs.diff",
    "write_compare_trace": "repro.obs.diff",
}


def __getattr__(name):
    module = _LAZY_EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)

__all__ = [
    "UNATTRIBUTED",
    "CausalGraph",
    "KneePrediction",
    "PathSegment",
    "StepAttribution",
    "per_object_blame",
    "render_blame",
    "per_step_attribution",
    "predict_knee",
    "render_attribution",
    "replay_with_latency",
    "summarize_attribution",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Advice",
    "ObjectView",
    "Suggestion",
    "fold_from_tracer",
    "recommend_decomposition",
    "chrome_trace_events",
    "export_chrome_trace",
    "validate_chrome_trace",
    "write_event_log",
    "LatencyMaskingReport",
    "build_report",
    "masked_latency_fraction",
    "objview_section",
    "OBS_LEVELS",
    "HealthConfig",
    "HealthEvent",
    "HealthMonitor",
    "HealthSample",
    "ObsGovernor",
    "TimedSink",
    "SamplingPolicy",
    "TelemetrySampler",
    "TimeSeries",
    "render_sparkline",
    "WallProfiler",
    "classify_action",
    "install_profiler",
    "append_ledger",
    "attribution_totals",
    "build_run_record",
    "health_rollup",
    "ledger_key",
    "load_stored",
    "net_rollup",
    "objects_rollup",
    "records_from_file",
    "store_record",
    "ComponentDelta",
    "RunComparison",
    "compare_records",
    "write_compare_trace",
]
