"""Observability: metrics, trace aggregation, export, and reports.

The paper's whole argument rests on *seeing* overlap — Charm++'s
Projections tool renders the timeline that proves WAN latency is hidden
behind other objects' work.  This package is the reproduction's
Projections-grade surface:

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  named counters, gauges and log-bucketed histograms that the runtime,
  network and load-balancing layers publish into;
* :mod:`repro.obs.export` — Chrome trace-event JSON (open the file in
  ``chrome://tracing`` or https://ui.perfetto.dev) and a JSON-lines
  structured event log, both generated from a recorded
  :class:`~repro.sim.trace.Tracer`;
* :mod:`repro.obs.report` — the latency-masking report: utilization,
  comm/compute breakdown, and the headline **masked-latency fraction**
  (share of WAN in-flight time during which the destination PE was
  busy), computed either from a batch trace or from the streaming
  :class:`~repro.sim.trace.TraceAggregator`.
"""

from repro.obs.export import (
    chrome_trace_events,
    export_chrome_trace,
    validate_chrome_trace,
    write_event_log,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import (
    LatencyMaskingReport,
    build_report,
    masked_latency_fraction,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "chrome_trace_events",
    "export_chrome_trace",
    "validate_chrome_trace",
    "write_event_log",
    "LatencyMaskingReport",
    "build_report",
    "masked_latency_fraction",
]
