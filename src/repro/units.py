"""Unit helpers.

All simulated time inside the library is a ``float`` number of **seconds**
and all message sizes are an ``int`` number of **bytes**.  These helpers
exist so configuration code reads like the paper ("32 ms latency",
"250 MB/s bandwidth") instead of bare magic numbers.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# time
# --------------------------------------------------------------------------

#: One second, the base time unit.
SECOND: float = 1.0
#: One millisecond in seconds.
MILLISECOND: float = 1e-3
#: One microsecond in seconds.
MICROSECOND: float = 1e-6
#: One nanosecond in seconds.
NANOSECOND: float = 1e-9


def seconds(value: float) -> float:
    """Return *value* seconds (identity; for symmetry with the others)."""
    return float(value)


def ms(value: float) -> float:
    """Convert *value* milliseconds to seconds."""
    return float(value) * MILLISECOND


def us(value: float) -> float:
    """Convert *value* microseconds to seconds."""
    return float(value) * MICROSECOND


def ns(value: float) -> float:
    """Convert *value* nanoseconds to seconds."""
    return float(value) * NANOSECOND


def to_ms(value_seconds: float) -> float:
    """Convert a time in seconds to milliseconds (for reporting)."""
    return float(value_seconds) / MILLISECOND


def to_us(value_seconds: float) -> float:
    """Convert a time in seconds to microseconds (for reporting)."""
    return float(value_seconds) / MICROSECOND


# --------------------------------------------------------------------------
# sizes
# --------------------------------------------------------------------------

#: One kibibyte in bytes.
KiB: int = 1024
#: One mebibyte in bytes.
MiB: int = 1024 * 1024
#: One gibibyte in bytes.
GiB: int = 1024 * 1024 * 1024


def kib(value: float) -> int:
    """Convert *value* KiB to bytes (rounded to an integer byte count)."""
    return int(value * KiB)


def mib(value: float) -> int:
    """Convert *value* MiB to bytes (rounded to an integer byte count)."""
    return int(value * MiB)


# --------------------------------------------------------------------------
# rates
# --------------------------------------------------------------------------


def mb_per_s(value: float) -> float:
    """Convert a bandwidth in decimal megabytes/second to bytes/second."""
    return float(value) * 1e6


def gb_per_s(value: float) -> float:
    """Convert a bandwidth in decimal gigabytes/second to bytes/second."""
    return float(value) * 1e9


def transfer_time(size_bytes: int, bandwidth_bytes_per_s: float) -> float:
    """Time in seconds to push *size_bytes* through a link.

    A non-positive bandwidth means "infinitely fast" (pure latency link),
    which is how zero-cost control messages are modelled.
    """
    if bandwidth_bytes_per_s <= 0.0:
        return 0.0
    return size_bytes / bandwidth_bytes_per_s
