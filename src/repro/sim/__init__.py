"""Discrete-event simulation substrate.

This package provides the deterministic foundation everything else runs
on: a virtual clock with an event queue (:mod:`repro.sim.engine`), named
reproducible RNG streams (:mod:`repro.sim.rand`), and Projections-style
tracing (:mod:`repro.sim.trace`).
"""

from repro.sim.engine import Engine, EventHandle
from repro.sim.rand import RandomStreams, stable_name_key
from repro.sim.trace import (
    EntryProfile,
    ExecInterval,
    MessageEvent,
    PeUsage,
    Tracer,
)

__all__ = [
    "Engine",
    "EventHandle",
    "RandomStreams",
    "stable_name_key",
    "Tracer",
    "ExecInterval",
    "MessageEvent",
    "PeUsage",
    "EntryProfile",
]
