"""Deterministic discrete-event simulation engine.

The engine owns a virtual clock and a single priority queue of events.
Events are ``(time, tiebreak, action)`` triples; *tiebreak* is a
monotonically increasing sequence number so that two events scheduled for
the same instant always fire in the order they were scheduled.  This is
what makes every simulation in the library bit-reproducible: no wall-clock
time, no hash ordering, no thread scheduling ever enters the picture.

The engine is intentionally tiny.  Everything interesting (processors,
networks, chares) is built on top of two operations:

* :meth:`Engine.post` — schedule a callback at an absolute virtual time.
* :meth:`Engine.run` — drain the queue until empty (or until a limit).

``post`` accepts an optional ``args`` tuple applied at fire time
(``action(*args)``).  Hot paths use this instead of wrapping arguments
in a lambda: a tuple is one small allocation where a closure costs a
function object plus one cell per captured variable, and the per-event
difference adds up over millions of simulated messages.

Events posted with ``daemon=True`` are *background* events (telemetry
sampler ticks): they fire in time order like any other event, but they
do not count toward :attr:`Engine.pending` and do not keep :meth:`run`
alive — a run ends when only daemon events remain, exactly as it would
with none queued.  Without this, a self-rescheduling sampler would both
livelock ``run()`` and defeat quiescence detection (``pending == 0``).

Example
-------
>>> eng = Engine()
>>> order = []
>>> eng.post(2.0, lambda: order.append("b"))
>>> eng.post(1.0, lambda: order.append("a"))
>>> eng.run()
>>> order
['a', 'b']
>>> eng.now
2.0
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.errors import SchedulingError, SimulationError

Action = Callable[..., None]


#: Entry-state markers (slot 2 of a queue entry).
_QUEUED, _FIRED, _CANCELLED = None, "fired", "cancelled"

#: Queue-entry layout: [when, seq, state, action, args, daemon].
_WHEN, _SEQ, _STATE, _ACTION, _ARGS, _DAEMON = range(6)

_NO_ARGS: tuple = ()


class EventHandle:
    """Opaque handle returned by :meth:`Engine.post`, usable for cancellation.

    Cancellation is *lazy*: the event stays in the heap but is skipped when
    it reaches the front.  This keeps ``cancel`` O(1).

    A plain ``__slots__`` class (not a dataclass): one handle is created
    per posted event, so construction must stay a few attribute stores.
    """

    __slots__ = ("time", "seq", "_entry")

    def __init__(self, time: float, seq: int, entry: list) -> None:
        self.time = time
        self.seq = seq
        self._entry = entry

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`Engine.cancel` was called on this handle."""
        return self._entry[_STATE] is _CANCELLED

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EventHandle(time={self.time!r}, seq={self.seq})"


class Engine:
    """A minimal, deterministic discrete-event simulation core.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock, in seconds.  Defaults to 0.
    max_events:
        Safety valve: :meth:`run` raises :class:`SimulationError` after
        processing this many events, catching accidental livelock
        (e.g. two chares ping-ponging forever).  ``None`` disables it.
    """

    def __init__(self, start_time: float = 0.0,
                 max_events: Optional[int] = None) -> None:
        self._now: float = float(start_time)
        self._queue: List[list] = []
        self._seq: int = 0
        self._running: bool = False
        self._events_processed: int = 0
        self._max_events = max_events
        #: Lazily-cancelled entries still sitting in the heap.
        self._cancelled_in_queue: int = 0
        #: Live (queued, not cancelled) daemon entries in the heap.
        self._daemon_live: int = 0
        #: Optional :class:`~repro.obs.profiler.WallProfiler`: when set,
        #: dispatch loops time each fired action and report it.  Virtual
        #: time is identical either way — the profiler only *observes*
        #: wall clock; when ``None`` the dispatch loops are untouched.
        self.profiler = None
        #: Content-deterministic tie-breaking (sharded-PDES certification
        #: mode).  ``False`` keeps the seed behaviour: ties resolve by
        #: integer post order.  See :meth:`enable_ordered_ties`.
        self._ordered: bool = False

    # -- clock --------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed since construction."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of live (not-yet-fired, not-cancelled) events in the queue.

        Cancelled events linger in the heap until they surface, but they
        are excluded here so that quiescence detection (``pending == 0``)
        is not fooled by dead retransmit timers and the like.  Daemon
        events (telemetry ticks) are likewise excluded: they observe the
        simulation but are not part of its workload.
        """
        return len(self._queue) - self._cancelled_in_queue - self._daemon_live

    # -- scheduling -----------------------------------------------------------

    def enable_ordered_ties(self) -> None:
        """Switch same-instant tie-breaking to content-deterministic keys.

        By default two events at the same virtual time fire in post
        order (a global integer sequence) — deterministic for a single
        engine, but meaningless across sharded-PDES workers, whose post
        orders interleave differently.  In *ordered* mode every queue
        entry's tiebreak is a tuple: ``(1, seq)`` for ordinary posts
        (preserving post order among themselves) and a caller-supplied
        ``order`` tuple sorting ahead of them — the network fabric keys
        message deliveries ``(0, sent_at, src_pe, msg seq)``, a pure
        function of the message, so same-instant deliveries pop in the
        identical order whatever shard posted them.

        Only sharded runs and their serial certification baselines use
        this; default runs keep the integer fast path (and the seed's
        exact trajectories).  Entries already queued are re-keyed in
        place, preserving their current relative order.
        """
        if self._ordered:
            return
        self._ordered = True
        for entry in self._queue:
            entry[_SEQ] = (1, entry[_SEQ])
        heapq.heapify(self._queue)

    def post(self, when: float, action: Action,
             daemon: bool = False, args: tuple = _NO_ARGS,
             order: Optional[tuple] = None) -> EventHandle:
        """Schedule ``action(*args)`` to run at absolute virtual time *when*.

        With ``daemon=True`` the event is a background event: it fires in
        time order like any other, but does not count toward
        :attr:`pending` and does not keep :meth:`run` going once only
        daemon events remain (telemetry samplers reschedule themselves
        forever; the simulation must still terminate).

        *order* is an optional same-instant tiebreak tuple, honoured only
        after :meth:`enable_ordered_ties` (it is ignored — and post order
        rules — in default mode).  The engine's own post sequence is
        appended as the final element, so caller keys never need to be
        globally unique.

        Raises
        ------
        SchedulingError
            If *when* is earlier than the current virtual time.
        """
        if when < self._now:
            raise SchedulingError(
                f"cannot schedule event at t={when!r} before now={self._now!r}")
        seq = self._seq
        if self._ordered:
            key = (1, seq) if order is None else order + (seq,)
        else:
            key = seq
        entry = [when, key, None, action, args, daemon]
        self._seq += 1
        heapq.heappush(self._queue, entry)
        if daemon:
            self._daemon_live += 1
        return EventHandle(when, key, entry)

    def post_in(self, delay: float, action: Action,
                daemon: bool = False, args: tuple = _NO_ARGS) -> EventHandle:
        """Schedule ``action(*args)`` to run *delay* seconds from now.

        Negative delays are rejected; a zero delay schedules the action at
        the current instant, after all previously scheduled same-instant
        events.
        """
        if delay < 0.0:
            raise SchedulingError(f"negative delay {delay!r}")
        return self.post(self._now + delay, action, daemon=daemon, args=args)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously posted event.  Idempotent; a no-op after
        the event has already fired."""
        entry = handle._entry
        if entry[_STATE] is _QUEUED:
            entry[_STATE] = _CANCELLED
            entry[_ACTION] = None
            entry[_ARGS] = _NO_ARGS
            self._cancelled_in_queue += 1
            if entry[_DAEMON]:
                self._daemon_live -= 1

    # -- execution ------------------------------------------------------------

    def step(self) -> bool:
        """Fire the single next event.  Returns ``False`` when queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            when, _seq, state, action, args, daemon = entry
            if state is _CANCELLED:  # lazily cancelled
                self._cancelled_in_queue -= 1
                continue
            if daemon:
                self._daemon_live -= 1
            entry[_STATE] = _FIRED
            self._now = when
            self._events_processed += 1
            if (self._max_events is not None
                    and self._events_processed > self._max_events):
                raise SimulationError(
                    f"exceeded max_events={self._max_events}; "
                    "likely a livelock in the simulated system")
            profiler = self.profiler
            if profiler is None:
                action(*args)
            else:
                t0 = profiler.clock()
                action(*args)
                profiler.record_action(action, profiler.clock() - t0)
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after
            this virtual time; the clock is then advanced exactly to
            *until*.  If ``None``, run until no non-daemon events remain
            (a self-rescheduling daemon must not keep the run alive).

        Returns
        -------
        float
            The virtual time at which execution stopped.
        """
        if self._running:
            raise SimulationError("Engine.run() is not re-entrant")
        self._running = True
        try:
            if until is None:
                self._run_all()
            else:
                self._run_bounded(until, strict=False)
                if self._now < until:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_window(self, bound: float) -> float:
        """Fire every event with ``when < bound``; never force the clock.

        The sharded-PDES sync loop: a shard granted a safe horizon runs
        exactly the events strictly inside it.  Unlike ``run(until=...)``
        the clock is left at the last fired event, so messages imported
        from other shards may still arrive anywhere in ``[now, bound)``
        of the *next* window without tripping the causality check in
        :meth:`post`.

        Returns the virtual time at which execution stopped.
        """
        if self._running:
            raise SimulationError("Engine.run() is not re-entrant")
        self._running = True
        try:
            self._run_bounded(bound, strict=True)
        finally:
            self._running = False
        return self._now

    def next_event_time(self) -> Optional[float]:
        """Virtual time of the earliest live *non-daemon* event, or ``None``.

        This is the shard's "earliest output time" in the conservative
        sync protocol: nothing this shard ever sends can depart earlier.
        Daemon events (telemetry ticks) are excluded — they observe the
        simulation but never send messages, and counting them would stop
        a quiescent shard from reporting ``None``.
        """
        if self._daemon_live == 0:
            return self._peek_time()
        best: Optional[float] = None
        for entry in self._queue:
            if entry[_STATE] is _QUEUED and not entry[_DAEMON]:
                when = entry[_WHEN]
                if best is None or when < best:
                    best = when
        return best

    def _run_bounded(self, bound: float, *, strict: bool) -> None:
        """Inlined bounded dispatch loop shared by :meth:`run` and
        :meth:`run_window`.

        Mirrors :meth:`_run_all` — queue, ``heappop`` and the max-events
        limit in locals, no method call per event — and is the single
        place bounded runs skip lazily-cancelled entries (they are popped
        and accounted here, exactly once, instead of ``_peek_time``
        popping them and ``step()`` re-scanning).  ``strict`` selects the
        window semantics: inclusive (``when <= bound`` fires, for
        ``run(until=...)``) or exclusive (``when < bound``, for shard
        sync windows).  Any behavioral change here must land in
        :meth:`step` too (and vice versa).
        """
        queue = self._queue
        pop = heapq.heappop
        max_events = self._max_events
        profiler = self.profiler
        while queue:
            entry = queue[0]
            if entry[_STATE] is _CANCELLED:
                pop(queue)
                self._cancelled_in_queue -= 1
                continue
            when = entry[_WHEN]
            if when >= bound if strict else when > bound:
                break
            pop(queue)
            if entry[_DAEMON]:
                self._daemon_live -= 1
            entry[_STATE] = _FIRED
            self._now = when
            self._events_processed += 1
            if (max_events is not None
                    and self._events_processed > max_events):
                raise SimulationError(
                    f"exceeded max_events={max_events}; "
                    "likely a livelock in the simulated system")
            if profiler is None:
                entry[_ACTION](*entry[_ARGS])
            else:
                t0 = profiler.clock()
                entry[_ACTION](*entry[_ARGS])
                profiler.record_action(entry[_ACTION],
                                       profiler.clock() - t0)

    def _run_all(self) -> None:
        """Run-until-quiescence fast path: :meth:`step` inlined.

        Semantically identical to ``while self.pending > 0: self.step()``
        but with the queue, ``heappop`` and the max-events limit held in
        locals and no property/method call per event.  This is the loop
        every simulation spends its life in, so the constant factor
        matters; any behavioral change here must land in :meth:`step`
        too (and vice versa).  ``pending > 0`` guarantees a live
        non-daemon event, so the pop loop always fires something; daemon
        events fire too (in time order) but cannot keep the loop alive
        alone.

        With a profiler attached, dispatch runs through the separate
        :meth:`_run_all_profiled` variant so the common case pays zero
        per-event cost for the feature; the two loops must stay
        behaviorally identical apart from the timing.
        """
        if self.profiler is not None:
            self._run_all_profiled()
            return
        queue = self._queue
        pop = heapq.heappop
        max_events = self._max_events
        while len(queue) - self._cancelled_in_queue - self._daemon_live > 0:
            entry = pop(queue)
            if entry[_STATE] is _CANCELLED:
                self._cancelled_in_queue -= 1
                continue
            if entry[_DAEMON]:
                self._daemon_live -= 1
            entry[_STATE] = _FIRED
            self._now = entry[_WHEN]
            self._events_processed += 1
            if (max_events is not None
                    and self._events_processed > max_events):
                raise SimulationError(
                    f"exceeded max_events={max_events}; "
                    "likely a livelock in the simulated system")
            entry[_ACTION](*entry[_ARGS])

    def _run_all_profiled(self) -> None:
        """:meth:`_run_all` with per-event wall-clock attribution.

        A verbatim copy of the fast path plus ONE chained clock read and
        one :meth:`~repro.obs.profiler.WallProfiler.record_action` call
        per fired event: the timestamp taken after event *N* doubles as
        the start of event *N+1*, so the heap pop and loop bookkeeping
        between them are charged to the action they precede.  That keeps
        total accounted time exact while halving the clock cost — the
        profiler's whole dispatch overhead, bounded < 5 % by the
        perf-smoke acceptance bar.  Virtual-time behaviour is
        bit-identical to the unprofiled loop.
        """
        queue = self._queue
        pop = heapq.heappop
        max_events = self._max_events
        profiler = self.profiler
        clock = profiler.clock
        record = profiler.record_action
        buckets = profiler._buckets
        t_prev = clock()
        while len(queue) - self._cancelled_in_queue - self._daemon_live > 0:
            entry = pop(queue)
            if entry[_STATE] is _CANCELLED:
                self._cancelled_in_queue -= 1
                continue
            if entry[_DAEMON]:
                self._daemon_live -= 1
            entry[_STATE] = _FIRED
            self._now = entry[_WHEN]
            self._events_processed += 1
            if (max_events is not None
                    and self._events_processed > max_events):
                raise SimulationError(
                    f"exceeded max_events={max_events}; "
                    "likely a livelock in the simulated system")
            action = entry[_ACTION]
            action(*entry[_ARGS])
            t_now = clock()
            # WallProfiler.record_action inlined (bucket-hit fast path)
            # to drop a method call per event; the miss path delegates
            # and creates the per-function bucket.
            func = getattr(action, "__func__", action)
            bucket = buckets.get(func)
            if bucket is None:
                record(action, t_now - t_prev)
            else:
                bucket[0] += 1
                bucket[1] += t_now - t_prev
            t_prev = t_now

    def _peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or ``None`` if queue empty."""
        while self._queue:
            entry = self._queue[0]
            if entry[_STATE] is _CANCELLED:
                heapq.heappop(self._queue)
                self._cancelled_in_queue -= 1
                continue
            return entry[_WHEN]
        return None

    # -- debugging -------------------------------------------------------------

    def snapshot(self) -> Tuple[float, int, int]:
        """Return ``(now, pending, processed)`` for logging/assertions."""
        return (self._now, self.pending, self._events_processed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Engine(now={self._now:.9f}, pending={self.pending}, "
                f"processed={self._events_processed})")
