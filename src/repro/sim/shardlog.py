"""Compact per-shard trajectory logs and their deterministic merge.

The sharded conservative-PDES runner certifies itself against the serial
engine through *trajectory identity*: every trace-visible event — entry
executions, message sends, deliveries, drops — is recorded as a compact
tuple in virtual time, the per-shard logs are merged under one canonical
order, and the merged sequences must match bit-for-bit (same virtual
times, same events, same per-PE order) whatever the shard count.

:class:`ShardLog` is a :class:`~repro.sim.trace.TraceSink`; it can be
attached to any run (serial or sharded), so the serial baseline and
every sharded execution are logged through the same code path.  Each
record is keyed ``(time, pe, index)`` where *index* is a per-PE monotone
counter: all records of one PE come from the single shard that owns it,
so the per-PE subsequences are totally ordered and the global merge is
deterministic.

Records deliberately hold only *semantic* fields — virtual time, PEs,
entry/object labels, sizes, tags.  Bookkeeping identifiers (message
``seq``, execution ids, trace sids) are process-local counters: a shard
only numbers the events it simulates, so those labels cannot match the
serial numbering and are not part of the trajectory.

:func:`merge_logs` produces the canonical sequence, :func:`log_digest`
fingerprints it, and :func:`replay_into` drives a fresh
:class:`~repro.sim.trace.TraceAggregator` from a merged sequence — the
"deterministic merge of shard logs" that yields shard-count-independent
folds.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional, Tuple

#: Record kinds (slot 3 of a record tuple).
BEGIN, END, SENT, DELIVERED, DROPPED = range(5)

Record = Tuple  # (time, pe, per_pe_index, kind, *fields)


class ShardLog:
    """Trace sink recording the virtual-time trajectory as plain tuples.

    Cheap enough to leave on for certification runs (one tuple append
    per event), picklable (sent back from worker processes), and
    strictly append-only in engine order.
    """

    def __init__(self) -> None:
        self.enabled = True
        self.records: List[Record] = []
        self._index = {}  # pe -> number of records keyed to that PE

    def _push(self, pe: int, now: float, rest: tuple) -> None:
        index = self._index.get(pe, 0)
        self._index[pe] = index + 1
        self.records.append((now, pe, index) + rest)

    # -- TraceSink surface --------------------------------------------------

    def begin_execute(self, pe: int, now: float, chare: str, entry: str,
                      sid: Optional[int] = None,
                      parent: Optional[int] = None,
                      trigger: Optional[int] = None,
                      obj: Optional[str] = None) -> None:
        self._push(pe, now, (BEGIN, chare, entry, obj))

    def end_execute(self, pe: int, now: float) -> None:
        self._push(pe, now, (END,))

    def message_sent(self, now: float, src_pe: int, dst_pe: int, size: int,
                     tag: str, crossed_wan: bool,
                     seq: Optional[int] = None,
                     cause: Optional[int] = None,
                     ack_for: Optional[int] = None,
                     src_obj: Optional[str] = None,
                     dst_obj: Optional[str] = None) -> None:
        self._push(src_pe, now, (SENT, dst_pe, size, tag, crossed_wan,
                                 src_obj, dst_obj))

    def message_delivered(self, now: float, src_pe: int, dst_pe: int,
                          size: int, tag: str, crossed_wan: bool,
                          seq: Optional[int] = None,
                          cause: Optional[int] = None,
                          ack_for: Optional[int] = None,
                          src_obj: Optional[str] = None,
                          dst_obj: Optional[str] = None) -> None:
        self._push(dst_pe, now, (DELIVERED, src_pe, size, tag, crossed_wan,
                                 src_obj, dst_obj))

    def message_dropped(self, now: float, src_pe: int, dst_pe: int,
                        size: int, tag: str, crossed_wan: bool,
                        seq: Optional[int] = None,
                        cause: Optional[int] = None,
                        ack_for: Optional[int] = None,
                        src_obj: Optional[str] = None,
                        dst_obj: Optional[str] = None) -> None:
        self._push(src_pe, now, (DROPPED, dst_pe, size, tag, crossed_wan,
                                 src_obj, dst_obj))

    def note_retransmit(self) -> None:
        pass

    def note_dup_suppressed(self) -> None:
        pass


def merge_logs(logs: Iterable[ShardLog]) -> List[Record]:
    """Merge shard logs into the canonical global trajectory.

    Records are sorted by ``(time, pe, per_pe_index)``.  Each PE's
    records come from exactly one log and carry a monotone index, so the
    key is a total order and the result does not depend on how the event
    space was sharded — which is precisely the property the bit-identity
    tests assert.
    """
    merged: List[Record] = []
    for log in logs:
        merged.extend(log.records)
    merged.sort(key=lambda r: (r[0], r[1], r[2]))
    return merged


def log_digest(records: List[Record]) -> str:
    """Stable fingerprint of a merged trajectory.

    Floats are rendered with ``repr`` (shortest round-trip), so two
    digests match iff every virtual time and field is bit-equal.
    """
    h = hashlib.sha256()
    for record in records:
        h.update(repr(record).encode())
        h.update(b"\n")
    return h.hexdigest()


def replay_into(aggregator, records: List[Record]):
    """Feed a merged trajectory through a ``TraceAggregator``.

    Reconstructs shard-count-independent folds (PE usage, entry
    profiles, WAN windows) from shard logs: sends replay before their
    deliveries because transit times are strictly positive, and per-PE
    execution brackets replay in recorded order.  Message identities are
    gone (``seq`` is process-local), so WAN windows pair FIFO per
    (src, dst) — deterministic given the canonical order.  Returns
    *aggregator*.
    """
    for record in records:
        now, pe, _index, kind = record[0], record[1], record[2], record[3]
        rest = record[4:]
        if kind == BEGIN:
            chare, entry, obj = rest
            aggregator.begin_execute(pe, now, chare, entry, obj=obj)
        elif kind == END:
            aggregator.end_execute(pe, now)
        elif kind == SENT:
            dst_pe, size, tag, crossed_wan, src_obj, dst_obj = rest
            aggregator.message_sent(now, pe, dst_pe, size, tag, crossed_wan,
                                    src_obj=src_obj, dst_obj=dst_obj)
        elif kind == DELIVERED:
            src_pe, size, tag, crossed_wan, src_obj, dst_obj = rest
            aggregator.message_delivered(now, src_pe, pe, size, tag,
                                         crossed_wan, src_obj=src_obj,
                                         dst_obj=dst_obj)
        elif kind == DROPPED:
            dst_pe, size, tag, crossed_wan, src_obj, dst_obj = rest
            aggregator.message_dropped(now, pe, dst_pe, size, tag,
                                       crossed_wan, src_obj=src_obj,
                                       dst_obj=dst_obj)
    return aggregator
