"""Projections-style execution tracing.

Charm++ ships with a performance-analysis tool called *Projections* that
records, per processor, intervals of entry-method execution and message
send/receive events.  This module provides the same facility for the
simulated runtime: the scheduler calls :meth:`Tracer.begin_execute` /
:meth:`Tracer.end_execute` and the network fabric calls
:meth:`Tracer.message_sent` / :meth:`Tracer.message_delivered`.

The trace is the raw material for

* the Figure-2 style timeline example (``examples/timeline_fig2.py``),
* PE utilization / overlap statistics used in tests to *prove* that
  latency masking actually happened (rather than inferring it from
  end-to-end times alone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class ExecInterval:
    """One entry-method execution on one PE."""

    pe: int
    start: float
    end: float
    chare: str
    entry: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class MessageEvent:
    """One message lifecycle milestone."""

    kind: str          # "send" | "deliver" | "drop"
    time: float
    src_pe: int
    dst_pe: int
    size: int
    tag: str
    crossed_wan: bool
    #: Message sequence id, used to pair sends to delivers exactly even
    #: when jitter or retransmission reorders deliveries.  ``None`` for
    #: events recorded by pre-seq producers (paired FIFO as a fallback).
    seq: Optional[int] = None


@dataclass
class PeUsage:
    """Aggregated busy/idle statistics for one PE."""

    pe: int
    busy: float = 0.0
    executions: int = 0

    def utilization(self, makespan: float) -> float:
        """Fraction of *makespan* this PE spent executing entry methods."""
        if makespan <= 0.0:
            return 0.0
        return self.busy / makespan


class Tracer:
    """Collects execution intervals and message events.

    Tracing is off by default in benchmark sweeps (it costs memory per
    event); the harness enables it for timeline/overlap experiments.

    Parameters
    ----------
    enabled:
        When ``False`` every recording call is a cheap no-op; statistics
        queries raise ``ValueError`` (the caller asked for data that was
        never collected, which is a bug worth surfacing).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.intervals: List[ExecInterval] = []
        self.messages: List[MessageEvent] = []
        self._open: Dict[int, Tuple[float, str, str]] = {}
        #: Reliable-transport counters (cheap; kept even in big sweeps).
        self.retransmits = 0
        self.dups_suppressed = 0

    # -- recording -------------------------------------------------------

    def begin_execute(self, pe: int, now: float, chare: str, entry: str) -> None:
        """Mark the start of an entry-method execution on *pe*."""
        if not self.enabled:
            return
        if pe in self._open:
            raise ValueError(f"PE {pe} already executing {self._open[pe]!r}")
        self._open[pe] = (now, chare, entry)

    def end_execute(self, pe: int, now: float) -> None:
        """Mark the end of the currently open execution on *pe*."""
        if not self.enabled:
            return
        try:
            start, chare, entry = self._open.pop(pe)
        except KeyError:
            raise ValueError(f"PE {pe} has no open execution interval")
        self.intervals.append(ExecInterval(pe, start, now, chare, entry))

    def message_sent(self, now: float, src_pe: int, dst_pe: int, size: int,
                     tag: str, crossed_wan: bool,
                     seq: Optional[int] = None) -> None:
        """Record a message leaving its source PE."""
        if not self.enabled:
            return
        self.messages.append(MessageEvent(
            "send", now, src_pe, dst_pe, size, tag, crossed_wan, seq))

    def message_delivered(self, now: float, src_pe: int, dst_pe: int,
                          size: int, tag: str, crossed_wan: bool,
                          seq: Optional[int] = None) -> None:
        """Record a message arriving at its destination PE's queue."""
        if not self.enabled:
            return
        self.messages.append(MessageEvent(
            "deliver", now, src_pe, dst_pe, size, tag, crossed_wan, seq))

    def message_dropped(self, now: float, src_pe: int, dst_pe: int,
                        size: int, tag: str, crossed_wan: bool,
                        seq: Optional[int] = None) -> None:
        """Record a message lost on the wire (fault injection)."""
        if not self.enabled:
            return
        self.messages.append(MessageEvent(
            "drop", now, src_pe, dst_pe, size, tag, crossed_wan, seq))

    def note_retransmit(self) -> None:
        """Count one reliable-layer retransmission."""
        if self.enabled:
            self.retransmits += 1

    def note_dup_suppressed(self) -> None:
        """Count one duplicate delivery suppressed by the reliable layer."""
        if self.enabled:
            self.dups_suppressed += 1

    # -- analysis --------------------------------------------------------

    def _require_data(self) -> None:
        if not self.enabled:
            raise ValueError("tracer was disabled; no data collected")

    def makespan(self) -> float:
        """Virtual time spanned by the recorded intervals."""
        self._require_data()
        if not self.intervals:
            return 0.0
        start = min(iv.start for iv in self.intervals)
        end = max(iv.end for iv in self.intervals)
        return end - start

    def pe_usage(self) -> Dict[int, PeUsage]:
        """Per-PE busy time and execution counts."""
        self._require_data()
        usage: Dict[int, PeUsage] = {}
        for iv in self.intervals:
            u = usage.setdefault(iv.pe, PeUsage(iv.pe))
            u.busy += iv.duration
            u.executions += 1
        return usage

    def busy_during(self, pe: int, start: float, end: float) -> float:
        """Total time *pe* spent executing within the window [start, end].

        This is the workhorse of the overlap tests: after identifying a
        WAN message's in-flight window from the message events, the tests
        assert the destination PE was busy during it — i.e. the latency
        was *masked* by other objects' work, which is the paper's thesis.
        """
        self._require_data()
        total = 0.0
        for iv in self.intervals:
            if iv.pe != pe:
                continue
            lo = max(iv.start, start)
            hi = min(iv.end, end)
            if hi > lo:
                total += hi - lo
        return total

    def wan_flight_windows(self) -> List[Tuple[float, float, int, int]]:
        """Return ``(send_time, deliver_time, src_pe, dst_pe)`` for every
        message that crossed the wide-area link.

        Events carrying a message sequence id are paired *by id*, so the
        windows stay correct when jitter or retransmission delivers
        messages out of send order (FIFO pairing would silently cross
        them).  A retransmitted id contributes one window from its first
        send to its first delivery; duplicate deliveries are ignored.
        Legacy events without an id fall back to FIFO pairing per
        (src, dst) pair.
        """
        self._require_data()
        fifo: Dict[Tuple[int, int], List[float]] = {}
        first_send: Dict[Tuple[int, int, int], float] = {}
        emitted: set = set()
        windows: List[Tuple[float, float, int, int]] = []
        for ev in self.messages:
            if not ev.crossed_wan:
                continue
            if ev.kind == "send":
                if ev.seq is None:
                    fifo.setdefault((ev.src_pe, ev.dst_pe),
                                    []).append(ev.time)
                else:
                    first_send.setdefault(
                        (ev.src_pe, ev.dst_pe, ev.seq), ev.time)
            elif ev.kind == "deliver":
                if ev.seq is None:
                    queue = fifo.get((ev.src_pe, ev.dst_pe))
                    if queue:
                        windows.append((queue.pop(0), ev.time,
                                        ev.src_pe, ev.dst_pe))
                else:
                    key = (ev.src_pe, ev.dst_pe, ev.seq)
                    if key in first_send and key not in emitted:
                        emitted.add(key)
                        windows.append((first_send[key], ev.time,
                                        ev.src_pe, ev.dst_pe))
        return windows

    def timeline(self, pes: Optional[Iterable[int]] = None
                 ) -> Dict[int, List[ExecInterval]]:
        """Per-PE chronologically sorted execution intervals."""
        self._require_data()
        wanted = set(pes) if pes is not None else None
        out: Dict[int, List[ExecInterval]] = {}
        for iv in self.intervals:
            if wanted is not None and iv.pe not in wanted:
                continue
            out.setdefault(iv.pe, []).append(iv)
        for lst in out.values():
            lst.sort(key=lambda iv: iv.start)
        return out

    def render_timeline(self, width: int = 72,
                        pes: Optional[Iterable[int]] = None) -> str:
        """ASCII rendering of per-PE busy intervals (Figure-2 style).

        Each PE gets a row of *width* characters; ``#`` marks busy time,
        ``.`` idle time.  Intended for examples and debugging, not parsing.
        """
        tl = self.timeline(pes)
        if not tl:
            return "(empty trace)"
        start = min(iv.start for ivs in tl.values() for iv in ivs)
        end = max(iv.end for ivs in tl.values() for iv in ivs)
        span = max(end - start, 1e-12)
        lines = []
        for pe in sorted(tl):
            row = ["."] * width
            for iv in tl[pe]:
                lo = int((iv.start - start) / span * (width - 1))
                hi = int((iv.end - start) / span * (width - 1))
                for i in range(lo, hi + 1):
                    row[i] = "#"
            lines.append(f"PE{pe:>3} |" + "".join(row) + "|")
        return "\n".join(lines)


    def profile_by_entry(self) -> Dict[Tuple[str, str], "EntryProfile"]:
        """Projections-style usage profile: time per (chare, entry) kind."""
        self._require_data()
        out: Dict[Tuple[str, str], EntryProfile] = {}
        for iv in self.intervals:
            key = (iv.chare, iv.entry)
            prof = out.setdefault(key, EntryProfile(iv.chare, iv.entry))
            prof.calls += 1
            prof.total_time += iv.duration
        return out

    def render_profile(self, top: int = 10) -> str:
        """Human-readable top-N entry-method usage table."""
        all_profs = self.profile_by_entry().values()
        profs = sorted(all_profs, key=lambda p: -p.total_time)[:top]
        total = sum(p.total_time for p in all_profs)
        lines = [f"{'chare.entry':36s} {'calls':>8} {'time(s)':>10} "
                 f"{'share':>7}"]
        for p in profs:
            share = p.total_time / total if total > 0 else 0.0
            lines.append(f"{p.chare + '.' + p.entry:36s} {p.calls:>8} "
                         f"{p.total_time:>10.4f} {share:>6.1%}")
        return "\n".join(lines)


@dataclass
class EntryProfile:
    """Aggregate execution statistics for one (chare type, entry) pair."""

    chare: str
    entry: str
    calls: int = 0
    total_time: float = 0.0

    @property
    def mean_time(self) -> float:
        return self.total_time / self.calls if self.calls else 0.0
