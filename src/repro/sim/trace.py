"""Projections-style execution tracing.

Charm++ ships with a performance-analysis tool called *Projections* that
records, per processor, intervals of entry-method execution and message
send/receive events.  This module provides the same facility for the
simulated runtime: the scheduler calls :meth:`Tracer.begin_execute` /
:meth:`Tracer.end_execute` and the network fabric calls
:meth:`Tracer.message_sent` / :meth:`Tracer.message_delivered`.

Two recorders implement that surface (the :class:`TraceSink` protocol):

* :class:`Tracer` — the batch recorder: stores every event, supports
  arbitrary post-hoc queries (timelines, per-window overlap).  Memory
  grows with event count, so sweeps historically ran with it disabled.
* :class:`TraceAggregator` — the streaming recorder: folds each event
  into running aggregates (PE utilization, per-entry profiles, WAN
  flight statistics, and the headline **masked-latency fraction** — the
  share of WAN in-flight time during which the destination PE was busy)
  and then forgets it.  Memory is O(PEs + entry kinds + in-flight
  messages), so full Figure-3/4 sweeps can keep statistics on.

:class:`TraceFanout` multiplexes one recording stream to several sinks
(e.g. a full tracer for export plus a streaming aggregator for the run
report).

The trace is the raw material for

* the Figure-2 style timeline example (``examples/timeline_fig2.py``),
* PE utilization / overlap statistics used in tests to *prove* that
  latency masking actually happened (rather than inferring it from
  end-to-end times alone),
* Chrome-trace / event-log export (:mod:`repro.obs.export`) and the
  latency-masking report (:mod:`repro.obs.report`).
"""

from __future__ import annotations

import math
import sys
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from repro.network.hops import HopLedger

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.obs.metrics import MetricsRegistry

#: ``slots=True`` keeps the two per-event hot allocations small enough
#: that tracing stays affordable in big sweeps; the keyword only exists
#: on Python >= 3.10 (the package supports 3.9, where plain dataclasses
#: are used instead).
_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass(frozen=True, **_SLOTS)
class ExecInterval:
    """One entry-method execution on one PE."""

    pe: int
    start: float
    end: float
    chare: str
    entry: str
    #: Causal span id of this execution, unique within a run.  ``None``
    #: for events recorded by pre-causal producers.
    sid: Optional[int] = None
    #: Span id of the execution that *sent* the message this execution
    #: is processing (the causal parent), or ``None`` for roots (driver
    #: sends) and pre-causal traces.
    parent: Optional[int] = None
    #: Sequence id of the message whose delivery triggered this
    #: execution; pairs the span with its incoming wire edge.
    trigger: Optional[int] = None
    #: Location-independent object label (``str(ChareID)``) of the chare
    #: this execution ran on, or ``None`` for runtime-internal work
    #: (``<rts>`` forwards/relays/reductions, ``<driver>`` callbacks).
    #: Keyed by chare identity, not PE, so per-object aggregation is
    #: stable across migrations.
    obj: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True, **_SLOTS)
class MessageEvent:
    """One message lifecycle milestone."""

    kind: str          # "send" | "deliver" | "drop"
    time: float
    src_pe: int
    dst_pe: int
    size: int
    tag: str
    crossed_wan: bool
    #: Message sequence id, used to pair sends to delivers exactly even
    #: when jitter or retransmission reorders deliveries.  ``None`` for
    #: events recorded by pre-seq producers (paired FIFO as a fallback).
    seq: Optional[int] = None
    #: Span id of the execution that sent this message (causal parent),
    #: or ``None`` for driver/protocol messages and pre-causal traces.
    cause: Optional[int] = None
    #: For reliable-transport acks: the data-message seq acknowledged.
    ack_for: Optional[int] = None
    #: Object label of the sending chare (``None`` for driver/protocol
    #: messages and pre-object traces).
    src_obj: Optional[str] = None
    #: Object label of the destination chare for point-to-point sends
    #: (``None`` for bundles, reductions, relays, migrations and acks).
    dst_obj: Optional[str] = None


@dataclass(frozen=True, **_SLOTS)
class HopEvent:
    """One wire copy's finished hop ledger (the flight recorder record).

    Emitted by the fabric once per *non-dropped* wire copy, at send
    time, with the copy's already-computed arrival.  ``hops`` holds the
    per-device :class:`~repro.network.hops.HopSpan` tuple in traversal
    order.
    """

    time: float
    src_pe: int
    dst_pe: int
    size: int
    tag: str
    crossed_wan: bool
    seq: Optional[int]
    arrival: float
    hops: HopLedger
    #: Relay depth of the message in a hierarchical multicast (0=direct).
    relay_hop: int = 0
    #: ARQ attempt that produced this copy (0/1 = first, >=2 = retx).
    arq_attempt: int = 0

    @property
    def wire_time(self) -> float:
        """Send-to-arrival seconds for this copy."""
        return self.arrival - self.time


@dataclass
class LinkUsage:
    """Folded per-lane statistics from hop ledgers.

    One instance per wire lane: a transport device, a contended pipe
    direction, or a single striped stream.  ``link`` names the owning
    device so stream lanes can be rolled up per link.
    """

    lane: str
    link: str
    #: Wire/stream spans folded (chunks count individually on striped
    #: links; filter-device spans count separately under their own lane).
    crossings: int = 0
    #: Seconds the lane was occupied serializing bytes.
    busy_s: float = 0.0
    #: Seconds messages spent queued for the lane before service.
    queue_s: float = 0.0
    #: Total enqueue-to-arrive seconds across spans.
    flight_s: float = 0.0
    #: Queue-depth-at-enqueue histogram: depth -> observations.
    depth_counts: Optional[Dict[int, int]] = None
    #: True once any cross-WAN wire copy used this lane.
    wan: bool = False

    def observe(self, depth: int) -> None:
        if self.depth_counts is None:
            self.depth_counts = {}
        self.depth_counts[depth] = self.depth_counts.get(depth, 0) + 1

    def queue_depth_quantile(self, q: float) -> int:
        """Exact quantile of observed enqueue-time queue depths."""
        counts = self.depth_counts or {}
        total = sum(counts.values())
        if total == 0:
            return 0
        rank = q * (total - 1)
        seen = 0
        for depth in sorted(counts):
            seen += counts[depth]
            if seen - 1 >= rank:
                return depth
        return max(counts)

    @property
    def max_queue_depth(self) -> int:
        return max(self.depth_counts) if self.depth_counts else 0

    def busy_fraction(self, makespan: float) -> float:
        if makespan <= 0.0:
            return 0.0
        return self.busy_s / makespan

    def to_dict(self) -> Dict[str, object]:
        return {
            "lane": self.lane,
            "link": self.link,
            "crossings": self.crossings,
            "busy_s": self.busy_s,
            "queue_s": self.queue_s,
            "flight_s": self.flight_s,
            "p95_queue_depth": self.queue_depth_quantile(0.95),
            "max_queue_depth": self.max_queue_depth,
            "wan": self.wan,
        }


def fold_hops(links: Dict[str, LinkUsage], hops: HopLedger,
              wan: bool = False) -> None:
    """Fold one ledger into per-lane usage, shared by both recorders.

    Both :class:`Tracer` (post-hoc, over stored :class:`HopEvent`
    records in recorded order) and :class:`TraceAggregator` (online)
    call this exact function, so their per-lane sums are **bit
    identical** — same additions in the same order.
    """
    for h in hops:
        u = links.get(h.device)
        if u is None:
            u = links[h.device] = LinkUsage(lane=h.device, link=h.link)
        u.crossings += 1
        u.busy_s += h.ser_s
        u.queue_s += h.dequeue - h.enqueue
        u.flight_s += h.arrive - h.enqueue
        u.observe(h.queue_depth)
        if wan:
            u.wan = True


#: Grain-histogram bucket used for zero-duration executions.  Every
#: positive float's ``frexp`` exponent is >= -1073, so this sorts first.
_ZERO_GRAIN_BUCKET = -1075


def _grain_bucket(duration: float) -> int:
    """Log2 histogram bucket: ``e`` such that duration in [2^(e-1), 2^e)."""
    if duration <= 0.0:
        return _ZERO_GRAIN_BUCKET
    return math.frexp(duration)[1]


class ObjectProfile:
    """Per-chare execution/communication profile (Projections object view).

    Keyed by the chare's location-independent label, so all statistics
    follow the *object* across migrations, not the PE it happened to be
    on.  Byte/message counters are split three ways by what the wire
    copy crossed: ``local`` (same PE), ``lan`` (cross-PE inside one
    cluster) and ``wan`` (cross-cluster).

    Execution statistics are stored as ONE ``(entry, duration) ->
    count`` dict (:attr:`entry_grains`) and everything else —
    executions, total compute, exact max grain, the log2 grain
    histogram, per-entry counts — is *derived* on query.  This is the
    record-side half of the < 5 % perf-smoke bar: the per-execution hot
    path is a single dict increment, and the derivations iterate the
    dict in sorted key order, so they are deterministic and identical
    between the streaming and batch folds.  A simulator's grain sizes
    come from its cost model and repeat heavily, so the dict stays
    O(entry kinds x distinct grains), far below O(executions).
    """

    __slots__ = ("obj", "entry_grains", "queue_wait_s", "queue_waits",
                 "msgs_sent_local", "msgs_sent_lan", "msgs_sent_wan",
                 "bytes_sent_local", "bytes_sent_lan", "bytes_sent_wan",
                 "msgs_recv_local", "msgs_recv_lan", "msgs_recv_wan",
                 "bytes_recv_local", "bytes_recv_lan", "bytes_recv_wan",
                 "drops")

    def __init__(self, obj: str) -> None:
        self.obj = obj
        #: (entry name, grain seconds) -> execution count.
        self.entry_grains: Dict[Tuple[str, float], int] = {}
        self.queue_wait_s = 0.0
        self.queue_waits = 0
        self.msgs_sent_local = 0
        self.msgs_sent_lan = 0
        self.msgs_sent_wan = 0
        self.bytes_sent_local = 0
        self.bytes_sent_lan = 0
        self.bytes_sent_wan = 0
        self.msgs_recv_local = 0
        self.msgs_recv_lan = 0
        self.msgs_recv_wan = 0
        self.bytes_recv_local = 0
        self.bytes_recv_lan = 0
        self.bytes_recv_wan = 0
        self.drops = 0

    @property
    def executions(self) -> int:
        return sum(self.entry_grains.values())

    @property
    def compute_s(self) -> float:
        """Total compute: sum of grain x count over sorted keys.

        The sorted iteration order makes the float sum a pure function
        of the dict *contents*, so the streaming and batch folds agree
        bitwise no matter how their updates interleaved.
        """
        return sum(k[1] * n for k, n in sorted(self.entry_grains.items()))

    @property
    def max_grain_s(self) -> float:
        if not self.entry_grains:
            return 0.0
        return max(d for _e, d in self.entry_grains)

    @property
    def grain_buckets(self) -> Dict[int, int]:
        """log2 bucket -> execution count (see :func:`_grain_bucket`)."""
        out: Dict[int, int] = {}
        for (_entry, d), n in self.entry_grains.items():
            b = _grain_bucket(d)
            out[b] = out.get(b, 0) + n
        return out

    @property
    def entries(self) -> Dict[str, int]:
        """Entry name -> execution count."""
        out: Dict[str, int] = {}
        for (entry, _d), n in self.entry_grains.items():
            out[entry] = out.get(entry, 0) + n
        return out

    @property
    def mean_grain_s(self) -> float:
        execs = self.executions
        return self.compute_s / execs if execs else 0.0

    @property
    def bytes_sent(self) -> int:
        return (self.bytes_sent_local + self.bytes_sent_lan
                + self.bytes_sent_wan)

    @property
    def bytes_recv(self) -> int:
        return (self.bytes_recv_local + self.bytes_recv_lan
                + self.bytes_recv_wan)

    @property
    def msgs_sent(self) -> int:
        return self.msgs_sent_local + self.msgs_sent_lan + self.msgs_sent_wan

    @property
    def msgs_recv(self) -> int:
        return self.msgs_recv_local + self.msgs_recv_lan + self.msgs_recv_wan

    def grain_quantile(self, q: float,
                       buckets: Optional[Dict[int, int]] = None) -> float:
        """Histogram quantile of grain sizes (bucket lower edge).

        Derived purely from integer bucket counts, so it is order-free
        and exactly reproducible; resolution is one octave (the
        histogram's bucket width), with :attr:`max_grain_s` exact.
        Pass a precomputed :attr:`grain_buckets` to amortize the
        derivation across several quantiles.
        """
        if buckets is None:
            buckets = self.grain_buckets
        total = sum(buckets.values())
        if total == 0:
            return 0.0
        rank = q * (total - 1)
        seen = 0
        for bucket in sorted(buckets):
            seen += buckets[bucket]
            if seen - 1 >= rank:
                if bucket == _ZERO_GRAIN_BUCKET:
                    return 0.0
                return math.ldexp(1.0, bucket - 1)
        return self.max_grain_s

    def to_dict(self) -> Dict[str, object]:
        buckets = self.grain_buckets
        return {
            "obj": self.obj,
            "executions": self.executions,
            "compute_s": self.compute_s,
            "mean_grain_s": self.mean_grain_s,
            "p50_grain_s": self.grain_quantile(0.50, buckets),
            "p95_grain_s": self.grain_quantile(0.95, buckets),
            "max_grain_s": self.max_grain_s,
            "queue_wait_s": self.queue_wait_s,
            "queue_waits": self.queue_waits,
            "entries": {k: self.entries[k] for k in sorted(self.entries)},
            "sent": {
                "local_msgs": self.msgs_sent_local,
                "local_bytes": self.bytes_sent_local,
                "lan_msgs": self.msgs_sent_lan,
                "lan_bytes": self.bytes_sent_lan,
                "wan_msgs": self.msgs_sent_wan,
                "wan_bytes": self.bytes_sent_wan,
            },
            "recv": {
                "local_msgs": self.msgs_recv_local,
                "local_bytes": self.bytes_recv_local,
                "lan_msgs": self.msgs_recv_lan,
                "lan_bytes": self.bytes_recv_lan,
                "wan_msgs": self.msgs_recv_wan,
                "wan_bytes": self.bytes_recv_wan,
            },
            "drops": self.drops,
        }


class CommEdge:
    """One sparse object x object communication-matrix cell."""

    __slots__ = ("src", "dst", "messages", "bytes", "wan_messages",
                 "wan_bytes")

    def __init__(self, src: str, dst: str) -> None:
        self.src = src
        self.dst = dst
        self.messages = 0
        self.bytes = 0
        self.wan_messages = 0
        self.wan_bytes = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "src": self.src,
            "dst": self.dst,
            "messages": self.messages,
            "bytes": self.bytes,
            "wan_messages": self.wan_messages,
            "wan_bytes": self.wan_bytes,
        }


class ObjectFold:
    """Shared per-object fold behind the Projections object view.

    Like :func:`fold_hops` for lanes, this is the *single* fold both
    recorders drive: :class:`TraceAggregator` records events into this
    fold as it goes (see the buffer protocol below), and
    :func:`repro.obs.objview.fold_from_tracer` replays a batch
    :class:`Tracer`'s stored streams through the same hooks.  Every
    per-object float accumulator is updated in the same per-object order
    on both paths (a chare's begin/end events are totally ordered, and
    message counters are integers), so the two folds are **bit
    identical** — hypothesis-tested in
    ``tests/property/test_objview_streaming.py``.

    The hooks' fold work is *not* performed per event on the live path:
    :class:`TraceAggregator` appends one small tuple per relevant event
    to :attr:`_buf` (a single ``list.append``, the cheapest record the
    runtime can make — the perf-smoke bar holds the whole fold under
    5 % marginal wall-clock cost over stats-only aggregation) and the
    buffered stream is replayed through the reference hooks by
    :meth:`_drain` the first time anyone asks for :attr:`profiles` or
    :attr:`matrix`.  Replay preserves record order, so the result is
    the same fold the hooks would have produced event by event.

    Buffer protocol (first element tags the hook; the rest are its
    positional arguments in order)::

        (0, now, obj, trigger)                         -> on_begin
        (1, obj, entry, duration)                      -> on_exec
        (2, size, crossed_wan, local, src_obj, dst_obj)-> on_send
        (3, now, seq, size, crossed_wan, local, dst_obj)-> on_deliver
        (4, src_obj)                                   -> on_drop

    The recorder applies each hook's cheap early-out *before*
    appending (e.g. no tuple for an unlabelled execution), and feeds
    :attr:`window_max_grain_s` inline at record time so the telemetry
    sampler's :meth:`harvest_window` never forces a drain mid-run.

    Folded memory is O(objects + distinct (entry, grain) pairs +
    comm-matrix nonzeros); the undrained buffer adds O(events since the
    last profile query).  Long monitoring runs that want the buffer
    bounded can call :meth:`flush` at any checkpoint — draining is
    idempotent and never perturbs the fold's semantics.
    """

    __slots__ = ("_profiles", "_matrix", "_buf", "_pending",
                 "window_max_grain_s", "window_max_grain_obj")

    def __init__(self) -> None:
        #: obj label -> profile (access via :attr:`profiles`).
        self._profiles: Dict[str, ObjectProfile] = {}
        #: (src_obj, dst_obj) -> matrix cell (access via :attr:`matrix`).
        self._matrix: Dict[Tuple[str, str], CommEdge] = {}
        #: Recorded-but-not-yet-folded events (see the buffer protocol
        #: in the class docstring).  :class:`TraceAggregator` appends
        #: to this directly on its hot path.
        self._buf: List[tuple] = []
        #: seq -> delivery time(s) not yet consumed by a triggered
        #: execution (queue-wait pairing).  A bare float for the common
        #: single-copy case, promoted to a FIFO list only when a second
        #: copy of the same seq arrives before the first is consumed.
        self._pending: Dict[int, object] = {}
        #: Largest single-execution grain since the last
        #: :meth:`harvest_window` (telemetry/watchdog feed, updated at
        #: *record* time by the aggregator; not part of the profile
        #: state the bit-identity tests compare).
        self.window_max_grain_s = 0.0
        self.window_max_grain_obj: Optional[str] = None

    @property
    def profiles(self) -> Dict[str, ObjectProfile]:
        """obj label -> profile, with any buffered events folded in."""
        if self._buf:
            self._drain()
        return self._profiles

    @property
    def matrix(self) -> Dict[Tuple[str, str], CommEdge]:
        """(src_obj, dst_obj) -> cell, with buffered events folded in."""
        if self._buf:
            self._drain()
        return self._matrix

    def _drain(self) -> None:
        """Replay the record buffer through the reference hooks."""
        buf = self._buf
        on_begin = self.on_begin
        on_exec = self.on_exec
        on_send = self.on_send
        on_deliver = self.on_deliver
        on_drop = self.on_drop
        for ev in buf:
            tag = ev[0]
            if tag == 1:
                on_exec(ev[1], ev[2], ev[3])
            elif tag == 3:
                on_deliver(ev[1], ev[2], ev[3], ev[4], ev[5], ev[6])
            elif tag == 2:
                on_send(ev[1], ev[2], ev[3], ev[4], ev[5])
            elif tag == 0:
                on_begin(ev[1], ev[2], ev[3])
            else:
                on_drop(ev[1])
        buf.clear()

    def flush(self) -> None:
        """Fold any buffered events now (bounds buffer memory)."""
        if self._buf:
            self._drain()

    def _prof(self, obj: str) -> ObjectProfile:
        p = self._profiles.get(obj)
        if p is None:
            p = self._profiles[obj] = ObjectProfile(obj)
        return p

    # -- recording hooks -------------------------------------------------

    def on_begin(self, now: float, obj: Optional[str],
                 trigger: Optional[int]) -> None:
        """An execution began; pair it with its trigger's delivery.

        The pending delivery for *trigger* is popped even when the
        execution has no object label (``<rts>`` work), keeping the
        FIFO pairing aligned between both folds.
        """
        if trigger is None:
            return
        cur = self._pending.pop(trigger, None)
        if cur is None:
            return
        if type(cur) is list:
            delivered = cur.pop(0)
            if cur:
                self._pending[trigger] = cur
        else:
            delivered = cur
        if obj is not None:
            try:
                p = self._profiles[obj]
            except KeyError:
                p = self._profiles[obj] = ObjectProfile(obj)
            p.queue_wait_s += now - delivered
            p.queue_waits += 1

    def on_exec(self, obj: Optional[str], entry: str,
                duration: float) -> None:
        """An execution of *duration* seconds completed on *obj*.

        The grain window (:attr:`window_max_grain_s`) is deliberately
        *not* updated here: it is an online telemetry channel fed at
        record time by :class:`TraceAggregator`, so a deferred drain
        cannot resurrect grains a sampler already harvested.
        """
        if obj is None:
            return
        try:
            p = self._profiles[obj]
        except KeyError:
            p = self._profiles[obj] = ObjectProfile(obj)
        key = (entry, duration)
        grains = p.entry_grains
        try:
            grains[key] += 1
        except KeyError:
            grains[key] = 1

    def on_send(self, size: int, crossed_wan: bool, local: bool,
                src_obj: Optional[str], dst_obj: Optional[str]) -> None:
        if src_obj is None:
            return
        try:
            p = self._profiles[src_obj]
        except KeyError:
            p = self._profiles[src_obj] = ObjectProfile(src_obj)
        if crossed_wan:
            p.msgs_sent_wan += 1
            p.bytes_sent_wan += size
        elif local:
            p.msgs_sent_local += 1
            p.bytes_sent_local += size
        else:
            p.msgs_sent_lan += 1
            p.bytes_sent_lan += size
        if dst_obj is not None:
            key = (src_obj, dst_obj)
            try:
                cell = self._matrix[key]
            except KeyError:
                cell = self._matrix[key] = CommEdge(src_obj, dst_obj)
            cell.messages += 1
            cell.bytes += size
            if crossed_wan:
                cell.wan_messages += 1
                cell.wan_bytes += size

    def on_deliver(self, now: float, seq: Optional[int], size: int,
                   crossed_wan: bool, local: bool,
                   dst_obj: Optional[str]) -> None:
        if seq is not None:
            pending = self._pending
            if seq in pending:
                cur = pending[seq]
                if type(cur) is list:
                    cur.append(now)
                else:
                    pending[seq] = [cur, now]
            else:
                pending[seq] = now
        if dst_obj is None:
            return
        try:
            p = self._profiles[dst_obj]
        except KeyError:
            p = self._profiles[dst_obj] = ObjectProfile(dst_obj)
        if crossed_wan:
            p.msgs_recv_wan += 1
            p.bytes_recv_wan += size
        elif local:
            p.msgs_recv_local += 1
            p.bytes_recv_local += size
        else:
            p.msgs_recv_lan += 1
            p.bytes_recv_lan += size

    def on_drop(self, src_obj: Optional[str]) -> None:
        if src_obj is not None:
            self._prof(src_obj).drops += 1

    # -- queries ---------------------------------------------------------

    def harvest_window(self) -> Tuple[float, Optional[str]]:
        """Return and reset the since-last-harvest max grain (sampler)."""
        out = (self.window_max_grain_s, self.window_max_grain_obj)
        self.window_max_grain_s = 0.0
        self.window_max_grain_obj = None
        return out

    def total_compute_s(self) -> float:
        return sum(p.compute_s for p in self.profiles.values())

    def top_by_compute(self, k: int = 10) -> List[ObjectProfile]:
        """The *k* objects with the most compute; deterministic ties."""
        return sorted(self.profiles.values(),
                      key=lambda p: (-p.compute_s, p.obj))[:k]

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly dump: profiles and matrix in sorted key order."""
        return {
            "objects": {obj: self.profiles[obj].to_dict()
                        for obj in sorted(self.profiles)},
            "matrix": [self.matrix[key].to_dict()
                       for key in sorted(self.matrix)],
        }


@dataclass
class PeUsage:
    """Aggregated busy/idle statistics for one PE."""

    pe: int
    busy: float = 0.0
    executions: int = 0

    def utilization(self, makespan: float) -> float:
        """Fraction of *makespan* this PE spent executing entry methods."""
        if makespan <= 0.0:
            return 0.0
        return self.busy / makespan


@dataclass
class EntryProfile:
    """Aggregate execution statistics for one (chare type, entry) pair."""

    chare: str
    entry: str
    calls: int = 0
    total_time: float = 0.0

    @property
    def mean_time(self) -> float:
        return self.total_time / self.calls if self.calls else 0.0


class TraceSink(Protocol):
    """Anything the scheduler/fabric can record events into.

    The runtime only ever *writes* through this surface; analysis
    methods are sink-specific.  ``enabled`` gates the scheduler's
    begin/end bracketing (a disabled sink must not be handed intervals).
    """

    enabled: bool

    def begin_execute(self, pe: int, now: float, chare: str,
                      entry: str, sid: Optional[int] = None,
                      parent: Optional[int] = None,
                      trigger: Optional[int] = None,
                      obj: Optional[str] = None) -> None: ...

    def end_execute(self, pe: int, now: float) -> None: ...

    def message_sent(self, now: float, src_pe: int, dst_pe: int, size: int,
                     tag: str, crossed_wan: bool,
                     seq: Optional[int] = None,
                     cause: Optional[int] = None,
                     ack_for: Optional[int] = None,
                     src_obj: Optional[str] = None,
                     dst_obj: Optional[str] = None) -> None: ...

    def message_delivered(self, now: float, src_pe: int, dst_pe: int,
                          size: int, tag: str, crossed_wan: bool,
                          seq: Optional[int] = None,
                          cause: Optional[int] = None,
                          ack_for: Optional[int] = None,
                          src_obj: Optional[str] = None,
                          dst_obj: Optional[str] = None) -> None: ...

    def message_dropped(self, now: float, src_pe: int, dst_pe: int,
                        size: int, tag: str, crossed_wan: bool,
                        seq: Optional[int] = None,
                        cause: Optional[int] = None,
                        ack_for: Optional[int] = None,
                        src_obj: Optional[str] = None,
                        dst_obj: Optional[str] = None) -> None: ...

    def note_retransmit(self) -> None: ...

    def note_dup_suppressed(self) -> None: ...

    def message_hops(self, now: float, src_pe: int, dst_pe: int, size: int,
                     tag: str, crossed_wan: bool, seq: Optional[int],
                     arrival: float, hops: HopLedger,
                     relay_hop: int = 0,
                     arq_attempt: int = 0) -> None: ...


class TraceFanout:
    """Broadcasts recording calls to several sinks.

    Used when a run wants both the full batch trace (for export) and
    streaming aggregation (for the report) — or, in principle, any
    future sink (a live dashboard feed, a sampling profiler).

    Sinks are isolated from each other's failures: a sink that raises is
    quarantined (never called again) and the exception is re-raised once
    — after the remaining sinks have received the event — so one broken
    sink can neither corrupt nor silence the others, and the error still
    surfaces to the caller exactly once.
    """

    def __init__(self, sinks: Sequence[TraceSink]) -> None:
        self.sinks: List[TraceSink] = list(sinks)
        #: id()s of sinks quarantined after raising.
        self._failed: set = set()

    @property
    def enabled(self) -> bool:
        return any(s.enabled and id(s) not in self._failed
                   for s in self.sinks)

    def _fanout(self, call) -> None:
        err: Optional[BaseException] = None
        for s in self.sinks:
            if not s.enabled or id(s) in self._failed:
                continue
            try:
                call(s)
            except Exception as exc:
                self._failed.add(id(s))
                if err is None:
                    err = exc
        if err is not None:
            raise err

    def begin_execute(self, pe: int, now: float, chare: str,
                      entry: str, sid: Optional[int] = None,
                      parent: Optional[int] = None,
                      trigger: Optional[int] = None,
                      obj: Optional[str] = None) -> None:
        self._fanout(lambda s: s.begin_execute(pe, now, chare, entry,
                                               sid=sid, parent=parent,
                                               trigger=trigger, obj=obj))

    def end_execute(self, pe: int, now: float) -> None:
        self._fanout(lambda s: s.end_execute(pe, now))

    def message_sent(self, now: float, src_pe: int, dst_pe: int, size: int,
                     tag: str, crossed_wan: bool,
                     seq: Optional[int] = None,
                     cause: Optional[int] = None,
                     ack_for: Optional[int] = None,
                     src_obj: Optional[str] = None,
                     dst_obj: Optional[str] = None) -> None:
        self._fanout(lambda s: s.message_sent(now, src_pe, dst_pe, size,
                                              tag, crossed_wan, seq,
                                              cause=cause, ack_for=ack_for,
                                              src_obj=src_obj,
                                              dst_obj=dst_obj))

    def message_delivered(self, now: float, src_pe: int, dst_pe: int,
                          size: int, tag: str, crossed_wan: bool,
                          seq: Optional[int] = None,
                          cause: Optional[int] = None,
                          ack_for: Optional[int] = None,
                          src_obj: Optional[str] = None,
                          dst_obj: Optional[str] = None) -> None:
        self._fanout(lambda s: s.message_delivered(now, src_pe, dst_pe,
                                                   size, tag, crossed_wan,
                                                   seq, cause=cause,
                                                   ack_for=ack_for,
                                                   src_obj=src_obj,
                                                   dst_obj=dst_obj))

    def message_dropped(self, now: float, src_pe: int, dst_pe: int,
                        size: int, tag: str, crossed_wan: bool,
                        seq: Optional[int] = None,
                        cause: Optional[int] = None,
                        ack_for: Optional[int] = None,
                        src_obj: Optional[str] = None,
                        dst_obj: Optional[str] = None) -> None:
        self._fanout(lambda s: s.message_dropped(now, src_pe, dst_pe, size,
                                                 tag, crossed_wan, seq,
                                                 cause=cause,
                                                 ack_for=ack_for,
                                                 src_obj=src_obj,
                                                 dst_obj=dst_obj))

    def note_retransmit(self) -> None:
        self._fanout(lambda s: s.note_retransmit())

    def note_dup_suppressed(self) -> None:
        self._fanout(lambda s: s.note_dup_suppressed())

    def message_hops(self, now: float, src_pe: int, dst_pe: int, size: int,
                     tag: str, crossed_wan: bool, seq: Optional[int],
                     arrival: float, hops: HopLedger,
                     relay_hop: int = 0, arq_attempt: int = 0) -> None:
        # Pre-ledger sinks (external TraceSink implementations) simply
        # never see hop events; everything else fans out as usual.
        self._fanout(lambda s: s.message_hops(
            now, src_pe, dst_pe, size, tag, crossed_wan, seq, arrival,
            hops, relay_hop=relay_hop, arq_attempt=arq_attempt)
            if hasattr(s, "message_hops") else None)

    def close(self) -> None:
        """Close every healthy sink that supports closing.

        Quarantined sinks are *skipped* — a sink that already raised
        mid-run is in an unknown state and closing it would at best
        raise again and at worst flush corrupt partial data.  Sinks
        without a ``close`` method are fine (the protocol does not
        require one); a close that raises quarantines the sink like any
        recording call, and the first error is re-raised after the rest
        have been closed.
        """
        err: Optional[BaseException] = None
        for s in self.sinks:
            if id(s) in self._failed:
                continue
            close = getattr(s, "close", None)
            if close is None:
                continue
            try:
                close()
            except Exception as exc:
                self._failed.add(id(s))
                if err is None:
                    err = exc
        if err is not None:
            raise err


class Tracer:
    """Collects execution intervals and message events (batch sink).

    Parameters
    ----------
    enabled:
        When ``False`` every recording call is a cheap no-op; statistics
        queries raise ``ValueError`` (the caller asked for data that was
        never collected, which is a bug worth surfacing).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.intervals: List[ExecInterval] = []
        self.messages: List[MessageEvent] = []
        #: Flight-recorder records: one per delivered wire copy, in the
        #: order the fabric emitted them.
        self.hops: List[HopEvent] = []
        self._open: Dict[int, Tuple[float, str, str, Optional[int],
                                    Optional[int], Optional[int],
                                    Optional[str]]] = {}
        #: Reliable-transport counters (cheap; kept even in big sweeps).
        self.retransmits = 0
        self.dups_suppressed = 0
        #: Lazily built per-PE interval index for window queries; rebuilt
        #: whenever intervals were appended since the last build.
        self._index: Optional[Dict[int, Tuple[List[float], List[float],
                                              List[float]]]] = None
        self._index_len = -1

    # -- recording -------------------------------------------------------

    def begin_execute(self, pe: int, now: float, chare: str, entry: str,
                      sid: Optional[int] = None,
                      parent: Optional[int] = None,
                      trigger: Optional[int] = None,
                      obj: Optional[str] = None) -> None:
        """Mark the start of an entry-method execution on *pe*."""
        if not self.enabled:
            return
        if pe in self._open:
            raise ValueError(f"PE {pe} already executing {self._open[pe]!r}")
        self._open[pe] = (now, chare, entry, sid, parent, trigger, obj)

    def end_execute(self, pe: int, now: float) -> None:
        """Mark the end of the currently open execution on *pe*."""
        if not self.enabled:
            return
        try:
            start, chare, entry, sid, parent, trigger, obj = \
                self._open.pop(pe)
        except KeyError:
            raise ValueError(f"PE {pe} has no open execution interval")
        self.intervals.append(ExecInterval(pe, start, now, chare, entry,
                                           sid=sid, parent=parent,
                                           trigger=trigger, obj=obj))

    def message_sent(self, now: float, src_pe: int, dst_pe: int, size: int,
                     tag: str, crossed_wan: bool,
                     seq: Optional[int] = None,
                     cause: Optional[int] = None,
                     ack_for: Optional[int] = None,
                     src_obj: Optional[str] = None,
                     dst_obj: Optional[str] = None) -> None:
        """Record a message leaving its source PE."""
        if not self.enabled:
            return
        self.messages.append(MessageEvent(
            "send", now, src_pe, dst_pe, size, tag, crossed_wan, seq,
            cause=cause, ack_for=ack_for, src_obj=src_obj, dst_obj=dst_obj))

    def message_delivered(self, now: float, src_pe: int, dst_pe: int,
                          size: int, tag: str, crossed_wan: bool,
                          seq: Optional[int] = None,
                          cause: Optional[int] = None,
                          ack_for: Optional[int] = None,
                          src_obj: Optional[str] = None,
                          dst_obj: Optional[str] = None) -> None:
        """Record a message arriving at its destination PE's queue."""
        if not self.enabled:
            return
        self.messages.append(MessageEvent(
            "deliver", now, src_pe, dst_pe, size, tag, crossed_wan, seq,
            cause=cause, ack_for=ack_for, src_obj=src_obj, dst_obj=dst_obj))

    def message_dropped(self, now: float, src_pe: int, dst_pe: int,
                        size: int, tag: str, crossed_wan: bool,
                        seq: Optional[int] = None,
                        cause: Optional[int] = None,
                        ack_for: Optional[int] = None,
                        src_obj: Optional[str] = None,
                        dst_obj: Optional[str] = None) -> None:
        """Record a message lost on the wire (fault injection)."""
        if not self.enabled:
            return
        self.messages.append(MessageEvent(
            "drop", now, src_pe, dst_pe, size, tag, crossed_wan, seq,
            cause=cause, ack_for=ack_for, src_obj=src_obj, dst_obj=dst_obj))

    def note_retransmit(self) -> None:
        """Count one reliable-layer retransmission."""
        if self.enabled:
            self.retransmits += 1

    def note_dup_suppressed(self) -> None:
        """Count one duplicate delivery suppressed by the reliable layer."""
        if self.enabled:
            self.dups_suppressed += 1

    def message_hops(self, now: float, src_pe: int, dst_pe: int, size: int,
                     tag: str, crossed_wan: bool, seq: Optional[int],
                     arrival: float, hops: HopLedger,
                     relay_hop: int = 0, arq_attempt: int = 0) -> None:
        """Record one wire copy's hop ledger (see :class:`HopEvent`)."""
        if not self.enabled:
            return
        self.hops.append(HopEvent(
            now, src_pe, dst_pe, size, tag, crossed_wan, seq, arrival,
            hops, relay_hop=relay_hop, arq_attempt=arq_attempt))

    # -- analysis --------------------------------------------------------

    def _require_data(self) -> None:
        if not self.enabled:
            raise ValueError("tracer was disabled; no data collected")

    def makespan(self) -> float:
        """Virtual time spanned by the recorded intervals."""
        self._require_data()
        if not self.intervals:
            return 0.0
        start = min(iv.start for iv in self.intervals)
        end = max(iv.end for iv in self.intervals)
        return end - start

    def pe_usage(self) -> Dict[int, PeUsage]:
        """Per-PE busy time and execution counts."""
        self._require_data()
        usage: Dict[int, PeUsage] = {}
        for iv in self.intervals:
            u = usage.setdefault(iv.pe, PeUsage(iv.pe))
            u.busy += iv.duration
            u.executions += 1
        return usage

    def _pe_index(self) -> Dict[int, Tuple[List[float], List[float],
                                           List[float]]]:
        """``pe -> (starts, ends, duration prefix sums)``, sorted by start.

        Built once per batch of appended intervals; the overlap tests
        issue one :meth:`busy_during` call per WAN window, which used to
        rescan every interval (quadratic on big traces).
        """
        if self._index is not None and self._index_len == len(self.intervals):
            return self._index
        per_pe: Dict[int, List[ExecInterval]] = {}
        for iv in self.intervals:
            per_pe.setdefault(iv.pe, []).append(iv)
        index: Dict[int, Tuple[List[float], List[float], List[float]]] = {}
        for pe, ivs in per_pe.items():
            ivs.sort(key=lambda iv: iv.start)
            starts = [iv.start for iv in ivs]
            ends = [iv.end for iv in ivs]
            prefix = [0.0]
            acc = 0.0
            for iv in ivs:
                acc += iv.duration
                prefix.append(acc)
            index[pe] = (starts, ends, prefix)
        self._index = index
        self._index_len = len(self.intervals)
        return index

    def busy_during(self, pe: int, start: float, end: float) -> float:
        """Total time *pe* spent executing within the window [start, end].

        This is the workhorse of the overlap tests: after identifying a
        WAN message's in-flight window from the message events, the tests
        assert the destination PE was busy during it — i.e. the latency
        was *masked* by other objects' work, which is the paper's thesis.

        O(log n) per query via a per-PE sorted index with duration
        prefix sums (a PE's intervals never overlap — the recording API
        enforces one open execution per PE in monotonic time — so the
        intervals intersecting a window form a contiguous run).
        """
        self._require_data()
        entry = self._pe_index().get(pe)
        if entry is None or end <= start:
            return 0.0
        starts, ends, prefix = entry
        # First interval ending after the window opens ...
        lo = bisect_right(ends, start)
        # ... through the last interval starting before it closes.
        hi = bisect_left(starts, end)
        if lo >= hi:
            return 0.0
        total = prefix[hi] - prefix[lo]
        # Clip the boundary intervals to the window.
        if starts[lo] < start:
            total -= start - starts[lo]
        if ends[hi - 1] > end:
            total -= ends[hi - 1] - end
        return total

    def wan_flight_windows(self) -> List[Tuple[float, float, int, int]]:
        """Return ``(send_time, deliver_time, src_pe, dst_pe)`` for every
        message that crossed the wide-area link.

        Events carrying a message sequence id are paired *by id*, so the
        windows stay correct when jitter or retransmission delivers
        messages out of send order (FIFO pairing would silently cross
        them).  A retransmitted id contributes one window from its first
        send to its first delivery; duplicate deliveries are ignored.
        Legacy events without an id fall back to FIFO pairing per
        (src, dst) pair.
        """
        self._require_data()
        fifo: Dict[Tuple[int, int], List[float]] = {}
        first_send: Dict[Tuple[int, int, int], float] = {}
        emitted: set = set()
        windows: List[Tuple[float, float, int, int]] = []
        for ev in self.messages:
            if not ev.crossed_wan:
                continue
            if ev.kind == "send":
                if ev.seq is None:
                    fifo.setdefault((ev.src_pe, ev.dst_pe),
                                    []).append(ev.time)
                else:
                    first_send.setdefault(
                        (ev.src_pe, ev.dst_pe, ev.seq), ev.time)
            elif ev.kind == "deliver":
                if ev.seq is None:
                    queue = fifo.get((ev.src_pe, ev.dst_pe))
                    if queue:
                        windows.append((queue.pop(0), ev.time,
                                        ev.src_pe, ev.dst_pe))
                else:
                    key = (ev.src_pe, ev.dst_pe, ev.seq)
                    if key in first_send and key not in emitted:
                        emitted.add(key)
                        windows.append((first_send[key], ev.time,
                                        ev.src_pe, ev.dst_pe))
        return windows

    def link_summary(self) -> Dict[str, LinkUsage]:
        """Per-lane usage folded from the recorded hop ledgers.

        Folds with :func:`fold_hops` over :attr:`hops` in recorded
        order, so the result is bit-identical to a streaming
        :class:`TraceAggregator`'s :meth:`~TraceAggregator.link_usage`
        fed the same events.
        """
        self._require_data()
        links: Dict[str, LinkUsage] = {}
        for ev in self.hops:
            fold_hops(links, ev.hops, ev.crossed_wan)
        return links

    def top_wire_messages(self, k: int = 10) -> List[HopEvent]:
        """The *k* wire copies with the largest send-to-arrival time.

        Ties break deterministically toward the earlier-recorded event.
        """
        self._require_data()
        order = sorted(range(len(self.hops)),
                       key=lambda i: (-self.hops[i].wire_time, i))
        return [self.hops[i] for i in order[:k]]

    def hop_ledgers(self) -> Dict[Tuple[Optional[int], float], HopLedger]:
        """``(seq, arrival) -> ledger`` for causal/critical-path lookup.

        The arrival time disambiguates duplicate wire copies of one
        sequence id (ARQ retransmissions, fault-injected dups); the
        delivery event the causal graph pairs against carries the same
        float, so lookups are exact.
        """
        self._require_data()
        out: Dict[Tuple[Optional[int], float], HopLedger] = {}
        for ev in self.hops:
            out.setdefault((ev.seq, ev.arrival), ev.hops)
        return out

    def timeline(self, pes: Optional[Iterable[int]] = None
                 ) -> Dict[int, List[ExecInterval]]:
        """Per-PE chronologically sorted execution intervals."""
        self._require_data()
        wanted = set(pes) if pes is not None else None
        out: Dict[int, List[ExecInterval]] = {}
        for iv in self.intervals:
            if wanted is not None and iv.pe not in wanted:
                continue
            out.setdefault(iv.pe, []).append(iv)
        for lst in out.values():
            lst.sort(key=lambda iv: iv.start)
        return out

    def render_timeline(self, width: int = 72,
                        pes: Optional[Iterable[int]] = None) -> str:
        """ASCII rendering of per-PE busy intervals (Figure-2 style).

        Each PE gets a row of *width* characters; ``#`` marks busy time,
        ``.`` idle time.  Intended for examples and debugging, not parsing.
        """
        tl = self.timeline(pes)
        if not tl:
            return "(empty trace)"
        start = min(iv.start for ivs in tl.values() for iv in ivs)
        end = max(iv.end for ivs in tl.values() for iv in ivs)
        span = max(end - start, 1e-12)
        lines = []
        for pe in sorted(tl):
            row = ["."] * width
            for iv in tl[pe]:
                lo = int((iv.start - start) / span * (width - 1))
                hi = int((iv.end - start) / span * (width - 1))
                for i in range(lo, hi + 1):
                    row[i] = "#"
            lines.append(f"PE{pe:>3} |" + "".join(row) + "|")
        return "\n".join(lines)

    def profile_by_entry(self) -> Dict[Tuple[str, str], EntryProfile]:
        """Projections-style usage profile: time per (chare, entry) kind."""
        self._require_data()
        out: Dict[Tuple[str, str], EntryProfile] = {}
        for iv in self.intervals:
            key = (iv.chare, iv.entry)
            prof = out.setdefault(key, EntryProfile(iv.chare, iv.entry))
            prof.calls += 1
            prof.total_time += iv.duration
        return out

    def render_profile(self, top: int = 10) -> str:
        """Human-readable top-N entry-method usage table."""
        all_profs = self.profile_by_entry().values()
        profs = sorted(all_profs, key=lambda p: -p.total_time)[:top]
        total = sum(p.total_time for p in all_profs)
        lines = [f"{'chare.entry':36s} {'calls':>8} {'time(s)':>10} "
                 f"{'share':>7}"]
        for p in profs:
            share = p.total_time / total if total > 0 else 0.0
            lines.append(f"{p.chare + '.' + p.entry:36s} {p.calls:>8} "
                         f"{p.total_time:>10.4f} {share:>6.1%}")
        return "\n".join(lines)


@dataclass
class WanOverlapStats:
    """Running WAN flight / overlap totals kept by the aggregator."""

    #: Closed (send -> first delivery) flight windows seen so far.
    windows: int = 0
    #: Total WAN in-flight seconds across closed windows.
    flight_time: float = 0.0
    #: Seconds of that in-flight time during which the destination PE
    #: was executing entry methods — the *masked* share.
    masked_time: float = 0.0
    #: Windows whose delivery has not been observed (yet, or ever).
    open_windows: int = 0

    @property
    def masked_fraction(self) -> float:
        """Share of WAN in-flight time overlapped by destination work.

        The paper's Figure-2 story as a single number: 1.0 means every
        in-flight millisecond was hidden behind other objects' work,
        0.0 means the destination idled through all of it.
        """
        if self.flight_time <= 0.0:
            return 0.0
        return self.masked_time / self.flight_time


class _OpenWindow:
    """Sender-side record of one not-yet-delivered WAN message."""

    __slots__ = ("send_time", "overlap")

    def __init__(self, send_time: float) -> None:
        self.send_time = send_time
        #: Destination-PE busy time accumulated inside the window so far.
        self.overlap = 0.0


class TraceAggregator:
    """Streaming trace statistics in O(PEs + entry kinds) memory.

    Consumes the same recording stream as :class:`Tracer` but folds each
    event into running aggregates instead of storing it, so benchmarks
    can keep statistics on during full Figure-3/4 sweeps.  Computed
    online:

    * per-PE busy time and execution counts (:meth:`pe_usage`);
    * the makespan spanned by execution intervals (:meth:`makespan`);
    * per-(chare, entry) execution profiles (:meth:`profile_by_entry`);
    * message/byte counters, split local vs WAN;
    * WAN flight windows and the **masked-latency fraction**
      (:attr:`wan`), using the same send/deliver pairing rules as
      :meth:`Tracer.wan_flight_windows`.

    All of these exactly match the batch :class:`Tracer` analysis on the
    same event stream (property-tested in
    ``tests/property/test_trace_streaming.py``).

    The only state that scales beyond O(PEs + entry kinds) is the
    per-message bookkeeping the semantics require: windows currently in
    flight, and the set of already-delivered sequence ids (small ints)
    that suppresses duplicate deliveries — the same information the
    reliable transport itself must keep to deduplicate.

    Relies on the engine's monotonic virtual clock: recording calls
    arrive in non-decreasing time order (true for anything driven by
    :class:`~repro.sim.engine.Engine`).

    Parameters
    ----------
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when
        given, the aggregator records execution-duration and WAN
        flight-time histograms into it and registers a collector for
        its derived values under ``trace.*``.
    objects:
        Fold per-object profiles and the object x object communication
        matrix online (default on; an :class:`ObjectFold` at
        :attr:`objview`).  Off saves the per-event object bookkeeping
        for stats-only sweeps (the perf-smoke bar holds the fold's
        overhead under 5 %).
    """

    def __init__(self, metrics: Optional["MetricsRegistry"] = None,
                 objects: bool = True) -> None:
        self.enabled = True
        #: Streaming per-object fold (``None`` when ``objects=False``).
        self.objview: Optional[ObjectFold] = ObjectFold() if objects \
            else None
        # Pre-bound append onto the fold's record buffer: the per-event
        # record is a single call through this binding.  Valid for the
        # aggregator's lifetime because ObjectFold._drain empties the
        # buffer in place (list.clear) rather than replacing it.
        self._ov_record = None if self.objview is None \
            else self.objview._buf.append
        self._open_exec: Dict[int, Tuple[float, str, str,
                                         Optional[str]]] = {}
        self._usage: Dict[int, PeUsage] = {}
        self._profiles: Dict[Tuple[str, str], EntryProfile] = {}
        self._t_min: Optional[float] = None
        self._t_max: Optional[float] = None
        # Message counters.
        self.sends = 0
        self.delivers = 0
        self.drops = 0
        self.wan_sends = 0
        self.wan_delivers = 0
        self.wan_drops = 0
        self.bytes_sent = 0
        self.wan_bytes_sent = 0
        self.retransmits = 0
        self.dups_suppressed = 0
        # WAN overlap tracking.
        self.wan = WanOverlapStats()
        #: dst_pe -> {(src_pe, seq): open window} for seq-carrying sends.
        self._wan_open: Dict[int, Dict[Tuple[int, int], _OpenWindow]] = {}
        #: dst_pe -> {src_pe: FIFO of open windows} for legacy sends.
        self._wan_fifo: Dict[int, Dict[int, List[_OpenWindow]]] = {}
        #: (src, dst, seq) triples already delivered (dup suppression).
        self._wan_delivered: set = set()
        #: Per-lane usage folded online from hop ledgers (flight recorder).
        self._links: Dict[str, LinkUsage] = {}
        self._metrics = metrics
        if metrics is not None:
            self._h_exec = metrics.histogram("trace.exec_duration_s")
            self._h_flight = metrics.histogram("trace.wan_flight_s")
            self._h_depth = metrics.histogram("net.queue_depth")
            metrics.register_collector("trace", self._metric_values)

    # -- recording -------------------------------------------------------

    def begin_execute(self, pe: int, now: float, chare: str,
                      entry: str, sid: Optional[int] = None,
                      parent: Optional[int] = None,
                      trigger: Optional[int] = None,
                      obj: Optional[str] = None) -> None:
        # Causal ids (sid/parent) are accepted for sink compatibility
        # but not aggregated: every streaming statistic except the
        # object fold's queue-wait pairing (which consumes ``trigger``)
        # is independent of the causal structure.
        if not self.enabled:
            return
        if pe in self._open_exec:
            raise ValueError(
                f"PE {pe} already executing {self._open_exec[pe]!r}")
        self._open_exec[pe] = (now, chare, entry, obj)
        rec = self._ov_record
        if rec is not None and trigger is not None:
            # Fold work is deferred: recording is one buffered append
            # (see the ObjectFold buffer protocol); the fold replays the
            # buffer through its reference hooks on first query.
            rec((0, now, obj, trigger))

    def end_execute(self, pe: int, now: float) -> None:
        if not self.enabled:
            return
        try:
            start, chare, entry, obj = self._open_exec.pop(pe)
        except KeyError:
            raise ValueError(f"PE {pe} has no open execution interval")
        duration = now - start
        rec = self._ov_record
        if rec is not None and obj is not None:
            # Deferred fold (see begin_execute's note).  The grain
            # window alone is fed inline: the telemetry sampler harvests
            # it mid-run, so it cannot wait for a drain.
            rec((1, obj, entry, duration))
            ov = self.objview
            if duration > ov.window_max_grain_s:
                ov.window_max_grain_s = duration
                ov.window_max_grain_obj = obj
        usage = self._usage.get(pe)
        if usage is None:
            usage = self._usage[pe] = PeUsage(pe)
        usage.busy += duration
        usage.executions += 1
        key = (chare, entry)
        prof = self._profiles.get(key)
        if prof is None:
            prof = self._profiles[key] = EntryProfile(chare, entry)
        prof.calls += 1
        prof.total_time += duration
        if self._t_min is None or start < self._t_min:
            self._t_min = start
        if self._t_max is None or now > self._t_max:
            self._t_max = now
        # Credit this execution to every WAN window open on this PE: the
        # interval [start, now] overlaps window w on [max(start, w.send),
        # now] (delivery has not happened, so the window end is >= now).
        open_here = self._wan_open.get(pe)
        if open_here:
            for win in open_here.values():
                lo = win.send_time if win.send_time > start else start
                if now > lo:
                    win.overlap += now - lo
        fifo_here = self._wan_fifo.get(pe)
        if fifo_here:
            for queue in fifo_here.values():
                for win in queue:
                    lo = win.send_time if win.send_time > start else start
                    if now > lo:
                        win.overlap += now - lo
        if self._metrics is not None:
            self._h_exec.record(duration)

    def message_sent(self, now: float, src_pe: int, dst_pe: int, size: int,
                     tag: str, crossed_wan: bool,
                     seq: Optional[int] = None,
                     cause: Optional[int] = None,
                     ack_for: Optional[int] = None,
                     src_obj: Optional[str] = None,
                     dst_obj: Optional[str] = None) -> None:
        if not self.enabled:
            return
        self.sends += 1
        self.bytes_sent += size
        rec = self._ov_record
        if rec is not None and src_obj is not None:
            # Deferred fold (see begin_execute's note).
            rec((2, size, crossed_wan, src_pe == dst_pe,
                 src_obj, dst_obj))
        if not crossed_wan:
            return
        self.wan_sends += 1
        self.wan_bytes_sent += size
        if seq is None:
            queues = self._wan_fifo.setdefault(dst_pe, {})
            queues.setdefault(src_pe, []).append(_OpenWindow(now))
            self.wan.open_windows += 1
        else:
            key = (src_pe, seq)
            if (src_pe, dst_pe, seq) in self._wan_delivered:
                return  # late retransmission of an already-delivered id
            opens = self._wan_open.setdefault(dst_pe, {})
            if key not in opens:  # retransmits keep the *first* send time
                opens[key] = _OpenWindow(now)
                self.wan.open_windows += 1

    def message_delivered(self, now: float, src_pe: int, dst_pe: int,
                          size: int, tag: str, crossed_wan: bool,
                          seq: Optional[int] = None,
                          cause: Optional[int] = None,
                          ack_for: Optional[int] = None,
                          src_obj: Optional[str] = None,
                          dst_obj: Optional[str] = None) -> None:
        if not self.enabled:
            return
        self.delivers += 1
        rec = self._ov_record
        if rec is not None and (seq is not None or dst_obj is not None):
            # Deferred fold (see begin_execute's note).
            rec((3, now, seq, size, crossed_wan,
                 src_pe == dst_pe, dst_obj))
        if not crossed_wan:
            return
        self.wan_delivers += 1
        win: Optional[_OpenWindow] = None
        if seq is None:
            queues = self._wan_fifo.get(dst_pe)
            queue = queues.get(src_pe) if queues else None
            if queue:
                win = queue.pop(0)
        else:
            triple = (src_pe, dst_pe, seq)
            if triple in self._wan_delivered:
                return  # duplicate delivery: first one closed the window
            opens = self._wan_open.get(dst_pe)
            if opens is not None:
                win = opens.pop((src_pe, seq), None)
            if win is not None:
                self._wan_delivered.add(triple)
        if win is None:
            return  # delivery without a recorded send (partial trace)
        open_exec = self._open_exec.get(dst_pe)
        if open_exec is not None:
            start = open_exec[0]
            lo = win.send_time if win.send_time > start else start
            if now > lo:
                win.overlap += now - lo
        self.wan.open_windows -= 1
        self.wan.windows += 1
        self.wan.flight_time += now - win.send_time
        self.wan.masked_time += win.overlap
        if self._metrics is not None:
            self._h_flight.record(now - win.send_time)

    def message_dropped(self, now: float, src_pe: int, dst_pe: int,
                        size: int, tag: str, crossed_wan: bool,
                        seq: Optional[int] = None,
                        cause: Optional[int] = None,
                        ack_for: Optional[int] = None,
                        src_obj: Optional[str] = None,
                        dst_obj: Optional[str] = None) -> None:
        if not self.enabled:
            return
        self.drops += 1
        rec = self._ov_record
        if rec is not None and src_obj is not None:
            rec((4, src_obj))
        if crossed_wan:
            self.wan_drops += 1

    def note_retransmit(self) -> None:
        if self.enabled:
            self.retransmits += 1

    def note_dup_suppressed(self) -> None:
        if self.enabled:
            self.dups_suppressed += 1

    def message_hops(self, now: float, src_pe: int, dst_pe: int, size: int,
                     tag: str, crossed_wan: bool, seq: Optional[int],
                     arrival: float, hops: HopLedger,
                     relay_hop: int = 0, arq_attempt: int = 0) -> None:
        """Fold one wire copy's hop ledger into per-lane usage.

        Uses :func:`fold_hops` — the same function, in the same event
        order, as :meth:`Tracer.link_summary` — so both sinks produce
        bit-identical per-lane sums from one recording stream.
        """
        if not self.enabled:
            return
        fold_hops(self._links, hops, crossed_wan)
        if self._metrics is not None:
            for h in hops:
                self._h_depth.record(float(h.queue_depth))

    # -- analysis --------------------------------------------------------

    def link_usage(self) -> Dict[str, LinkUsage]:
        """Per-lane usage folded from hop ledgers (live view)."""
        return self._links

    def makespan(self) -> float:
        """Virtual time spanned by the completed execution intervals."""
        if self._t_min is None or self._t_max is None:
            return 0.0
        return self._t_max - self._t_min

    def pe_usage(self) -> Dict[int, PeUsage]:
        """Per-PE busy time and execution counts (live view)."""
        return self._usage

    def profile_by_entry(self) -> Dict[Tuple[str, str], EntryProfile]:
        """Per-(chare, entry) execution profile (live view)."""
        return self._profiles

    @property
    def masked_latency_fraction(self) -> float:
        """Share of WAN in-flight time the destination PE spent busy."""
        return self.wan.masked_fraction

    def utilization(self) -> Dict[int, float]:
        """Per-PE busy fraction of the makespan."""
        span = self.makespan()
        return {pe: u.utilization(span) for pe, u in self._usage.items()}

    def summary(self) -> Dict[str, object]:
        """JSON-friendly digest attached to benchmark rows and reports."""
        span = self.makespan()
        utils = sorted(u.utilization(span) for u in self._usage.values())
        busy_total = sum(u.busy for u in self._usage.values())
        out: Dict[str, object] = {
            "makespan_s": span,
            "pes_active": len(self._usage),
            "executions": sum(u.executions for u in self._usage.values()),
            "entry_kinds": len(self._profiles),
            "busy_time_s": busy_total,
            "mean_utilization": (sum(utils) / len(utils)) if utils else 0.0,
            "min_utilization": utils[0] if utils else 0.0,
            "max_utilization": utils[-1] if utils else 0.0,
            "messages": {
                "sent": self.sends,
                "delivered": self.delivers,
                "dropped": self.drops,
                "bytes_sent": self.bytes_sent,
                "wan_sent": self.wan_sends,
                "wan_delivered": self.wan_delivers,
                "wan_dropped": self.wan_drops,
                "wan_bytes_sent": self.wan_bytes_sent,
            },
            "wan": {
                "windows": self.wan.windows,
                "open_windows": self.wan.open_windows,
                "flight_time_s": self.wan.flight_time,
                "masked_time_s": self.wan.masked_time,
                "masked_fraction": self.wan.masked_fraction,
                "retransmits": self.retransmits,
                "dups_suppressed": self.dups_suppressed,
            },
            "links": {lane: self._links[lane].to_dict()
                      for lane in sorted(self._links)},
        }
        if self.objview is not None:
            out["objects"] = {
                "tracked": len(self.objview.profiles),
                "compute_s": self.objview.total_compute_s(),
                "matrix_edges": len(self.objview.matrix),
                "top_by_compute": [
                    {"obj": p.obj, "compute_s": p.compute_s,
                     "executions": p.executions}
                    for p in self.objview.top_by_compute(5)
                ],
            }
        return out

    def _metric_values(self) -> Dict[str, float]:
        """Derived values pulled into the metrics registry snapshot."""
        values = {
            "trace.makespan_s": self.makespan(),
            "trace.executions": float(
                sum(u.executions for u in self._usage.values())),
            "trace.busy_time_s": sum(u.busy for u in self._usage.values()),
            "trace.messages_sent": float(self.sends),
            "trace.wan_windows": float(self.wan.windows),
            "trace.wan_flight_time_s": self.wan.flight_time,
            "trace.wan_masked_time_s": self.wan.masked_time,
            "trace.masked_fraction": self.wan.masked_fraction,
        }
        values["net.lanes"] = float(len(self._links))
        values["net.crossings"] = float(
            sum(u.crossings for u in self._links.values()))
        values["net.busy_time_s"] = sum(
            u.busy_s for u in self._links.values())
        values["net.queue_time_s"] = sum(
            u.queue_s for u in self._links.values())
        return values

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TraceAggregator(pes={len(self._usage)}, "
                f"executions={sum(u.executions for u in self._usage.values())}, "
                f"wan_windows={self.wan.windows}, "
                f"masked={self.wan.masked_fraction:.1%})")
