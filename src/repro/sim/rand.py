"""Named deterministic random-number streams.

Simulations need randomness (WAN jitter, initial atom velocities, skewed
mappings) but must stay reproducible and — crucially — *decoupled*: adding
a draw to one consumer must not perturb every other consumer's stream.

:class:`RandomStreams` hands out one ``numpy.random.Generator`` per *name*,
each seeded from a root seed combined with a stable hash of the name via
``numpy.random.SeedSequence``.  Two processes (or two runs) constructing
``RandomStreams(seed=7).get("wan-jitter")`` observe identical sequences,
no matter what other streams were requested in between.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


def stable_name_key(name: str) -> int:
    """A platform-independent 32-bit key for a stream name.

    Python's builtin ``hash`` of a string is salted per process, so it must
    never leak into simulation state; CRC-32 is stable everywhere.
    """
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


class RandomStreams:
    """A factory of independent, named, reproducible RNG streams.

    Parameters
    ----------
    seed:
        Root seed for the whole simulation.  Every named stream derives
        from it; changing the seed changes every stream, changing a stream
        *name* changes only that stream.
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was constructed with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so draws advance a single per-name sequence.
        """
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(stable_name_key(name),))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child factory whose streams are independent of ours.

        Useful when an experiment sweep wants per-trial stream families:
        ``streams.fork(f"trial-{i}")``.
        """
        return RandomStreams(seed=(self._seed * 0x9E3779B1
                                   + stable_name_key(name)) & 0x7FFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"RandomStreams(seed={self._seed}, "
                f"streams={sorted(self._streams)})")
