"""Sharded conservative-PDES runner.

One simulation, many event heaps: the PE space is partitioned into
cluster-aligned shards (:mod:`repro.network.shard`), each worker owns
one shard's PEs, and the workers advance in conservative synchronous
windows.  The 2–64 ms cross-cluster latency the paper injects *is* the
lookahead — exactly the slack message-driven execution hides, recycled
here to keep shards from ever having to wait on each other within a
window.

Determinism contract
--------------------
Every worker builds the *full* environment and application from the
same :class:`PdesJob` (identical construction, identical launch
broadcasts), then installs an ownership filter on its fabric: sends
whose source PE belongs to another shard are skipped outright (the
owning shard performs them), and wire copies bound for a foreign PE are
exported with their already-computed arrival time instead of being
posted locally.  The coordinator routes exports each round and grants
every shard a safe horizon

    T[w] = min over v != w of ( min(E[v], T[w's view of v]) + L[v][w] )

computed to fixpoint, where ``E[v]`` is shard *v*'s earliest pending
event (including imports just routed to it) and ``L`` the static chain
floor.  Shards fire events strictly *below* their horizon and never
force their clock forward, so an import can still land anywhere in the
next window.  Lookahead floors are strictly positive (loopback/shmem
edges pin PEs into one shard), so every round advances global virtual
time by at least ``2 * min(L)`` — the protocol cannot deadlock.

The product is certified, not assumed: each worker records a
:class:`~repro.sim.shardlog.ShardLog`, and the deterministic merge of
those logs must be bit-identical to the one-shard (serial) trajectory.

Reduction targets travel *inside* ``ReductionMsg`` payloads, so a bound
method of a driver-side object would drag the whole environment through
every cross-shard pickle.  :class:`WorkerCallback` is the picklable
stand-in: a name key resolved against a per-worker registry, installed
via the app's ``target_wrapper`` hook.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.records import MigrationMsg
from repro.errors import ConfigurationError
from repro.network.shard import ShardPlan, assert_shardable, plan_shards
from repro.sim.shardlog import ShardLog, log_digest, merge_logs
from repro.sim.trace import TraceFanout

_INF = float("inf")

# -- picklable reduction targets -------------------------------------------

#: Per-process registry of reduction callbacks, keyed (worker scope, name).
#: Worker processes live in scope 0; the in-process runner flips the
#: active scope around every interaction with a worker so that N workers
#: sharing one interpreter stay isolated.
_CALLBACKS: Dict[Tuple[int, str], Callable] = {}
_ACTIVE_SCOPE = 0


def _set_scope(scope: int) -> int:
    global _ACTIVE_SCOPE
    previous = _ACTIVE_SCOPE
    _ACTIVE_SCOPE = scope
    return previous


def register_callback(name: str, fn: Callable) -> "WorkerCallback":
    """Register *fn* under *name* in the active worker scope."""
    _CALLBACKS[(_ACTIVE_SCOPE, name)] = fn
    return WorkerCallback(name)


class WorkerCallback:
    """Picklable stand-in for a reduction/driver callback.

    Carries only its name across process boundaries; calling it looks
    the real callable up in the active scope's registry, so the callback
    that runs is always the one the *receiving* worker registered.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __call__(self, *args, **kwargs):
        try:
            fn = _CALLBACKS[(_ACTIVE_SCOPE, self.name)]
        except KeyError:
            raise ConfigurationError(
                f"WorkerCallback {self.name!r} is not registered in this "
                "worker (register_callback must run during job launch)"
            ) from None
        return fn(*args, **kwargs)

    def __reduce__(self):
        return (WorkerCallback, (self.name,))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WorkerCallback({self.name!r})"


# -- jobs -------------------------------------------------------------------

class PdesJob:
    """What the runner needs to know about one simulation.

    A job must be picklable *before* :meth:`launch` (it is shipped to
    worker processes) and deterministic: every worker's
    :meth:`environment` + :meth:`launch` must reproduce the identical
    initial event state, or the shards are simulating different worlds.
    """

    def environment(self):
        """Build and return a fresh :class:`GridEnvironment`."""
        raise NotImplementedError

    def launch(self, env) -> None:
        """Create the application and send its start messages."""
        raise NotImplementedError

    def collect(self, env):
        """Assemble the result after the run completes.

        Called on every shard; shards that did not receive the final
        reduction should raise or return ``None`` — the coordinator
        keeps the first non-``None`` product.
        """
        raise NotImplementedError


@dataclass
class StencilPdesJob(PdesJob):
    """The stencil experiment as a shardable job."""

    cluster_sizes: Tuple[int, ...]
    latency: float
    mesh: Tuple[int, int] = (2048, 2048)
    objects: int = 64
    steps: int = 10
    payload: str = "modeled"
    kernel: str = "numpy"
    seed: int = 0
    stats: bool = True

    def environment(self):
        from repro.grid.presets import multi_cluster_env
        return multi_cluster_env(self.cluster_sizes, self.latency,
                                 seed=self.seed, stats=self.stats)

    def launch(self, env) -> None:
        from repro.apps.stencil.driver import StencilApp

        def wrap(cb):
            return register_callback(cb.__name__, cb)

        app = StencilApp(env, mesh=self.mesh, objects=self.objects,
                         payload=self.payload, kernel=self.kernel,
                         target_wrapper=wrap)
        app.launch(self.steps)
        # Stashed on the env, not on self: the job must stay picklable
        # (it is shipped to every worker) and reusable across runs.
        env.pdes_app = app

    def collect(self, env):
        return env.pdes_app.collect()


# -- per-shard worker -------------------------------------------------------

def attach_shard_log(env) -> ShardLog:
    """Attach a :class:`ShardLog` to *env*'s trace sink chain.

    Works for serial and sharded runs alike — certification compares
    trajectories recorded through this same path on both sides.
    """
    log = ShardLog()
    existing = env.fabric.tracer
    env.fabric.tracer = log if existing is None \
        else TraceFanout([existing, log])
    return log


class ShardWorker:
    """One shard's state: environment, ownership filter, export buffer.

    Used directly by the in-process runner and inside each child process
    of the multiprocessing runner — the synchronization protocol is the
    same object either way.
    """

    def __init__(self, job: PdesJob, owned: Sequence[int]) -> None:
        self.job = job
        self.env = job.environment()
        # Content-deterministic same-instant delivery ordering: without
        # it, an import posted at a round boundary would pop before a
        # same-time local delivery that serial execution ordered first.
        self.env.engine.enable_ordered_ties()
        self.log = attach_shard_log(self.env)
        self.owned = frozenset(owned)
        self.exports: List[tuple] = []
        fabric = self.env.fabric
        if self.env.transport is not fabric:
            raise ConfigurationError(
                "sharded runs require the plain NetworkFabric transport")
        if len(self.owned) < self.env.topology.num_pes:
            fabric.shard_owned = self.owned
            fabric.shard_export = self._export
        self._deliver = self.env.runtime.scheduler.deliver
        job.launch(self.env)

    def _export(self, arrival: float, msg, wire_bytes: int) -> None:
        if isinstance(msg.payload, MigrationMsg):
            raise ConfigurationError(
                "cross-shard chare migration is not supported: a live "
                "chare cannot be pickled between shard processes "
                "(rebalance within a shard, or run serial)")
        self.exports.append((arrival, msg, wire_bytes))

    def report(self) -> Tuple[float, list]:
        """``(earliest pending event time, exports since last report)``."""
        eot = self.env.engine.next_event_time()
        out, self.exports = self.exports, []
        return (_INF if eot is None else eot), out

    def advance(self, bound: float, imports: list) -> None:
        """Inject this round's imports, then run the granted window."""
        fabric = self.env.fabric
        deliver = self._deliver
        for arrival, msg, wire_bytes in imports:
            fabric.inject(arrival, msg, wire_bytes, deliver)
        self.env.engine.run_window(bound)

    def run_all(self) -> None:
        """Degenerate single-shard mode: plain serial drain."""
        self.env.engine.run(None)

    def finish(self):
        """Final payload: ``(result-or-None, log, events, final time)``."""
        try:
            result = self.job.collect(self.env)
        except Exception:
            result = None
        return (result, self.log, self.env.engine.events_processed,
                self.env.now)


def run_serial_baseline(job: PdesJob) -> "ShardedResult":
    """Run *job* serially under certification ordering.

    One engine, one heap — the ground truth every sharded execution must
    reproduce bit-for-bit.  Ordered ties are enabled here too: at
    tie-free instants this is the seed's exact trajectory, and at
    same-instant delivery ties both sides use the same canonical
    (message-content) order instead of the seed's post order, which no
    multi-heap execution could reconstruct.
    """
    t_wall = time.perf_counter()
    env = job.environment()
    env.engine.enable_ordered_ties()
    log = attach_shard_log(env)
    previous = _set_scope(0)
    try:
        job.launch(env)
        env.run()
        result = job.collect(env)
    finally:
        _set_scope(previous)
    records = merge_logs([log])
    events = env.engine.events_processed
    return ShardedResult(
        result=result,
        records=records,
        digest=log_digest(records),
        shards=1,
        rounds=0,
        events=events,
        events_per_shard=[events],
        makespan=env.now,
        wall_s=time.perf_counter() - t_wall,
    )


# -- the conservative window protocol --------------------------------------

def compute_horizons(eff_eot: Sequence[float],
                     lookahead: Sequence[Sequence[float]]
                     ) -> List[float]:
    """Fixpoint of the per-shard safe horizons.

    ``T[w] = min over v != w of (min(E[v], T[v]) + L[v][w])``: shard *v*
    cannot emit anything before its earliest event *or* before anything
    it may yet receive — whichever is sooner — and the message then
    needs at least ``L[v][w]`` on the wire.  Iterating to fixpoint
    propagates multi-hop feedback (w -> v -> w), so a lone busy shard is
    still bounded by its own echo, ``E[w] + L[w][v] + L[v][w]``.
    Monotone non-increasing in each step, hence convergent; with any
    finite ``E`` all horizons are finite and strictly above ``min(E)``.
    """
    n = len(eff_eot)
    horizons = [_INF] * n
    changed = True
    while changed:
        changed = False
        for w in range(n):
            best = _INF
            for v in range(n):
                if v == w:
                    continue
                bound = min(eff_eot[v], horizons[v]) + lookahead[v][w]
                if bound < best:
                    best = bound
            if best < horizons[w]:
                horizons[w] = best
                changed = True
    return horizons


@dataclass
class ShardedResult:
    """Outcome of one sharded run."""

    #: The job's product (e.g. a ``StencilResult``), from whichever
    #: shard received the final reduction.
    result: Any
    #: Canonical merged trajectory (``merge_logs`` of the shard logs).
    records: list
    #: ``log_digest`` of the merged trajectory.
    digest: str
    #: Shards actually used (after cluster clamping).
    shards: int
    #: Conservative sync rounds executed (0 for a single shard).
    rounds: int
    #: Engine events fired, summed over shards.
    events: int
    events_per_shard: List[int] = field(default_factory=list)
    #: Final virtual time (max over shards).
    makespan: float = 0.0
    #: Wall-clock seconds of the sharded execution.
    wall_s: float = 0.0


def _roundtrip(payload):
    """Pickle round-trip, mimicking the process boundary in-process."""
    return pickle.loads(pickle.dumps(payload))


class _InprocPeer:
    """Drives a :class:`ShardWorker` in this process, in its own scope."""

    def __init__(self, job_blob: bytes, index: int, owned) -> None:
        self.scope = index + 1  # scope 0 belongs to the caller/serial runs
        previous = _set_scope(self.scope)
        try:
            self.worker = ShardWorker(pickle.loads(job_blob), owned)
        finally:
            _set_scope(previous)

    def _call(self, fn, *args):
        previous = _set_scope(self.scope)
        try:
            return fn(*args)
        finally:
            _set_scope(previous)

    def recv_report(self):
        eot, exports = self._call(self.worker.report)
        return eot, _roundtrip(exports)

    def post_advance(self, bound, imports):
        self._call(self.worker.advance, bound, _roundtrip(imports))

    def finish(self):
        return self._call(self.worker.finish)

    def run_all(self):
        self._call(self.worker.run_all)

    def close(self) -> None:
        pass


def _worker_main(conn, job_blob: bytes, owned) -> None:
    """Child-process loop of the multiprocessing runner."""
    try:
        worker = ShardWorker(pickle.loads(job_blob), owned)
        conn.send(("report",) + worker.report())
        while True:
            cmd = conn.recv()
            if cmd[0] == "advance":
                worker.advance(cmd[1], cmd[2])
                conn.send(("report",) + worker.report())
            elif cmd[0] == "finish":
                conn.send(("done", worker.finish()))
                return
    except BaseException:
        import traceback
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


class _ProcessPeer:
    """Drives a :class:`ShardWorker` in a child process over a pipe."""

    def __init__(self, ctx, job_blob: bytes, owned) -> None:
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(target=_worker_main,
                                args=(child, job_blob, tuple(owned)),
                                daemon=True)
        self.proc.start()
        child.close()

    def _recv(self, want: str):
        reply = self.conn.recv()
        if reply[0] == "error":
            raise ConfigurationError(f"shard worker failed:\n{reply[1]}")
        if reply[0] != want:
            raise ConfigurationError(
                f"shard worker protocol error: got {reply[0]!r}")
        return reply[1:]

    def recv_report(self):
        # Reports arrive unprompted: right after worker init, and after
        # each advance.  Posting all advances before collecting any
        # report is what lets the shards run their windows concurrently.
        return self._recv("report")

    def post_advance(self, bound, imports):
        self.conn.send(("advance", bound, imports))

    def finish(self):
        self.conn.send(("finish",))
        (payload,) = self._recv("done")
        return payload

    def close(self) -> None:
        self.conn.close()
        self.proc.join(timeout=30)
        if self.proc.is_alive():  # pragma: no cover - hang backstop
            self.proc.terminate()
            self.proc.join()


def run_sharded(job: PdesJob, shards: int, *, parallel: bool = False,
                mp_start_method: Optional[str] = None) -> ShardedResult:
    """Run *job* under the sharded conservative engine.

    Parameters
    ----------
    job:
        The simulation; must be picklable and deterministic.
    shards:
        Requested shard count; clamped to the number of clusters (one
        shard is the serial degenerate case and needs no protocol).
    parallel:
        ``False`` (default) drives all shards in this process — same
        protocol, same pickled message batches, no process startup;
        this is the mode tests use.  ``True`` runs one OS process per
        shard over ``multiprocessing`` pipes for real multi-core speed.
    mp_start_method:
        Start-method override for ``parallel=True`` (default: fork when
        available, else the platform default).
    """
    t_wall = time.perf_counter()
    probe_env = job.environment()
    assert_shardable(probe_env.chain,
                     probe_env.transport is probe_env.fabric)
    plan: ShardPlan = plan_shards(probe_env.topology, probe_env.chain,
                                  shards)
    del probe_env
    n = plan.num_shards
    job_blob = pickle.dumps(job)

    if parallel and n > 1:
        import multiprocessing as mp
        method = mp_start_method
        if method is None:
            method = "fork" if "fork" in mp.get_all_start_methods() \
                else None
        ctx = mp.get_context(method)
        peers = [_ProcessPeer(ctx, job_blob, plan.shards[i])
                 for i in range(n)]
    else:
        peers = [_InprocPeer(job_blob, i, plan.shards[i])
                 for i in range(n)]

    rounds = 0
    try:
        if n == 1:
            # Single shard: no ownership filter, no protocol — a plain
            # serial drain (the degenerate case, e.g. one cluster).
            peers[0].run_all()
        else:
            reports = [peer.recv_report() for peer in peers]
            while True:
                # Route this round's exports to their owning shards.
                imports: List[list] = [[] for _ in range(n)]
                for src_shard, (_eot, exports) in enumerate(reports):
                    for export_index, item in enumerate(exports):
                        arrival, msg = item[0], item[1]
                        dst = plan.owner_of(msg.dst_pe)
                        imports[dst].append(
                            (arrival, src_shard, export_index, item))
                eff_eot = []
                for w, (eot, _exports) in enumerate(reports):
                    pending = min((i[0] for i in imports[w]), default=_INF)
                    eff_eot.append(min(eot, pending))
                if all(e == _INF for e in eff_eot):
                    break
                horizons = compute_horizons(eff_eot, plan.lookahead)
                rounds += 1
                for w, peer in enumerate(peers):
                    # Deterministic injection order: arrival time, then
                    # source shard, then that shard's export order.
                    batch = [i[3] for i in sorted(imports[w],
                                                  key=lambda i: i[:3])]
                    peer.post_advance(horizons[w], batch)
                reports = [peer.recv_report() for peer in peers]

        finals = [peer.finish() for peer in peers]
    finally:
        for peer in peers:
            peer.close()

    result = next((f[0] for f in finals if f[0] is not None), None)
    if result is None:
        raise ConfigurationError(
            "sharded run ended without any shard producing a result "
            "(deadlock, or the job never reduces to a driver callback?)")
    logs = [f[1] for f in finals]
    records = merge_logs(logs)
    return ShardedResult(
        result=result,
        records=records,
        digest=log_digest(records),
        shards=n,
        rounds=rounds,
        events=sum(f[2] for f in finals),
        events_per_shard=[f[2] for f in finals],
        makespan=max(f[3] for f in finals),
        wall_s=time.perf_counter() - t_wall,
    )
