"""The paper's two experimental environments, ready-made.

* :func:`artificial_latency_env` — §5.1's "simulated Grid environment":
  one real cluster partitioned in two halves, with a VMI **delay
  device** injecting a chosen latency between the halves.  Fully
  deterministic.
* :func:`teragrid_env` — the "true Grid computing environment" of
  co-allocated NCSA + ANL TeraGrid nodes: a real WAN link model with
  jitter and contention (seeded, reproducible).
* :func:`single_cluster_env` — a conventional one-cluster machine, used
  by baselines and unit tests.
* :func:`lossy_wan_env` — the artificial-latency grid with WAN fault
  injection (loss / duplication / reordering / flaps) and, by default,
  the reliable ack/retransmit transport riding above it.

All build the same VMI chain shape the paper describes: loopback and
shared-memory first, then the intra-cluster network driver, then (for
grid environments) the delay/fault devices and the wide-area driver.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Union

from repro.core.rts import RuntimeConfig
from repro.errors import ConfigurationError
from repro.grid.environment import GridEnvironment
from repro.obs.health import HealthConfig
from repro.obs.timeseries import SamplingPolicy
from repro.grid.teragrid import DEFAULT_TERAGRID, TeraGridWanModel
from repro.network.chain import DeviceChain
from repro.network.delay import DelayDevice
from repro.network.devices import LanDevice, LoopbackDevice, ShmemDevice, WanDevice
from repro.network.faults import FaultyDevice, LinkFlap
from repro.network.links import LinkModel, myrinet_like, shared_memory
from repro.network.reliable import RetransmitPolicy
from repro.network.striping import StripedDevice
from repro.network.topology import GridTopology
from repro.sim.rand import RandomStreams

#: Self-delivery: scheduling a message to yourself is nearly free.
_LOOPBACK_LINK = LinkModel(name="loopback", latency=0.5e-6, bandwidth=0.0,
                           per_message_overhead=0.5e-6)


def _base_devices():
    """Loopback -> shmem -> LAN: the intra-cluster part of every chain."""
    return [
        LoopbackDevice(_LOOPBACK_LINK),
        ShmemDevice(shared_memory()),
        LanDevice(myrinet_like()),
    ]


def _apply_routing(config: Optional[RuntimeConfig],
                   routing: Optional[str]) -> Optional[RuntimeConfig]:
    """Overlay a collective-routing choice on a (possibly None) config."""
    if routing is None:
        return config
    return replace(config or RuntimeConfig(), collective_routing=routing)


def _wan_device(link: LinkModel, wan_streams: int):
    """Pick the WAN transport for a preset.

    ``wan_streams == 0`` (the default) keeps the legacy uncontended
    :class:`WanDevice` — concurrent cross-cluster messages do not share
    anything, which is the paper's pure delay-device model and keeps
    existing results bit-identical.  ``wan_streams >= 1`` models the WAN
    as that many paced TCP streams via
    :class:`~repro.network.striping.StripedDevice` (``1`` = a single
    window-limited stream whose serialization queues FIFO).
    """
    if wan_streams >= 1:
        return StripedDevice(link, streams=wan_streams)
    return WanDevice(link)


def single_cluster_env(num_pes: int, *, seed: int = 0,
                       config: Optional[RuntimeConfig] = None,
                       trace: bool = False, stats: bool = True,
                       object_stats: bool = True,
                       max_events: Optional[int] = None,
                       sampling: Union[bool, SamplingPolicy, None] = None,
                       health: Union[bool, HealthConfig, None] = None,
                       profile: bool = False
                       ) -> GridEnvironment:
    """A conventional cluster: no wide area anywhere."""
    topo = GridTopology.single_cluster(num_pes)
    chain = DeviceChain(_base_devices())
    return GridEnvironment(topo, chain, seed=seed, config=config,
                           trace=trace, stats=stats,
                           object_stats=object_stats,
                           max_events=max_events,
                           sampling=sampling, health=health,
                           profile=profile)


def artificial_latency_env(num_pes: int, latency: float, *, seed: int = 0,
                           config: Optional[RuntimeConfig] = None,
                           routing: Optional[str] = None,
                           wan_streams: int = 0,
                           trace: bool = False, stats: bool = True,
                           object_stats: bool = True,
                           max_events: Optional[int] = None,
                           sampling: Union[bool, SamplingPolicy, None] = None,
                           health: Union[bool, HealthConfig, None] = None,
                           profile: bool = False
                           ) -> GridEnvironment:
    """The paper's simulated Grid: delay device between two halves.

    Parameters
    ----------
    num_pes:
        Total processors, split evenly (must be even; the paper uses
        2, 4, 8, 16, 32, 64).
    latency:
        Injected one-way cross-"cluster" latency in **seconds** (the
        paper sweeps 0-32 ms for the stencil, 1-256 ms for LeanMD).
    routing:
        Collective downward routing: ``None`` keeps whatever *config*
        says (default flat), ``"flat"``/``"hierarchical"`` override it.
    wan_streams:
        ``0`` (default) keeps the legacy uncontended WAN transport;
        ``>= 1`` models the wide area as that many paced TCP streams
        (see :func:`_wan_device`).

    The "wide-area" transport is the same Myrinet-class link as the
    LAN — exactly the paper's setup, where both halves live in one real
    cluster and only the delay device differentiates them.
    """
    if latency < 0:
        raise ConfigurationError(f"negative artificial latency {latency}")
    topo = GridTopology.two_cluster(num_pes)
    devices = _base_devices()
    devices.append(DelayDevice(latency))
    devices.append(_wan_device(myrinet_like(name="wan-artificial"),
                               wan_streams))
    chain = DeviceChain(devices)
    return GridEnvironment(topo, chain, seed=seed,
                           config=_apply_routing(config, routing),
                           trace=trace, stats=stats,
                           object_stats=object_stats,
                           max_events=max_events,
                           sampling=sampling, health=health,
                           profile=profile)


def multi_cluster_env(cluster_sizes, latency: float, *, seed: int = 0,
                      config: Optional[RuntimeConfig] = None,
                      routing: Optional[str] = None,
                      trace: bool = False, stats: bool = True,
                      object_stats: bool = True,
                      max_events: Optional[int] = None,
                      sampling: Union[bool, SamplingPolicy, None] = None,
                      health: Union[bool, HealthConfig, None] = None,
                      profile: bool = False
                      ) -> GridEnvironment:
    """The artificial-latency grid generalized to N co-allocated clusters.

    Same chain shape as :func:`artificial_latency_env` — the delay
    device injects *latency* between every cross-cluster pair — but over
    ``len(cluster_sizes)`` clusters of the given sizes.  This is the
    sharded-PDES benchmark topology: each cluster is one shard, and the
    injected latency is the conservative lookahead window.
    """
    if latency < 0:
        raise ConfigurationError(f"negative artificial latency {latency}")
    topo = GridTopology(list(cluster_sizes))
    devices = _base_devices()
    devices.append(DelayDevice(latency))
    devices.append(WanDevice(myrinet_like(name="wan-artificial")))
    chain = DeviceChain(devices)
    return GridEnvironment(topo, chain, seed=seed,
                           config=_apply_routing(config, routing),
                           trace=trace, stats=stats,
                           object_stats=object_stats,
                           max_events=max_events,
                           sampling=sampling, health=health,
                           profile=profile)


def lossy_wan_env(num_pes: int, latency: float, *,
                  loss: float = 0.05, duplication: float = 0.01,
                  reordering: float = 0.05,
                  reorder_delay: Optional[float] = None,
                  flap: Optional[LinkFlap] = None,
                  reliable: Union[bool, RetransmitPolicy] = True,
                  seed: int = 0,
                  config: Optional[RuntimeConfig] = None,
                  routing: Optional[str] = None,
                  wan_streams: int = 0,
                  trace: bool = False, stats: bool = True,
                  max_events: Optional[int] = None,
                  sampling: Union[bool, SamplingPolicy, None] = None,
                  health: Union[bool, HealthConfig, None] = None,
                  profile: bool = False
                  ) -> GridEnvironment:
    """The artificial-latency grid over a *hostile* wide area.

    Same two-half topology and delay device as
    :func:`artificial_latency_env`, with a
    :class:`~repro.network.faults.FaultyDevice` in the chain that drops,
    duplicates and reorders cross-cluster messages (plus optional
    :class:`~repro.network.faults.LinkFlap` outages) from its own seeded
    RNG stream — two same-seed runs fault bit-identically.

    Parameters
    ----------
    num_pes:
        Total processors, split evenly between the two halves.
    latency:
        Injected one-way cross-cluster latency in seconds.
    loss, duplication, reordering:
        Per-message fault probabilities on the WAN (each in [0, 1]).
    reorder_delay:
        Mean hold-back of reordered messages; defaults to half the
        injected latency (enough to overtake in a jitter-free run).
    flap:
        Optional outage schedule.
    reliable:
        ``True`` (default) runs the runtime over the ack/retransmit
        :class:`~repro.network.reliable.ReliableTransport`; pass a
        :class:`~repro.network.reliable.RetransmitPolicy` to tune it, or
        ``False`` to expose the raw lossy fabric (deadlocks and
        duplicate-delivery faults become *application-visible* — useful
        only for demonstrating why the reliable layer exists).
    """
    if latency < 0:
        raise ConfigurationError(f"negative artificial latency {latency}")
    if reorder_delay is None:
        reorder_delay = max(latency / 2.0, 1e-4)
    topo = GridTopology.two_cluster(num_pes)
    devices = _base_devices()
    devices.append(FaultyDevice(
        loss, duplication, reordering, reorder_delay=reorder_delay,
        rng=RandomStreams(seed).get("wan-faults"), flap=flap,
        name="wan-faults"))
    devices.append(DelayDevice(latency))
    devices.append(_wan_device(myrinet_like(name="wan-lossy"), wan_streams))
    chain = DeviceChain(devices)
    return GridEnvironment(topo, chain, seed=seed,
                           config=_apply_routing(config, routing),
                           trace=trace, stats=stats, max_events=max_events,
                           reliable=reliable,
                           sampling=sampling, health=health,
                           profile=profile)


def teragrid_env(num_pes: int, *, seed: int = 0,
                 model: TeraGridWanModel = DEFAULT_TERAGRID,
                 config: Optional[RuntimeConfig] = None,
                 trace: bool = False, stats: bool = True,
                 max_events: Optional[int] = None,
                 sampling: Union[bool, SamplingPolicy, None] = None,
                 health: Union[bool, HealthConfig, None] = None,
                 profile: bool = False
                 ) -> GridEnvironment:
    """The real co-allocated NCSA+ANL environment (jitter + contention)."""
    topo = GridTopology.two_cluster(num_pes, names=("ncsa", "anl"))
    devices = _base_devices()
    devices.append(model.device())
    chain = DeviceChain(devices)
    return GridEnvironment(topo, chain, seed=seed, config=config,
                           trace=trace, stats=stats, max_events=max_events,
                           sampling=sampling, health=health,
                           profile=profile)
