"""The paper's two experimental environments, ready-made.

* :func:`artificial_latency_env` — §5.1's "simulated Grid environment":
  one real cluster partitioned in two halves, with a VMI **delay
  device** injecting a chosen latency between the halves.  Fully
  deterministic.
* :func:`teragrid_env` — the "true Grid computing environment" of
  co-allocated NCSA + ANL TeraGrid nodes: a real WAN link model with
  jitter and contention (seeded, reproducible).
* :func:`single_cluster_env` — a conventional one-cluster machine, used
  by baselines and unit tests.

All three build the same VMI chain shape the paper describes: loopback
and shared-memory first, then the intra-cluster network driver, then
(for grid environments) the delay device and/or wide-area driver.
"""

from __future__ import annotations

from typing import Optional

from repro.core.rts import RuntimeConfig
from repro.errors import ConfigurationError
from repro.grid.environment import GridEnvironment
from repro.grid.teragrid import DEFAULT_TERAGRID, TeraGridWanModel
from repro.network.chain import DeviceChain
from repro.network.delay import DelayDevice
from repro.network.devices import LanDevice, LoopbackDevice, ShmemDevice, WanDevice
from repro.network.links import LinkModel, myrinet_like, shared_memory
from repro.network.topology import GridTopology

#: Self-delivery: scheduling a message to yourself is nearly free.
_LOOPBACK_LINK = LinkModel(name="loopback", latency=0.5e-6, bandwidth=0.0,
                           per_message_overhead=0.5e-6)


def _base_devices():
    """Loopback -> shmem -> LAN: the intra-cluster part of every chain."""
    return [
        LoopbackDevice(_LOOPBACK_LINK),
        ShmemDevice(shared_memory()),
        LanDevice(myrinet_like()),
    ]


def single_cluster_env(num_pes: int, *, seed: int = 0,
                       config: Optional[RuntimeConfig] = None,
                       trace: bool = False,
                       max_events: Optional[int] = None) -> GridEnvironment:
    """A conventional cluster: no wide area anywhere."""
    topo = GridTopology.single_cluster(num_pes)
    chain = DeviceChain(_base_devices())
    return GridEnvironment(topo, chain, seed=seed, config=config,
                           trace=trace, max_events=max_events)


def artificial_latency_env(num_pes: int, latency: float, *, seed: int = 0,
                           config: Optional[RuntimeConfig] = None,
                           trace: bool = False,
                           max_events: Optional[int] = None
                           ) -> GridEnvironment:
    """The paper's simulated Grid: delay device between two halves.

    Parameters
    ----------
    num_pes:
        Total processors, split evenly (must be even; the paper uses
        2, 4, 8, 16, 32, 64).
    latency:
        Injected one-way cross-"cluster" latency in **seconds** (the
        paper sweeps 0-32 ms for the stencil, 1-256 ms for LeanMD).

    The "wide-area" transport is the same Myrinet-class link as the
    LAN — exactly the paper's setup, where both halves live in one real
    cluster and only the delay device differentiates them.
    """
    if latency < 0:
        raise ConfigurationError(f"negative artificial latency {latency}")
    topo = GridTopology.two_cluster(num_pes)
    devices = _base_devices()
    devices.append(DelayDevice(latency))
    devices.append(WanDevice(myrinet_like(name="wan-artificial")))
    chain = DeviceChain(devices)
    return GridEnvironment(topo, chain, seed=seed, config=config,
                           trace=trace, max_events=max_events)


def teragrid_env(num_pes: int, *, seed: int = 0,
                 model: TeraGridWanModel = DEFAULT_TERAGRID,
                 config: Optional[RuntimeConfig] = None,
                 trace: bool = False,
                 max_events: Optional[int] = None) -> GridEnvironment:
    """The real co-allocated NCSA+ANL environment (jitter + contention)."""
    topo = GridTopology.two_cluster(num_pes, names=("ncsa", "anl"))
    devices = _base_devices()
    devices.append(model.device())
    chain = DeviceChain(devices)
    return GridEnvironment(topo, chain, seed=seed, config=config,
                           trace=trace, max_events=max_events)
