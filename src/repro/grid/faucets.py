"""Faucets-style deadline-driven co-allocation (paper §6).

The paper closes with the scenario motivating all of this machinery:

    "a job is submitted along with a deadline by which the job must be
    completed ... a job request might be satisfied by allocating some
    nodes from one cluster and the balance of nodes needed by the job
    from a second cluster."

This module implements that broker for stencil-class jobs.  Its
performance model is the simulator itself: each candidate allocation is
*dress-rehearsed* with a short modeled-payload run (seconds of wall
time), the measured steady-state step time is extrapolated to the job
length, and the cheapest allocation that meets the deadline wins —
preferring single-cluster allocations (no WAN exposure) and, among
equals, fewer processors (the utility-computing cost function).

The decision honestly inherits everything the paper demonstrates: a
co-allocated candidate only meets a deadline if the job's degree of
virtualization can mask the inter-cluster latency, which the rehearsal
run measures rather than guesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.apps.stencil import StencilApp
from repro.errors import ConfigurationError
from repro.grid.environment import GridEnvironment
from repro.network.chain import DeviceChain
from repro.network.delay import DelayDevice
from repro.network.devices import LanDevice, LoopbackDevice, ShmemDevice, WanDevice
from repro.network.links import LinkModel, myrinet_like, shared_memory
from repro.network.topology import GridTopology

#: Rehearsal length: enough steps for a steady-state window.
REHEARSAL_STEPS = 8

_LOOPBACK = LinkModel(name="loopback", latency=0.5e-6, bandwidth=0.0,
                      per_message_overhead=0.5e-6)


@dataclass(frozen=True)
class ClusterOffer:
    """One site's resource offer."""

    name: str
    free_pes: int

    def __post_init__(self) -> None:
        if self.free_pes < 0:
            raise ConfigurationError(
                f"negative free_pes for {self.name!r}")


@dataclass(frozen=True)
class StencilJob:
    """A deadline-constrained stencil-class job."""

    mesh: Tuple[int, int]
    objects: int
    steps: int
    deadline: float      # virtual seconds

    def __post_init__(self) -> None:
        if self.steps <= 0 or self.deadline <= 0:
            raise ConfigurationError("steps and deadline must be positive")


@dataclass(frozen=True)
class Allocation:
    """A candidate placement: one or two clusters' PEs."""

    offers: Tuple[Tuple[str, int], ...]   # (cluster name, pes used)
    wan_latency: float                    # inter-cluster one-way (s)

    @property
    def total_pes(self) -> int:
        return sum(p for _n, p in self.offers)

    @property
    def co_allocated(self) -> bool:
        return len(self.offers) > 1

    def describe(self) -> str:
        parts = "+".join(f"{n}:{p}" for n, p in self.offers)
        if self.co_allocated:
            return f"{parts} @ {self.wan_latency * 1e3:g} ms WAN"
        return parts


@dataclass
class Decision:
    """The broker's answer."""

    allocation: Optional[Allocation]
    predicted_time: float
    meets_deadline: bool
    #: Every candidate considered: (allocation, predicted job time).
    candidates: List[Tuple[Allocation, float]] = field(default_factory=list)


def build_environment(alloc: Allocation, *, seed: int = 0) -> GridEnvironment:
    """Materialize an allocation as a runnable grid environment."""
    sizes = [p for _n, p in alloc.offers]
    names = [n for n, _p in alloc.offers]
    topo = GridTopology(sizes, cluster_names=names)
    devices = [LoopbackDevice(_LOOPBACK), ShmemDevice(shared_memory()),
               LanDevice(myrinet_like())]
    if alloc.co_allocated:
        devices.append(DelayDevice(alloc.wan_latency))
        devices.append(WanDevice(myrinet_like(name="wan")))
    return GridEnvironment(topo, DeviceChain(devices), seed=seed)


def rehearse(job: StencilJob, alloc: Allocation) -> float:
    """Predicted whole-job time: short simulated run, extrapolated."""
    env = build_environment(alloc)
    app = StencilApp(env, mesh=job.mesh, objects=job.objects,
                     payload="modeled")
    result = app.run(REHEARSAL_STEPS)
    return result.time_per_step * job.steps


def enumerate_candidates(job: StencilJob, offers: Sequence[ClusterOffer],
                         wan_latency: float) -> List[Allocation]:
    """All allocations worth rehearsing.

    Single clusters use all their free PEs (capped at one PE per
    object — more cannot help a stencil of ``objects`` chares); pairs
    contribute an even split of ``2 * min(free_a, free_b)``, the
    paper's co-allocation shape.
    """
    cap = max(job.objects, 1)
    singles = [
        Allocation(((o.name, min(o.free_pes, cap)),), wan_latency=0.0)
        for o in offers if o.free_pes >= 1
    ]
    pairs = []
    for i, a in enumerate(offers):
        for b in offers[i + 1:]:
            half = min(a.free_pes, b.free_pes, (cap + 1) // 2)
            if half >= 1:
                pairs.append(Allocation(
                    ((a.name, half), (b.name, half)),
                    wan_latency=wan_latency))
    return singles + pairs


def plan_allocation(job: StencilJob, offers: Sequence[ClusterOffer],
                    wan_latency: float) -> Decision:
    """Choose the cheapest allocation meeting the job's deadline.

    Preference order: (1) meets deadline, (2) single-cluster before
    co-allocated, (3) fewer PEs, (4) faster predicted time.  With no
    feasible candidate, returns the fastest infeasible one with
    ``meets_deadline=False`` so callers can negotiate.
    """
    if not offers:
        raise ConfigurationError("no cluster offers")
    candidates = enumerate_candidates(job, offers, wan_latency)
    if not candidates:
        return Decision(allocation=None, predicted_time=float("inf"),
                        meets_deadline=False)

    scored = [(alloc, rehearse(job, alloc)) for alloc in candidates]
    feasible = [(a, t) for a, t in scored if t <= job.deadline]
    if feasible:
        best = min(feasible, key=lambda at: (at[0].co_allocated,
                                             at[0].total_pes, at[1]))
        return Decision(allocation=best[0], predicted_time=best[1],
                        meets_deadline=True, candidates=scored)
    best = min(scored, key=lambda at: at[1])
    return Decision(allocation=best[0], predicted_time=best[1],
                    meets_deadline=False, candidates=scored)
