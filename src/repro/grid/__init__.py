"""Grid environment configuration (the paper's two testbeds)."""

from repro.grid.environment import GridEnvironment
from repro.grid.faucets import (
    Allocation,
    ClusterOffer,
    Decision,
    StencilJob,
    plan_allocation,
)
from repro.grid.presets import (
    artificial_latency_env,
    lossy_wan_env,
    single_cluster_env,
    teragrid_env,
)
from repro.grid.teragrid import DEFAULT_TERAGRID, TeraGridWanModel

__all__ = [
    "GridEnvironment",
    "ClusterOffer",
    "StencilJob",
    "Allocation",
    "Decision",
    "plan_allocation",
    "artificial_latency_env",
    "lossy_wan_env",
    "teragrid_env",
    "single_cluster_env",
    "TeraGridWanModel",
    "DEFAULT_TERAGRID",
]
