"""The "real Grid" wide-area model: NCSA <-> ANL over the TeraGrid.

Paper §5.1: "ICMP ping latencies between these clusters are reported as
approximately 1.725 ms one-way latency, and simple Charm++ ping-pong
latencies are approximately 1.920 ms."  The difference (~0.2 ms) is
software/stack overhead, which our WAN link model carries in
``per_message_overhead``.

The model adds the two effects that separate a real WAN from the
deterministic delay device (and that the paper invokes to explain the
Table-2 divergence at 64 processors):

* **jitter** — a lognormal tail on per-message delay;
* **contention** — a shared pipe of finite bandwidth per direction; when
  many PEs burst ghost exchanges simultaneously, serialization queues.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.contention import PipePair
from repro.network.devices import WanDevice
from repro.network.links import LinkModel, LognormalJitter
from repro.units import ms, us


@dataclass(frozen=True)
class TeraGridWanModel:
    """Calibrated constants of the NCSA-ANL path (2004/5 era).

    ``one_way_latency`` matches the paper's reported ICMP number; the
    Charm++ ping-pong difference sets ``stack_overhead``; bandwidth is
    the per-flow share of the 30 Gb/s TeraGrid backbone a single job's
    TCP streams realistically extracted (~40 MB/s aggregate per
    direction).
    """

    one_way_latency: float = ms(1.725)
    stack_overhead: float = us(195)
    bandwidth: float = 40e6
    jitter_median: float = us(120)
    jitter_sigma: float = 0.6

    def link(self) -> LinkModel:
        """The WAN link model with jitter."""
        return LinkModel(
            name="wan-teragrid",
            latency=self.one_way_latency,
            bandwidth=self.bandwidth,
            per_message_overhead=self.stack_overhead,
            jitter=LognormalJitter(median=self.jitter_median,
                                   sigma=self.jitter_sigma),
        )

    def device(self) -> WanDevice:
        """A contended WAN transport device (fresh pipe per call)."""
        return WanDevice(self.link(), pipe=PipePair(name="teragrid"))


#: The default calibration used by presets and benchmarks.
DEFAULT_TERAGRID = TeraGridWanModel()
