"""Assembly of a complete simulated Grid environment.

:class:`GridEnvironment` wires together the pieces every experiment
needs — engine, topology, VMI chain, fabric, tracer, RNG streams, and
the message-driven runtime — so application drivers and benchmarks deal
with a single object.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.rts import Runtime, RuntimeConfig
from repro.network.chain import DeviceChain
from repro.network.fabric import NetworkFabric
from repro.network.reliable import ReliableTransport, RetransmitPolicy
from repro.network.topology import GridTopology
from repro.sim.engine import Engine
from repro.sim.rand import RandomStreams
from repro.sim.trace import Tracer


class GridEnvironment:
    """One ready-to-run simulated grid.

    Parameters
    ----------
    topology:
        Machine layout (usually from :meth:`GridTopology.two_cluster`).
    chain:
        VMI send chain (see :mod:`repro.grid.presets` for the paper's).
    seed:
        Root seed for all named RNG streams.
    config:
        Runtime constants; ``None`` uses defaults.
    trace:
        Enable Projections-style tracing (memory-hungry; off for sweeps).
    max_events:
        Engine safety valve against livelock; ``None`` disables.
    reliable:
        Run the runtime over a
        :class:`~repro.network.reliable.ReliableTransport` (ack /
        retransmit / dedup above the fabric).  ``True`` uses the default
        :class:`~repro.network.reliable.RetransmitPolicy`; pass a policy
        to tune it.  Required for correctness whenever the chain carries
        a :class:`~repro.network.faults.FaultyDevice`.
    """

    def __init__(self, topology: GridTopology, chain: DeviceChain, *,
                 seed: int = 0, config: Optional[RuntimeConfig] = None,
                 trace: bool = False,
                 max_events: Optional[int] = None,
                 reliable: Union[bool, RetransmitPolicy, None] = None) -> None:
        self.topology = topology
        self.chain = chain
        self.streams = RandomStreams(seed)
        self.engine = Engine(max_events=max_events)
        self.tracer = Tracer(enabled=trace)
        self.fabric = NetworkFabric(
            self.engine, topology, chain,
            rng=self.streams.get("network"),
            tracer=self.tracer if trace else None)
        if reliable:
            policy = reliable if isinstance(reliable, RetransmitPolicy) \
                else None
            self.transport = ReliableTransport(self.fabric, policy)
        else:
            self.transport = self.fabric
        self.runtime = Runtime(self.engine, self.transport, config)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.engine.now

    def run(self, until: Optional[float] = None) -> float:
        """Drain the simulation; returns final virtual time."""
        return self.runtime.run(until)

    def describe(self) -> str:
        """Human-readable one-liner for logs and reports."""
        return (f"{self.topology.describe()} via "
                f"{' -> '.join(d.name for d in self.chain.devices)}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GridEnvironment({self.describe()})"
