"""Assembly of a complete simulated Grid environment.

:class:`GridEnvironment` wires together the pieces every experiment
needs — engine, topology, VMI chain, fabric, tracer, RNG streams, the
observability surface (metrics registry + streaming trace aggregation),
and the message-driven runtime — so application drivers and benchmarks
deal with a single object.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.rts import Runtime, RuntimeConfig
from repro.network.chain import DeviceChain
from repro.network.fabric import NetworkFabric
from repro.network.reliable import ReliableTransport, RetransmitPolicy
from repro.network.topology import GridTopology
from repro.obs.health import (
    HealthConfig,
    HealthMonitor,
    ObsGovernor,
    TimedSink,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import WallProfiler
from repro.obs.timeseries import SamplingPolicy, TelemetrySampler
from repro.sim.engine import Engine
from repro.sim.rand import RandomStreams
from repro.sim.trace import TraceAggregator, TraceFanout, Tracer


class GridEnvironment:
    """One ready-to-run simulated grid.

    Parameters
    ----------
    topology:
        Machine layout (usually from :meth:`GridTopology.two_cluster`).
    chain:
        VMI send chain (see :mod:`repro.grid.presets` for the paper's).
    seed:
        Root seed for all named RNG streams.
    config:
        Runtime constants; ``None`` uses defaults.
    trace:
        Enable full Projections-style tracing (stores every event —
        memory grows with event count; needed for timeline rendering
        and Chrome-trace export).
    stats:
        Enable streaming trace aggregation (default on): PE
        utilization, per-entry profiles and the masked-latency fraction
        computed online in O(PEs + entries) memory, cheap enough for
        full benchmark sweeps.  Available as :attr:`aggregator`.
    object_stats:
        Keep per-object profiles and the object×object communication
        matrix inside the streaming aggregator (default on; see
        :class:`~repro.sim.trace.ObjectFold`).  Turn off to measure the
        aggregator at its pre-object-view cost (perf-smoke baseline) or
        to shed the per-object memory in enormous sweeps.  Ignored when
        ``stats`` is off.
    max_events:
        Engine safety valve against livelock; ``None`` disables.
    reliable:
        Run the runtime over a
        :class:`~repro.network.reliable.ReliableTransport` (ack /
        retransmit / dedup above the fabric).  ``True`` uses the default
        :class:`~repro.network.reliable.RetransmitPolicy`; pass a policy
        to tune it.  Required for correctness whenever the chain carries
        a :class:`~repro.network.faults.FaultyDevice`.
    sampling:
        Enable the fixed-memory telemetry sampler
        (:class:`~repro.obs.timeseries.TelemetrySampler`): ``True`` for
        the default :class:`~repro.obs.timeseries.SamplingPolicy`, or a
        policy to tune cadence / capacity / the observability overhead
        budget.  Available as :attr:`sampler`.
    health:
        Enable the rule-based watchdog
        (:class:`~repro.obs.health.HealthMonitor`): ``True`` for the
        default :class:`~repro.obs.health.HealthConfig`, or a config to
        tune thresholds.  Implies ``sampling`` (the watchdog feeds on
        sampler snapshots).  Fired events are at :attr:`health_events`.
    profile:
        Enable the wall-clock self-profiler
        (:class:`~repro.obs.profiler.WallProfiler`): the engine's
        dispatch loop times every fired event into coarse phases
        (scheduler / network / telemetry / app); when a sampling budget
        has the governor stride-sampling the trace sinks anyway, that
        cost rides along as a nested source.  Virtual
        time is bit-identical with the profiler on or off; wall-clock
        cost is bounded < 5 % by the perf-smoke bar.  Available as
        :attr:`profiler` (``None`` when off).
    """

    def __init__(self, topology: GridTopology, chain: DeviceChain, *,
                 seed: int = 0, config: Optional[RuntimeConfig] = None,
                 trace: bool = False, stats: bool = True,
                 object_stats: bool = True,
                 max_events: Optional[int] = None,
                 reliable: Union[bool, RetransmitPolicy, None] = None,
                 sampling: Union[bool, SamplingPolicy, None] = None,
                 health: Union[bool, HealthConfig, None] = None,
                 profile: bool = False) -> None:
        self.topology = topology
        self.chain = chain
        self.streams = RandomStreams(seed)
        self.engine = Engine(max_events=max_events)
        self.profiler: Optional[WallProfiler] = \
            WallProfiler() if profile else None
        if self.profiler is not None:
            self.engine.profiler = self.profiler
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(enabled=trace)
        self.aggregator: Optional[TraceAggregator] = (
            TraceAggregator(metrics=self.metrics, objects=object_stats)
            if stats else None)
        if health and sampling is None:
            sampling = True
        sampling_policy: Optional[SamplingPolicy]
        if isinstance(sampling, SamplingPolicy):
            sampling_policy = sampling
        else:
            sampling_policy = SamplingPolicy() if sampling else None
        self.sampling_policy = sampling_policy
        #: Always present so ``obs.overhead_fraction`` appears in every
        #: snapshot; it only *enforces* when a budget is configured.
        self.governor = ObsGovernor(
            budget=sampling_policy.overhead_budget
            if sampling_policy is not None else None)
        sinks = []
        if trace:
            sinks.append(self.tracer)
        if self.aggregator is not None:
            sinks.append(self.aggregator)
        if not sinks:
            sink = None
        elif len(sinks) == 1:
            sink = sinks[0]
        else:
            sink = TraceFanout(sinks)
        want_sink_timing = (
            sampling_policy is not None
            and sampling_policy.overhead_budget is not None)
        if sink is not None and want_sink_timing:
            # Per-event sink self-timing is itself overhead (an extra
            # indirection on every trace event), so it is paid only when
            # a budget makes the governor need the measurement.  When the
            # profiler is also on it *reuses* that estimate as a nested
            # phase at zero extra cost; a profiler without a budget gets
            # no trace.sinks refinement — the sinks' time still lands
            # inside the dispatch phases that call them.
            sink = TimedSink(sink)
            self.governor.add_cost_source(
                "sinks", lambda s=sink: s.cost_s)
            if self.profiler is not None:
                self.profiler.add_nested_source(
                    "trace.sinks", lambda s=sink: s.cost_s)
        self.fabric = NetworkFabric(
            self.engine, topology, chain,
            rng=self.streams.get("network"),
            tracer=sink)
        if reliable:
            policy = reliable if isinstance(reliable, RetransmitPolicy) \
                else None
            self.transport = ReliableTransport(self.fabric, policy)
        else:
            self.transport = self.fabric
        self.runtime = Runtime(self.engine, self.transport, config)
        self.runtime.metrics = self.metrics
        if health:
            cfg = health if isinstance(health, HealthConfig) else None
            self.monitor: Optional[HealthMonitor] = HealthMonitor(cfg)
        else:
            self.monitor = None
        if sampling_policy is not None:
            self.sampler: Optional[TelemetrySampler] = TelemetrySampler(
                self.engine, self.runtime, sampling_policy,
                transport=self.transport, aggregator=self.aggregator,
                monitor=self.monitor, governor=self.governor)
            self.sampler.start()
        else:
            self.sampler = None
        self._trace_requested = trace
        self.governor.on_downgrade("sampling", self._obs_to_sampling)
        self.governor.on_downgrade("counters", self._obs_to_counters)
        self.governor.on_upgrade("sampling", self._obs_recover_sampling)
        self.governor.on_upgrade("full", self._obs_recover_full)
        self._register_collectors()

    # -- governor downgrade/recovery ladder ------------------------------

    def _obs_to_sampling(self) -> None:
        """Level "sampling": drop full per-event tracing."""
        self.tracer.enabled = False

    def _obs_to_counters(self) -> None:
        """Level "counters": drop sampling and streaming aggregation too;
        only the O(1) counters/gauges keep updating.  The sampler is
        *paused*, not stopped: its tick heartbeat (two clock reads, no
        recording) keeps driving the governor's check so a later calm
        stretch can climb back up the ladder."""
        if self.sampler is not None:
            self.sampler.pause()
        if self.aggregator is not None:
            self.aggregator.enabled = False

    def _obs_recover_sampling(self) -> None:
        """Recovery to "sampling": restart recording + aggregation.

        Inverse of :meth:`_obs_to_counters`.  The stretch spent at
        "counters" leaves a gap in the series and the aggregator's
        streaming statistics — degradation loses data by design; only
        the O(1) counters were complete throughout."""
        if self.sampler is not None:
            self.sampler.resume()
        if self.aggregator is not None:
            self.aggregator.enabled = True

    def _obs_recover_full(self) -> None:
        """Recovery to "full": re-enable per-event tracing, but only if
        this environment was built with it in the first place."""
        if self._trace_requested:
            self.tracer.enabled = True

    @property
    def health_events(self):
        """All watchdog + governor events fired so far, in firing order."""
        if self.sampler is not None:
            return list(self.sampler.health_events)
        return list(self.governor.events)

    def _register_collectors(self) -> None:
        """Pull the scattered stat structs into the metrics registry."""
        m = self.metrics
        engine = self.engine
        m.register_collector("engine", lambda: {
            "engine.events_processed": engine.events_processed,
            "engine.pending": engine.pending,
        })
        m.register_collector(
            "fabric", lambda: self.fabric.stats.as_metrics())
        if isinstance(self.transport, ReliableTransport):
            transport = self.transport
            m.register_collector(
                "reliable", lambda: transport.rstats.as_metrics())

        def pe_metrics():
            out = {}
            for ps in self.runtime.scheduler.pes:
                out.update(ps.stats.as_metrics(ps.pe))
                out.update(ps.queue_metrics())
            return out

        m.register_collector("pes", pe_metrics)
        m.register_collector("obs", lambda: self.governor.as_metrics())

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.engine.now

    def run(self, until: Optional[float] = None) -> float:
        """Drain the simulation; returns final virtual time."""
        return self.runtime.run(until)

    def describe(self) -> str:
        """Human-readable one-liner for logs and reports."""
        return (f"{self.topology.describe()} via "
                f"{' -> '.join(d.name for d in self.chain.devices)}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GridEnvironment({self.describe()})"
