"""Identifiers for chares, collections and entry methods.

A chare is addressed by a :class:`ChareID` — the pair of its collection
number and its index within the collection.  Singleton chares live in
their own one-element collection with the empty index ``()``.

Indices are tuples of ints so the same machinery serves 1-D arrays
(``(i,)``), the stencil's 2-D arrays (``(i, j)``), and LeanMD's 3-D cell
grid (``(x, y, z)``) and 6-D cell-pair space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

Index = Tuple[int, ...]


def normalize_index(index) -> Index:
    """Coerce user-facing index spellings to the canonical tuple form.

    ``arr[3]`` and ``arr[(3,)]`` address the same element; likewise
    ``arr[1, 2]`` and ``arr[(1, 2)]``.
    """
    if isinstance(index, tuple):
        return tuple(int(i) for i in index)
    return (int(index),)


class ChareID:
    """Globally unique chare address: (collection, index).

    Hand-written ``__slots__`` class rather than a frozen dataclass:
    ChareIDs are constructed per proxy call and hashed on every location
    lookup, so the hash is computed once at construction and the
    comparison dunders avoid building intermediate tuples.
    """

    __slots__ = ("collection", "index", "_hash")

    def __init__(self, collection: int, index: Index) -> None:
        self.collection = collection
        self.index = index
        self._hash = hash((collection, index))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if isinstance(other, ChareID):
            return (self.collection == other.collection
                    and self.index == other.index)
        return NotImplemented

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __lt__(self, other) -> bool:
        if isinstance(other, ChareID):
            return ((self.collection, self.index)
                    < (other.collection, other.index))
        return NotImplemented

    def __le__(self, other) -> bool:
        if isinstance(other, ChareID):
            return ((self.collection, self.index)
                    <= (other.collection, other.index))
        return NotImplemented

    def __gt__(self, other) -> bool:
        if isinstance(other, ChareID):
            return ((self.collection, self.index)
                    > (other.collection, other.index))
        return NotImplemented

    def __ge__(self, other) -> bool:
        if isinstance(other, ChareID):
            return ((self.collection, self.index)
                    >= (other.collection, other.index))
        return NotImplemented

    def __reduce__(self):
        return (ChareID, (self.collection, self.index))

    def __repr__(self) -> str:
        return f"ChareID(collection={self.collection}, index={self.index})"

    def __str__(self) -> str:
        if not self.index:
            return f"c{self.collection}"
        return f"c{self.collection}[{','.join(map(str, self.index))}]"


@dataclass(frozen=True)
class EntryRef:
    """A bound (chare, entry-method) pair — the unit reductions target."""

    chare: ChareID
    entry: str

    def __str__(self) -> str:
        return f"{self.chare}.{self.entry}"
