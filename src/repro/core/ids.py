"""Identifiers for chares, collections and entry methods.

A chare is addressed by a :class:`ChareID` — the pair of its collection
number and its index within the collection.  Singleton chares live in
their own one-element collection with the empty index ``()``.

Indices are tuples of ints so the same machinery serves 1-D arrays
(``(i,)``), the stencil's 2-D arrays (``(i, j)``), and LeanMD's 3-D cell
grid (``(x, y, z)``) and 6-D cell-pair space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

Index = Tuple[int, ...]


def normalize_index(index) -> Index:
    """Coerce user-facing index spellings to the canonical tuple form.

    ``arr[3]`` and ``arr[(3,)]`` address the same element; likewise
    ``arr[1, 2]`` and ``arr[(1, 2)]``.
    """
    if isinstance(index, tuple):
        return tuple(int(i) for i in index)
    return (int(index),)


@dataclass(frozen=True, order=True)
class ChareID:
    """Globally unique chare address: (collection, index)."""

    collection: int
    index: Index

    def __str__(self) -> str:
        if not self.index:
            return f"c{self.collection}"
        return f"c{self.collection}[{','.join(map(str, self.index))}]"


@dataclass(frozen=True)
class EntryRef:
    """A bound (chare, entry-method) pair — the unit reductions target."""

    chare: ChareID
    entry: str

    def __str__(self) -> str:
        return f"{self.chare}.{self.entry}"
