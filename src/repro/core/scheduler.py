"""The message-driven scheduler.

This is the mechanism the whole paper rests on (§4): each PE owns a queue
of arrived messages; when the PE is idle, the scheduler dequeues the next
message and runs the targeted entry method *to completion*, charging its
virtual compute cost; messages the method sends depart when it finishes.
While a message for one object is in flight — in particular, crossing a
high-latency wide-area link — the PE keeps executing other objects' ready
messages.  That adaptive overlap of communication and computation is what
masks Grid latency without application changes.

The scheduler executes user Python code *synchronously* at dequeue time,
collects the virtual cost (static entry cost + dynamic ``charge()``
calls + fixed scheduling overhead), marks the PE busy for that long in
virtual time, and releases the method's outgoing messages at the busy
interval's end.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.ids import ChareID
from repro.core.method import EntryInfo, entry_info
from repro.core.pe import PeState
from repro.core.records import (
    Bundle,
    DriverCall,
    Invocation,
    MigrationMsg,
    ReductionMsg,
    RelayMsg,
)
from repro.errors import EntryMethodError, RuntimeSystemError
from repro.network.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.rts import Runtime


class ExecutionContext:
    """State of the one entry-method execution in progress on a PE.

    One is allocated per executed message, so it is a ``__slots__``
    class with a straight-line ``__init__`` (no dataclass machinery on
    the hot path).
    """

    __slots__ = ("pe", "chare_id", "charged", "outbox",
                 "migration_request", "exec_id")

    def __init__(self, pe: int) -> None:
        self.pe = pe
        self.chare_id: Optional[ChareID] = None
        self.charged = 0.0
        self.outbox: List[Message] = []
        self.migration_request: Optional[Tuple[ChareID, int]] = None
        #: Causal span id of this execution; ``None`` when tracing is off
        #: (ids are only allocated when a sink will record them).
        self.exec_id: Optional[int] = None


class Scheduler:
    """Drives all PEs' message queues on top of the simulation engine."""

    def __init__(self, rts: "Runtime") -> None:
        self._rts = rts
        self._pes: List[PeState] = [
            PeState(pe, prioritized=rts.config.prioritized_queues)
            for pe in rts.topology.pes()
        ]
        self._current: Optional[ExecutionContext] = None
        #: Next causal span id (allocated only while tracing is on).
        self._next_exec_id = 0
        #: Memoized ``(chare class, entry name) -> (function, info)``:
        #: entry metadata is immutable after class definition, so the
        #: getattr + ``entry_info`` lookup is paid once per (class,
        #: entry) instead of once per executed message.
        self._entry_cache: Dict[Tuple[type, str],
                                Tuple[Callable, EntryInfo]] = {}

    # -- accessors ---------------------------------------------------------

    @property
    def pes(self) -> List[PeState]:
        return self._pes

    def pe_state(self, pe: int) -> PeState:
        return self._pes[pe]

    @property
    def current_context(self) -> Optional[ExecutionContext]:
        """The execution in progress right now, if any."""
        return self._current

    def all_queues_empty(self) -> bool:
        return all(len(ps.queue) == 0 and ps.idle for ps in self._pes)

    # -- delivery (fabric callback) ---------------------------------------------

    def deliver(self, msg: Message) -> None:
        """A message arrived at its destination PE's queue."""
        ps = self._pes[msg.dst_pe]
        payload = msg.payload
        if isinstance(payload, Bundle):
            # Expand per-PE bundles into individual executions; the
            # shared payload already paid its wire cost once.
            for inv in payload.invocations:
                # Keep the bundle's identity (seq/cause) so causal
                # analysis can map each expanded execution back to the
                # recorded wire edge.
                sub = Message(src_pe=msg.src_pe, dst_pe=msg.dst_pe,
                              size_bytes=0, payload=inv,
                              priority=msg.priority, tag=msg.tag,
                              seq=msg.seq, cause=msg.cause)
                sub.crossed_wan = msg.crossed_wan
                sub.sent_at = msg.sent_at
                ps.queue.push(sub)
                ps.stats.messages_received += 1
        else:
            ps.queue.push(msg)
            ps.stats.messages_received += 1
        if ps.idle:
            self._dispatch(ps)

    def push_local(self, pe: int, msg: Message) -> None:
        """Re-queue a buffered message locally (post-migration flush)."""
        ps = self._pes[pe]
        ps.queue.push(msg)
        if ps.idle:
            self._dispatch(ps)

    # -- the scheduling loop ---------------------------------------------------

    def _dispatch(self, ps: PeState) -> None:
        """Start executing the next queued message on an idle PE."""
        if ps.busy or not ps.queue:
            return
        msg = ps.queue.pop()
        self._execute(ps, msg)

    def _execute(self, ps: PeState, msg: Message) -> None:
        rts = self._rts
        engine = rts.engine
        t0 = engine.now
        ctx = ExecutionContext(pe=ps.pe)
        tracing = rts.tracer is not None and rts.tracer.enabled
        if tracing:
            ctx.exec_id = self._next_exec_id
            self._next_exec_id += 1
        if self._current is not None:
            raise RuntimeSystemError(
                "nested entry-method execution (scheduler bug)")
        self._current = ctx
        # Busy from the first instant of the execution: anything arriving
        # (or locally re-queued) while user code runs must queue, not
        # dispatch recursively.
        ps.busy = True

        payload = msg.payload
        static_cost = 0.0
        label_chare, label_entry = "?", "?"
        try:
            if isinstance(payload, Invocation):
                static_cost, label_chare, label_entry = \
                    self._run_invocation(ps, ctx, msg, payload)
            elif isinstance(payload, ReductionMsg):
                label_chare, label_entry = "<rts>", "reduction"
                static_cost = rts.config.reduction_overhead
                rts.reductions.on_partial(ps.pe, payload)
            elif isinstance(payload, RelayMsg):
                label_chare, label_entry = "<rts>", "relay"
                static_cost = rts.config.relay_overhead
                rts._process_relay(ps.pe, payload)
            elif isinstance(payload, MigrationMsg):
                label_chare, label_entry = "<rts>", "migrate-in"
                static_cost = rts.config.migration_overhead
                rts._complete_migration(ps.pe, payload)
            elif isinstance(payload, DriverCall):
                label_chare, label_entry = "<driver>", getattr(
                    payload.fn, "__name__", "callback")
                payload.fn(*payload.args)
            else:
                raise EntryMethodError(
                    f"unknown payload type {type(payload).__name__}")
        finally:
            self._current = None

        total = rts.config.scheduler_overhead + static_cost + ctx.charged
        if tracing and rts.tracer.enabled:
            # Object label: set only for entry methods that actually ran
            # on a chare here (ctx.chare_id is filled by _run_invocation);
            # runtime-internal work (<rts>, <driver>) stays unattributed.
            obj = (rts._obj_label(ctx.chare_id)
                   if ctx.chare_id is not None else None)
            rts.tracer.begin_execute(ps.pe, t0, label_chare, label_entry,
                                     sid=ctx.exec_id, parent=msg.cause,
                                     trigger=msg.seq, obj=obj)
        engine.post(t0 + total, self._finish, args=(ps, ctx, total))

    def _run_invocation(self, ps: PeState, ctx: ExecutionContext,
                        msg: Message, inv: Invocation):
        """Run a user entry method; returns (static_cost, labels...)."""
        rts = self._rts
        target = inv.target
        current_pe = rts.pe_of(target)
        if current_pe != ps.pe:
            # The chare moved after this message was sent: forward it,
            # charging this PE the forwarding overhead.
            rts._forward(ps.pe, current_pe, msg)
            return rts.config.forward_overhead, "<rts>", "forward"

        chare = rts.chare_object(target)
        if chare is None:
            # Chare is migrating here but has not arrived yet.
            rts._buffer_until_arrival(target, msg)
            return 0.0, "<rts>", "await-migration"

        ctx.chare_id = target
        cls = type(chare)
        cached = self._entry_cache.get((cls, inv.entry))
        if cached is None:
            func = getattr(cls, inv.entry, None)
            if func is None:
                raise EntryMethodError(
                    f"{cls.__name__} has no entry method "
                    f"{inv.entry!r}")
            info = entry_info(func)
            if info is None:
                raise EntryMethodError(
                    f"{cls.__name__}.{inv.entry} is not declared "
                    "with @entry")
            cached = self._entry_cache[(cls, inv.entry)] = (func, info)
        func, info = cached
        # The class-level function with an explicit self: equivalent to
        # ``getattr(chare, entry)(...)`` without allocating a bound
        # method per execution.
        func(chare, *inv.args, **inv.kwargs)
        static = 0.0
        if info.cost is not None:
            static = float(info.cost(chare, *inv.args, **inv.kwargs))
            if static < 0:
                raise EntryMethodError(
                    f"negative static cost from {inv.entry}")
        return static, cls.__name__, inv.entry

    def _finish(self, ps: PeState, ctx: ExecutionContext,
                total: float) -> None:
        rts = self._rts
        now = rts.engine.now
        if rts.tracer is not None and rts.tracer.enabled:
            rts.tracer.end_execute(ps.pe, now)
        ps.stats.executions += 1
        ps.stats.busy_time += total
        if ctx.chare_id is not None and rts.config.collect_lb_stats:
            rts.lb_db.record_execution(ctx.chare_id, total)

        # Release messages produced by the execution: they depart *now*,
        # at the end of the busy interval (run-to-completion semantics).
        for out in ctx.outbox:
            ps.stats.messages_sent += 1
            out.cause = ctx.exec_id
            rts.fabric.send(out, self.deliver)

        ps.busy = False
        ps.stats.last_idle_at = now

        if ctx.migration_request is not None:
            chare_id, new_pe = ctx.migration_request
            rts.migrate(chare_id, new_pe)

        self._dispatch(ps)
        if ps.idle:
            rts._maybe_quiescent()
