"""Initial chare-array placement strategies.

The runtime maps virtual processors (chares) onto physical processors;
these classes decide the *initial* assignment (load balancers may revise
it later).  All strategies are deterministic functions of the index set
and the topology.

The Grid-aware strategies mirror the paper's setup: the problem is split
across the two clusters along one dimension, so that the cross-cluster
seam is a single layer of object-object edges, and each cluster's half is
then block- or round-robin-distributed over its own PEs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Protocol, Sequence

from repro.core.ids import Index
from repro.errors import ConfigurationError
from repro.network.topology import GridTopology


class Mapping(Protocol):
    """Strategy interface: index set + topology → PE assignment."""

    def assign(self, indices: Sequence[Index],
               topology: GridTopology) -> Dict[Index, int]:
        """Return a total mapping of every index to a PE."""
        ...


class BlockMapping:
    """Contiguous slabs of the (sorted) index list per PE.

    Adjacent indices land on the same PE, which preserves locality for
    1-D decompositions.
    """

    def assign(self, indices: Sequence[Index],
               topology: GridTopology) -> Dict[Index, int]:
        order = sorted(indices)
        n, p = len(order), topology.num_pes
        out: Dict[Index, int] = {}
        for k, idx in enumerate(order):
            # Balanced blocks: first (n % p) PEs get one extra element.
            out[idx] = min(k * p // max(n, 1), p - 1)
        return out


class RoundRobinMapping:
    """Index k → PE (k mod P) over the sorted index list."""

    def assign(self, indices: Sequence[Index],
               topology: GridTopology) -> Dict[Index, int]:
        order = sorted(indices)
        p = topology.num_pes
        return {idx: k % p for k, idx in enumerate(order)}


class ExplicitMapping:
    """A user-supplied index → PE table (validated against topology)."""

    def __init__(self, table: Dict[Index, int]) -> None:
        self.table = dict(table)

    def assign(self, indices: Sequence[Index],
               topology: GridTopology) -> Dict[Index, int]:
        out: Dict[Index, int] = {}
        for idx in indices:
            try:
                pe = self.table[idx]
            except KeyError:
                raise ConfigurationError(
                    f"ExplicitMapping has no entry for index {idx}") from None
            if not (0 <= pe < topology.num_pes):
                raise ConfigurationError(
                    f"index {idx} mapped to invalid PE {pe}")
            out[idx] = pe
        return out


class ClusterSplitMapping:
    """Split indices between clusters, then distribute within each.

    Parameters
    ----------
    cluster_of:
        Function mapping an index to a cluster number.  The paper's
        experiments split the stencil mesh (and the MD cell grid) along
        one axis so half the objects live on each cluster.
    within:
        How to spread a cluster's indices over that cluster's PEs:
        ``"block"`` (contiguous runs) or ``"roundrobin"``.
    """

    def __init__(self, cluster_of: Callable[[Index], int],
                 within: str = "block") -> None:
        if within not in ("block", "roundrobin"):
            raise ConfigurationError(f"unknown within policy {within!r}")
        self.cluster_of = cluster_of
        self.within = within

    def assign(self, indices: Sequence[Index],
               topology: GridTopology) -> Dict[Index, int]:
        buckets: List[List[Index]] = [[] for _ in range(topology.num_clusters)]
        for idx in sorted(indices):
            c = self.cluster_of(idx)
            if not (0 <= c < topology.num_clusters):
                raise ConfigurationError(
                    f"index {idx} assigned to invalid cluster {c}")
            buckets[c].append(idx)
        out: Dict[Index, int] = {}
        for c, bucket in enumerate(buckets):
            pes = topology.cluster_pes(c)
            if bucket and not pes:
                raise ConfigurationError(f"cluster {c} has no PEs")
            n, p = len(bucket), len(pes)
            for k, idx in enumerate(bucket):
                if self.within == "block":
                    out[idx] = pes[min(k * p // max(n, 1), p - 1)]
                else:
                    out[idx] = pes[k % p]
        return out


def grid2d_split_mapping(nx: int, ny: int, topology: GridTopology,
                         within: str = "block") -> Mapping:
    """The paper's stencil mapping for an ``nx x ny`` object grid.

    Splits object *columns* evenly among the clusters (for two clusters:
    left half / right half, a single seam of cross-cluster edges), then
    distributes each cluster's columns over its PEs.

    For a single-cluster topology this degrades gracefully to a plain
    block mapping of the whole grid.
    """
    num_clusters = topology.num_clusters

    def cluster_of(idx: Index) -> int:
        # idx = (i, j); split along j (columns).
        j = idx[1] if len(idx) > 1 else idx[0]
        return min(j * num_clusters // max(ny, 1), num_clusters - 1)

    return ClusterSplitMapping(cluster_of, within=within)


def grid3d_split_mapping(nx: int, topology: GridTopology,
                         axis: int = 0,
                         within: str = "roundrobin") -> Mapping:
    """Cluster-split mapping for 3-D (and higher) index grids.

    Splits along coordinate *axis* with *nx* cells in that dimension —
    used by LeanMD to put half the cell grid on each cluster.  Pair
    objects (6-tuples ``(x1,y1,z1,x2,y2,z2)``) are split by their first
    cell's coordinate, so a pair lives in the cluster of one of its
    cells — matching how Charm++'s default map would co-locate them.
    """
    num_clusters = topology.num_clusters

    def cluster_of(idx: Index) -> int:
        coord = idx[axis]
        return min(coord * num_clusters // max(nx, 1), num_clusters - 1)

    return ClusterSplitMapping(cluster_of, within=within)
