"""Cost-model building blocks shared by the applications.

The simulator charges *virtual* compute time per entry method.  The
applications derive their charges from small analytic models calibrated
against the paper's Itanium-2 numbers (see
:mod:`repro.bench.calibration`); this module provides the shared pieces,
most importantly the cache-hierarchy factor behind the paper's
observation (§5.2) that *lower* virtualization can be *slower* at zero
latency: a 1024x1024 stencil block (8 MiB working set) streams from
memory, while a 256x256 block lives in L2/L3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.errors import CalibrationError


class CostModel(Protocol):
    """Anything that can price an amount of work in seconds."""

    def cost(self, work_units: float) -> float:
        """Virtual seconds for *work_units* abstract units of work."""
        ...


@dataclass(frozen=True)
class LinearCost:
    """``cost = per_unit * work_units + fixed`` — the simplest model."""

    per_unit: float
    fixed: float = 0.0

    def __post_init__(self) -> None:
        if self.per_unit < 0 or self.fixed < 0:
            raise CalibrationError("cost coefficients must be >= 0")

    def cost(self, work_units: float) -> float:
        return self.per_unit * work_units + self.fixed


@dataclass(frozen=True)
class CacheHierarchy:
    """A three-level cache model producing a cost multiplier.

    Parameters are capacities in bytes and the slowdown factor paid when
    the working set spills past each level.  Defaults approximate the
    paper's 1.5 GHz Itanium-2 (256 KiB L2, 6 MiB L3): spilling L3 to
    DRAM costs ~15% on a streaming stencil — enough to reproduce the
    Table-1 anomaly where 4 objects on 2 PEs lose to 16 objects — while
    spilling L2 to L3 costs a few percent.
    """

    l2_bytes: int = 256 * 1024
    l3_bytes: int = 6 * 1024 * 1024
    l3_penalty: float = 1.05
    dram_penalty: float = 1.24

    def __post_init__(self) -> None:
        if self.l2_bytes <= 0 or self.l3_bytes <= self.l2_bytes:
            raise CalibrationError(
                "cache capacities must satisfy 0 < L2 < L3")
        if not (1.0 <= self.l3_penalty <= self.dram_penalty):
            raise CalibrationError(
                "penalties must satisfy 1 <= l3_penalty <= dram_penalty")

    def factor(self, working_set_bytes: float) -> float:
        """Multiplier on per-unit cost for a given working-set size.

        Piecewise-linear between levels so sweeps over block sizes are
        smooth rather than cliff-edged (real caches degrade gradually as
        conflict/ capacity misses ramp up).
        """
        ws = float(working_set_bytes)
        if ws <= self.l2_bytes:
            return 1.0
        if ws <= self.l3_bytes:
            span = self.l3_bytes - self.l2_bytes
            t = (ws - self.l2_bytes) / span
            return 1.0 + t * (self.l3_penalty - 1.0)
        # Past L3: approach the DRAM penalty; at 2x L3 the working set
        # is effectively uncached.
        over = min((ws - self.l3_bytes) / self.l3_bytes, 1.0)
        return self.l3_penalty + over * (self.dram_penalty - self.l3_penalty)


@dataclass(frozen=True)
class CachedLinearCost:
    """Linear cost whose per-unit rate scales with a cache factor."""

    per_unit: float
    cache: CacheHierarchy
    bytes_per_unit: float
    fixed: float = 0.0

    def cost_for(self, work_units: float, working_set_units: float) -> float:
        """Cost of *work_units* given a resident set of *working_set_units*.

        The working set (in units) is converted to bytes with
        ``bytes_per_unit``; typically ``working_set_units`` is the size
        of the object's whole block even when only part is updated.
        """
        f = self.cache.factor(working_set_units * self.bytes_per_unit)
        return self.per_unit * f * work_units + self.fixed
