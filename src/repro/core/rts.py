"""The runtime system facade.

:class:`Runtime` owns everything a Charm++ process would: the chare
registry and location manager, the per-PE schedulers, the reduction
manager, the load-balancing database, and the send path into the network
fabric.  Applications interact with it through a handful of calls:

>>> rts = Runtime(engine, fabric)
>>> blocks = rts.create_array(StencilBlock, indices, mapping, args_of)
>>> blocks.start(steps=100)          # broadcast
>>> rts.run()                        # drain the simulation

Everything else — asynchronous sends, reductions, multicasts, migration —
flows through proxies and :class:`~repro.core.chare.Chare` helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.chare import Chare
from repro.core.collectives import process_relay, send_bundled
from repro.core.ids import ChareID, EntryRef, Index, normalize_index
from repro.core.loadbalance.metrics import LBDatabase
from repro.core.method import entry_info, invocation_bytes, payload_bytes
from repro.core.proxy import ArrayProxy, ChareProxy
from repro.core.records import (
    DriverCall,
    Invocation,
    MigrationMsg,
    ReductionMsg,
)
from repro.core.reduction import ReductionManager
from repro.core.scheduler import Scheduler
from repro.errors import (
    ConfigurationError,
    MigrationError,
    RuntimeSystemError,
    UnknownChareError,
)
from repro.network.fabric import NetworkFabric
from repro.network.message import (
    DEFAULT_PRIORITY,
    WAN_EXPEDITED,
    Message,
    reset_seq_counter,
)
from repro.network.topology import GridTopology
from repro.sim.engine import Engine
from repro.sim.trace import TraceSink


@dataclass
class RuntimeConfig:
    """Tunable runtime constants (all times in seconds).

    The defaults model a lightweight native runtime of the paper's era:
    a couple of microseconds of scheduling work per message, and small
    fixed costs for runtime-internal message handling.
    """

    #: Charged on every message execution (queue pop + dispatch).
    scheduler_overhead: float = 2e-6
    #: Extra cost of combining one reduction partial.
    reduction_overhead: float = 1e-6
    #: Cost of forwarding a message that missed a migrated chare.
    forward_overhead: float = 2e-6
    #: Cost of unpacking an arriving migrated chare.
    migration_overhead: float = 10e-6
    #: Cost of re-fanning an arrived multicast relay at a cluster/node
    #: root (hierarchical routing only).
    relay_overhead: float = 2e-6
    #: Collective downward routing: ``"flat"`` sends one bundle per
    #: destination PE; ``"hierarchical"`` sends one relay per remote
    #: cluster whose root PE re-fans locally (see
    #: :mod:`repro.core.collectives`).
    collective_routing: str = "flat"
    #: Use priority queues instead of FIFO (paper §4 allows both).
    prioritized_queues: bool = False
    #: §6 extension: auto-tag cross-cluster messages as high priority.
    expedite_wan: bool = False
    #: PE on which driver-originated messages nominally originate.
    driver_pe: int = 0
    #: Record per-chare load / communication for load balancing.
    collect_lb_stats: bool = True

    def __post_init__(self) -> None:
        for name in ("scheduler_overhead", "reduction_overhead",
                     "forward_overhead", "migration_overhead",
                     "relay_overhead"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if self.collective_routing not in ("flat", "hierarchical"):
            raise ConfigurationError(
                f"collective_routing must be 'flat' or 'hierarchical', "
                f"got {self.collective_routing!r}")
        if self.expedite_wan and not self.prioritized_queues:
            raise ConfigurationError(
                "expedite_wan requires prioritized_queues=True")


class _Collection:
    """Registry record for one chare collection."""

    __slots__ = ("cid", "cls", "mapping", "objects")

    def __init__(self, cid: int, cls: type) -> None:
        self.cid = cid
        self.cls = cls
        self.mapping: Dict[Index, int] = {}
        self.objects: Dict[Index, Optional[Chare]] = {}


class Runtime:
    """A complete message-driven-objects runtime on a simulated grid.

    Parameters
    ----------
    engine:
        The discrete-event engine (shared with the fabric).
    fabric:
        Network fabric carrying all inter-PE messages — either a bare
        :class:`~repro.network.fabric.NetworkFabric` or a
        :class:`~repro.network.reliable.ReliableTransport` wrapping one
        (both expose the same send/topology/tracer surface).
    config:
        Runtime constants; defaults are fine for the paper's experiments.
    """

    def __init__(self, engine: Engine, fabric: "NetworkFabric",
                 config: Optional[RuntimeConfig] = None) -> None:
        if fabric.engine is not engine:
            raise ConfigurationError("fabric must share the runtime's engine")
        # Message seq ids restart at zero with each runtime so a run's
        # trace digests do not depend on what else ran earlier in the
        # process (sweep position, pool worker reuse, test ordering).
        reset_seq_counter()
        self.engine = engine
        self.fabric = fabric
        self.config = config or RuntimeConfig()
        if not (0 <= self.config.driver_pe < self.topology.num_pes):
            raise ConfigurationError(
                f"driver_pe {self.config.driver_pe} out of range")
        self.scheduler = Scheduler(self)
        self.reductions = ReductionManager(self)
        self.lb_db = LBDatabase()
        #: Optional observability registry (set by GridEnvironment);
        #: load balancing and migration publish counters into it.
        self.metrics = None
        self._collections: Dict[int, _Collection] = {}
        self._next_collection = 0
        self._awaiting_arrival: Dict[ChareID, List[Message]] = {}
        self._quiescence_cbs: List[Callable[[], None]] = []
        self._migrations_done = 0
        #: Memoized ``(collection, entry) -> declared priority or None``:
        #: the getattr + entry_info walk is paid once per entry, not once
        #: per send.
        self._declared_prio: Dict[Tuple[int, str], Optional[int]] = {}
        #: Memoized ``ChareID -> str(ChareID)`` labels for trace object
        #: attribution; consulted only when tracing is enabled.
        self._obj_labels: Dict[ChareID, str] = {}

    # -- basic accessors -------------------------------------------------------

    @property
    def topology(self) -> GridTopology:
        return self.fabric.topology

    @property
    def tracer(self) -> Optional[TraceSink]:
        return self.fabric.tracer

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.engine.now

    @property
    def num_pes(self) -> int:
        return self.topology.num_pes

    @property
    def migrations_done(self) -> int:
        """Total chare migrations completed so far."""
        return self._migrations_done

    # -- chare creation -------------------------------------------------------------

    def create_chare(self, cls: type, pe: int = 0, args: tuple = (),
                     kwargs: Optional[dict] = None) -> ChareProxy:
        """Create a singleton chare of *cls* on *pe*; returns its proxy."""
        self._check_pe(pe)
        coll = self._new_collection(cls)
        cid = ChareID(coll.cid, ())
        obj = cls(*args, **(kwargs or {}))
        self._register(coll, cid, obj, pe)
        return ChareProxy(self, cid)

    def create_array(self, cls: type, indices: Sequence,
                     mapping, args_of: Optional[Callable] = None,
                     args: tuple = (), kwargs: Optional[dict] = None
                     ) -> ArrayProxy:
        """Create a chare array of *cls* over *indices*.

        Parameters
        ----------
        indices:
            Element indices (ints or tuples; normalized internally).
        mapping:
            A :class:`~repro.core.mapping.Mapping` strategy, or an
            explicit ``{index: pe}`` dict.
        args_of:
            Optional per-element constructor arguments:
            ``args_of(index) -> (args, kwargs)``.  When omitted, every
            element is built with the shared *args*/*kwargs*.
        """
        norm = [normalize_index(i) for i in indices]
        if len(set(norm)) != len(norm):
            raise ConfigurationError("duplicate indices in chare array")
        if not norm:
            raise ConfigurationError("chare array needs at least one element")

        if isinstance(mapping, dict):
            table = {normalize_index(i): pe for i, pe in mapping.items()}
        else:
            table = mapping.assign(norm, self.topology)

        coll = self._new_collection(cls)
        for idx in norm:
            pe = table[idx]
            self._check_pe(pe)
            if args_of is not None:
                a, kw = args_of(idx)
            else:
                a, kw = args, (kwargs or {})
            obj = cls(*a, **kw)
            self._register(coll, ChareID(coll.cid, idx), obj, pe)
        return ArrayProxy(self, coll.cid)

    def _new_collection(self, cls: type) -> _Collection:
        coll = _Collection(self._next_collection, cls)
        self._collections[coll.cid] = coll
        self._next_collection += 1
        return coll

    def _register(self, coll: _Collection, cid: ChareID, obj: Chare,
                  pe: int) -> None:
        if not isinstance(obj, Chare):
            raise RuntimeSystemError(
                f"{type(obj).__name__} does not derive from Chare")
        obj._bind(self, cid)
        coll.mapping[cid.index] = pe
        coll.objects[cid.index] = obj

    def _check_pe(self, pe: int) -> None:
        if not (0 <= pe < self.topology.num_pes):
            raise ConfigurationError(
                f"PE {pe} out of range (have {self.topology.num_pes})")

    # -- location management ----------------------------------------------------------

    def _collection(self, cid: int) -> _Collection:
        try:
            return self._collections[cid]
        except KeyError:
            raise UnknownChareError(f"unknown collection c{cid}") from None

    def pe_of(self, chare_id: ChareID) -> int:
        """The PE currently (or imminently) hosting *chare_id*."""
        coll = self._collection(chare_id.collection)
        try:
            return coll.mapping[chare_id.index]
        except KeyError:
            raise UnknownChareError(f"unknown chare {chare_id}") from None

    def chare_object(self, chare_id: ChareID) -> Optional[Chare]:
        """The live object for *chare_id*, or ``None`` while migrating."""
        coll = self._collection(chare_id.collection)
        if chare_id.index not in coll.mapping:
            raise UnknownChareError(f"unknown chare {chare_id}")
        return coll.objects.get(chare_id.index)

    def collection_proxy(self, cid: int) -> ArrayProxy:
        self._collection(cid)
        return ArrayProxy(self, cid)

    def collection_indices(self, cid: int) -> List[Index]:
        return sorted(self._collection(cid).mapping)

    def collection_mapping(self, cid: int) -> Dict[Index, int]:
        return dict(self._collection(cid).mapping)

    def current_mapping(self) -> Dict[ChareID, int]:
        """Every chare's current PE (load balancers consume this)."""
        out: Dict[ChareID, int] = {}
        for coll in self._collections.values():
            for idx, pe in coll.mapping.items():
                out[ChareID(coll.cid, idx)] = pe
        return out

    # -- the send path ------------------------------------------------------------------

    def send(self, target: ChareID, entry: str, args: tuple, kwargs: dict,
             size: Optional[int] = None, priority: Optional[int] = None,
             tag: Optional[str] = None) -> None:
        """Asynchronously invoke ``target.entry(*args, **kwargs)``."""
        dst_pe = self.pe_of(target)
        if priority is None:
            priority = self._default_priority(target, entry, dst_pe)
        wire = size if size is not None else invocation_bytes(args, kwargs)
        self._dispatch_payload(
            dst_pe=dst_pe, payload=Invocation(target, entry, args, kwargs),
            size=wire, priority=priority, tag=tag or entry,
            dst_chare=target)

    def broadcast(self, collection: int, entry: str, args: tuple,
                  kwargs: dict, size: Optional[int] = None,
                  priority: Optional[int] = None,
                  tag: Optional[str] = None) -> None:
        """Invoke *entry* on every element of *collection* (PE-bundled)."""
        send_bundled(self, collection, entry,
                     self.collection_indices(collection), args, kwargs,
                     size, priority, tag)

    def _default_priority(self, target: ChareID, entry: str,
                          dst_pe: int) -> int:
        key = (target.collection, entry)
        cache = self._declared_prio
        if key in cache:
            declared = cache[key]
        else:
            coll = self._collection(target.collection)
            method = getattr(coll.cls, entry, None)
            declared = None
            if method is not None:
                info = entry_info(method)
                if info is not None:
                    declared = info.priority
            cache[key] = declared
        if declared is not None:
            return declared
        if self.config.expedite_wan:
            src_pe = self._originating_pe()
            if self.topology.crosses_wan(src_pe, dst_pe):
                return WAN_EXPEDITED
        return DEFAULT_PRIORITY

    def _originating_pe(self) -> int:
        ctx = self.scheduler.current_context
        return ctx.pe if ctx is not None else self.config.driver_pe

    def _obj_label(self, chare_id: ChareID) -> str:
        """Memoized, location-independent trace label for a chare.

        ``str(ChareID)`` never mentions a PE, so the label is stable
        across migration — per-object trace aggregation keyed on it
        follows the *object* wherever load balancing moves it.
        """
        label = self._obj_labels.get(chare_id)
        if label is None:
            label = str(chare_id)
            self._obj_labels[chare_id] = label
        return label

    def _dispatch_payload(self, dst_pe: int, payload: Any, size: int,
                          priority: Optional[int], tag: str,
                          dst_chare: Optional[ChareID] = None,
                          entry_hint: Optional[str] = None,
                          collection_hint: Optional[int] = None,
                          src_pe: Optional[int] = None,
                          relay_hop: int = 0) -> None:
        """Common exit point for every runtime-generated message."""
        ctx = self.scheduler.current_context
        origin = src_pe if src_pe is not None else self._originating_pe()
        msg = Message(
            src_pe=origin, dst_pe=dst_pe, size_bytes=size, payload=payload,
            priority=priority if priority is not None else DEFAULT_PRIORITY,
            tag=tag)
        if relay_hop:
            msg.relay_hop = relay_hop
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            # Object attribution for the trace sinks.  Labels are stamped
            # only when tracing is on, so the obs-off hot path is
            # byte-for-byte the seed's (two None slot writes aside).
            if ctx is not None and ctx.chare_id is not None:
                msg.src_obj = self._obj_label(ctx.chare_id)
            if dst_chare is not None:
                msg.dst_obj = self._obj_label(dst_chare)
        if (self.config.collect_lb_stats and ctx is not None
                and ctx.chare_id is not None and dst_chare is not None):
            self.lb_db.record_send(
                ctx.chare_id, dst_chare, size,
                self.topology.crosses_wan(origin, dst_pe))
        if ctx is not None:
            # Run-to-completion: depart when the current entry finishes.
            ctx.outbox.append(msg)
        else:
            self.fabric.send(msg, self.scheduler.deliver)

    # -- execution-time services (called via Chare helpers) ------------------------

    def charge(self, seconds: float) -> None:
        ctx = self.scheduler.current_context
        if ctx is None:
            raise RuntimeSystemError("charge() outside an entry method")
        if seconds < 0:
            raise RuntimeSystemError(f"negative charge {seconds!r}")
        ctx.charged += seconds

    def contribute(self, chare_id: ChareID, value: Any, op: str,
                   target: Any) -> None:
        self.reductions.contribute(chare_id, value, op,
                                   self._normalize_target(target))

    def _normalize_target(self, target: Any) -> Any:
        if isinstance(target, EntryRef) or callable(target):
            return target
        if isinstance(target, tuple) and len(target) == 2:
            proxy, entry = target
            if isinstance(proxy, ChareProxy) and isinstance(entry, str):
                return EntryRef(proxy.chare_id, entry)
        raise RuntimeSystemError(
            f"invalid reduction target {target!r}; use an EntryRef, a "
            "(element_proxy, 'entry') pair, or a callable")

    def request_migration(self, chare_id: ChareID, new_pe: int) -> None:
        ctx = self.scheduler.current_context
        if ctx is None:
            # Driver context: migrate immediately.
            self.migrate(chare_id, new_pe)
            return
        ctx.migration_request = (chare_id, new_pe)

    def _process_relay(self, pe: int, relay: Any) -> None:
        """Re-fan an arrived multicast relay (scheduler hook)."""
        process_relay(self, pe, relay)

    # -- reductions: runtime-internal hooks -----------------------------------------

    def _send_reduction_partial(self, from_pe: int, to_pe: int,
                                collection: int, red_num: int, op: str,
                                value: Any, target: Any) -> None:
        payload = ReductionMsg(collection=collection, red_num=red_num,
                               op=op, value=value, from_pe=from_pe,
                               target=target)
        self._dispatch_payload(
            dst_pe=to_pe, payload=payload,
            size=64 + payload_bytes(value), priority=DEFAULT_PRIORITY,
            tag=f"red:c{collection}#{red_num}", src_pe=from_pe)

    def _deliver_reduction_result(self, root_pe: int, collection: int,
                                  red_num: int, op: str, value: Any,
                                  target: Any) -> None:
        if isinstance(target, EntryRef):
            self.send(target.chare, target.entry, (value,), {},
                      tag=f"red-result:c{collection}#{red_num}")
        elif callable(target):
            self._dispatch_payload(
                dst_pe=root_pe, payload=DriverCall(target, (value,)),
                size=0, priority=DEFAULT_PRIORITY,
                tag=f"red-cb:c{collection}#{red_num}", src_pe=root_pe)
        else:  # pragma: no cover - normalized earlier
            raise RuntimeSystemError(f"bad reduction target {target!r}")

    # -- migration -------------------------------------------------------------------------

    def migrate(self, chare_id: ChareID, new_pe: int) -> None:
        """Move *chare_id* to *new_pe*, charging pack/transit/unpack costs.

        Must be invoked at a quiescent point for the chare's collection
        with respect to reductions (see :class:`ReductionManager`).
        """
        self._check_pe(new_pe)
        coll = self._collection(chare_id.collection)
        obj = coll.objects.get(chare_id.index)
        if obj is None:
            raise MigrationError(f"{chare_id} is already migrating")
        old_pe = coll.mapping[chare_id.index]
        if old_pe == new_pe:
            return
        self.reductions.assert_no_open_reduction(chare_id.collection)
        # Location updates immediately: new sends route to the new home.
        coll.mapping[chare_id.index] = new_pe
        coll.objects[chare_id.index] = None
        payload = MigrationMsg(chare_id=chare_id, chare=obj,
                               old_pe=old_pe, new_pe=new_pe)
        self._dispatch_payload(
            dst_pe=new_pe, payload=payload, size=obj.pack_size(),
            priority=DEFAULT_PRIORITY, tag=f"migrate:{chare_id}",
            src_pe=old_pe)

    def _complete_migration(self, pe: int, msg: MigrationMsg) -> None:
        coll = self._collection(msg.chare_id.collection)
        if coll.mapping.get(msg.chare_id.index) != pe:
            raise MigrationError(
                f"{msg.chare_id} arrived at PE {pe} but is mapped to "
                f"{coll.mapping.get(msg.chare_id.index)}")
        coll.objects[msg.chare_id.index] = msg.chare
        self._migrations_done += 1
        msg.chare.on_migrated(msg.old_pe, msg.new_pe)
        for buffered in self._awaiting_arrival.pop(msg.chare_id, []):
            self.scheduler.push_local(pe, buffered)

    def _buffer_until_arrival(self, chare_id: ChareID, msg: Message) -> None:
        self._awaiting_arrival.setdefault(chare_id, []).append(msg)

    def _forward(self, from_pe: int, to_pe: int, msg: Message) -> None:
        fwd = Message(src_pe=from_pe, dst_pe=to_pe,
                      size_bytes=msg.size_bytes, payload=msg.payload,
                      priority=msg.priority, tag=msg.tag)
        # Preserve object attribution across the forwarding hop so
        # per-object aggregation keeps following the migrated chare.
        fwd.src_obj = msg.src_obj
        fwd.dst_obj = msg.dst_obj
        ctx = self.scheduler.current_context
        if ctx is not None:
            ctx.outbox.append(fwd)
        else:  # pragma: no cover - forwards always happen in execution
            self.fabric.send(fwd, self.scheduler.deliver)

    # -- load balancing ------------------------------------------------------------------------

    def load_balance(self, strategy) -> Dict[ChareID, int]:
        """Apply *strategy* to the measured load database.

        Returns the applied migration plan (possibly empty).  Call at a
        quiescent point (typically from a reduction callback).
        """
        mapping = self.current_mapping()
        if self.metrics is not None:
            from repro.core.loadbalance.base import imbalance, pe_loads
            self.metrics.gauge("lb.imbalance_before").set(
                imbalance(pe_loads(self.lb_db, self.topology, mapping)))
        plan = strategy.plan(self.lb_db, self.topology, mapping)
        applied: Dict[ChareID, int] = {}
        for chare_id, new_pe in sorted(plan.items()):
            if self.pe_of(chare_id) != new_pe:
                self.migrate(chare_id, new_pe)
                applied[chare_id] = new_pe
        if self.metrics is not None:
            self.metrics.counter("lb.rounds").inc()
            self.metrics.counter("lb.migrations_planned").inc(len(plan))
            self.metrics.counter("lb.migrations_applied").inc(len(applied))
            self.metrics.gauge("lb.imbalance_planned").set(
                imbalance(pe_loads(self.lb_db, self.topology,
                                   {**mapping, **plan})))
        self.lb_db.reset()
        return applied

    # -- quiescence & execution --------------------------------------------------------------------

    def on_quiescence(self, callback: Callable[[], None]) -> None:
        """Run *callback* (once) when no work remains anywhere."""
        self._quiescence_cbs.append(callback)

    def _maybe_quiescent(self) -> None:
        if not self._quiescence_cbs:
            return
        if self.scheduler.all_queues_empty() and self.engine.pending == 0:
            cbs, self._quiescence_cbs = self._quiescence_cbs, []
            for cb in cbs:
                cb()

    def run(self, until: Optional[float] = None) -> float:
        """Drain the simulation; returns the final virtual time."""
        return self.engine.run(until)
