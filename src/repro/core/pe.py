"""Per-processor scheduler state.

Each physical processor in the simulation owns a :class:`PeState`: its
message queue, a busy/idle flag, and accumulated statistics.  The
scheduling *logic* lives in :mod:`repro.core.scheduler`; this module is
pure state so it can be inspected cheaply by tests and load balancers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.queue import MessageQueue


@dataclass
class PeStats:
    """Execution statistics for one PE."""

    executions: int = 0
    busy_time: float = 0.0
    messages_received: int = 0
    messages_sent: int = 0
    #: Virtual time at which this PE last became idle.
    last_idle_at: float = 0.0

    def utilization(self, makespan: float) -> float:
        """Busy fraction of *makespan* (0 when makespan is 0)."""
        if makespan <= 0:
            return 0.0
        return self.busy_time / makespan

    def as_metrics(self, pe: int) -> Dict[str, float]:
        """Flat ``pe.N.*`` metric names for the observability registry."""
        prefix = f"pe.{pe}."
        return {
            prefix + "executions": self.executions,
            prefix + "busy_time_s": self.busy_time,
            prefix + "messages_received": self.messages_received,
            prefix + "messages_sent": self.messages_sent,
        }


class PeState:
    """Scheduler-visible state of one processor.

    Parameters
    ----------
    pe:
        Global PE index.
    prioritized:
        Queue discipline (see :class:`~repro.core.queue.MessageQueue`).
    """

    def __init__(self, pe: int, prioritized: bool = False) -> None:
        self.pe = pe
        self.queue = MessageQueue(prioritized=prioritized)
        self.busy = False
        self.stats = PeStats()

    @property
    def idle(self) -> bool:
        """Is the PE free to dequeue its next message?"""
        return not self.busy

    def queue_metrics(self) -> Dict[str, float]:
        """Flat ``pe.N.queue_*`` metric names (depth + high-water mark)."""
        prefix = f"pe.{self.pe}."
        return {
            prefix + "queue_depth": len(self.queue),
            prefix + "queue_hwm": self.queue.high_water,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "busy" if self.busy else "idle"
        return f"<PE {self.pe} {state}, queued={len(self.queue)}>"
