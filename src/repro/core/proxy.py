"""Proxies: the asynchronous invocation surface.

A proxy stands in for a (possibly remote) chare or chare collection.
Calling an entry method on a proxy never runs user code synchronously —
it marshals an invocation message and hands it to the runtime, which
routes it through the network fabric to the target's PE queue.  This is
the Charm++ programming surface:

>>> blocks[1, 2].ghost_recv(side, vector)          # point send
>>> blocks.start_step(42)                          # broadcast
>>> blocks.section([(0, 0), (0, 1)]).coords(xyz)   # section multicast

Reserved keyword arguments on every proxy call:

``_size``
    Explicit wire size in bytes (else estimated from the arguments).
``_priority``
    Message priority (smaller = sooner; else the entry's default).
``_tag``
    Trace label (else the entry-method name).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, TYPE_CHECKING

from repro.core.ids import ChareID, Index, normalize_index

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.rts import Runtime


class BoundEntry:
    """A chare proxy's entry method, ready to be invoked asynchronously."""

    __slots__ = ("_rts", "_target", "_entry")

    def __init__(self, rts: "Runtime", target: ChareID, entry: str) -> None:
        self._rts = rts
        self._target = target
        self._entry = entry

    def __call__(self, *args: Any, _size: Optional[int] = None,
                 _priority: Optional[int] = None, _tag: Optional[str] = None,
                 **kwargs: Any) -> None:
        self._rts.send(self._target, self._entry, args, kwargs,
                       size=_size, priority=_priority, tag=_tag)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<entry {self._target}.{self._entry}>"


class ChareProxy:
    """Proxy to a single chare (singleton or one array element)."""

    __slots__ = ("_rts", "_target")

    def __init__(self, rts: "Runtime", target: ChareID) -> None:
        self._rts = rts
        self._target = target

    @property
    def chare_id(self) -> ChareID:
        return self._target

    def __getattr__(self, name: str) -> BoundEntry:
        if name.startswith("_"):
            raise AttributeError(name)
        return BoundEntry(self._rts, self._target, name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<proxy {self._target}>"


class BroadcastEntry:
    """An array proxy's entry method: invoking it broadcasts."""

    __slots__ = ("_rts", "_collection", "_entry")

    def __init__(self, rts: "Runtime", collection: int, entry: str) -> None:
        self._rts = rts
        self._collection = collection
        self._entry = entry

    def __call__(self, *args: Any, _size: Optional[int] = None,
                 _priority: Optional[int] = None, _tag: Optional[str] = None,
                 **kwargs: Any) -> None:
        self._rts.broadcast(self._collection, self._entry, args, kwargs,
                            size=_size, priority=_priority, tag=_tag)


class ArrayProxy:
    """Proxy to a whole chare array.

    * ``proxy[index]`` / ``proxy.elem(index)`` — one element;
    * ``proxy.entry(...)`` — broadcast to every element;
    * ``proxy.section(indices)`` — a multicast section
      (see :mod:`repro.core.collectives`).
    """

    __slots__ = ("_rts", "_collection")

    def __init__(self, rts: "Runtime", collection: int) -> None:
        self._rts = rts
        self._collection = collection

    @property
    def collection(self) -> int:
        return self._collection

    def elem(self, index) -> ChareProxy:
        """Proxy to the element at *index*."""
        idx: Index = normalize_index(index)
        return ChareProxy(self._rts, ChareID(self._collection, idx))

    def __getitem__(self, index) -> ChareProxy:
        return self.elem(index)

    def section(self, indices: Sequence) -> "SectionProxy":
        """A multicast section over the given element indices."""
        from repro.core.collectives import SectionProxy  # cycle guard
        return SectionProxy(self._rts, self._collection,
                            [normalize_index(i) for i in indices])

    def indices(self) -> list:
        """All element indices currently in the collection."""
        return self._rts.collection_indices(self._collection)

    def __getattr__(self, name: str) -> BroadcastEntry:
        if name.startswith("_"):
            raise AttributeError(name)
        return BroadcastEntry(self._rts, self._collection, name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<array proxy c{self._collection}>"
