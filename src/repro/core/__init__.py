"""The message-driven object runtime — the paper's primary contribution.

This package is a Python realization of the Charm++ execution model the
paper builds on: applications decompose into many *chares* (virtual
processors) organized in indexed arrays; chares interact exclusively via
asynchronous entry-method invocations; each physical processor runs a
message-driven scheduler that executes whichever object has work, which
automatically overlaps computation with communication — including
multi-millisecond wide-area Grid latencies (paper §4).

Quick tour
----------
* declare chares: subclass :class:`Chare`, decorate handlers with
  :func:`entry`;
* create collections: :meth:`Runtime.create_array` with a
  :mod:`~repro.core.mapping` strategy;
* communicate: call entry methods on proxies (``arr[i].foo(x)``),
  broadcast (``arr.foo(x)``), multicast (``arr.section(idxs).foo(x)``),
  reduce (``self.contribute(v, "sum", target)``);
* model compute: ``self.charge(seconds)`` or static ``@entry(cost=...)``;
* balance load: :meth:`Runtime.load_balance` with a strategy from
  :mod:`~repro.core.loadbalance`.
"""

from repro.core.chare import Chare, MainChare
from repro.core.checkpoint import (
    Checkpoint,
    restore_checkpoint,
    take_checkpoint,
)
from repro.core.collectives import SectionProxy
from repro.core.costs import CacheHierarchy, CachedLinearCost, LinearCost
from repro.core.ids import ChareID, EntryRef, normalize_index
from repro.core.mapping import (
    BlockMapping,
    ClusterSplitMapping,
    ExplicitMapping,
    RoundRobinMapping,
    grid2d_split_mapping,
    grid3d_split_mapping,
)
from repro.core.method import entry, entry_info, invocation_bytes, payload_bytes
from repro.core.proxy import ArrayProxy, ChareProxy
from repro.core.reduction import ReductionManager, build_tree
from repro.core.rts import Runtime, RuntimeConfig

__all__ = [
    "Chare",
    "Checkpoint",
    "take_checkpoint",
    "restore_checkpoint",
    "MainChare",
    "entry",
    "entry_info",
    "ChareID",
    "EntryRef",
    "normalize_index",
    "Runtime",
    "RuntimeConfig",
    "ArrayProxy",
    "ChareProxy",
    "SectionProxy",
    "BlockMapping",
    "RoundRobinMapping",
    "ExplicitMapping",
    "ClusterSplitMapping",
    "grid2d_split_mapping",
    "grid3d_split_mapping",
    "ReductionManager",
    "build_tree",
    "LinearCost",
    "CacheHierarchy",
    "CachedLinearCost",
    "payload_bytes",
    "invocation_bytes",
]
