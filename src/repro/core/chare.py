"""The :class:`Chare` base class.

A chare is a message-driven object: it owns private state and a set of
entry methods (declared with :func:`repro.core.method.entry`) that run in
response to asynchronous messages.  Exactly one entry method of one chare
executes on a given PE at a time, to completion — the Charm++ execution
model the paper relies on for latency masking (§4).

Application chares interact with the runtime through the protected
helpers defined here:

``self.charge(seconds)``
    add virtual compute time to the current entry execution;
``self.thisProxy`` / ``self.thisIndex``
    address yourself or your collection;
``self.contribute(value, op, target)``
    participate in a reduction over your chare array;
``self.migrate(pe)``
    request migration at the end of the current entry method.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from repro.core.ids import ChareID
from repro.errors import RuntimeSystemError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.rts import Runtime
    from repro.core.proxy import ArrayProxy, ChareProxy


class Chare:
    """Base class for all message-driven objects.

    Subclasses must call ``super().__init__()`` before using any runtime
    helper.  Constructor arguments flow from
    :meth:`repro.core.rts.Runtime.create_chare` /
    :meth:`~repro.core.rts.Runtime.create_array`.
    """

    def __init__(self) -> None:
        self._rts: Optional["Runtime"] = None
        self._id: Optional[ChareID] = None

    # -- wiring (called by the runtime, not applications) ------------------

    def _bind(self, rts: "Runtime", cid: ChareID) -> None:
        self._rts = rts
        self._id = cid

    def _require_rts(self) -> "Runtime":
        if self._rts is None or self._id is None:
            raise RuntimeSystemError(
                f"{type(self).__name__} used before registration with a "
                "Runtime (did you forget super().__init__()?)")
        return self._rts

    # -- identity -----------------------------------------------------------

    @property
    def chare_id(self) -> ChareID:
        """This chare's global address."""
        self._require_rts()
        assert self._id is not None
        return self._id

    @property
    def thisIndex(self) -> tuple:
        """Index within the owning collection (Charm++ spelling)."""
        return self.chare_id.index

    @property
    def thisProxy(self) -> "ArrayProxy":
        """Proxy to the *collection* this chare belongs to."""
        return self._require_rts().collection_proxy(self.chare_id.collection)

    @property
    def self_proxy(self) -> "ChareProxy":
        """Proxy to this very element."""
        return self.thisProxy.elem(self.chare_id.index)

    @property
    def my_pe(self) -> int:
        """The PE currently hosting this chare."""
        return self._require_rts().pe_of(self.chare_id)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._require_rts().now

    # -- execution-time helpers ----------------------------------------------

    def charge(self, seconds: float) -> None:
        """Add *seconds* of virtual compute time to the running entry.

        This is how applications express "this method did S seconds of
        real work" to the simulator; the PE stays busy for the charged
        time and messages sent by the method depart when it finishes.
        """
        self._require_rts().charge(seconds)

    def contribute(self, value: Any, op: str, target) -> None:
        """Contribute *value* to the current reduction over the collection.

        Parameters
        ----------
        value:
            This element's contribution.
        op:
            Reducer name: ``"sum"``, ``"max"``, ``"min"``, ``"concat"``
            or ``"nop"``.
        target:
            Where the reduced value goes: an :class:`EntryRef`, a
            ``(proxy_element, "entry_name")`` pair, or a plain Python
            callable (driver callback, runs on the root PE at the
            reduction's completion time).
        """
        self._require_rts().contribute(self.chare_id, value, op, target)

    def migrate(self, new_pe: int) -> None:
        """Request migration to *new_pe* once the current entry finishes."""
        self._require_rts().request_migration(self.chare_id, new_pe)

    # -- migration support -----------------------------------------------------

    def pack_size(self) -> int:
        """Bytes this chare occupies on the wire when migrating.

        Subclasses carrying big state (mesh blocks, atom arrays) should
        override so migration costs scale with reality.
        """
        return 256

    def on_migrated(self, old_pe: int, new_pe: int) -> None:
        """Hook invoked (on the new PE, at arrival time) after migration."""

    # -- debug -------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        ident = self._id if self._id is not None else "<unbound>"
        return f"<{type(self).__name__} {ident}>"


class MainChare(Chare):
    """Convenience base for driver/main chares (singletons on PE 0).

    Nothing distinguishes a main chare mechanically; the subclass exists
    to make application structure explicit, mirroring Charm++'s
    ``mainchare`` declaration.
    """
