"""Per-PE message queues.

Paper §4: "As messages arrive at a physical processor, they are enqueued
in a message queue in either FIFO or priority order.  When a physical
processor becomes idle, its message scheduler dequeues the next waiting
message and delivers it."

:class:`MessageQueue` implements both disciplines behind one interface.
In priority mode, messages are ordered by ``(priority, arrival_seq)`` —
smaller priority first, FIFO among equals.  FIFO mode (the paper's main
experiments) bypasses the heap entirely: a :class:`collections.deque`
gives O(1) push/pop with no key tuple allocation, where the heap costs
O(log n) per operation even when every priority ties.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Deque, List, Optional

from repro.network.message import Message


class MessageQueue:
    """A scheduler queue for one PE.

    Parameters
    ----------
    prioritized:
        When ``False`` (default, matching the paper's main experiments)
        the queue is pure FIFO and message priorities are ignored.  When
        ``True``, smaller :attr:`Message.priority` values dequeue first —
        the §6 "prioritized message delivery" extension.
    """

    def __init__(self, prioritized: bool = False) -> None:
        self.prioritized = prioritized
        self._fifo: Deque[Message] = deque()
        self._heap: List[tuple] = []
        self._arrival = itertools.count()
        self._size = 0
        #: Largest queue depth ever reached (telemetry gauge: a deep
        #: high-water mark means arrivals outran the scheduler).
        self.high_water = 0

    def push(self, msg: Message) -> None:
        """Enqueue an arrived message."""
        if self.prioritized:
            key = (msg.priority, next(self._arrival))
            heapq.heappush(self._heap, (key, msg))
        else:
            self._fifo.append(msg)
        self._size += 1
        if self._size > self.high_water:
            self.high_water = self._size

    def pop(self) -> Message:
        """Dequeue the next message to execute.

        Raises
        ------
        IndexError
            If the queue is empty.
        """
        if self.prioritized:
            _key, msg = heapq.heappop(self._heap)
        else:
            msg = self._fifo.popleft()
        self._size -= 1
        return msg

    def peek(self) -> Optional[Message]:
        """The message :meth:`pop` would return, or ``None`` if empty."""
        if self.prioritized:
            return self._heap[0][1] if self._heap else None
        return self._fifo[0] if self._fifo else None

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def drain(self) -> List[Message]:
        """Remove and return all queued messages in dequeue order.

        Used when migrating a chare with pending messages and when
        tearing down a runtime between benchmark repetitions.
        """
        out = []
        while self:
            out.append(self.pop())
        return out
