"""Per-PE message queues.

Paper §4: "As messages arrive at a physical processor, they are enqueued
in a message queue in either FIFO or priority order.  When a physical
processor becomes idle, its message scheduler dequeues the next waiting
message and delivers it."

:class:`MessageQueue` implements both disciplines behind one interface.
In priority mode, messages are ordered by ``(priority, arrival_seq)`` —
smaller priority first, FIFO among equals — so FIFO is literally the
special case where every priority ties.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional

from repro.network.message import Message


class MessageQueue:
    """A scheduler queue for one PE.

    Parameters
    ----------
    prioritized:
        When ``False`` (default, matching the paper's main experiments)
        the queue is pure FIFO and message priorities are ignored.  When
        ``True``, smaller :attr:`Message.priority` values dequeue first —
        the §6 "prioritized message delivery" extension.
    """

    def __init__(self, prioritized: bool = False) -> None:
        self.prioritized = prioritized
        self._heap: List[tuple] = []
        self._arrival = itertools.count()
        self._size = 0

    def push(self, msg: Message) -> None:
        """Enqueue an arrived message."""
        seq = next(self._arrival)
        key = (msg.priority if self.prioritized else 0, seq)
        heapq.heappush(self._heap, (key, msg))
        self._size += 1

    def pop(self) -> Message:
        """Dequeue the next message to execute.

        Raises
        ------
        IndexError
            If the queue is empty.
        """
        _key, msg = heapq.heappop(self._heap)
        self._size -= 1
        return msg

    def peek(self) -> Optional[Message]:
        """The message :meth:`pop` would return, or ``None`` if empty."""
        if not self._heap:
            return None
        return self._heap[0][1]

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def drain(self) -> List[Message]:
        """Remove and return all queued messages in dequeue order.

        Used when migrating a chare with pending messages and when
        tearing down a runtime between benchmark repetitions.
        """
        out = []
        while self:
            out.append(self.pop())
        return out
