"""Entry-method declaration and payload size estimation.

Charm++ entry methods are declared in interface files; here they are
declared with the :func:`entry` decorator, which records metadata the
scheduler needs:

* an optional **static cost function** ``cost(self, *args) -> seconds``
  charged as virtual compute time (entry methods may additionally charge
  dynamic time via :meth:`repro.core.chare.Chare.charge`);
* an optional **default priority** for messages invoking it.

The module also implements :func:`payload_bytes`, the wire-size estimator
proxies use when the caller does not declare an explicit size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

#: Fixed envelope bytes added to every message (headers, ids).
ENVELOPE_BYTES = 64

#: Attribute under which entry metadata is stored on the function.
_ENTRY_ATTR = "__repro_entry__"


@dataclass(frozen=True)
class EntryInfo:
    """Metadata attached to an entry method by :func:`entry`."""

    name: str
    cost: Optional[Callable[..., float]] = None
    priority: Optional[int] = None
    #: Exclude from migration-time packing concerns etc. (reserved).
    local_only: bool = False


def entry(func: Optional[Callable] = None, *,
          cost: Optional[Callable[..., float]] = None,
          priority: Optional[int] = None,
          local_only: bool = False) -> Callable:
    """Mark a method of a :class:`~repro.core.chare.Chare` as an entry method.

    Usable bare (``@entry``) or with options (``@entry(cost=...)``).

    Parameters
    ----------
    cost:
        ``cost(self, *args, **kwargs) -> float`` returning virtual seconds
        of compute to charge for each invocation.
    priority:
        Default message priority when the sender specifies none
        (smaller = more urgent).
    local_only:
        Documentation flag for methods only ever invoked locally.
    """

    def decorate(f: Callable) -> Callable:
        # Annotate and return the original function — no pass-through
        # wrapper.  Entry methods run once per message, so an extra call
        # frame per invocation is pure scheduler hot-path overhead, and
        # the wrapper added nothing (metadata lives in the attribute).
        setattr(f, _ENTRY_ATTR,
                EntryInfo(name=f.__name__, cost=cost, priority=priority,
                          local_only=local_only))
        return f

    if func is not None:
        return decorate(func)
    return decorate


def entry_info(method: Callable) -> Optional[EntryInfo]:
    """Return the :class:`EntryInfo` for *method*, or ``None``."""
    return getattr(method, _ENTRY_ATTR, None)


def is_entry(method: Callable) -> bool:
    """Whether *method* was decorated with :func:`entry`."""
    return entry_info(method) is not None


def payload_bytes(obj: Any) -> int:
    """Estimate the marshalled size of *obj* in bytes.

    The estimate follows how Charm++ would pack the same data: numpy
    arrays travel as raw buffers, scalars as 8-byte words, containers as
    the sum of their parts.  It does not need to be exact — it feeds the
    bandwidth term of the link model — but it must scale correctly with
    application data sizes (a 256-cell ghost vector must cost 256 * 8
    bytes, not a constant).
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, float, complex, np.integer, np.floating)):
        return 8
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 8 + sum(payload_bytes(x) for x in obj)
    if isinstance(obj, dict):
        return 8 + sum(payload_bytes(k) + payload_bytes(v)
                       for k, v in obj.items())
    # Fallback for application objects exposing their own accounting.
    nbytes = getattr(obj, "nbytes", None)
    if isinstance(nbytes, (int, np.integer)):
        return int(nbytes)
    return 64


def invocation_bytes(args: tuple, kwargs: dict) -> int:
    """Wire size of an entry-method invocation (envelope + arguments)."""
    total = ENVELOPE_BYTES
    for a in args:
        total += payload_bytes(a)
    for k, v in kwargs.items():
        total += payload_bytes(k) + payload_bytes(v)
    return total
